"""GENERATED CODE -- do not edit.

Produced by repro.codegen from xt.spec + motif.spec; regenerate with
``wafe-codegen``.  Each command follows the paper's conventions:
argument conversion via the runtime helpers, native dispatch through
the handwritten NATIVE table, Tcl-variable returns for list/struct
results.
"""

from repro.core import runtime as rt
from repro.core.natives import NATIVE
from repro.tcl.errors import TclError

def cmd_destroyWidget(wafe, argv):
    """Destroy a widget and free its associated resources (generated from XtDestroyWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "destroyWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtDestroyWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_realizeWidget(wafe, argv):
    """Realize a widget subtree (create its windows) (generated from XtRealizeWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "realizeWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtRealizeWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_unrealizeWidget(wafe, argv):
    """Unrealize a widget subtree (generated from XtUnrealizeWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "unrealizeWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtUnrealizeWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_manageChild(wafe, argv):
    """Manage a child (give it to the geometry manager) (generated from XtManageChild)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "manageChild widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtManageChild"](wafe, arg1)
    return rt.from_void(ret)

def cmd_unmanageChild(wafe, argv):
    """Unmanage a child (generated from XtUnmanageChild)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "unmanageChild widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtUnmanageChild"](wafe, arg1)
    return rt.from_void(ret)

def cmd_mapWidget(wafe, argv):
    """Map a realized widget's window (generated from XtMapWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "mapWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtMapWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_unmapWidget(wafe, argv):
    """Unmap a widget's window (generated from XtUnmapWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "unmapWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtUnmapWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_setSensitive(wafe, argv):
    """Set the sensitivity state of a widget (generated from XtSetSensitive)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "setSensitive widget boolean"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_boolean(argv[2])
    ret = NATIVE["XtSetSensitive"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_isSensitive(wafe, argv):
    """Query the (effective) sensitivity of a widget (generated from XtIsSensitive)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "isSensitive widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtIsSensitive"](wafe, arg1)
    return rt.from_boolean(ret)

def cmd_isRealized(wafe, argv):
    """Is the widget realized? (generated from XtIsRealized)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "isRealized widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtIsRealized"](wafe, arg1)
    return rt.from_boolean(ret)

def cmd_isManaged(wafe, argv):
    """Is the widget managed? (generated from XtIsManaged)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "isManaged widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtIsManaged"](wafe, arg1)
    return rt.from_boolean(ret)

def cmd_popup(wafe, argv):
    """Pop up a shell with a grab kind (none, nonexclusive, exclusive) (generated from XtPopup)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "popup widget grabKind"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_grab_kind(argv[2])
    ret = NATIVE["XtPopup"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_popdown(wafe, argv):
    """Pop down a shell (generated from XtPopdown)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "popdown widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtPopdown"](wafe, arg1)
    return rt.from_void(ret)

def cmd_moveWidget(wafe, argv):
    """Move a widget to an x/y position (generated from XtMoveWidget)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "moveWidget widget position position"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    arg3 = rt.to_int(argv[3])
    ret = NATIVE["XtMoveWidget"](wafe, arg1, arg2, arg3)
    return rt.from_void(ret)

def cmd_resizeWidget(wafe, argv):
    """Resize a widget (generated from XtResizeWidget)."""
    if len(argv) != 5:
        raise TclError('wrong # args: should be "resizeWidget widget dimension dimension dimension"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    arg3 = rt.to_int(argv[3])
    arg4 = rt.to_int(argv[4])
    ret = NATIVE["XtResizeWidget"](wafe, arg1, arg2, arg3, arg4)
    return rt.from_void(ret)

def cmd_getResourceList(wafe, argv):
    """Resource names of a widget's class; returns the count, fills varName (generated from XtGetResourceList)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "getResourceList widget varName"')
    arg1 = wafe.lookup_widget(argv[1])
    ret, out2 = NATIVE["XtGetResourceList"](wafe, arg1)
    rt.set_list_var(wafe, argv[2], out2)
    if ret is None:
        ret = len(out2)
    return rt.from_int(ret)

def cmd_parent(wafe, argv):
    """The parent widget's name (generated from XtParent)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "parent widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtParent"](wafe, arg1)
    return rt.from_widget(ret)

def cmd_nameToWidget(wafe, argv):
    """Resolve a widget by pathname relative to a reference widget (generated from XtNameToWidget)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "nameToWidget widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtNameToWidget"](wafe, arg1, arg2)
    return rt.from_widget(ret)

def cmd_name(wafe, argv):
    """The widget's name (generated from XtName)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "name widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtName"](wafe, arg1)
    return rt.from_string(ret)

def cmd_bell(wafe, argv):
    """Ring the display bell (generated from XtBell)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "bell widget int"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    ret = NATIVE["XtBell"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_addTimeOut(wafe, argv):
    """Register a Tcl script to run after a timeout (milliseconds) (generated from XtAddTimeOut)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "addTimeOut int script"')
    arg1 = rt.to_int(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtAddTimeOut"](wafe, arg1, arg2)
    return rt.from_int(ret)

def cmd_removeTimeOut(wafe, argv):
    """Remove a pending timeout by id (generated from XtRemoveTimeOut)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "removeTimeOut int"')
    arg1 = rt.to_int(argv[1])
    ret = NATIVE["XtRemoveTimeOut"](wafe, arg1)
    return rt.from_void(ret)

def cmd_addWorkProc(wafe, argv):
    """Register a Tcl script to run when the main loop is idle (generated from XtAddWorkProc)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "addWorkProc script"')
    arg1 = argv[1]
    ret = NATIVE["XtAddWorkProc"](wafe, arg1)
    return rt.from_int(ret)

def cmd_ownSelection(wafe, argv):
    """Own a selection; the script converts it on request (generated from XtOwnSelection)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "ownSelection widget string script"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    arg3 = argv[3]
    ret = NATIVE["XtOwnSelection"](wafe, arg1, arg2, arg3)
    return rt.from_boolean(ret)

def cmd_disownSelection(wafe, argv):
    """Give up a selection (generated from XtDisownSelection)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "disownSelection widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtDisownSelection"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_getSelectionValue(wafe, argv):
    """Retrieve a selection value (synchronously in the simulation) (generated from XtGetSelectionValue)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "getSelectionValue widget string string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    arg3 = argv[3]
    ret = NATIVE["XtGetSelectionValue"](wafe, arg1, arg2, arg3)
    return rt.from_string(ret)

def cmd_installAccelerators(wafe, argv):
    """Install a widget's accelerators onto a destination widget (generated from XtInstallAccelerators)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "installAccelerators widget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = wafe.lookup_widget(argv[2])
    ret = NATIVE["XtInstallAccelerators"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_installAllAccelerators(wafe, argv):
    """Install accelerators from a whole subtree onto a destination widget (generated from XtInstallAllAccelerators)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "installAllAccelerators widget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = wafe.lookup_widget(argv[2])
    ret = NATIVE["XtInstallAllAccelerators"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_overrideTranslations(wafe, argv):
    """Install translations, replacing existing ones (generated from XtOverrideTranslations)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "overrideTranslations widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtOverrideTranslations"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_augmentTranslations(wafe, argv):
    """Merge translations, keeping existing bindings (generated from XtAugmentTranslations)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "augmentTranslations widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtAugmentTranslations"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_mLabel(wafe, argv):
    """Create a managed XmLabel widget (generated)."""
    return wafe.create_widget("XmLabel", argv)

def cmd_mPushButton(wafe, argv):
    """Create a managed XmPushButton widget (generated)."""
    return wafe.create_widget("XmPushButton", argv)

def cmd_mCascadeButton(wafe, argv):
    """Create a managed XmCascadeButton widget (generated)."""
    return wafe.create_widget("XmCascadeButton", argv)

def cmd_mToggleButton(wafe, argv):
    """Create a managed XmToggleButton widget (generated)."""
    return wafe.create_widget("XmToggleButton", argv)

def cmd_mText(wafe, argv):
    """Create a managed XmText widget (generated)."""
    return wafe.create_widget("XmText", argv)

def cmd_mRowColumn(wafe, argv):
    """Create a managed XmRowColumn widget (generated)."""
    return wafe.create_widget("XmRowColumn", argv)

def cmd_mSeparator(wafe, argv):
    """Create a managed XmSeparator widget (generated)."""
    return wafe.create_widget("XmSeparator", argv)

def cmd_mCommand(wafe, argv):
    """Create a managed XmCommand widget (generated)."""
    return wafe.create_widget("XmCommand", argv)

def cmd_mCascadeButtonHighlight(wafe, argv):
    """Toggle the highlight state of a cascade button (the paper's example) (generated from XmCascadeButtonHighlight)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "mCascadeButtonHighlight widget boolean"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_boolean(argv[2])
    ret = NATIVE["XmCascadeButtonHighlight"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_mCommandAppendValue(wafe, argv):
    """Append text to the command line of an XmCommand box (generated from XmCommandAppendValue)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "mCommandAppendValue widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XmCommandAppendValue"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_mCommandSetValue(wafe, argv):
    """Replace the command line of an XmCommand box (generated from XmCommandSetValue)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "mCommandSetValue widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XmCommandSetValue"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_mCommandEnter(wafe, argv):
    """Commit the command line to the history (generated from XmCommandEnter)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "mCommandEnter widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XmCommandEnter"](wafe, arg1)
    return rt.from_string(ret)

def cmd_mToggleButtonGetState(wafe, argv):
    """Current state of a toggle button (generated from XmToggleButtonGetState)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "mToggleButtonGetState widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XmToggleButtonGetState"](wafe, arg1)
    return rt.from_boolean(ret)

def cmd_mToggleButtonSetState(wafe, argv):
    """Set a toggle button's state; optionally notify callbacks (generated from XmToggleButtonSetState)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "mToggleButtonSetState widget boolean boolean"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_boolean(argv[2])
    arg3 = rt.to_boolean(argv[3])
    ret = NATIVE["XmToggleButtonSetState"](wafe, arg1, arg2, arg3)
    return rt.from_void(ret)

def cmd_mTextGetString(wafe, argv):
    """Current contents of a text widget (generated from XmTextGetString)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "mTextGetString widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XmTextGetString"](wafe, arg1)
    return rt.from_string(ret)

def cmd_mTextSetString(wafe, argv):
    """Replace the contents of a text widget (generated from XmTextSetString)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "mTextSetString widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XmTextSetString"](wafe, arg1, arg2)
    return rt.from_void(ret)

COMMANDS = [
    ("destroyWidget", cmd_destroyWidget),
    ("realizeWidget", cmd_realizeWidget),
    ("unrealizeWidget", cmd_unrealizeWidget),
    ("manageChild", cmd_manageChild),
    ("unmanageChild", cmd_unmanageChild),
    ("mapWidget", cmd_mapWidget),
    ("unmapWidget", cmd_unmapWidget),
    ("setSensitive", cmd_setSensitive),
    ("isSensitive", cmd_isSensitive),
    ("isRealized", cmd_isRealized),
    ("isManaged", cmd_isManaged),
    ("popup", cmd_popup),
    ("popdown", cmd_popdown),
    ("moveWidget", cmd_moveWidget),
    ("resizeWidget", cmd_resizeWidget),
    ("getResourceList", cmd_getResourceList),
    ("parent", cmd_parent),
    ("nameToWidget", cmd_nameToWidget),
    ("name", cmd_name),
    ("bell", cmd_bell),
    ("addTimeOut", cmd_addTimeOut),
    ("removeTimeOut", cmd_removeTimeOut),
    ("addWorkProc", cmd_addWorkProc),
    ("ownSelection", cmd_ownSelection),
    ("disownSelection", cmd_disownSelection),
    ("getSelectionValue", cmd_getSelectionValue),
    ("installAccelerators", cmd_installAccelerators),
    ("installAllAccelerators", cmd_installAllAccelerators),
    ("overrideTranslations", cmd_overrideTranslations),
    ("augmentTranslations", cmd_augmentTranslations),
    ("mLabel", cmd_mLabel),
    ("mPushButton", cmd_mPushButton),
    ("mCascadeButton", cmd_mCascadeButton),
    ("mToggleButton", cmd_mToggleButton),
    ("mText", cmd_mText),
    ("mRowColumn", cmd_mRowColumn),
    ("mSeparator", cmd_mSeparator),
    ("mCommand", cmd_mCommand),
    ("mCascadeButtonHighlight", cmd_mCascadeButtonHighlight),
    ("mCommandAppendValue", cmd_mCommandAppendValue),
    ("mCommandSetValue", cmd_mCommandSetValue),
    ("mCommandEnter", cmd_mCommandEnter),
    ("mToggleButtonGetState", cmd_mToggleButtonGetState),
    ("mToggleButtonSetState", cmd_mToggleButtonSetState),
    ("mTextGetString", cmd_mTextGetString),
    ("mTextSetString", cmd_mTextSetString),
]
