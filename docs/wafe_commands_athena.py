"""GENERATED CODE -- do not edit.

Produced by repro.codegen from xt.spec + xaw.spec + plotter.spec; regenerate with
``wafe-codegen``.  Each command follows the paper's conventions:
argument conversion via the runtime helpers, native dispatch through
the handwritten NATIVE table, Tcl-variable returns for list/struct
results.
"""

from repro.core import runtime as rt
from repro.core.natives import NATIVE
from repro.tcl.errors import TclError

def cmd_destroyWidget(wafe, argv):
    """Destroy a widget and free its associated resources (generated from XtDestroyWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "destroyWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtDestroyWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_realizeWidget(wafe, argv):
    """Realize a widget subtree (create its windows) (generated from XtRealizeWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "realizeWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtRealizeWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_unrealizeWidget(wafe, argv):
    """Unrealize a widget subtree (generated from XtUnrealizeWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "unrealizeWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtUnrealizeWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_manageChild(wafe, argv):
    """Manage a child (give it to the geometry manager) (generated from XtManageChild)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "manageChild widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtManageChild"](wafe, arg1)
    return rt.from_void(ret)

def cmd_unmanageChild(wafe, argv):
    """Unmanage a child (generated from XtUnmanageChild)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "unmanageChild widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtUnmanageChild"](wafe, arg1)
    return rt.from_void(ret)

def cmd_mapWidget(wafe, argv):
    """Map a realized widget's window (generated from XtMapWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "mapWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtMapWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_unmapWidget(wafe, argv):
    """Unmap a widget's window (generated from XtUnmapWidget)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "unmapWidget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtUnmapWidget"](wafe, arg1)
    return rt.from_void(ret)

def cmd_setSensitive(wafe, argv):
    """Set the sensitivity state of a widget (generated from XtSetSensitive)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "setSensitive widget boolean"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_boolean(argv[2])
    ret = NATIVE["XtSetSensitive"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_isSensitive(wafe, argv):
    """Query the (effective) sensitivity of a widget (generated from XtIsSensitive)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "isSensitive widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtIsSensitive"](wafe, arg1)
    return rt.from_boolean(ret)

def cmd_isRealized(wafe, argv):
    """Is the widget realized? (generated from XtIsRealized)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "isRealized widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtIsRealized"](wafe, arg1)
    return rt.from_boolean(ret)

def cmd_isManaged(wafe, argv):
    """Is the widget managed? (generated from XtIsManaged)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "isManaged widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtIsManaged"](wafe, arg1)
    return rt.from_boolean(ret)

def cmd_popup(wafe, argv):
    """Pop up a shell with a grab kind (none, nonexclusive, exclusive) (generated from XtPopup)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "popup widget grabKind"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_grab_kind(argv[2])
    ret = NATIVE["XtPopup"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_popdown(wafe, argv):
    """Pop down a shell (generated from XtPopdown)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "popdown widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtPopdown"](wafe, arg1)
    return rt.from_void(ret)

def cmd_moveWidget(wafe, argv):
    """Move a widget to an x/y position (generated from XtMoveWidget)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "moveWidget widget position position"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    arg3 = rt.to_int(argv[3])
    ret = NATIVE["XtMoveWidget"](wafe, arg1, arg2, arg3)
    return rt.from_void(ret)

def cmd_resizeWidget(wafe, argv):
    """Resize a widget (generated from XtResizeWidget)."""
    if len(argv) != 5:
        raise TclError('wrong # args: should be "resizeWidget widget dimension dimension dimension"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    arg3 = rt.to_int(argv[3])
    arg4 = rt.to_int(argv[4])
    ret = NATIVE["XtResizeWidget"](wafe, arg1, arg2, arg3, arg4)
    return rt.from_void(ret)

def cmd_getResourceList(wafe, argv):
    """Resource names of a widget's class; returns the count, fills varName (generated from XtGetResourceList)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "getResourceList widget varName"')
    arg1 = wafe.lookup_widget(argv[1])
    ret, out2 = NATIVE["XtGetResourceList"](wafe, arg1)
    rt.set_list_var(wafe, argv[2], out2)
    if ret is None:
        ret = len(out2)
    return rt.from_int(ret)

def cmd_parent(wafe, argv):
    """The parent widget's name (generated from XtParent)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "parent widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtParent"](wafe, arg1)
    return rt.from_widget(ret)

def cmd_nameToWidget(wafe, argv):
    """Resolve a widget by pathname relative to a reference widget (generated from XtNameToWidget)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "nameToWidget widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtNameToWidget"](wafe, arg1, arg2)
    return rt.from_widget(ret)

def cmd_name(wafe, argv):
    """The widget's name (generated from XtName)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "name widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XtName"](wafe, arg1)
    return rt.from_string(ret)

def cmd_bell(wafe, argv):
    """Ring the display bell (generated from XtBell)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "bell widget int"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    ret = NATIVE["XtBell"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_addTimeOut(wafe, argv):
    """Register a Tcl script to run after a timeout (milliseconds) (generated from XtAddTimeOut)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "addTimeOut int script"')
    arg1 = rt.to_int(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtAddTimeOut"](wafe, arg1, arg2)
    return rt.from_int(ret)

def cmd_removeTimeOut(wafe, argv):
    """Remove a pending timeout by id (generated from XtRemoveTimeOut)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "removeTimeOut int"')
    arg1 = rt.to_int(argv[1])
    ret = NATIVE["XtRemoveTimeOut"](wafe, arg1)
    return rt.from_void(ret)

def cmd_addWorkProc(wafe, argv):
    """Register a Tcl script to run when the main loop is idle (generated from XtAddWorkProc)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "addWorkProc script"')
    arg1 = argv[1]
    ret = NATIVE["XtAddWorkProc"](wafe, arg1)
    return rt.from_int(ret)

def cmd_ownSelection(wafe, argv):
    """Own a selection; the script converts it on request (generated from XtOwnSelection)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "ownSelection widget string script"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    arg3 = argv[3]
    ret = NATIVE["XtOwnSelection"](wafe, arg1, arg2, arg3)
    return rt.from_boolean(ret)

def cmd_disownSelection(wafe, argv):
    """Give up a selection (generated from XtDisownSelection)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "disownSelection widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtDisownSelection"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_getSelectionValue(wafe, argv):
    """Retrieve a selection value (synchronously in the simulation) (generated from XtGetSelectionValue)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "getSelectionValue widget string string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    arg3 = argv[3]
    ret = NATIVE["XtGetSelectionValue"](wafe, arg1, arg2, arg3)
    return rt.from_string(ret)

def cmd_installAccelerators(wafe, argv):
    """Install a widget's accelerators onto a destination widget (generated from XtInstallAccelerators)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "installAccelerators widget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = wafe.lookup_widget(argv[2])
    ret = NATIVE["XtInstallAccelerators"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_installAllAccelerators(wafe, argv):
    """Install accelerators from a whole subtree onto a destination widget (generated from XtInstallAllAccelerators)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "installAllAccelerators widget widget"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = wafe.lookup_widget(argv[2])
    ret = NATIVE["XtInstallAllAccelerators"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_overrideTranslations(wafe, argv):
    """Install translations, replacing existing ones (generated from XtOverrideTranslations)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "overrideTranslations widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtOverrideTranslations"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_augmentTranslations(wafe, argv):
    """Merge translations, keeping existing bindings (generated from XtAugmentTranslations)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "augmentTranslations widget string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = argv[2]
    ret = NATIVE["XtAugmentTranslations"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_label(wafe, argv):
    """Create a managed Label widget (generated)."""
    return wafe.create_widget("Label", argv)

def cmd_command(wafe, argv):
    """Create a managed Command widget (generated)."""
    return wafe.create_widget("Command", argv)

def cmd_toggle(wafe, argv):
    """Create a managed Toggle widget (generated)."""
    return wafe.create_widget("Toggle", argv)

def cmd_menuButton(wafe, argv):
    """Create a managed MenuButton widget (generated)."""
    return wafe.create_widget("MenuButton", argv)

def cmd_form(wafe, argv):
    """Create a managed Form widget (generated)."""
    return wafe.create_widget("Form", argv)

def cmd_box(wafe, argv):
    """Create a managed Box widget (generated)."""
    return wafe.create_widget("Box", argv)

def cmd_paned(wafe, argv):
    """Create a managed Paned widget (generated)."""
    return wafe.create_widget("Paned", argv)

def cmd_grip(wafe, argv):
    """Create a managed Grip widget (generated)."""
    return wafe.create_widget("Grip", argv)

def cmd_viewport(wafe, argv):
    """Create a managed Viewport widget (generated)."""
    return wafe.create_widget("Viewport", argv)

def cmd_dialog(wafe, argv):
    """Create a managed Dialog widget (generated)."""
    return wafe.create_widget("Dialog", argv)

def cmd_list(wafe, argv):
    """Create a managed List widget (generated)."""
    return wafe.create_widget("List", argv)

def cmd_asciiText(wafe, argv):
    """Create a managed AsciiText widget (generated)."""
    return wafe.create_widget("AsciiText", argv)

def cmd_scrollbar(wafe, argv):
    """Create a managed Scrollbar widget (generated)."""
    return wafe.create_widget("Scrollbar", argv)

def cmd_stripChart(wafe, argv):
    """Create a managed StripChart widget (generated)."""
    return wafe.create_widget("StripChart", argv)

def cmd_simpleMenu(wafe, argv):
    """Create a managed SimpleMenu widget (generated)."""
    return wafe.create_widget("SimpleMenu", argv)

def cmd_sme(wafe, argv):
    """Create a managed Sme widget (generated)."""
    return wafe.create_widget("Sme", argv)

def cmd_smeBSB(wafe, argv):
    """Create a managed SmeBSB widget (generated)."""
    return wafe.create_widget("SmeBSB", argv)

def cmd_smeLine(wafe, argv):
    """Create a managed SmeLine widget (generated)."""
    return wafe.create_widget("SmeLine", argv)

def cmd_formAllowResize(wafe, argv):
    """Allow or forbid geometry requests from a Form child (generated from XawFormAllowResize)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "formAllowResize widget boolean"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_boolean(argv[2])
    ret = NATIVE["XawFormAllowResize"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_listChange(wafe, argv):
    """Replace the item list of a List widget (generated from XawListChange)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "listChange widget list boolean"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_list(argv[2])
    arg3 = rt.to_boolean(argv[3])
    ret = NATIVE["XawListChange"](wafe, arg1, arg2, arg3)
    return rt.from_void(ret)

def cmd_listHighlight(wafe, argv):
    """Highlight a List item by index (generated from XawListHighlight)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "listHighlight widget int"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    ret = NATIVE["XawListHighlight"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_listUnhighlight(wafe, argv):
    """Remove the highlight from a List widget (generated from XawListUnhighlight)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "listUnhighlight widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XawListUnhighlight"](wafe, arg1)
    return rt.from_void(ret)

def cmd_listShowCurrent(wafe, argv):
    """Current List selection into an array (index, string); returns index (generated from XawListShowCurrent)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "listShowCurrent widget varName"')
    arg1 = wafe.lookup_widget(argv[1])
    ret, out2 = NATIVE["XawListShowCurrent"](wafe, arg1)
    rt.set_struct_var(wafe, argv[2], out2, ['index', 'string'])
    if ret is None:
        ret = len(out2)
    return rt.from_int(ret)

def cmd_textSetInsertionPoint(wafe, argv):
    """Move the text insertion point (generated from XawTextSetInsertionPoint)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "textSetInsertionPoint widget int"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    ret = NATIVE["XawTextSetInsertionPoint"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_textGetInsertionPoint(wafe, argv):
    """Query the text insertion point (generated from XawTextGetInsertionPoint)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "textGetInsertionPoint widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XawTextGetInsertionPoint"](wafe, arg1)
    return rt.from_int(ret)

def cmd_textReplace(wafe, argv):
    """Replace the characters between two positions with new text (generated from XawTextReplace)."""
    if len(argv) != 5:
        raise TclError('wrong # args: should be "textReplace widget int int string"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    arg3 = rt.to_int(argv[3])
    arg4 = argv[4]
    ret = NATIVE["XawTextReplace"](wafe, arg1, arg2, arg3, arg4)
    return rt.from_void(ret)

def cmd_textSetSelection(wafe, argv):
    """Select a range of text (and own the PRIMARY selection) (generated from XawTextSetSelection)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "textSetSelection widget int int"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    arg3 = rt.to_int(argv[3])
    ret = NATIVE["XawTextSetSelection"](wafe, arg1, arg2, arg3)
    return rt.from_void(ret)

def cmd_textGetSelection(wafe, argv):
    """The currently selected text of a text widget (generated from XawTextGetSelection)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "textGetSelection widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XawTextGetSelection"](wafe, arg1)
    return rt.from_string(ret)

def cmd_scrollbarSetThumb(wafe, argv):
    """Set a scrollbar's thumb (top and shown fractions) (generated from XawScrollbarSetThumb)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "scrollbarSetThumb widget float float"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_float(argv[2])
    arg3 = rt.to_float(argv[3])
    ret = NATIVE["XawScrollbarSetThumb"](wafe, arg1, arg2, arg3)
    return rt.from_void(ret)

def cmd_stripChartSample(wafe, argv):
    """Pull one sample into a StripChart immediately (generated from XawStripChartSample)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "stripChartSample widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XawStripChartSample"](wafe, arg1)
    return rt.from_float(ret)

def cmd_viewportSetCoordinates(wafe, argv):
    """Scroll a Viewport to a vertical pixel offset (generated from XawViewportSetCoordinates)."""
    if len(argv) != 4:
        raise TclError('wrong # args: should be "viewportSetCoordinates widget int int"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_int(argv[2])
    arg3 = rt.to_int(argv[3])
    ret = NATIVE["XawViewportSetCoordinates"](wafe, arg1, arg2, arg3)
    return rt.from_void(ret)

def cmd_dialogGetValueString(wafe, argv):
    """The Dialog convenience accessor: current value string (generated from XawDialogGetValueString)."""
    if len(argv) != 2:
        raise TclError('wrong # args: should be "dialogGetValueString widget"')
    arg1 = wafe.lookup_widget(argv[1])
    ret = NATIVE["XawDialogGetValueString"](wafe, arg1)
    return rt.from_string(ret)

def cmd_barGraph(wafe, argv):
    """Create a managed BarGraph widget (generated)."""
    return wafe.create_widget("BarGraph", argv)

def cmd_lineGraph(wafe, argv):
    """Create a managed LineGraph widget (generated)."""
    return wafe.create_widget("LineGraph", argv)

def cmd_plotterSetData(wafe, argv):
    """Replace the data series of a plotter widget (generated from PlotterSetData)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "plotterSetData widget list"')
    arg1 = wafe.lookup_widget(argv[1])
    arg2 = rt.to_list(argv[2])
    ret = NATIVE["PlotterSetData"](wafe, arg1, arg2)
    return rt.from_void(ret)

def cmd_plotterBarHeights(wafe, argv):
    """Painted bar heights in pixels (for inspection); fills varName (generated from PlotterBarHeights)."""
    if len(argv) != 3:
        raise TclError('wrong # args: should be "plotterBarHeights widget varName"')
    arg1 = wafe.lookup_widget(argv[1])
    ret, out2 = NATIVE["PlotterBarHeights"](wafe, arg1)
    rt.set_list_var(wafe, argv[2], out2)
    if ret is None:
        ret = len(out2)
    return rt.from_int(ret)

COMMANDS = [
    ("destroyWidget", cmd_destroyWidget),
    ("realizeWidget", cmd_realizeWidget),
    ("unrealizeWidget", cmd_unrealizeWidget),
    ("manageChild", cmd_manageChild),
    ("unmanageChild", cmd_unmanageChild),
    ("mapWidget", cmd_mapWidget),
    ("unmapWidget", cmd_unmapWidget),
    ("setSensitive", cmd_setSensitive),
    ("isSensitive", cmd_isSensitive),
    ("isRealized", cmd_isRealized),
    ("isManaged", cmd_isManaged),
    ("popup", cmd_popup),
    ("popdown", cmd_popdown),
    ("moveWidget", cmd_moveWidget),
    ("resizeWidget", cmd_resizeWidget),
    ("getResourceList", cmd_getResourceList),
    ("parent", cmd_parent),
    ("nameToWidget", cmd_nameToWidget),
    ("name", cmd_name),
    ("bell", cmd_bell),
    ("addTimeOut", cmd_addTimeOut),
    ("removeTimeOut", cmd_removeTimeOut),
    ("addWorkProc", cmd_addWorkProc),
    ("ownSelection", cmd_ownSelection),
    ("disownSelection", cmd_disownSelection),
    ("getSelectionValue", cmd_getSelectionValue),
    ("installAccelerators", cmd_installAccelerators),
    ("installAllAccelerators", cmd_installAllAccelerators),
    ("overrideTranslations", cmd_overrideTranslations),
    ("augmentTranslations", cmd_augmentTranslations),
    ("label", cmd_label),
    ("command", cmd_command),
    ("toggle", cmd_toggle),
    ("menuButton", cmd_menuButton),
    ("form", cmd_form),
    ("box", cmd_box),
    ("paned", cmd_paned),
    ("grip", cmd_grip),
    ("viewport", cmd_viewport),
    ("dialog", cmd_dialog),
    ("list", cmd_list),
    ("asciiText", cmd_asciiText),
    ("scrollbar", cmd_scrollbar),
    ("stripChart", cmd_stripChart),
    ("simpleMenu", cmd_simpleMenu),
    ("sme", cmd_sme),
    ("smeBSB", cmd_smeBSB),
    ("smeLine", cmd_smeLine),
    ("formAllowResize", cmd_formAllowResize),
    ("listChange", cmd_listChange),
    ("listHighlight", cmd_listHighlight),
    ("listUnhighlight", cmd_listUnhighlight),
    ("listShowCurrent", cmd_listShowCurrent),
    ("textSetInsertionPoint", cmd_textSetInsertionPoint),
    ("textGetInsertionPoint", cmd_textGetInsertionPoint),
    ("textReplace", cmd_textReplace),
    ("textSetSelection", cmd_textSetSelection),
    ("textGetSelection", cmd_textGetSelection),
    ("scrollbarSetThumb", cmd_scrollbarSetThumb),
    ("stripChartSample", cmd_stripChartSample),
    ("viewportSetCoordinates", cmd_viewportSetCoordinates),
    ("dialogGetValueString", cmd_dialogGetValueString),
    ("barGraph", cmd_barGraph),
    ("lineGraph", cmd_lineGraph),
    ("plotterSetData", cmd_plotterSetData),
    ("plotterBarHeights", cmd_plotterBarHeights),
]
