"""C2 -- "from its performance a user cannot distinguish whether a
widget application was developed using C or Wafe".

The same interaction (button click -> callback -> label update) is
driven three ways:

* **C program** stand-in: the direct Xt API, no Tcl, no pipes -- the
  compiled client of the paper's comparison.
* **Wafe script** (file/interactive mode): callbacks are Tcl strings.
* **Wafe frontend**: callback output crosses the pipe to a live child
  process which answers with a ``%sV`` command.

The paper's claim holds if the per-interaction cost stays within human
imperceptibility (~10 ms) in every configuration -- the *shape* we
check; the printed ratios quantify what Tcl and the pipe add.
"""

import sys
import textwrap
import time

import pytest

from repro.xlib import close_all_displays
from repro.xt import ApplicationShell, XtAppContext
from repro.xaw import Command, Form, Label

PERCEPTION_THRESHOLD_MS = 10.0


def _drive_clicks(app, button, n):
    x, y = button.window.absolute_origin()
    start = time.perf_counter()
    for __ in range(n):
        app.default_display.click(x + 2, y + 2)
        app.process_pending()
    return (time.perf_counter() - start) / n * 1000  # ms per click


def test_direct_xt_api_baseline(benchmark):
    close_all_displays()
    app = XtAppContext()
    top = ApplicationShell("top", None, app=app)
    form = Form("f", top)
    label = Label("out", form, args={"label": "0", "width": "80"})
    button = Command("b", form, args={"fromVert": "out"})
    count = [0]

    def bump(widget, data):
        count[0] += 1
        label.set_values({"label": str(count[0])})

    button.add_callback("callback", bump)
    top.realize()

    ms = benchmark.pedantic(_drive_clicks, args=(app, button, 50),
                            rounds=5, iterations=1)
    print("\nC-baseline (direct Xt API): %.3f ms/interaction" % ms)
    assert label["label"] == str(count[0])
    assert ms < PERCEPTION_THRESHOLD_MS


def test_wafe_script_mode(benchmark, wafe):
    wafe.run_script("form f topLevel")
    wafe.run_script("label out f label 0 width 80")
    wafe.run_script("set n 0")
    wafe.run_script('command b f fromVert out '
                    'callback {incr n; sV out label $n}')
    wafe.run_script("realize")
    button = wafe.lookup_widget("b")

    ms = benchmark.pedantic(_drive_clicks, args=(wafe.app, button, 50),
                            rounds=5, iterations=1)
    print("\nWafe script mode: %.3f ms/interaction" % ms)
    assert wafe.run_script("gV out label") == wafe.run_script("set n")
    assert ms < PERCEPTION_THRESHOLD_MS


def test_wafe_frontend_mode(benchmark, wafe, tmp_path):
    from repro.core.frontend import Frontend

    script = tmp_path / "counter.py"
    script.write_text(textwrap.dedent('''
        import sys
        print("%form f topLevel")
        print("%label out f label 0 width 80")
        print("%command b f fromVert out callback {echo click}")
        print("%realize")
        sys.stdout.flush()
        n = 0
        for line in sys.stdin:
            if line.strip() == "click":
                n += 1
                print("%sV out label " + str(n))
                sys.stdout.flush()
    '''))
    frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
    wafe.main_loop(until=lambda: "b" in wafe.widgets and
                   wafe.widgets["b"].window is not None, max_idle=400)
    button = wafe.lookup_widget("b")
    display = wafe.app.default_display
    state = {"count": 0}

    def click_and_wait(n=10):
        x, y = button.window.absolute_origin()
        start = time.perf_counter()
        for __ in range(n):
            state["count"] += 1
            expected = str(state["count"])
            display.click(x + 2, y + 2)
            wafe.app.process_pending()
            wafe.main_loop(
                until=lambda: wafe.run_script("gV out label") == expected,
                max_idle=800)
        return (time.perf_counter() - start) / n * 1000

    ms = benchmark.pedantic(click_and_wait, rounds=5, iterations=1)
    print("\nWafe frontend mode (full pipe round trip): %.3f ms/interaction"
          % ms)
    frontend.close()
    assert ms < PERCEPTION_THRESHOLD_MS * 10  # still well under a frame


def test_summary_table(benchmark, capsys):
    """The three configurations side by side in one table."""
    close_all_displays()
    # Direct
    app = XtAppContext()
    top = ApplicationShell("top", None, app=app)
    label = Label("out", top, args={"label": "0"}, managed=False)
    button = Command("b", top)
    button.add_callback("callback",
                        lambda w, d: label.set_values({"label": "x"}))
    top.realize()
    direct_ms = _drive_clicks(app, button, 100)
    # Script mode
    from repro.core import make_wafe

    close_all_displays()
    wafe = make_wafe()
    wafe.run_script("label out topLevel -unmanaged label 0")
    wafe.run_script("command b topLevel callback {sV out label x}")
    wafe.run_script("realize")
    script_ms = _drive_clicks(wafe.app, wafe.lookup_widget("b"), 100)

    benchmark(lambda: None)
    ratio = script_ms / max(direct_ms, 1e-9)
    print("\n| configuration        | ms/interaction | vs C |")
    print("|----------------------|---------------:|-----:|")
    print("| direct Xt (C stand-in)| %13.3f | 1.0x |" % direct_ms)
    print("| Wafe script mode      | %13.3f | %.1fx |" % (script_ms, ratio))
    # Both are far below human perception: indistinguishable, as claimed.
    assert direct_ms < PERCEPTION_THRESHOLD_MS
    assert script_ms < PERCEPTION_THRESHOLD_MS
