"""The unified event core: selectors backend vs the raw-select spec.

Wafe's interactivity rides on one loop: X events, backend pipe
traffic, timers and work procs all dispatch through the
:class:`~repro.xt.eventcore.EventCore`.  The paper's frontends watch a
handful of descriptors; a grown deployment (mass-transfer channels,
supervised backends, designer sessions) watches hundreds.  Raw
``select`` pays O(watched) per poll to build and scan fd sets -- and
hard-caps at FD_SETSIZE (1024) -- while the selectors backend
(epoll/kqueue) pays O(ready).  These benches quantify the gap at high
watch counts with sparse readiness (the GUI steady state: many
sources, few active) and write benchmarks/BENCH_event_core.json so CI
can upload the numbers and gate regressions against the committed
copy.

The A/B switch is ``EventCore(use_selectors=False)`` -- the retained
executable specification, same escape-hatch style as
``Interp(compile=False)`` and ``database.use_search_lists``.
"""

import json
import os
import resource
import socket
import time

import pytest

from repro.xt.eventcore import EventCore

COMMITTED_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_event_core.json")

# The head-to-head size: both backends must handle it, so it stays
# under select's FD_SETSIZE once stdio and the suite's own fds are
# counted (256 pairs = 512 watched fds).
AB_PAIRS = 256
# The scale the selectors backend is asked to prove: 1000 watched fds,
# beyond what raw select could even register.
BIG_PAIRS = 1000
HOT = 16          # sources active per round (sparse readiness)
ROUNDS = 200


def _raise_nofile_limit(need):
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < need:
        resource.setrlimit(resource.RLIMIT_NOFILE,
                           (min(need, hard), hard))
    soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
    return soft


def _make_pairs(n):
    pairs = []
    for __ in range(n):
        read_side, write_side = socket.socketpair()
        read_side.setblocking(False)
        pairs.append((read_side, write_side))
    return pairs


def _close_pairs(pairs):
    for read_side, write_side in pairs:
        read_side.close()
        write_side.close()


def _events_per_second(use_selectors, n_pairs, rounds=ROUNDS, hot=HOT):
    """Register ``n_pairs`` readers, then per round make ``hot`` of
    them ready (striding through the set so every fd takes turns) and
    poll until all are dispatched.  Returns dispatched events/sec."""
    core = EventCore(use_selectors=use_selectors)
    core.report = lambda message: None  # teardown leaks are deliberate
    pairs = _make_pairs(n_pairs)
    dispatched = []

    def drain(sock):
        sock.recv(16)
        dispatched.append(1)

    try:
        for read_side, __ in pairs:
            core.add_reader(read_side, drain)
        expected = 0
        start = time.perf_counter()
        for round_no in range(rounds):
            base = (round_no * hot) % n_pairs
            for k in range(hot):
                pairs[(base + k) % n_pairs][1].send(b"x")
            expected += hot
            while len(dispatched) < expected:
                core.poll(0.5)
        elapsed = time.perf_counter() - start
    finally:
        core.shutdown(drain_timeout=0)
        _close_pairs(pairs)
    assert len(dispatched) == rounds * hot
    return len(dispatched) / elapsed


_RESULTS = {}  # shared with the regression-gate test below


def test_selectors_beats_select_spec(event_core_record):
    """The tentpole gate: at 512 watched fds with sparse readiness the
    selectors backend must at least match the raw-select spec path
    (ratio >= 1x); in practice epoll's O(ready) wait beats select's
    O(watched) set scan by a wide margin."""
    _raise_nofile_limit(AB_PAIRS * 2 + 256)
    best_selectors = max(
        _events_per_second(True, AB_PAIRS) for __ in range(3))
    best_select = max(
        _events_per_second(False, AB_PAIRS) for __ in range(3))
    ratio = best_selectors / best_select
    _RESULTS["ab_ratio"] = ratio
    print("\n%d watched fds, %d hot per round, %d rounds:"
          % (AB_PAIRS * 2, HOT, ROUNDS))
    print("  selectors %10.0f ev/s   select %10.0f ev/s   %.2fx"
          % (best_selectors, best_select, ratio))
    event_core_record("ab_512_fds", {
        "watched_fds": AB_PAIRS * 2,
        "hot_per_round": HOT,
        "rounds": ROUNDS,
        "selectors_eps": round(best_selectors, 1),
        "select_eps": round(best_select, 1),
        "ratio": round(ratio, 3),
    })
    assert ratio >= 1.0


def test_selectors_at_1k_watched_fds(event_core_record):
    """The scale claim: 1000 watched fds is beyond FD_SETSIZE (the
    spec path's select.select raises on fd >= 1024), and the selectors
    backend's throughput there must stay within 2x of its own 512-fd
    figure -- per-poll cost is O(ready), not O(watched)."""
    soft = _raise_nofile_limit(BIG_PAIRS * 2 + 256)
    if soft < BIG_PAIRS * 2 + 64:
        pytest.skip("RLIMIT_NOFILE hard cap %d too low for %d fds"
                    % (soft, BIG_PAIRS * 2))
    eps_1k = max(_events_per_second(True, BIG_PAIRS) for __ in range(3))
    eps_512 = max(_events_per_second(True, AB_PAIRS) for __ in range(3))
    _RESULTS["eps_1k"] = eps_1k
    print("\nselectors backend, %d hot per round, %d rounds:"
          % (HOT, ROUNDS))
    print("  %5d watched fds %10.0f ev/s" % (AB_PAIRS * 2, eps_512))
    print("  %5d watched fds %10.0f ev/s  (%.2fx of 512-fd rate)"
          % (BIG_PAIRS * 2, eps_1k, eps_1k / eps_512))
    event_core_record("selectors_2k_fds", {
        "watched_fds": BIG_PAIRS * 2,
        "hot_per_round": HOT,
        "rounds": ROUNDS,
        "events_per_sec": round(eps_1k, 1),
        "ratio_vs_512_fds": round(eps_1k / eps_512, 3),
    })
    assert eps_1k >= eps_512 / 2.0


def test_select_spec_blind_beyond_fd_setsize():
    """Document the cliff the migration removes: raw ``select`` rejects
    any fd >= FD_SETSIZE outright, so the spec path -- whose hardening
    turns that rejection into an empty poll -- is permanently blind to
    such a descriptor, while the selectors backend dispatches it."""
    import select as select_module
    soft = _raise_nofile_limit(2048 + 256)
    if soft < 1100:
        pytest.skip("cannot allocate an fd >= 1024 under this rlimit")
    pairs = _make_pairs(BIG_PAIRS)
    try:
        high = [p for p in pairs if p[0].fileno() >= 1024]
        if not high:
            pytest.skip("no fd >= 1024 was allocated")
        high_fd = high[0][0].fileno()
        with pytest.raises(ValueError):
            select_module.select([high_fd], [], [], 0)
        spec = EventCore(use_selectors=False)
        spec.report = lambda message: None
        spec_hits = []
        spec.add_reader(high[0][0], lambda s: spec_hits.append(1))
        high[0][1].send(b"x")
        for __ in range(5):
            spec.poll(0.01)
        assert spec_hits == []  # ready data, but the spec cannot see it
        spec.shutdown(drain_timeout=0)
        # The selectors backend dispatches the very same descriptor.
        good = EventCore(use_selectors=True)
        good.report = lambda message: None
        hits = []
        good.add_reader(high[0][0], lambda s: (s.recv(16),
                                               hits.append(1)))
        deadline = time.monotonic() + 5.0
        while not hits and time.monotonic() < deadline:
            good.poll(0.1)
        assert hits
        good.shutdown(drain_timeout=0)
    finally:
        _close_pairs(pairs)


def test_no_regression_vs_committed_baseline():
    """CI gate: throughput must not collapse relative to the committed
    BENCH_event_core.json (shared-runner noise allowed for, a real
    regression not)."""
    assert "ab_ratio" in _RESULTS and "eps_1k" in _RESULTS, \
        "the throughput benches must run first"
    if not os.path.exists(COMMITTED_BASELINE):
        print("\nno committed BENCH_event_core.json yet; "
              "absolute gates only")
        return
    with open(COMMITTED_BASELINE) as handle:
        baseline = json.load(handle)
    committed = baseline["workloads"]["selectors_2k_fds"]["events_per_sec"]
    floor = committed * 0.2
    print("\ncommitted 2k-fd throughput %.0f ev/s -> floor %.0f ev/s, "
          "measured %.0f ev/s" % (committed, floor, _RESULTS["eps_1k"]))
    assert _RESULTS["eps_1k"] >= floor
