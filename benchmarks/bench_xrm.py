"""The quark-interned Xrm machinery: search lists vs the naive matcher.

Wafe front-loads its interactivity on resource lookup: every widget
creation queries the database once per class resource, and the paper's
app-defaults files grow with the interface.  The naive matcher scores
every entry per lookup, so creation cost is O(entries x resources);
the quark tree computes one search list per widget and walks it per
resource.  These benches quantify the gap (and the event-dispatch
index that rides along) and write benchmarks/BENCH_xrm.json so CI can
upload the numbers and gate regressions against the committed copy.

The A/B switch is ``database.use_search_lists`` -- the same escape
hatch style as ``Interp(compile=False)`` in bench_tcl_cost.py.
"""

import json
import os
import time

from repro.core import make_wafe
from repro.xlib import close_all_displays, xtypes
from repro.xlib.events import XEvent
from repro.xt.translations import parse_translation_table

COMMITTED_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_xrm.json")

# Values that convert cleanly for every attribute they are assigned to
# (borderWidth-style Int resources are deliberately absent: a database
# entry that matches a widget must survive conversion).
_ATTR_VALUES = (
    ("background", "gray75"),
    ("foreground", "black"),
    ("font", "font%d"),
    ("label", "Label %d"),
    ("justify", "left"),
    ("title", "T%d"),
)

_CLASSES = ("Command", "Label", "Form", "Text", "Scrollbar", "List")


def app_defaults(n):
    """An n-entry app-defaults text mixing tight, loose and wildcard
    specifier shapes, like a grown real-world resource file."""
    lines = []
    for i in range(n):
        attr, value = _ATTR_VALUES[i % len(_ATTR_VALUES)]
        if "%d" in value:
            value = value % i
        shape = i % 3
        if shape == 0:
            spec = "*%s.%s" % (_CLASSES[i % len(_CLASSES)], attr)
        elif shape == 1:
            spec = "wafe*w%d.%s" % (i, attr)
        else:
            spec = "*w%d.%s" % (i, attr)
        lines.append("%s: %s" % (spec, value))
    return "\n".join(lines)


def _tree_script(buttons=12, labels=8):
    """A 21-widget interface (form + buttons + labels)."""
    lines = ["form f topLevel"]
    for i in range(buttons):
        lines.append("command b%d f label {Button %d}" % (i, i))
    for i in range(labels):
        lines.append("label l%d f label {L%d} borderWidth 0" % (i, i))
    return "\n".join(lines)


def _fresh_wafe(entries, use_search_lists):
    close_all_displays()
    wafe = make_wafe()
    wafe.app.database.use_search_lists = use_search_lists
    if entries:
        wafe.app.merge_resources(app_defaults(entries))
    return wafe


def _best_of(repeats, func):
    best = None
    for __ in range(repeats):
        elapsed = func()
        if best is None or elapsed < best:
            best = elapsed
    return best


_RESULTS = {}  # shared with the regression-gate test below


def test_widget_tree_creation_speedup(xrm_record):
    """The tentpole claim: creating a widget tree against a grown
    resource database is >= 3x faster through quark search lists than
    through the naive per-lookup matcher (gated at 1000 entries)."""
    script = _tree_script()
    print("\nwidget-tree creation (21 widgets) vs database size:")
    for entries in (10, 100, 1000):

        def creation(use_search_lists):
            def run():
                wafe = _fresh_wafe(entries, use_search_lists)
                start = time.perf_counter()
                wafe.run_script(script)
                return time.perf_counter() - start

            return _best_of(3, run)

        quark_s = creation(True)
        naive_s = creation(False)
        speedup = naive_s / quark_s
        _RESULTS["creation_%d" % entries] = speedup
        print("  %5d entries  quark %8.2f ms   naive %8.2f ms   %.1fx"
              % (entries, quark_s * 1000, naive_s * 1000, speedup))
        xrm_record("creation_%d" % entries, {
            "entries": entries,
            "widgets": 21,
            "quark_ms": round(quark_s * 1000, 3),
            "naive_ms": round(naive_s * 1000, 3),
            "speedup": round(speedup, 3),
        })
    # The ISSUE's hard gate: >= 3x on the 1000-entry workload.
    assert _RESULTS["creation_1000"] >= 3.0


def test_repeated_set_values_and_queries(xrm_record):
    """Steady-state interactivity: repeated setValues on a realized
    tree plus the per-widget re-queries a callback storm causes.  The
    search list is cached on the widget, so re-queries cost a walk of
    a handful of nodes instead of a 1000-entry scan."""
    entries = 1000
    rounds = 200

    def workload(use_search_lists):
        wafe = _fresh_wafe(entries, use_search_lists)
        wafe.run_script(_tree_script())
        wafe.run_script("realize")
        widget = wafe.lookup_widget("b0")
        start = time.perf_counter()
        for i in range(rounds):
            wafe.run_script("sV b0 label {round %d}" % i)
            wafe.app.query_resource(widget, "background", "Background")
        return time.perf_counter() - start

    quark_s = workload(True)
    naive_s = workload(False)
    speedup = naive_s / quark_s
    print("\n%d setValues+query rounds against %d entries:" % (rounds, entries))
    print("  quark %8.2f ms   naive %8.2f ms   %.1fx"
          % (quark_s * 1000, naive_s * 1000, speedup))
    xrm_record("set_values_query_1000", {
        "entries": entries,
        "rounds": rounds,
        "quark_ms": round(quark_s * 1000, 3),
        "naive_ms": round(naive_s * 1000, 3),
        "speedup": round(speedup, 3),
    })
    assert speedup >= 1.0  # must never be slower at steady state


def test_merge_then_create(xrm_record):
    """The dynamic pattern mergeResources enables: merge entries after
    widgets exist, then create more widgets.  Every merge bumps the
    generation and invalidates memoised search lists, so this measures
    the worst case for the cache -- and it still wins."""
    entries = 500
    batches = 10

    def workload(use_search_lists):
        wafe = _fresh_wafe(entries, use_search_lists)
        wafe.run_script("form f topLevel")
        start = time.perf_counter()
        for batch in range(batches):
            wafe.app.merge_resources(
                "*m%d.background: gray75" % batch)
            wafe.run_script("command m%d f label {M %d}" % (batch, batch))
        return time.perf_counter() - start

    quark_s = workload(True)
    naive_s = workload(False)
    speedup = naive_s / quark_s
    print("\n%d merge-then-create batches against %d entries:"
          % (batches, entries))
    print("  quark %8.2f ms   naive %8.2f ms   %.1fx"
          % (quark_s * 1000, naive_s * 1000, speedup))
    xrm_record("merge_then_create_500", {
        "entries": entries,
        "batches": batches,
        "quark_ms": round(quark_s * 1000, 3),
        "naive_ms": round(naive_s * 1000, 3),
        "speedup": round(speedup, 3),
    })
    assert speedup >= 1.0


def test_translation_dispatch_index(xrm_record):
    """The satellite: TranslationTable.lookup is indexed by event type,
    so dispatching against a table with many bindings touches only the
    productions that could start on this event."""
    lines = ["<Key>%s: exec(echo %s)" % (letter, letter)
             for letter in "abcdefghijklmnopqrstuvwxyz"]
    lines += ["<Btn%dDown>: press(%d)" % (b, b) for b in (1, 2, 3)]
    lines += ["<Btn%dUp>: release(%d)" % (b, b) for b in (1, 2, 3)]
    lines += ["<EnterWindow>: highlight()", "<LeaveWindow>: reset()",
              "<Expose>: redraw()", "<Motion>: track()"]
    table = parse_translation_table("\n".join(lines))
    event = XEvent(xtypes.ButtonPress, None, button=2)
    rounds = 20000

    def linear_lookup(ev):
        # The pre-index dispatch loop, inlined as the baseline.
        for production in table.productions:
            if production.matches(ev):
                return production.actions
        return None

    assert table.lookup(event) == linear_lookup(event)

    table.lookup(event)  # build the index outside the timed region
    start = time.perf_counter()
    for __ in range(rounds):
        table.lookup(event)
    indexed_s = time.perf_counter() - start
    start = time.perf_counter()
    for __ in range(rounds):
        linear_lookup(event)
    linear_s = time.perf_counter() - start
    speedup = linear_s / indexed_s
    print("\n%d dispatches against a %d-production table:"
          % (rounds, len(table)))
    print("  indexed %8.2f ms   linear %8.2f ms   %.1fx"
          % (indexed_s * 1000, linear_s * 1000, speedup))
    xrm_record("translation_dispatch", {
        "productions": len(table),
        "rounds": rounds,
        "indexed_ms": round(indexed_s * 1000, 3),
        "linear_ms": round(linear_s * 1000, 3),
        "speedup": round(speedup, 3),
    })
    assert speedup >= 1.0


def test_no_regression_vs_committed_baseline():
    """CI gate: the creation speedup must not collapse relative to the
    committed BENCH_xrm.json (a large drop means the search-list path
    regressed even if it still clears the absolute 3x bar)."""
    assert "creation_1000" in _RESULTS, \
        "test_widget_tree_creation_speedup must run first"
    if not os.path.exists(COMMITTED_BASELINE):
        print("\nno committed BENCH_xrm.json yet; absolute gate only")
        return
    with open(COMMITTED_BASELINE) as handle:
        baseline = json.load(handle)
    committed = baseline["workloads"]["creation_1000"]["speedup"]
    floor = max(3.0, committed * 0.25)
    print("\ncommitted creation_1000 speedup %.1fx -> floor %.1fx, "
          "measured %.1fx" % (committed, floor, _RESULTS["creation_1000"]))
    assert _RESULTS["creation_1000"] >= floor
