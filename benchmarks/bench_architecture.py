"""F1 -- Figure 1: the layering architecture.

Wafe sits on Tcl + Xt Intrinsics + Athena widgets (vs Tk's own
intrinsics/widgets).  This bench verifies the reproduction keeps that
layering -- the frontend commands reach the display only through the
Xt layer, widgets only through Xt and Xlib -- and measures what each
layer adds to the cost of the paper's canonical operation (creating a
widget).
"""

import ast
import os

import repro


def _imports_of(package_dir):
    found = set()
    for root, __, files in os.walk(package_dir):
        for name in files:
            if not name.endswith(".py"):
                continue
            with open(os.path.join(root, name)) as handle:
                tree = ast.parse(handle.read())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    found.add(node.module)
                elif isinstance(node, ast.Import):
                    found.update(alias.name for alias in node.names)
    return found


def test_layering_matches_figure_1(benchmark):
    base = os.path.dirname(repro.__file__)

    layers = benchmark(lambda: {
        layer: _imports_of(os.path.join(base, layer))
        for layer in ("tcl", "xlib", "xt", "xaw", "motif", "core")
    })

    def uses(layer, prefix):
        return any(m.startswith("repro." + prefix) for m in layers[layer])

    # Tcl is the bottom: it uses nothing above itself.
    for upper in ("xlib", "xt", "xaw", "motif", "core"):
        assert not uses("tcl", upper), "tcl must not depend on " + upper
    # Xlib only sits on tcl (error types).
    for upper in ("xt", "xaw", "motif", "core"):
        assert not uses("xlib", upper)
    # Xt sits on xlib/tcl, never on widgets or the frontend.
    for upper in ("xaw", "motif", "core"):
        assert not uses("xt", upper)
    # Widget sets sit on xt/xlib, not on the frontend and not on
    # each other (Athena and Motif cannot be mixed).
    assert not uses("xaw", "core") and not uses("xaw", "motif")
    assert not uses("motif", "core") and not uses("motif", "xaw")
    print("\nlayering verified: tcl < xlib < xt < {xaw | motif} < core")


def test_cost_per_layer(benchmark, wafe):
    """Widget creation cost at each layer of Figure 1."""
    import time

    from repro.xt import ApplicationShell, XtAppContext
    from repro.xlib import close_all_displays, open_display
    from repro.xaw import Label

    serial = [0]

    def measure(func, n=200):
        start = time.perf_counter()
        for __ in range(n):
            serial[0] += 1
            func(serial[0])
        return (time.perf_counter() - start) / n * 1e6

    def run_all():
        close_all_displays()
        display = open_display(":9")
        xlib_us = measure(lambda i: display.create_window(None, 0, 0, 10, 10))
        app = XtAppContext(display_name=":9")
        top = ApplicationShell("top%d" % serial[0], None, app=app)
        xt_us = measure(lambda i: Label("xl%d" % i, top,
                                        args={"label": "x"}, managed=False))
        wafe_us = measure(
            lambda i: wafe.run_script("label wl%d topLevel -unmanaged" % i))
        return xlib_us, xt_us, wafe_us

    xlib_us, xt_us, wafe_us = benchmark.pedantic(run_all, rounds=3,
                                                 iterations=1)
    print("\nper-widget creation cost by layer:")
    print("  Xlib window only : %8.1f us" % xlib_us)
    print("  Xt widget (API)  : %8.1f us" % xt_us)
    print("  Wafe command     : %8.1f us" % wafe_us)
    assert xlib_us < xt_us < wafe_us * 5  # layering costs accumulate
