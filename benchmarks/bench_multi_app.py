"""C7 -- "a single Wafe binary serves multiple applications".

One frontend build (one command table, one process image) runs
backends written in different languages and with different GUIs, one
after the other -- the deployment story behind the xwafe* demo family.
"""

import sys
import textwrap

from repro.core.frontend import Frontend

PY_BACKEND = '''
    import sys
    print("%label who topLevel label {python app}")
    print("%realize")
    print("%set lang python")
    sys.stdout.flush()
'''

SH_BACKEND = '''\
echo '%label who topLevel label {shell app}'
echo '%realize'
echo '%set lang sh'
'''


def test_one_frontend_many_backends(benchmark, wafe, tmp_path):
    py_script = tmp_path / "app.py"
    py_script.write_text(textwrap.dedent(PY_BACKEND))
    sh_script = tmp_path / "app.sh"
    sh_script.write_text(SH_BACKEND)

    def serve_both():
        served = []
        for command in ([sys.executable, "-u", str(py_script)],
                        ["/bin/sh", str(sh_script)]):
            for name in list(wafe.widgets):
                if name != "topLevel":
                    wafe.run_command_line("destroyWidget %s" % name)
            wafe.run_command_line("set lang {}")
            frontend = Frontend(wafe, command)
            wafe.main_loop(
                until=lambda: wafe.run_script("set lang") != "",
                max_idle=600)
            served.append((wafe.run_script("set lang"),
                           wafe.run_script("gV who label")))
            frontend.close()
        return served

    served = benchmark.pedantic(serve_both, rounds=3, iterations=1)
    print("\none Wafe instance served:")
    for lang, label in served:
        print("  %-7s backend -> GUI label %r" % (lang, label))
    assert served == [("python", "python app"), ("sh", "shell app")]


def test_same_command_table_across_backends(benchmark, wafe):
    """The command table is the binary's configuration: identical for
    every application it serves."""

    def snapshot():
        return frozenset(wafe.interp.commands)

    before = snapshot()
    result = benchmark(snapshot)
    assert result == before
    assert {"label", "command", "sV", "gV", "echo", "realize"} <= set(before)
