"""C7 -- "a single Wafe binary serves multiple applications".

One frontend build (one command table, one process image) serves many
applications two ways, and this module measures both:

* serially -- backends written in different languages run one after
  the other through the same Wafe instance (the original xwafe* demo
  deployment story);
* concurrently -- the multi-session server (docs/SERVER.md) holds
  100+ simultaneous client sessions on one shared event core, keeps
  command round-trips bounded while a hostile neighbor trips its eval
  budget until it is reaped, and drains to zero leaked watches.

The concurrent workload writes BENCH_server.json (via the
``server_record`` fixture) and gates against the committed artifact
with generous slack, so a scheduling regression that wedges neighbor
sessions behind a bomb shows up in CI, not in production.
"""

import json
import os
import socket
import sys
import textwrap
import time

from repro.core.frontend import Frontend
from repro.server import WafeServer
from repro.xlib import close_all_displays

PY_BACKEND = '''
    import sys
    print("%label who topLevel label {python app}")
    print("%realize")
    print("%set lang python")
    sys.stdout.flush()
'''

SH_BACKEND = '''\
echo '%label who topLevel label {shell app}'
echo '%realize'
echo '%set lang sh'
'''


def test_one_frontend_many_backends(benchmark, wafe, tmp_path):
    py_script = tmp_path / "app.py"
    py_script.write_text(textwrap.dedent(PY_BACKEND))
    sh_script = tmp_path / "app.sh"
    sh_script.write_text(SH_BACKEND)

    def serve_both():
        served = []
        for command in ([sys.executable, "-u", str(py_script)],
                        ["/bin/sh", str(sh_script)]):
            for name in list(wafe.widgets):
                if name != "topLevel":
                    wafe.run_command_line("destroyWidget %s" % name)
            wafe.run_command_line("set lang {}")
            frontend = Frontend(wafe, command)
            wafe.main_loop(
                until=lambda: wafe.run_script("set lang") != "",
                max_idle=600)
            served.append((wafe.run_script("set lang"),
                           wafe.run_script("gV who label")))
            frontend.close()
        return served

    served = benchmark.pedantic(serve_both, rounds=3, iterations=1)
    print("\none Wafe instance served:")
    for lang, label in served:
        print("  %-7s backend -> GUI label %r" % (lang, label))
    assert served == [("python", "python app"), ("sh", "shell app")]


# ----------------------------------------------------------------------
# The concurrent half: the multi-session server at scale.

BENCH_SERVER_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_server.json")

#: Well-behaved sessions; the scale gate the ISSUE pins is >= 100
#: concurrent, so run a margin above it (plus one hostile neighbor).
NEIGHBORS = 120
ROUNDS = 6
#: The hostile session's per-eval time budget and its reap threshold:
#: each ``while 1 {}`` bomb costs at most EVAL_BUDGET_MS of shared
#: loop time before the interpreter trips it, and after HOSTILE_TRIPS
#: total trips the session is reaped.
EVAL_BUDGET_MS = 25
HOSTILE_TRIPS = 4


def _drain(client):
    out = b""
    while True:
        try:
            data = client.recv(65536)
        except BlockingIOError:
            return out
        except OSError:
            return out
        if not data:
            return out
        out += data


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * q))]


def test_hundred_concurrent_sessions(server_record):
    """>= 100 concurrent sessions on one core; a hostile neighbor trips
    its eval budget every round until reaped; every other session's
    echo round-trips stay bounded; shutdown drains with zero leaks."""
    close_all_displays()
    server = WafeServer(compile=True)
    addr = server.listen_tcp("127.0.0.1", 0)

    setup_start = time.perf_counter()
    clients = []
    for __ in range(NEIGHBORS + 1):
        client = socket.create_connection(addr)
        client.setblocking(False)
        clients.append(client)
        # Pump as we go so the accept backlog never overflows.
        server.run_once(timeout=0.001)
    deadline = time.monotonic() + 30.0
    while len(server.sessions) < NEIGHBORS + 1:
        assert time.monotonic() < deadline, (
            "only %d/%d sessions accepted" % (len(server.sessions),
                                              NEIGHBORS + 1))
        server.run_once(timeout=0.002)
    # Collect every greeting so round-trip reads see only echo output.
    greeted = [b""] * len(clients)
    while not all(b"\n" in g for g in greeted):
        assert time.monotonic() < deadline, "greetings incomplete"
        server.run_once(timeout=0.002)
        for i, client in enumerate(clients):
            if b"\n" not in greeted[i]:
                greeted[i] += _drain(client)
    setup_s = time.perf_counter() - setup_start
    peak_sessions = len(server.sessions)
    assert peak_sessions >= 100

    hostile, neighbors = clients[0], clients[1:]
    hostile.sendall(b"%sessionQuota evalTimeLimit " +
                    str(EVAL_BUDGET_MS).encode() + b"\n" +
                    b"%sessionQuota maxTrips " +
                    str(HOSTILE_TRIPS).encode() + b"\n")
    for __ in range(20):
        server.run_once(timeout=0.001)

    rtts = []
    commands = 0
    measure_start = time.perf_counter()
    for rnd in range(ROUNDS):
        try:
            hostile.sendall(b"%while 1 {}\n")
        except OSError:
            pass  # already reaped: the neighbors keep being measured
        token = ("rt%d" % rnd).encode()
        for client in neighbors:
            client.sendall(("%%echo rt%d\n" % rnd).encode())
        round_start = time.perf_counter()
        pending = dict.fromkeys(range(len(neighbors)), b"")
        round_deadline = time.monotonic() + 20.0
        while pending:
            assert time.monotonic() < round_deadline, (
                "round %d: %d sessions never answered"
                % (rnd, len(pending)))
            server.run_once(timeout=0.001)
            now = time.perf_counter()
            for idx in list(pending):
                pending[idx] += _drain(neighbors[idx])
                if token in pending[idx]:
                    rtts.append(now - round_start)
                    del pending[idx]
        commands += len(neighbors)
    elapsed_s = time.perf_counter() - measure_start

    # The hostile session tripped its budget each round and was reaped
    # after HOSTILE_TRIPS trips -- while every neighbor kept answering.
    assert server.quota_trips["time"] >= HOSTILE_TRIPS
    assert server.supervisor.ended.get("quota", 0) == 1
    assert len(server.sessions) == NEIGHBORS

    stats = server.serverstats()
    leaked = server.shutdown()
    for client in clients:
        client.close()
    assert leaked == 0

    throughput = commands / max(elapsed_s, 1e-9)
    p50_ms = _percentile(rtts, 0.50) * 1000.0
    p99_ms = _percentile(rtts, 0.99) * 1000.0
    payload = {
        "sessions_peak": peak_sessions,
        "rounds": ROUNDS,
        "commands": commands,
        "setup_s": round(setup_s, 4),
        "elapsed_s": round(elapsed_s, 4),
        "throughput_cps": round(throughput, 1),
        "rtt_p50_ms": round(p50_ms, 3),
        "rtt_p99_ms": round(p99_ms, 3),
        "dispatch_p50_ms": stats["dispatchP50Ms"],
        "dispatch_p99_ms": stats["dispatchP99Ms"],
        "hostile_time_trips": server.quota_trips["time"],
        "hostile_reaped": server.supervisor.ended.get("quota", 0),
        "leaked_watches": leaked,
    }
    server_record("concurrent_sessions", payload)
    print("\nmulti-session server: %d concurrent sessions, "
          "%.0f commands/s, round-trip p50 %.1fms p99 %.1fms "
          "(hostile neighbor tripped %d budgets, reaped, 0 leaks)"
          % (peak_sessions, throughput, p50_ms, p99_ms,
             payload["hostile_time_trips"]))

    # Gate against the committed artifact with generous slack (CI
    # machines are noisy; a real scheduling regression is not 5x).
    committed = None
    if os.path.exists(BENCH_SERVER_PATH):
        with open(BENCH_SERVER_PATH) as handle:
            committed = json.load(handle)["workloads"].get(
                "concurrent_sessions")
    if committed:
        assert p99_ms <= max(committed["rtt_p99_ms"] * 5.0, 250.0), (
            "round-trip p99 regressed: %.1fms vs committed %.1fms"
            % (p99_ms, committed["rtt_p99_ms"]))
        assert throughput >= committed["throughput_cps"] / 5.0, (
            "throughput regressed: %.0f/s vs committed %.0f/s"
            % (throughput, committed["throughput_cps"]))


def test_same_command_table_across_backends(benchmark, wafe):
    """The command table is the binary's configuration: identical for
    every application it serves."""

    def snapshot():
        return frozenset(wafe.interp.commands)

    before = snapshot()
    result = benchmark(snapshot)
    assert result == before
    assert {"label", "command", "sV", "gV", "echo", "realize"} <= set(before)
