"""F3 -- Figure 3: Motif compound strings.

Runs the paper's mofe script (fontList with ft/bft tags, a label
switching fonts mid-string and ending right-to-left), asserts the
segmentation and the rendered differences, and times parse + render.
"""

from repro.motif import parse_font_list, parse_xmstring
from repro.xlib.graphics import window_pixels

PAPER_FONTLIST = "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft"
PAPER_LABEL = r"I'm\bft bold\ft and\rl strange"


def test_figure3_script(benchmark, mofe):
    def build():
        if "l" in mofe.widgets:
            mofe.run_script("destroyWidget l")
        mofe.run_script(
            "mLabel l topLevel "
            'fontList "%s" '
            "labelString {%s}" % (PAPER_FONTLIST, PAPER_LABEL))
        mofe.run_script("realize")
        mofe.lookup_widget("l").redraw()
        return mofe.lookup_widget("l").compound_string()

    xmstring = benchmark(build)
    print("\nsegments:", [(s.tag, s.direction, s.text)
                          for s in xmstring.segments])
    assert [s.tag for s in xmstring.segments] == ["ft", "bft", "ft", "ft"]
    assert xmstring.segments[3].direction == "rl"
    assert xmstring.plain_text() == "I'm bold and strange"


def test_parse_throughput(benchmark):
    font_list = parse_font_list(PAPER_FONTLIST)

    def parse_many():
        for __ in range(100):
            parse_xmstring(PAPER_LABEL, font_list)
        return parse_xmstring(PAPER_LABEL, font_list)

    xmstring = benchmark(parse_many)
    assert len(xmstring.segments) == 4


def test_bold_and_direction_change_rendering(benchmark, mofe):
    """Font tags and direction visibly change the painted pixels."""
    mofe.run_script('mLabel a topLevel fontList "%s" '
                    "labelString {same text} width 200 height 30"
                    % PAPER_FONTLIST)
    mofe.run_script("realize")
    label = mofe.lookup_widget("a")

    def render(label_string):
        mofe.run_script("sV a labelString {%s}" % label_string)
        label.redraw()
        return window_pixels(label.window).copy()

    plain = render("same text")
    bold = render(r"\bftsame text")
    rtl = render(r"\rlsame text")
    benchmark(render, "same text")
    assert (plain != bold).any()
    assert (plain != rtl).any()
    print("\nplain/bold/rtl renderings all differ, as in Figure 3")
