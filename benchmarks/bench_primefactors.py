"""F5 -- Figure 5 and the Perl program: the three-phase frontend app.

Runs the prime-factor demo end to end against a live backend process:
phase 1 spawn, phase 2 the backend builds the widget tree over the
pipe, phase 3 the read loop -- user types a number, the action echoes
it to the backend, the backend factors it and updates the labels.
"""

import os
import sys

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def test_prime_factor_session(benchmark, wafe):
    from repro.core.frontend import Frontend

    backend = os.path.abspath(os.path.join(EXAMPLES, "primefactors.py"))
    frontend = Frontend(wafe, [sys.executable, "-u", backend, "--backend"])

    wafe.main_loop(until=lambda: "info" in wafe.widgets and
                   wafe.widgets["info"].window is not None, max_idle=400)
    display = wafe.app.default_display
    text = wafe.lookup_widget("input")
    numbers = iter([60, 97, 1001, 362880, 65536, 999, 123456] * 50)

    def factor_one():
        number = next(numbers)
        wafe.run_script("sV result label {}; sV input string {}")
        wafe.lookup_widget("input").set_insertion_point(0)
        display.type_string(text.window, str(number))
        display.type_string(text.window, "\r")
        wafe.app.process_pending()
        wafe.main_loop(until=lambda: wafe.run_script("gV result label") != "",
                       max_idle=800)
        result = wafe.run_script("gV result label")
        product = 1
        for factor in result.split("*"):
            product *= int(factor)
        assert product == number, (result, number)
        return result

    result = benchmark.pedantic(factor_one, rounds=10, iterations=1)
    print("\nlast factorization: %s" % result)
    frontend.close()


def test_three_phases_observable(benchmark, wafe, tmp_path):
    """Phase boundaries: spawn -> tree built -> read loop serving."""
    import textwrap
    import time

    from repro.core.frontend import Frontend

    script = tmp_path / "phases.py"
    script.write_text(textwrap.dedent('''
        import sys
        print("%label l topLevel label phase2")
        print("%realize")
        sys.stdout.flush()
        for line in sys.stdin:
            print("%sV l label {phase3 " + line.strip() + "}")
            sys.stdout.flush()
    '''))

    def run_phases():
        for name in list(wafe.widgets):
            if name != "topLevel":
                wafe.run_command_line("destroyWidget %s" % name)
        frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
        t0 = time.perf_counter()
        wafe.main_loop(until=lambda: "l" in wafe.widgets and
                       wafe.widgets["l"].realized, max_idle=400)
        t1 = time.perf_counter()
        frontend.send("serving\n")
        wafe.main_loop(
            until=lambda: wafe.run_script("gV l label") == "phase3 serving",
            max_idle=400)
        t2 = time.perf_counter()
        frontend.close()
        return (t1 - t0) * 1000, (t2 - t1) * 1000

    build_ms, serve_ms = benchmark.pedantic(run_phases, rounds=3,
                                            iterations=1)
    print("\nphase 2 (tree built over pipe): %.1f ms" % build_ms)
    print("phase 3 (first read-loop interaction): %.1f ms" % serve_ms)
