"""Rapid-prototyping claim: "Wafe can be used as a rapid prototyping
tool ... the user interface can be developed mostly independent from
the application program".

What makes prototyping *rapid* is turnaround: frontend construction
time, script-to-pixels time for a complete UI, and the cost of
swapping a widget set (the codegen "relink").
"""

from repro.xlib import close_all_displays
from repro.core import make_wafe

PROTOTYPE = (
    "form f topLevel\n"
    "label title f label {Prototype} borderWidth 0\n"
    "asciiText input f editType edit width 200 fromVert title\n"
    "list choices f list {alpha beta gamma delta} fromVert input\n"
    "command ok f fromVert choices label OK callback {echo ok}\n"
    "command cancel f fromVert choices fromHoriz ok label Cancel\n"
    "scrollbar s f fromHoriz cancel\n"
    "realize\n"
)


def test_frontend_construction_time(benchmark):
    def construct():
        close_all_displays()
        return make_wafe()

    wafe = benchmark(construct)
    assert "label" in wafe.interp.commands
    mean_ms = benchmark.stats["mean"] * 1000
    print("\nfrontend construction: %.1f ms" % mean_ms)


def test_script_to_pixels_time(benchmark):
    """A complete 7-widget UI from source to realized windows."""

    def build():
        close_all_displays()
        wafe = make_wafe()
        # Profile the Xrm machinery so resource lookup gets its own
        # column (how much of script-to-pixels is database queries).
        wafe.app.database.profile = True
        wafe.run_script(PROTOTYPE)
        return wafe

    wafe = benchmark(build)
    assert wafe.lookup_widget("ok").window.viewable()
    mean_ms = benchmark.stats["mean"] * 1000
    lookup_ms = wafe.app.database.profile_s * 1000
    lookups = wafe.app.database.profile_lookups
    print("\nscript-to-pixels for a 7-widget UI: %.1f ms" % mean_ms)
    print("  of which resource lookup: %.2f ms (%d lookups)"
          % (lookup_ms, lookups))
    assert mean_ms < 1000  # interactive-speed prototyping


def test_widget_set_swap_time(benchmark):
    """Swapping to the Motif build = regenerating its command table."""

    def swap():
        close_all_displays()
        athena = make_wafe()
        motif = make_wafe(build="motif")
        return athena, motif

    athena, motif = benchmark(swap)
    assert "label" in athena.interp.commands
    assert "mLabel" in motif.interp.commands
    assert "mLabel" not in athena.interp.commands
