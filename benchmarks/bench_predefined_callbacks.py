"""T1 -- the "Predefined Callbacks" table.

Regenerates every row: none / exclusive / nonexclusive (realize shell +
grab kind), popdown (unrealize shell), position, positionCursor; checks
the documented grab semantics and times a popup/popdown cycle through
the predefined-callback machinery.
"""

import pytest

from repro.xt.shell import TransientShell
from benchmarks.conftest import click

ROWS = [
    ("none", "realize shell, grab none"),
    ("exclusive", "realize shell, grab exclusive"),
    ("nonexclusive", "realize shell, grab nonexclusive"),
    ("popdown", "unrealize shell"),
    ("position", "position shell"),
    ("positionCursor", "position shell under pointer"),
]


def make_popup(wafe):
    shell = TransientShell("popup", wafe.top_level,
                           args={"x": "300", "y": "300"})
    wafe.widgets["popup"] = shell
    wafe.run_script("label inside popup label {content}")
    return shell


@pytest.mark.parametrize("name,description", ROWS)
def test_predefined_callback_row(benchmark, wafe, name, description):
    shell = make_popup(wafe)
    wafe.run_script("form f topLevel")
    wafe.run_script("command b f")
    if name in ("none", "exclusive", "nonexclusive"):
        wafe.run_script("callback b callback %s popup" % name)
    elif name == "popdown":
        wafe.run_script("callback b callback none popup")
        wafe.run_script("command down f fromVert b")
        wafe.run_script("callback down callback popdown popup")
    elif name == "position":
        wafe.run_script("callback b callback none popup")
        wafe.run_script("callback b callback position popup 111 99")
    else:  # positionCursor
        wafe.run_script("callback b callback none popup")
        wafe.run_script("callback b callback positionCursor popup")
    wafe.run_script("realize")
    display = wafe.app.default_display

    def drive():
        click(wafe, "b")
        if name == "popdown":
            click(wafe, "down")
        if shell.popped_up:
            shell.popdown()
            display.ungrab_pointer()

    benchmark(drive)

    # Semantic checks per row (re-fire once and inspect).
    click(wafe, "b")
    if name == "none":
        assert shell.popped_up and display.grab_window is None
    elif name == "exclusive":
        assert shell.popped_up and display.grab_window is shell.window
        assert display.grab_owner_events is False
    elif name == "nonexclusive":
        assert shell.popped_up and display.grab_owner_events is True
    elif name == "popdown":
        assert shell.popped_up
        click(wafe, "down")
        assert not shell.popped_up
    elif name == "position":
        assert (shell.resources["x"], shell.resources["y"]) == (111, 99)
    else:
        button = wafe.lookup_widget("b")
        bx, by = button.window.absolute_origin()
        assert (shell.resources["x"], shell.resources["y"]) == \
            (bx + 2, by + 2)
    print("predefined %-14s -> %s: OK" % (name, description))
