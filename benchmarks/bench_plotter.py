"""F2 -- Figure 2: graph widgets as Wafe extensions.

The paper shows an XmGraph window and ships the Plotter widget set
("bar graphs and line graphs").  This bench builds both plot kinds
entirely through Wafe commands, checks the painted output is faithful
to the data (monotone data -> monotone bars), and times a data update
cycle -- the operation a monitoring frontend performs continuously.
"""

from repro.xlib.colors import alloc_color
from repro.xlib.graphics import window_pixels


def test_bar_graph_shape(benchmark, wafe):
    wafe.run_script("barGraph g topLevel data {1 2 3 4 5 6 7 8} "
                    "width 300 height 150 graphColor steelblue")
    wafe.run_script("realize")
    graph = wafe.lookup_widget("g")

    def redraw_and_measure():
        graph.redraw()
        return graph.bar_heights()

    heights = benchmark(redraw_and_measure)
    print("\nbar heights for 1..8:", heights)
    assert heights == sorted(heights)
    assert heights[-1] > heights[0]
    painted = (window_pixels(graph.window) ==
               alloc_color("steelblue")).sum()
    assert painted > 100


def test_line_graph_paints_series(benchmark, wafe):
    data = " ".join(str((i * 7) % 23) for i in range(50))
    wafe.run_script("lineGraph g topLevel data {%s} width 400 height 200 "
                    "graphColor red" % data)
    wafe.run_script("realize")
    graph = wafe.lookup_widget("g")

    def redraw():
        graph.redraw()
        return (window_pixels(graph.window) == alloc_color("red")).sum()

    painted = benchmark(redraw)
    print("\nline graph painted %d red pixels for 50 points" % painted)
    assert painted > 100


def test_live_update_cycle(benchmark, wafe):
    """A monitor updating its plot via plotterSetData (xnetstats-style)."""
    wafe.run_script("barGraph g topLevel data {0 0 0 0 0} width 200 "
                    "height 100")
    wafe.run_script("realize")
    counter = [0]

    def update():
        counter[0] += 1
        values = " ".join(str((counter[0] + i) % 10 + 1) for i in range(5))
        wafe.run_script("plotterSetData g {%s}" % values)
        return wafe.run_script("plotterBarHeights g h")

    count = benchmark(update)
    assert count == "5"
    heights = wafe.run_script("set h").split()
    assert len(heights) == 5
