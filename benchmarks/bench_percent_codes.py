"""T2 -- the "Event Types and Percent Codes of Actions" table.

Regenerates the full validity matrix (code x event type) through the
real dispatch path -- synthesized events firing ``exec`` actions -- and
times percent-code substitution, the per-event cost Wafe adds over a C
callback.
"""

import pytest

from repro.xlib import xtypes
from repro.xlib.events import XEvent
from repro.core.percent import ACTION_CODE_EVENTS, substitute_action

EVENTS = [
    ("BPress", xtypes.ButtonPress),
    ("BRelease", xtypes.ButtonRelease),
    ("KeyPress", xtypes.KeyPress),
    ("KeyRelease", xtypes.KeyRelease),
    ("EnterNotify", xtypes.EnterNotify),
    ("LeaveNotify", xtypes.LeaveNotify),
]

CODES = "twbxyXYaks"


def _make_event(event_type):
    return XEvent(event_type, None, button=2, keycode=198, x=3, y=4,
                  x_root=13, y_root=14)


def test_validity_matrix_regenerated(benchmark, wafe):
    wafe.run_script("label w topLevel")
    widget = wafe.lookup_widget("w")

    def build_matrix():
        matrix = {}
        for code in CODES:
            for label, event_type in EVENTS:
                event = _make_event(event_type)
                matrix[(code, label)] = substitute_action(
                    "%" + code, widget, event)
        return matrix

    matrix = benchmark(build_matrix)

    print("\ncode | " + " | ".join(label for label, __ in EVENTS))
    for code in CODES:
        row = []
        for label, event_type in EVENTS:
            value = matrix[(code, label)]
            valid = event_type in ACTION_CODE_EVENTS[code]
            row.append(value if value else ("-" if not valid else "(empty)"))
        print("%%%s   | %s" % (code, " | ".join(str(r) for r in row)))

    # The paper's validity rules.
    for label, event_type in EVENTS:
        assert matrix[("w", label)] == "w"          # all events
        assert matrix[("x", label)] == "3"
        assert matrix[("Y", label)] == "14"
    assert matrix[("b", "BPress")] == "2"
    assert matrix[("b", "KeyPress")] == ""          # invalid combination
    assert matrix[("k", "KeyPress")] == "198"
    assert matrix[("a", "KeyPress")] == "w"
    assert matrix[("s", "KeyRelease")] == "w"
    assert matrix[("a", "BPress")] == ""            # invalid combination


def test_exec_action_dispatch_throughput(benchmark, wafe, echo_lines):
    """Events -> translation -> exec -> substitution -> Tcl, end to end."""
    wafe.run_script("label w topLevel")
    wafe.run_script("action w override {<KeyPress>: exec(echo %t %w %k)}")
    wafe.run_script("realize")
    widget = wafe.lookup_widget("w")
    display = wafe.app.default_display

    def fire_100():
        for __ in range(100):
            display.press_key(widget.window, 198, release=False)
        wafe.app.process_pending()

    benchmark(fire_100)
    assert echo_lines[-1] == "KeyPress w 198"


def test_t_expands_to_unknown_for_unsupported(benchmark, wafe):
    wafe.run_script("label w topLevel")
    widget = wafe.lookup_widget("w")
    expose = XEvent(xtypes.Expose, None)
    result = benchmark(substitute_action, "%t", widget, expose)
    assert result == "unknown"
