"""E1 -- the interactive getResourceList example.

"the number of resources available for the Label widget class is
printed, which is 42 using the X11R5 Xaw3d libraries", and the list
begins "destroyCallback ancestorSensitive x y width height borderWidth
sensitive screen depth colormap background (...)".
"""


def test_label_resource_count_and_listing(benchmark, wafe, echo_lines):
    wafe.run_script("label l topLevel")

    def query():
        echo_lines.clear()
        wafe.run_script("echo [getResourceList l retVal]")
        return wafe.run_script("set retVal")

    listing = benchmark(query)
    names = listing.split()
    print("\nLabel class reports %s resources" % echo_lines[0])
    print("Resources: %s (...)" % " ".join(names[:12]))
    assert echo_lines[0] == "42"
    assert len(names) == 42
    assert names[:12] == [
        "destroyCallback", "ancestorSensitive", "x", "y", "width", "height",
        "borderWidth", "sensitive", "screen", "depth", "colormap",
        "background",
    ]


def test_resource_counts_across_classes(benchmark, wafe):
    """The layering arithmetic: Core 18 + Simple 5 + ThreeD 9 + Label 10."""
    wafe.run_script("label lab topLevel")
    wafe.run_script("command cmd topLevel")
    wafe.run_script("toggle tog topLevel")

    def counts():
        return {
            name: int(wafe.run_script(
                "getResourceList %s v" % name))
            for name in ("lab", "cmd", "tog")
        }

    result = benchmark(counts)
    print("\nresource counts: Label=%(lab)d Command=%(cmd)d Toggle=%(tog)d"
          % result)
    assert result["lab"] == 42
    assert result["cmd"] == result["lab"] + 4     # Command adds 4
    assert result["tog"] == result["cmd"] + 3     # Toggle adds 3
