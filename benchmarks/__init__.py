"""The benchmark harness: one module per table/figure/claim of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  See DESIGN.md for the
experiment index and EXPERIMENTS.md for paper-vs-measured results.
"""
