"""F4 -- Figure 4: the communication mechanism.

Measures the command channel (``%``-prefixed lines through the parser
into the Tcl interpreter) and the full frontend round trip against a
real child process: backend prints a command, Wafe executes it,
callback echoes back, backend replies.
"""

import sys
import textwrap

from repro.core.channel import LineParser
from repro.core.frontend import Frontend


def test_line_parser_throughput(benchmark):
    parser = LineParser()
    block = ("%set a 1\n" * 500 + "plain output line\n" * 500).encode()

    def feed():
        return len(parser.feed(block))

    count = benchmark(feed)
    assert count == 1000


def test_command_channel_execution_rate(benchmark, wafe):
    """Commands/second arriving from a (simulated) backend line stream."""
    parser = LineParser()
    block = "".join("%%set v%d %d\n" % (i, i) for i in range(200)).encode()

    def execute_block():
        for kind, line in parser.feed(block):
            if kind == "command":
                wafe.run_command_line(line)
        return wafe.run_script("set v199")

    assert benchmark(execute_block) == "199"


def test_frontend_round_trip_latency(benchmark, wafe, tmp_path):
    """One full ping-pong with a live child process per round."""
    script = tmp_path / "pong.py"
    script.write_text(textwrap.dedent('''
        import sys
        print("%set ready 1")
        sys.stdout.flush()
        for line in sys.stdin:
            n = line.strip()
            if n == "stop":
                break
            print("%set pong " + n)
            sys.stdout.flush()
    '''))
    frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
    wafe.main_loop(until=lambda: wafe.interp.var_exists("ready"),
                   max_idle=400)
    counter = [0]

    def round_trip():
        counter[0] += 1
        expected = str(counter[0])
        frontend.send(expected + "\n")
        wafe.main_loop(
            until=lambda: wafe.interp.var_exists("pong") and
            wafe.run_script("set pong") == expected,
            max_idle=800)
        return wafe.run_script("set pong")

    result = benchmark.pedantic(round_trip, rounds=20, iterations=1)
    assert result == str(counter[0])
    frontend.send("stop\n")
    frontend.close()
    print("\n%d full frontend<->backend round trips completed" % counter[0])
