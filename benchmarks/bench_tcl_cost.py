"""Ablation -- the paper's own caveat about the string-only data model:

"The string representation of all data types is a disadvantage, when
repetitious calculations have to be made in Tcl."

Quantified: the same computation (summing, prime-testing) in Tcl versus
Python, and the paper's recommended remedy -- keep the computation in
the backend process and let Tcl only drive the GUI.
"""

import time


def _tcl_sum(wafe, n):
    return wafe.run_script(
        "set s 0\nfor {set i 0} {$i < %d} {incr i} {incr s $i}\nset s" % n)


def test_tcl_vs_python_loop(benchmark, wafe):
    n = 2000

    tcl_result = benchmark(_tcl_sum, wafe, n)
    start = time.perf_counter()
    python_result = sum(range(n))
    python_s = max(time.perf_counter() - start, 1e-9)
    tcl_s = benchmark.stats["mean"]
    print("\nsumming 0..%d:" % (n - 1))
    print("  Tcl    : %10.3f ms" % (tcl_s * 1000))
    print("  Python : %10.3f ms (%.0fx faster)"
          % (python_s * 1000, tcl_s / python_s))
    assert tcl_result == str(python_result)
    assert tcl_s > python_s  # the paper's caveat, confirmed


def test_expr_string_roundtrip_cost(benchmark, wafe):
    """Every expr operand goes str -> number -> str."""

    def expr_chain():
        return wafe.run_script("expr {(3.5 + 4.5) * [expr {2 + 2}]}")

    assert benchmark(expr_chain) == "32.0"


def test_parse_cache_ablation(benchmark, wafe):
    """Design decision: Wafe caches parsed scripts because callbacks are
    the same Tcl strings evaluated on every event.  Measured: the same
    callback body with and without the cache."""
    script = 'set t [expr {1 + 2 * 3}]; if {$t == 7} {set ok 1}'
    wafe.run_script(script)  # warm

    def cached():
        for __ in range(50):
            wafe.run_script(script)

    benchmark(cached)
    cached_s = benchmark.stats["mean"]

    import time as _time

    start = _time.perf_counter()
    for __ in range(50):
        wafe.interp.parse_cache.clear()
        wafe.run_script(script)
    uncached_s = _time.perf_counter() - start
    print("\n50 evaluations of a callback-sized script:")
    print("  with parse cache   : %8.3f ms" % (cached_s * 1000))
    print("  cache cleared each : %8.3f ms (%.1fx slower)"
          % (uncached_s * 1000, uncached_s / cached_s))
    assert uncached_s > cached_s


def test_remedy_backend_computation(benchmark, wafe):
    """The paper's fix: computation lives in the application process;
    Tcl only receives the result string (one sV per update)."""
    wafe.run_script("label out topLevel label 0")
    wafe.run_script("realize")
    n = 2000

    def backend_style():
        result = sum(range(n))           # "backend" computes natively
        wafe.run_script("sV out label %d" % result)
        return wafe.run_script("gV out label")

    value = benchmark(backend_style)
    assert value == str(sum(range(n)))
    print("\nbackend-computes + one sV: %.3f ms vs Tcl loop above"
          % (benchmark.stats["mean"] * 1000))
