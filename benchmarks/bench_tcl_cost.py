"""Ablation -- the paper's own caveat about the string-only data model:

"The string representation of all data types is a disadvantage, when
repetitious calculations have to be made in Tcl."

Quantified: the same computation (summing, prime-testing) in Tcl versus
Python, and the paper's recommended remedy -- keep the computation in
the backend process and let Tcl only drive the GUI.
"""

import time


def _tcl_sum(wafe, n):
    return wafe.run_script(
        "set s 0\nfor {set i 0} {$i < %d} {incr i} {incr s $i}\nset s" % n)


def test_tcl_vs_python_loop(benchmark, wafe):
    n = 2000

    tcl_result = benchmark(_tcl_sum, wafe, n)
    start = time.perf_counter()
    python_result = sum(range(n))
    python_s = max(time.perf_counter() - start, 1e-9)
    tcl_s = benchmark.stats["mean"]
    print("\nsumming 0..%d:" % (n - 1))
    print("  Tcl    : %10.3f ms" % (tcl_s * 1000))
    print("  Python : %10.3f ms (%.0fx faster)"
          % (python_s * 1000, tcl_s / python_s))
    assert tcl_result == str(python_result)
    assert tcl_s > python_s  # the paper's caveat, confirmed


def test_expr_string_roundtrip_cost(benchmark, wafe):
    """Every expr operand goes str -> number -> str."""

    def expr_chain():
        return wafe.run_script("expr {(3.5 + 4.5) * [expr {2 + 2}]}")

    assert benchmark(expr_chain) == "32.0"


def test_parse_cache_ablation(benchmark, wafe):
    """Design decision: Wafe caches parsed scripts because callbacks are
    the same Tcl strings evaluated on every event.  Measured: the same
    callback body with and without the cache."""
    script = 'set t [expr {1 + 2 * 3}]; if {$t == 7} {set ok 1}'
    wafe.run_script(script)  # warm

    def cached():
        for __ in range(50):
            wafe.run_script(script)

    benchmark(cached)
    cached_s = benchmark.stats["mean"]

    import time as _time

    start = _time.perf_counter()
    for __ in range(50):
        wafe.interp.clear_caches()
        wafe.run_script(script)
    uncached_s = _time.perf_counter() - start
    print("\n50 evaluations of a callback-sized script:")
    print("  with parse cache   : %8.3f ms" % (cached_s * 1000))
    print("  cache cleared each : %8.3f ms (%.1fx slower)"
          % (uncached_s * 1000, uncached_s / cached_s))
    assert uncached_s > cached_s


def _ops_per_sec_multi(interps, script, windows=9):
    """Interleaved min-of-K ops/sec for N interpreters on one script.

    Windows rotate through all sides so load drift on a shared machine
    hits each equally; the per-side minimum window time is the robust
    estimator (noise only ever makes a window slower).  The window size
    is calibrated on the slowest side (the first interpreter).
    """
    for interp in interps:
        interp.eval(script)  # warm caches / compile
    start = time.perf_counter()
    interps[0].eval(script)
    per_eval = max(time.perf_counter() - start, 1e-9)
    n = max(1, int(0.05 / per_eval))
    best = [float("inf")] * len(interps)
    for __ in range(windows):
        for i, interp in enumerate(interps):
            best[i] = min(best[i], _timed_window(interp, script, n))
    return [n / b for b in best]


_COMPILE_WORKLOADS = {
    # The paper's own caveat workload: a counting loop in Tcl.
    "for_loop_sum": (
        "set s 0\nfor {set i 0} {$i < 500} {incr i} {incr s $i}\nset s"),
    # Condition-dominated: what every animated Wafe callback does.
    "while_countdown": "set i 400\nwhile {$i > 0} {incr i -1}\nset i",
    # A callback-sized mixed script: expr, if, set.
    "callback_expr": 'set t [expr {1 + 2 * 3}]; if {$t == 7} {set ok 1}',
    # Pure-literal commands: the literal-argv fast path.
    "literal_commands": "set a 1; set b 2; set c 3; set d 4",
}


#: Speedups measured by test_compile_layer_speedup, for the committed-
#: baseline gate below (mirrors bench_xrm.py).  Each value is a dict
#: with "plans" and "vm" speedups over the uncompiled tree-walker.
_SPEEDUPS = {}


def test_compile_layer_speedup(tcl_compile_record):
    """The tentpole claim, now three-way: the plan engine (cached
    compiled scripts, literal-argv fast paths, expr AST cache) gives
    >= 2x ops/sec on loop/expr workloads over the uncompiled baseline,
    and the bytecode VM (inline caches, fused loops, integer shadows)
    gives >= 10x."""
    from repro.tcl import Interp

    print("\nTcl engines, ops/sec (evals of whole script):")
    speedups = _SPEEDUPS
    for name, script in _COMPILE_WORKLOADS.items():
        vm_interp = Interp(compile=True)
        vm_interp.reset_cache_stats()
        baseline, plans, vm = _ops_per_sec_multi(
            [Interp(compile=False), Interp(compile="plans"), vm_interp],
            script)
        stats = vm_interp.cache_stats()
        speedups[name] = {"plans": plans / baseline, "vm": vm / baseline}
        print("  %-18s tree %11.0f  plans %11.0f (%5.2fx)  "
              "vm %11.0f (%5.2fx)"
              % (name, baseline, plans, plans / baseline,
                 vm, vm / baseline))
        tcl_compile_record(name, {
            "script": script,
            "uncompiled_ops_per_sec": round(baseline, 1),
            "plans_ops_per_sec": round(plans, 1),
            "vm_ops_per_sec": round(vm, 1),
            "plans_speedup": round(plans / baseline, 3),
            "vm_speedup": round(vm / baseline, 3),
            "cache_hit_rates": {
                cache: round(cache_stats["hit_rate"], 4)
                for cache, cache_stats in stats.items()
            },
        })
    # Loop/expr workloads: plans must clear 2x and the VM 10x; the
    # pure-literal workload is reported but only needs to not regress.
    for name in ("for_loop_sum", "while_countdown", "callback_expr"):
        assert speedups[name]["plans"] >= 2.0, \
            "plans %.2fx on %s" % (speedups[name]["plans"], name)
        assert speedups[name]["vm"] >= 10.0, \
            "vm %.2fx on %s" % (speedups[name]["vm"], name)
    assert speedups["literal_commands"]["vm"] >= 1.0


def _timed_window(interp, script, n):
    start = time.perf_counter()
    for __ in range(n):
        interp.eval(script)
    return time.perf_counter() - start


def _watchdog_overhead_trial(plain, armed, script, n, windows=45):
    """One paired A/B trial: the median of per-pair ratios, minus one.

    Delegates to the shared ``paired_median_ratio`` estimator in
    conftest (also used by bench_refresh.py): back-to-back pairs with
    alternating order, median over many rounds -- the estimator that
    survives CPU frequency drift on shared machines."""
    from benchmarks.conftest import paired_median_ratio

    return paired_median_ratio(
        lambda: _timed_window(plain, script, n),
        lambda: _timed_window(armed, script, n),
        windows=windows) - 1.0


def test_eval_limit_overhead(tcl_compile_record):
    """Fault-containment gate: an *armed* watchdog (generous budgets
    that never trip) must cost < 5% on the loop workloads -- the limit
    check hides behind a next-checkpoint counter in the dispatch hot
    loop, one integer compare per command whether armed or not.  The
    default ``Interp()`` is the bytecode VM, so this now gates the VM
    dispatch loop: its inlined statements pay the same single compare.

    Work-unit accounting is unconditional (nested eval entries bump
    ``cmd_count`` armed or not), so arming adds nothing to the fast
    path at all -- only the amortised ``_check_limits`` slow path every
    ``_CHECK_INTERVAL`` work units.  The gate takes the median of
    paired back-to-back ratios, the estimator that survives CPU
    frequency drift (see _watchdog_overhead_trial)."""
    from repro.tcl import Interp

    print("\neval-limit watchdog overhead (armed, never tripping):")
    overheads = {}
    for name, n in (("for_loop_sum", 30), ("while_countdown", 120),
                    ("callback_expr", 8000)):
        script = _COMPILE_WORKLOADS[name]
        plain = Interp()
        armed = Interp()
        armed.set_eval_limits(time_ms=600000, commands=1 << 40)
        plain.eval(script)   # warm both compile caches
        armed.eval(script)
        overhead = _watchdog_overhead_trial(plain, armed, script, n)
        overheads[name] = overhead
        print("  %-18s median paired overhead %6.2f%%"
              % (name, overhead * 100))
        tcl_compile_record("eval_limit_overhead_%s" % name, {
            "overhead_fraction": round(max(0.0, overhead), 4),
        })
    for name, overhead in overheads.items():
        assert overhead < 0.05, \
            "armed watchdog costs %.1f%% on %s" % (overhead * 100, name)


def test_speedup_vs_committed_baseline():
    """CI gate: the per-engine speedups must stay close to the
    committed BENCH_tcl_compile.json (a collapse means the dispatch
    path grew a per-command cost, or an inline cache stopped hitting).
    """
    import json
    import os

    assert _SPEEDUPS, "test_compile_layer_speedup must run first"
    committed_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "BENCH_tcl_compile.json")
    if not os.path.exists(committed_path):
        print("\nno committed BENCH_tcl_compile.json yet; "
              "absolute gate only")
        return
    with open(committed_path) as handle:
        baseline = json.load(handle)
    for name in ("for_loop_sum", "callback_expr"):
        workload = baseline["workloads"][name]
        for engine, absolute_floor in (("plans", 1.8), ("vm", 10.0)):
            key = "%s_speedup" % engine
            if key not in workload:   # a schema/1 artifact: plans only
                if engine != "plans" or "speedup" not in workload:
                    continue
                key = "speedup"
            committed = workload[key]
            # 25% headroom for timing noise, never below the absolute
            # claim each engine ships with.
            floor = max(absolute_floor, committed * 0.75)
            measured = _SPEEDUPS[name][engine]
            print("committed %s %s speedup %.2fx -> floor %.2fx, "
                  "measured %.2fx"
                  % (name, engine, committed, floor, measured))
            assert measured >= floor


#: Constant-heavy callback: folded exprs inside a loop, a constant
#: branch, a dead loop, and an adjacent dead-store chain -- the shapes
#: the emission-time optimizer targets.
_CONST_HEAVY = (
    "set retries 3\n"
    "set retries 3\n"
    "set limit [expr {64 * 1024}]\n"
    "set mode [expr {7 % 3}]\n"
    "if {1} {set path direct} else {set path spill}\n"
    "while {0} {set unreachable 1}\n"
    "set total 0\n"
    "for {set i 0} {$i < 40} {incr i} {incr total [expr {2 + 3}]}\n"
    "set total")


def test_optimizer_delta_constant_heavy(tcl_compile_record):
    """The verified optimizer must pay for itself on constant-heavy
    scripts and must never cost on them: the byte-identical-semantics
    guarantee is gated by the differential suite, the performance side
    is gated here.  Measured as the median of paired back-to-back
    windows (the estimator that survives CPU frequency drift), with the
    counters checked so a silently disengaged optimizer cannot pass."""
    from repro.tcl import Interp

    optimized = Interp()
    unoptimized = Interp(optimize=False)
    assert optimized.eval(_CONST_HEAVY) == unoptimized.eval(_CONST_HEAVY)

    stats = optimized.eval("info bytecode")
    folded = int(stats.split("folded ")[1].split()[0])
    elided = int(stats.split("elided ")[1].split()[0])
    assert folded > 0 and elided > 0, \
        "optimizer did not engage on the constant-heavy workload: %s" % stats

    # _watchdog_overhead_trial(plain, armed) returns median(armed/plain)
    # - 1; with plain=optimized it reads as the optimizer's win.
    win = _watchdog_overhead_trial(optimized, unoptimized,
                                   _CONST_HEAVY, 400)
    print("\nconstant-heavy callback, optimizer on vs off:")
    print("  folded %d  elided %d  win %+.2f%%"
          % (folded, elided, win * 100))
    tcl_compile_record("optimizer_constant_heavy", {
        "script": _CONST_HEAVY,
        "folded": folded,
        "elided": elided,
        "win_fraction": round(win, 4),
    })
    # Non-regression: the optimizer must never make the constant-heavy
    # shape slower (5% headroom for timing noise on shared runners).
    assert win >= -0.05, \
        "optimizer slows the constant-heavy workload by %.1f%%" % (-win * 100)


def test_compile_cache_hit_rate_steady_state(tcl_compile_record):
    """Steady state (a callback re-fired forever) should be nearly all
    cache hits on every layer."""
    from repro.tcl import Interp

    interp = Interp()
    script = _COMPILE_WORKLOADS["callback_expr"]
    interp.eval(script)
    interp.reset_cache_stats()
    for __ in range(500):
        interp.eval(script)
    stats = interp.cache_stats()
    print("\nsteady-state cache hit rates after 500 re-evaluations:")
    for cache in ("parse", "compile", "bytecode", "expr"):
        print("  %-8s %6.2f%%  (%d hits, %d misses)"
              % (cache, stats[cache]["hit_rate"] * 100,
                 stats[cache]["hits"], stats[cache]["misses"]))
    tcl_compile_record("steady_state_hit_rates", {
        cache: round(stats[cache]["hit_rate"], 4)
        for cache in ("parse", "compile", "bytecode", "expr")
    })
    # The default engine is the VM: its bytecode cache is the one that
    # must serve the callback from memory.
    assert stats["bytecode"]["hit_rate"] > 0.99


def test_remedy_backend_computation(benchmark, wafe):
    """The paper's fix: computation lives in the application process;
    Tcl only receives the result string (one sV per update)."""
    wafe.run_script("label out topLevel label 0")
    wafe.run_script("realize")
    n = 2000

    def backend_style():
        result = sum(range(n))           # "backend" computes natively
        wafe.run_script("sV out label %d" % result)
        return wafe.run_script("gV out label")

    value = benchmark(backend_style)
    assert value == str(sum(range(n)))
    print("\nbackend-computes + one sV: %.3f ms vs Tcl loop above"
          % (benchmark.stats["mean"] * 1000))
