"""Shared fixtures for the benchmark harness.

Each bench regenerates one table, figure, or experience claim from the
paper (the index lives in DESIGN.md / EXPERIMENTS.md).  Absolute
numbers are ours -- the substrate is a simulator, not a DECstation --
but each bench asserts the *shape* the paper reports and prints the
rows it regenerates.
"""

import json
import os
import platform
import time

import pytest

from repro.core import make_wafe
from repro.xlib import close_all_displays

# ----------------------------------------------------------------------
# BENCH_tcl_compile.json: the compilation-layer perf artifact.
#
# bench_tcl_cost.py records compiled-vs-uncompiled ops/sec and cache
# hit rates through the ``tcl_compile_record`` fixture; at session end
# the collected records are written next to this file so CI can upload
# them and regressions are diffable in review.

_TCL_COMPILE_RECORDS = {}

BENCH_TCL_COMPILE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_tcl_compile.json")

# BENCH_xrm.json: the quark-interned Xrm machinery artifact, written
# the same way by bench_xrm.py through the ``xrm_record`` fixture.

_XRM_RECORDS = {}

BENCH_XRM_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_xrm.json")

# BENCH_event_core.json: the unified event core artifact, written the
# same way by bench_event_core.py through the ``event_core_record``
# fixture (selectors backend vs the retained raw-select spec path).

_EVENT_CORE_RECORDS = {}

BENCH_EVENT_CORE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_event_core.json")


@pytest.fixture
def tcl_compile_record():
    """Call with (workload_name, payload_dict) to add one record."""

    def record(name, payload):
        _TCL_COMPILE_RECORDS[name] = payload

    return record


@pytest.fixture
def xrm_record():
    """Call with (workload_name, payload_dict) to add one Xrm record."""

    def record(name, payload):
        _XRM_RECORDS[name] = payload

    return record


@pytest.fixture
def event_core_record():
    """Call with (workload_name, payload_dict) to add one record."""

    def record(name, payload):
        _EVENT_CORE_RECORDS[name] = payload

    return record


def pytest_sessionfinish(session, exitstatus):
    if _TCL_COMPILE_RECORDS:
        artifact = {
            "schema": "wafe-tcl-compile-bench/2",
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "workloads": _TCL_COMPILE_RECORDS,
        }
        with open(BENCH_TCL_COMPILE_PATH, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if _XRM_RECORDS:
        artifact = {
            "schema": "wafe-xrm-bench/1",
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "workloads": _XRM_RECORDS,
        }
        with open(BENCH_XRM_PATH, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if _EVENT_CORE_RECORDS:
        artifact = {
            "schema": "wafe-event-core-bench/1",
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "workloads": _EVENT_CORE_RECORDS,
        }
        with open(BENCH_EVENT_CORE_PATH, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


@pytest.fixture
def mofe():
    close_all_displays()
    return make_wafe(build="motif")


@pytest.fixture
def echo_lines(wafe):
    lines = []
    wafe.interp.write_output = lambda text: lines.append(text.rstrip("\n"))
    return lines


def click(wafe, widget_name):
    widget = wafe.lookup_widget(widget_name)
    x, y = widget.window.absolute_origin()
    wafe.app.default_display.click(x + 2, y + 2)
    wafe.app.process_pending()
