"""Shared fixtures for the benchmark harness.

Each bench regenerates one table, figure, or experience claim from the
paper (the index lives in DESIGN.md / EXPERIMENTS.md).  Absolute
numbers are ours -- the substrate is a simulator, not a DECstation --
but each bench asserts the *shape* the paper reports and prints the
rows it regenerates.
"""

import pytest

from repro.core import make_wafe
from repro.xlib import close_all_displays


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


@pytest.fixture
def mofe():
    close_all_displays()
    return make_wafe(build="motif")


@pytest.fixture
def echo_lines(wafe):
    lines = []
    wafe.interp.write_output = lambda text: lines.append(text.rstrip("\n"))
    return lines


def click(wafe, widget_name):
    widget = wafe.lookup_widget(widget_name)
    x, y = widget.window.absolute_origin()
    wafe.app.default_display.click(x + 2, y + 2)
    wafe.app.process_pending()
