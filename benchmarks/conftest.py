"""Shared fixtures for the benchmark harness.

Each bench regenerates one table, figure, or experience claim from the
paper (the index lives in DESIGN.md / EXPERIMENTS.md).  Absolute
numbers are ours -- the substrate is a simulator, not a DECstation --
but each bench asserts the *shape* the paper reports and prints the
rows it regenerates.
"""

import json
import os
import platform
import time

import pytest

from repro.core import make_wafe
from repro.xlib import close_all_displays

# ----------------------------------------------------------------------
# BENCH_tcl_compile.json: the compilation-layer perf artifact.
#
# bench_tcl_cost.py records compiled-vs-uncompiled ops/sec and cache
# hit rates through the ``tcl_compile_record`` fixture; at session end
# the collected records are written next to this file so CI can upload
# them and regressions are diffable in review.

_TCL_COMPILE_RECORDS = {}

BENCH_TCL_COMPILE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_tcl_compile.json")

# BENCH_xrm.json: the quark-interned Xrm machinery artifact, written
# the same way by bench_xrm.py through the ``xrm_record`` fixture.

_XRM_RECORDS = {}

BENCH_XRM_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_xrm.json")

# BENCH_event_core.json: the unified event core artifact, written the
# same way by bench_event_core.py through the ``event_core_record``
# fixture (selectors backend vs the retained raw-select spec path).

_EVENT_CORE_RECORDS = {}

BENCH_EVENT_CORE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_event_core.json")

# BENCH_refresh.json: the damage-region rendering artifact, written the
# same way by bench_refresh.py through the ``refresh_record`` fixture
# (repainted pixels per incremental update on the damage path vs the
# eager full-redraw spec, plus protocol pipelining counters and
# round-trips/sec).

_REFRESH_RECORDS = {}

BENCH_REFRESH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_refresh.json")

# BENCH_server.json: the multi-session server artifact, written the
# same way by bench_multi_app.py through the ``server_record`` fixture
# (concurrent-session count, command throughput, client round-trip
# p50/p99 with a hostile quota-tripping neighbor, and the zero-leak
# drain result).

_SERVER_RECORDS = {}

BENCH_SERVER_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_server.json")


def paired_median_ratio(run_a, run_b, windows=45):
    """Median of back-to-back per-pair ratios ``b/a`` -- the estimator
    that survives CPU frequency drift.

    On a frequency-scaling or contended CPU the absolute rate drifts by
    tens of percent over a few seconds, so comparing each side's best
    window (possibly from different thermal regimes) is hopeless.
    Instead each round times both sides back-to-back -- inside one
    regime -- and takes the ratio; the median over many rounds discards
    the pairs a scheduling event landed in.  The order within a pair
    alternates because the side measured first is systematically
    favoured while the clock ramps.

    ``run_a`` and ``run_b`` are thunks returning their elapsed seconds.
    """
    ratios = []
    for i in range(windows):
        if i % 2:
            b_s = run_b()
            a_s = run_a()
        else:
            a_s = run_a()
            b_s = run_b()
        ratios.append(b_s / max(a_s, 1e-12))
    ratios.sort()
    return ratios[len(ratios) // 2]


@pytest.fixture
def tcl_compile_record():
    """Call with (workload_name, payload_dict) to add one record."""

    def record(name, payload):
        _TCL_COMPILE_RECORDS[name] = payload

    return record


@pytest.fixture
def xrm_record():
    """Call with (workload_name, payload_dict) to add one Xrm record."""

    def record(name, payload):
        _XRM_RECORDS[name] = payload

    return record


@pytest.fixture
def event_core_record():
    """Call with (workload_name, payload_dict) to add one record."""

    def record(name, payload):
        _EVENT_CORE_RECORDS[name] = payload

    return record


@pytest.fixture
def refresh_record():
    """Call with (workload_name, payload_dict) to add one record."""

    def record(name, payload):
        _REFRESH_RECORDS[name] = payload

    return record


@pytest.fixture
def server_record():
    """Call with (workload_name, payload_dict) to add one record."""

    def record(name, payload):
        _SERVER_RECORDS[name] = payload

    return record


@pytest.fixture(name="paired_median_ratio")
def paired_median_ratio_fixture():
    """The shared noise-robust A/B estimator as a fixture."""
    return paired_median_ratio


def pytest_sessionfinish(session, exitstatus):
    if _TCL_COMPILE_RECORDS:
        artifact = {
            "schema": "wafe-tcl-compile-bench/2",
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "workloads": _TCL_COMPILE_RECORDS,
        }
        with open(BENCH_TCL_COMPILE_PATH, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if _XRM_RECORDS:
        artifact = {
            "schema": "wafe-xrm-bench/1",
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "workloads": _XRM_RECORDS,
        }
        with open(BENCH_XRM_PATH, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if _EVENT_CORE_RECORDS:
        artifact = {
            "schema": "wafe-event-core-bench/1",
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "workloads": _EVENT_CORE_RECORDS,
        }
        with open(BENCH_EVENT_CORE_PATH, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if _REFRESH_RECORDS:
        artifact = {
            "schema": "wafe-refresh-bench/1",
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "workloads": _REFRESH_RECORDS,
        }
        with open(BENCH_REFRESH_PATH, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if _SERVER_RECORDS:
        artifact = {
            "schema": "wafe-server-bench/1",
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "workloads": _SERVER_RECORDS,
        }
        with open(BENCH_SERVER_PATH, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


@pytest.fixture
def mofe():
    close_all_displays()
    return make_wafe(build="motif")


@pytest.fixture
def echo_lines(wafe):
    lines = []
    wafe.interp.write_output = lambda text: lines.append(text.rstrip("\n"))
    return lines


def click(wafe, widget_name):
    widget = wafe.lookup_widget(widget_name)
    x, y = widget.window.absolute_origin()
    wafe.app.default_display.click(x + 2, y + 2)
    wafe.app.process_pending()
