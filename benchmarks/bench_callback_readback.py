"""E3 -- the c1/c2 script: reading a callback resource back with gV.

"Opposite to the X Toolkit it is possible in Wafe to obtain the value
of a callback resource" -- running the paper's script and activating
both callbacks prints "i am c1." and "i am c2.".
"""

from benchmarks.conftest import click

PAPER_SCRIPT = (
    "form f topLevel\n"
    'command c1 f callback "echo i am %w."\n'
    "command c2 f callback [gV c1 callback] fromVert c1\n"
    "realize\n"
)


def test_paper_script_outputs(benchmark, wafe, echo_lines):
    wafe.run_script(PAPER_SCRIPT)

    def activate_both():
        echo_lines.clear()
        click(wafe, "c1")
        click(wafe, "c2")
        return list(echo_lines)

    lines = benchmark(activate_both)
    print("\nactivating c1 then c2 ->", lines)
    assert lines == ["i am c1.", "i am c2."]


def test_gv_callback_returns_source(benchmark, wafe):
    wafe.run_script('command c1 topLevel callback "echo i am %w."')

    result = benchmark(wafe.run_script, "gV c1 callback")
    assert result == "echo i am %w."


def test_callback_copy_is_independent(benchmark, wafe, echo_lines):
    """c2's copied callback survives changing c1's afterwards."""
    wafe.run_script(PAPER_SCRIPT)
    wafe.run_script('sV c1 callback "echo changed."')

    def activate_c2():
        echo_lines.clear()
        click(wafe, "c2")
        return list(echo_lines)

    assert benchmark(activate_c2) == ["i am c2."]
