"""Ablation -- the Xt machinery Wafe's commands stand on.

Micro-benchmarks of the three mechanisms every interaction crosses:
Xrm database lookup (every resource of every widget creation),
translation-table parsing (every ``action`` command), and stateful
event matching (every input event).  These quantify why Wafe caches
parsed translations and why resource files stay small.
"""

from repro.xlib import xtypes
from repro.xlib.events import XEvent
from repro.xt.translations import parse_translation_table
from repro.xt.xrm import XrmDatabase


def _loaded_database(entries=60):
    db = XrmDatabase()
    for i in range(entries):
        db.put("*class%d.resource%d" % (i % 7, i), "value%d" % i)
    db.put("*Command.background", "gray")
    db.put("wafe*form.quit.label", "Quit")
    return db


def test_xrm_query_cost(benchmark):
    db = _loaded_database()
    names = ["wafe", "form", "quit", "label"]
    classes = ["Wafe", "Form", "Command", "Label"]

    result = benchmark(db.query, names, classes)
    assert result == "Quit"


def test_xrm_wildcard_query_cost(benchmark):
    db = _loaded_database()
    names = ["wafe", "outer", "inner", "deep", "quit", "background"]
    classes = ["Wafe", "Form", "Form", "Box", "Command", "Background"]

    result = benchmark(db.query, names, classes)
    assert result == "gray"


def test_translation_parse_cost(benchmark):
    text = (
        "<EnterWindow>: highlight()\n"
        "<LeaveWindow>: reset()\n"
        "<Btn1Down>: set()\n"
        "<Btn1Up>: notify() unset()\n"
        "Shift<Key>Return: exec(echo shifted [gV input string])\n"
        "<Btn1Down>,<Btn1Up>: click()\n"
    )
    table = benchmark(parse_translation_table, text)
    assert len(table) == 6


def test_event_match_cost(benchmark):
    table = parse_translation_table(
        "<Key>a: one()\n<Key>b: two()\n<Btn1Down>: three()\n"
        "<Btn1Down>,<Btn1Up>: four()\n")
    event = XEvent(xtypes.ButtonPress, None, button=1)
    progress = {}

    actions = benchmark(table.lookup_stateful, event, progress)
    assert actions == [("three", [])]


def test_widget_creation_resource_resolution(benchmark, wafe):
    """Creating a widget resolves all 42+ resources against the db."""
    wafe.app.merge_resources("*Label.foreground: navy\n"
                             "*background: gray90\n")
    counter = [0]

    def create():
        counter[0] += 1
        name = "l%d" % counter[0]
        wafe.run_script("label %s topLevel -unmanaged" % name)
        return wafe.lookup_widget(name)

    widget = benchmark(create)
    from repro.xlib.colors import alloc_color

    assert widget["foreground"] == alloc_color("navy")
