"""C4 -- "Wafe achieves a better refresh behavior when the application
program is busy" -- plus the damage-region rendering gates.

In the two-process architecture, Expose events are served by the
frontend even while the backend computes.  The baseline is the
monolithic design the paper contrasts against: GUI and computation in
one process, where a busy computation blocks redisplay.

Both architectures get the same workload: a 250 ms computation during
which an Expose arrives.  Measured: how long the window stays stale.

The second half gates the damage-region subsystem: three incremental
update scenarios (scrollbar drag, label text change, plotter point
append) must repaint >= 10x fewer pixels on the damage path than on
the eager full-redraw spec path (``use_regions=False``), measured with
the deterministic ``drawn_pixels`` counter; and frame-granularity
protocol pipelining must cut pipe writes per command burst >= 10x over
the one-write-per-send spec (``pipeline=False``), with round-trips/sec
against a live backend recorded and floored by the committed
BENCH_refresh.json baseline.
"""

import sys
import textwrap
import time

from repro.xlib import close_all_displays, xtypes
from repro.xlib.colors import alloc_color
from repro.xlib.events import XEvent
from repro.xlib.graphics import window_pixels

BUSY_MS = 250


def _expose_latency_monolithic():
    """GUI and computation in one process: redraw waits for the loop."""
    from repro.xt import ApplicationShell, XtAppContext
    from repro.xaw import Label

    close_all_displays()
    app = XtAppContext()
    top = ApplicationShell("top", None, app=app)
    label = Label("l", top, args={"label": "monolithic",
                                  "foreground": "black"})
    top.realize()
    app.process_pending()
    label.redraw()
    # Damage the window, queue the Expose...
    label.window.display.screen.framebuffer[:] = 0xFFFFFF
    app.default_display.put_event(XEvent(xtypes.Expose, label.window))
    damaged_at = time.perf_counter()
    # ...but the single process is busy computing first.
    deadline = time.perf_counter() + BUSY_MS / 1000.0
    acc = 0
    while time.perf_counter() < deadline:
        acc += 1  # the computation
    app.process_pending()  # only now can the event loop run
    repaint_at = time.perf_counter()
    assert (window_pixels(label.window) == alloc_color("black")).any()
    return (repaint_at - damaged_at) * 1000


def _expose_latency_frontend(wafe, tmp_path):
    """Frontend architecture: the backend is busy, Wafe is not."""
    from repro.core.frontend import Frontend

    script = tmp_path / "busycalc.py"
    if not script.exists():
        body = textwrap.dedent('''
            import sys, time
            print("%label l topLevel label frontend foreground black")
            print("%realize")
            sys.stdout.flush()
            sys.stdin.readline()
            time.sleep(BUSY_SECONDS)         # busy computing
            print("%set finished 1")
            sys.stdout.flush()
            sys.stdin.readline()
        ''').replace("BUSY_SECONDS", str(BUSY_MS / 1000.0))
        script.write_text(body)
    for name in list(wafe.widgets):
        if name != "topLevel":
            wafe.run_command_line("destroyWidget %s" % name)
    if wafe.interp.var_exists("finished"):
        wafe.run_command_line("unset finished")
    frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
    wafe.main_loop(until=lambda: "l" in wafe.widgets and
                   wafe.widgets["l"].realized, max_idle=400)
    label = wafe.lookup_widget("l")
    label.redraw()
    frontend.send("go\n")  # backend starts its busy computation
    # Damage the window and queue the Expose while the backend is busy.
    label.window.display.screen.framebuffer[:] = 0xFFFFFF
    wafe.app.default_display.put_event(XEvent(xtypes.Expose, label.window))
    damaged_at = time.perf_counter()
    wafe.app.process_pending()  # the frontend serves it immediately
    repaint_at = time.perf_counter()
    assert (window_pixels(label.window) == alloc_color("black")).any()
    # The backend really was busy the whole time.
    assert not wafe.interp.var_exists("finished")
    wafe.main_loop(until=lambda: wafe.interp.var_exists("finished"),
                   max_idle=800)
    frontend.send("bye\n")
    frontend.close()
    return (repaint_at - damaged_at) * 1000


def test_refresh_under_busy_backend(benchmark, wafe, tmp_path):
    # Profile the Xrm machinery across the run so resource lookup
    # shows up as its own column next to the latency numbers.
    wafe.app.database.profile = True
    frontend_ms = benchmark.pedantic(
        _expose_latency_frontend, args=(wafe, tmp_path),
        rounds=3, iterations=1)
    monolithic_ms = _expose_latency_monolithic()
    lookup_ms = wafe.app.database.profile_s * 1000
    lookups = wafe.app.database.profile_lookups
    print("\nExpose-to-repaint while the application computes %d ms:"
          % BUSY_MS)
    print("  monolithic (single process): %8.1f ms (waits for computation)"
          % monolithic_ms)
    print("  Wafe frontend architecture : %8.1f ms (immediate)"
          % frontend_ms)
    print("  resource lookup (whole run): %8.2f ms (%d lookups)"
          % (lookup_ms, lookups))
    print("  improvement: %.0fx" % (monolithic_ms / max(frontend_ms, 1e-6)))
    # The paper's shape: the frontend repaints immediately; the
    # monolithic program repaints only after the computation.
    assert monolithic_ms >= BUSY_MS * 0.9
    assert frontend_ms < BUSY_MS / 5
    assert monolithic_ms / max(frontend_ms, 1e-6) > 5


# ----------------------------------------------------------------------
# Damage-region rendering: repainted pixels per incremental update.
#
# Each scenario builds the same widget tree twice -- once on the
# band-region damage path, once on the eager full-redraw spec path
# (use_regions=False) -- runs the same update script, and reads the
# drawn_pixels render counter.  The counter is deterministic (no
# timing), so the >= 10x reduction gate is exact.


def _scenario_scrollbar(app, top):
    """A 25-step thumb drag on a tall scrollbar."""
    from repro.xaw import Scrollbar

    bar = Scrollbar("sb", top, args={"orientation": "vertical",
                                     "length": "400", "thickness": "20"})
    top.realize()
    app.process_pending()

    def update(i):
        bar.set_thumb(top=0.02 * (i + 1))
        app.process_pending()

    return update, 25


def _scenario_label(app, top):
    """A counter label re-labelled on a fixed-size window."""
    from repro.xaw import Label

    label = Label("l", top, args={"label": "value: 0", "resize": "false",
                                  "width": "600", "height": "120"})
    top.realize()
    app.process_pending()

    def update(i):
        label.set_values({"label": "value: %d" % (i + 1)})
        app.process_pending()

    return update, 25


def _scenario_plotter(app, top):
    """A scrolling line graph appending one point per update."""
    from repro.xaw import LineGraph

    graph = LineGraph("g", top, args={
        "width": "800", "height": "200", "pointSpacing": "3",
        "minValue": "0", "maxValue": "100"})
    data = [50, 60, 40, 70, 30]
    graph.set_data(data)
    top.realize()
    app.process_pending()

    def update(i):
        data.append((i * 37) % 100)
        graph.set_data(data)
        app.process_pending()

    return update, 25


_PIXEL_SCENARIOS = {
    "scrollbar_drag": _scenario_scrollbar,
    "label_text_change": _scenario_label,
    "plotter_point_append": _scenario_plotter,
}


def _pixels_per_update(scenario, use_regions):
    from repro.xt import ApplicationShell, XtAppContext

    close_all_displays()
    app = XtAppContext(use_regions=use_regions)
    top = ApplicationShell("topLevel", None, app=app)
    update, rounds = scenario(app, top)
    display = app.default_display
    display.reset_render_stats()
    for i in range(rounds):
        update(i)
    drawn = display.render_stats["drawn_pixels"]
    close_all_displays()
    return drawn / rounds


def test_damage_path_repaints_10x_fewer_pixels(refresh_record):
    """The tentpole gate: >= 10x fewer repainted pixels per incremental
    update on every scenario."""
    print("\nrepainted pixels per incremental update "
          "(damage path vs eager full redraw):")
    reductions = {}
    for name, scenario in _PIXEL_SCENARIOS.items():
        damage = _pixels_per_update(scenario, use_regions=True)
        eager = _pixels_per_update(scenario, use_regions=False)
        reduction = eager / max(damage, 1e-9)
        reductions[name] = reduction
        print("  %-22s damage %10.1f   eager %10.1f   (%6.1fx fewer)"
              % (name, damage, eager, reduction))
        refresh_record(name, {
            "damage_pixels_per_update": round(damage, 1),
            "eager_pixels_per_update": round(eager, 1),
            "pixel_reduction": round(reduction, 2),
        })
    for name, reduction in reductions.items():
        assert reduction >= 10.0, \
            "only %.1fx fewer pixels on %s" % (reduction, name)


def test_damage_path_same_pixels_as_eager():
    """The reduction must not come from painting *wrong* pixels: after
    each scenario the framebuffers of the two paths are byte-identical.
    (The exhaustive corpus lives in tests/test_damage_render.py; this
    re-checks the exact workloads the gate above measures.)"""
    from repro.xt import ApplicationShell, XtAppContext

    for name, scenario in _PIXEL_SCENARIOS.items():
        frames = {}
        for use_regions in (True, False):
            close_all_displays()
            app = XtAppContext(use_regions=use_regions)
            top = ApplicationShell("topLevel", None, app=app)
            update, rounds = scenario(app, top)
            for i in range(rounds):
                update(i)
            frames[use_regions] = \
                app.default_display.screen.framebuffer.copy()
            close_all_displays()
        assert (frames[True] == frames[False]).all(), \
            "%s: damage path diverged from eager spec" % name


# ----------------------------------------------------------------------
# Frame-granularity protocol pipelining: writes per command burst and
# round-trips/sec against a live backend.

BURST = 200


def _writes_per_burst(wafe, frontend, pipeline):
    frontend.pipeline = pipeline
    frontend.flush()
    frontend.reset_stats()
    for i in range(BURST):
        frontend.send("tick %d\n" % i)
    wafe.app.process_pending()  # end_frame flushes the batched output
    frontend.flush()
    return frontend.stats["pipe_writes"]


def test_pipelined_flushes_10x_fewer_writes(wafe, tmp_path, refresh_record):
    """Output batches until the end-of-dispatch flush point: a burst of
    BURST sends must reach the pipe in >= 10x fewer writes than the
    one-write-per-send spec (pipeline=False)."""
    import sys
    import textwrap

    from repro.core.frontend import Frontend

    script = tmp_path / "sink.py"
    script.write_text(textwrap.dedent('''
        import sys
        for line in sys.stdin:
            if line.strip() == "bye":
                break
    '''))
    frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
    try:
        unpipelined = _writes_per_burst(wafe, frontend, pipeline=False)
        pipelined = _writes_per_burst(wafe, frontend, pipeline=True)
    finally:
        frontend.pipeline = True
        frontend.send("bye\n")
        frontend.close()
    reduction = unpipelined / max(pipelined, 1)
    print("\npipe writes for a %d-command burst:" % BURST)
    print("  per-send spec (pipeline=False): %5d writes" % unpipelined)
    print("  frame pipelining              : %5d writes (%.0fx fewer)"
          % (pipelined, reduction))
    refresh_record("pipelining_burst", {
        "burst_commands": BURST,
        "pipe_writes_unpipelined": unpipelined,
        "pipe_writes_pipelined": pipelined,
        "write_reduction": round(reduction, 2),
    })
    assert unpipelined >= BURST  # the spec really is one write per send
    assert reduction >= 10.0, \
        "pipelining only cut writes %.1fx" % reduction


def test_round_trips_per_sec(wafe, tmp_path, refresh_record):
    """Round-trips/sec against a live echoing backend, recorded for the
    committed-baseline floor (informational magnitude: a collapse means
    a flush point disappeared or dispatch grew a stall)."""
    import json
    import os
    import sys
    import textwrap
    import time

    from repro.core.frontend import Frontend

    script = tmp_path / "echo.py"
    script.write_text(textwrap.dedent('''
        import sys
        for line in sys.stdin:
            line = line.strip()
            if line == "bye":
                break
            print("%set pong " + line.split()[-1])
            sys.stdout.flush()
    '''))
    frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
    try:
        # Warm up one round trip so process spawn is outside the clock.
        wafe.run_script("set pong -1")
        frontend.send("ping 0\n")
        wafe.main_loop(until=lambda: wafe.run_script("set pong") == "0",
                       max_idle=2000)
        rounds = 150
        start = time.perf_counter()
        for i in range(1, rounds + 1):
            frontend.send("ping %d\n" % i)
            wafe.main_loop(
                until=lambda: wafe.run_script("set pong") == str(i),
                max_idle=2000)
        elapsed = time.perf_counter() - start
    finally:
        frontend.send("bye\n")
        frontend.close()
    per_sec = rounds / elapsed
    print("\nround trips through the live backend: %.0f/s" % per_sec)
    refresh_record("round_trips", {
        "rounds": rounds,
        "round_trips_per_sec": round(per_sec, 1),
    })
    committed_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_refresh.json")
    if os.path.exists(committed_path):
        with open(committed_path) as handle:
            committed = json.load(handle)["workloads"].get(
                "round_trips", {}).get("round_trips_per_sec")
        if committed:
            # Wide headroom: shared CI machines are noisy; only a
            # collapse (a lost flush point stalls every round trip into
            # a max_idle timeout) should trip this.
            floor = committed * 0.05
            print("  committed baseline %.0f/s -> floor %.0f/s"
                  % (committed, floor))
            assert per_sec >= floor
    assert per_sec > 50  # absolute sanity: no per-round-trip stall
