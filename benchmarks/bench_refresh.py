"""C4 -- "Wafe achieves a better refresh behavior when the application
program is busy".

In the two-process architecture, Expose events are served by the
frontend even while the backend computes.  The baseline is the
monolithic design the paper contrasts against: GUI and computation in
one process, where a busy computation blocks redisplay.

Both architectures get the same workload: a 250 ms computation during
which an Expose arrives.  Measured: how long the window stays stale.
"""

import sys
import textwrap
import time

from repro.xlib import close_all_displays, xtypes
from repro.xlib.colors import alloc_color
from repro.xlib.events import XEvent
from repro.xlib.graphics import window_pixels

BUSY_MS = 250


def _expose_latency_monolithic():
    """GUI and computation in one process: redraw waits for the loop."""
    from repro.xt import ApplicationShell, XtAppContext
    from repro.xaw import Label

    close_all_displays()
    app = XtAppContext()
    top = ApplicationShell("top", None, app=app)
    label = Label("l", top, args={"label": "monolithic",
                                  "foreground": "black"})
    top.realize()
    app.process_pending()
    label.redraw()
    # Damage the window, queue the Expose...
    label.window.display.screen.framebuffer[:] = 0xFFFFFF
    app.default_display.put_event(XEvent(xtypes.Expose, label.window))
    damaged_at = time.perf_counter()
    # ...but the single process is busy computing first.
    deadline = time.perf_counter() + BUSY_MS / 1000.0
    acc = 0
    while time.perf_counter() < deadline:
        acc += 1  # the computation
    app.process_pending()  # only now can the event loop run
    repaint_at = time.perf_counter()
    assert (window_pixels(label.window) == alloc_color("black")).any()
    return (repaint_at - damaged_at) * 1000


def _expose_latency_frontend(wafe, tmp_path):
    """Frontend architecture: the backend is busy, Wafe is not."""
    from repro.core.frontend import Frontend

    script = tmp_path / "busycalc.py"
    if not script.exists():
        body = textwrap.dedent('''
            import sys, time
            print("%label l topLevel label frontend foreground black")
            print("%realize")
            sys.stdout.flush()
            sys.stdin.readline()
            time.sleep(BUSY_SECONDS)         # busy computing
            print("%set finished 1")
            sys.stdout.flush()
            sys.stdin.readline()
        ''').replace("BUSY_SECONDS", str(BUSY_MS / 1000.0))
        script.write_text(body)
    for name in list(wafe.widgets):
        if name != "topLevel":
            wafe.run_command_line("destroyWidget %s" % name)
    if wafe.interp.var_exists("finished"):
        wafe.run_command_line("unset finished")
    frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
    wafe.main_loop(until=lambda: "l" in wafe.widgets and
                   wafe.widgets["l"].realized, max_idle=400)
    label = wafe.lookup_widget("l")
    label.redraw()
    frontend.send("go\n")  # backend starts its busy computation
    # Damage the window and queue the Expose while the backend is busy.
    label.window.display.screen.framebuffer[:] = 0xFFFFFF
    wafe.app.default_display.put_event(XEvent(xtypes.Expose, label.window))
    damaged_at = time.perf_counter()
    wafe.app.process_pending()  # the frontend serves it immediately
    repaint_at = time.perf_counter()
    assert (window_pixels(label.window) == alloc_color("black")).any()
    # The backend really was busy the whole time.
    assert not wafe.interp.var_exists("finished")
    wafe.main_loop(until=lambda: wafe.interp.var_exists("finished"),
                   max_idle=800)
    frontend.send("bye\n")
    frontend.close()
    return (repaint_at - damaged_at) * 1000


def test_refresh_under_busy_backend(benchmark, wafe, tmp_path):
    # Profile the Xrm machinery across the run so resource lookup
    # shows up as its own column next to the latency numbers.
    wafe.app.database.profile = True
    frontend_ms = benchmark.pedantic(
        _expose_latency_frontend, args=(wafe, tmp_path),
        rounds=3, iterations=1)
    monolithic_ms = _expose_latency_monolithic()
    lookup_ms = wafe.app.database.profile_s * 1000
    lookups = wafe.app.database.profile_lookups
    print("\nExpose-to-repaint while the application computes %d ms:"
          % BUSY_MS)
    print("  monolithic (single process): %8.1f ms (waits for computation)"
          % monolithic_ms)
    print("  Wafe frontend architecture : %8.1f ms (immediate)"
          % frontend_ms)
    print("  resource lookup (whole run): %8.2f ms (%d lookups)"
          % (lookup_ms, lookups))
    print("  improvement: %.0fx" % (monolithic_ms / max(frontend_ms, 1e-6)))
    # The paper's shape: the frontend repaints immediately; the
    # monolithic program repaints only after the computation.
    assert monolithic_ms >= BUSY_MS * 0.9
    assert frontend_ms < BUSY_MS / 5
    assert monolithic_ms / max(frontend_ms, 1e-6) > 5
