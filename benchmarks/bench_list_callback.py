"""T3 -- the "Athena List Widget Callback" percent-code table.

Regenerates the three rows (%w widget's name, %i index, %s active
element) through real clicks on a realized List, including the paper's
own usage example ``sV chooseLst callback "sV confirmLab label %s"``.
"""

from benchmarks.conftest import click


def _click_row(wafe, list_name, row):
    lst = wafe.lookup_widget(list_name)
    x, y = lst.window.absolute_origin()
    row_y = y + lst.resources["internalHeight"] + row * lst.row_height() + 1
    wafe.app.default_display.click(x + 3, row_y)
    wafe.app.process_pending()


def test_list_callback_codes_table(benchmark, wafe, echo_lines):
    wafe.run_script("list lst topLevel list {alpha beta gamma}")
    wafe.run_script('sV lst callback "echo w=%w i=%i s=%s"')
    wafe.run_script("realize")

    def select_each():
        echo_lines.clear()
        for row in range(3):
            _click_row(wafe, "lst", row)
        return list(echo_lines)

    lines = benchmark(select_each)
    print("\nList callback substitutions:")
    for line in lines:
        print("  " + line)
    assert lines == ["w=lst i=0 s=alpha", "w=lst i=1 s=beta",
                     "w=lst i=2 s=gamma"]


def test_paper_confirm_label_example(benchmark, wafe):
    # sV chooseLst callback "sV confirmLab label %s"
    wafe.run_script("form f topLevel")
    wafe.run_script("label confirmLab f label {}")
    wafe.run_script("list chooseLst f fromVert confirmLab "
                    "list {first second third}")
    wafe.run_script('sV chooseLst callback "sV confirmLab label %s"')
    wafe.run_script("realize")

    def select_second():
        _click_row(wafe, "chooseLst", 1)
        return wafe.run_script("gV confirmLab label")

    result = benchmark(select_second)
    assert result == "second"


def test_list_selection_latency(benchmark, wafe):
    """Cost of one click -> Set/Notify actions -> callback -> Tcl."""
    items = " ".join("item%03d" % i for i in range(40))
    wafe.run_script("list big topLevel list {%s}" % items)
    wafe.run_script('sV big callback "set picked %s"')
    wafe.run_script("realize")

    def pick():
        _click_row(wafe, "big", 17)
        return wafe.run_script("set picked")

    assert benchmark(pick) == "item017"
