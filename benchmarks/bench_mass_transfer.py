"""C6 -- the mass transfer mechanism.

"In some larger applications it is necessary to transfer a bulk of
data ... it is preferable to establish an additional (optional) data
channel where no parsing or interpretation is performed."

Transfers N bytes from a live backend both ways -- through the parsed
command channel (a giant ``%set`` line) and through the raw mass
channel (``getChannel`` + ``setCommunicationVariable``) -- and reports
throughput.  The paper's shape: the mass channel wins for bulk data.
"""

import sys
import textwrap
import time

import pytest

from repro.core.channel import LineParser
from repro.core.frontend import Frontend

SIZES = [1_000, 10_000, 100_000]


def _fresh(wafe):
    for name in list(wafe.widgets):
        if name != "topLevel":
            wafe.run_command_line("destroyWidget %s" % name)


@pytest.mark.parametrize("size", SIZES)
def test_mass_channel_transfer(benchmark, wafe, tmp_path, size):
    script = tmp_path / ("mass_%d.py" % size)
    script.write_text(textwrap.dedent('''
        import os, sys
        print("%echo listening on [getChannel]")
        sys.stdout.flush()
        fd = int(sys.stdin.readline().split()[-1])
        for line in sys.stdin:
            if line.strip() == "bye":
                break
            print("%setCommunicationVariable C {size} {{set got 1}}")
            sys.stdout.flush()
            os.write(fd, b"B" * {size})
    '''.format(size=size)))

    frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
    wafe.main_loop(until=lambda: frontend.parser.lines_seen > 0,
                   max_idle=600)

    def transfer():
        wafe.run_command_line("set got 0")
        frontend.send("go\n")
        wafe.main_loop(until=lambda: wafe.run_script("set got") == "1",
                       max_idle=1500)
        return len(wafe.run_script("set C"))

    received = benchmark.pedantic(transfer, rounds=5, iterations=1)
    frontend.send("bye\n")
    frontend.close()
    assert received == size
    mean_s = benchmark.stats["mean"]
    print("\nmass channel, %d bytes: %.2f MB/s"
          % (size, size / mean_s / 1e6))


@pytest.mark.parametrize("size", SIZES)
def test_command_channel_transfer(benchmark, wafe, size):
    """Baseline: the same payload as a parsed %set command line."""
    payload = "B" * size
    line = ("%set C {" + payload + "}\n").encode()
    parser = LineParser(max_line=max(65536, size * 2))

    def transfer():
        for kind, text in parser.feed(line):
            if kind == "command":
                wafe.run_command_line(text)
        return len(wafe.run_script("set C"))

    received = benchmark(transfer)
    assert received == size
    mean_s = benchmark.stats["mean"]
    print("\ncommand channel, %d bytes: %.2f MB/s"
          % (size, size / mean_s / 1e6))


def test_channels_comparison_table(benchmark, wafe, tmp_path):
    """Side-by-side throughput for the biggest size (in-process timing
    of the two code paths, no subprocess noise)."""
    size = 100_000
    payload = b"C" * size

    from repro.core.channel import MassTransferState

    def mass_path():
        state = MassTransferState("C", size, "")
        result = state.feed(payload)
        data, __ = result
        wafe.interp.set_var("C", data.decode())
        return len(wafe.run_script("set C"))

    parser = LineParser(max_line=size * 2)
    line = b"%set D {" + payload + b"}\n"

    def command_path():
        for kind, text in parser.feed(line):
            if kind == "command":
                wafe.run_command_line(text)
        return len(wafe.run_script("set D"))

    start = time.perf_counter()
    assert mass_path() == size
    mass_s = time.perf_counter() - start
    start = time.perf_counter()
    assert command_path() == size
    command_s = time.perf_counter() - start
    benchmark(mass_path)
    print("\n100 kB transfer paths:")
    print("  mass channel    : %8.2f MB/s" % (size / mass_s / 1e6))
    print("  command channel : %8.2f MB/s (parsed + interpreted)"
          % (size / command_s / 1e6))
    print("  mass channel advantage: %.1fx" % (command_s / mass_s))
    assert mass_s < command_s  # no parsing beats parsing
