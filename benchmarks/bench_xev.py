"""E2 -- the xev translation example, byte-exact, plus typing throughput.

Typing "w!" on the label bound with
``{<KeyPress>: exec(echo %k %a %s)}`` must print::

    198 w w
    174 Shift_L
    197 ! exclam
"""

EXPECTED = ["198 w w", "174 Shift_L", "197 ! exclam"]


def test_xev_exact_output(benchmark, wafe, echo_lines):
    wafe.run_script("label xev topLevel")
    wafe.run_script("action xev override {<KeyPress>: exec(echo %k %a %s)}")
    wafe.run_script("realize")
    xev = wafe.lookup_widget("xev")
    display = wafe.app.default_display

    def type_w_bang():
        echo_lines.clear()
        display.type_string(xev.window, "w!")
        wafe.app.process_pending()
        return list(echo_lines)

    lines = benchmark(type_w_bang)
    print("\ntyped 'w!' ->")
    for line in lines:
        print("  " + line)
    assert lines == EXPECTED


def test_keyboard_to_action_throughput(benchmark, wafe, echo_lines):
    """Characters per benchmark round through the full key pipeline."""
    wafe.run_script("label xev topLevel")
    wafe.run_script("action xev override {<KeyPress>: exec(echo %k %a %s)}")
    wafe.run_script("realize")
    xev = wafe.lookup_widget("xev")
    display = wafe.app.default_display
    text = "the quick brown fox jumps over the lazy dog" * 3

    def type_paragraph():
        echo_lines.clear()
        display.type_string(xev.window, text)
        wafe.app.process_pending()
        return len(echo_lines)

    count = benchmark(type_paragraph)
    assert count >= len(text)  # one echo per key press (plus shifts)
