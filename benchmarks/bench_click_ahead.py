"""C3 -- "click ahead is possible due to buffering in the I/O channels".

While the backend is busy computing, the user keeps clicking; every
click's callback message is buffered in the pipe and processed when the
backend returns to its read loop -- none are lost.  The bench also
exercises the paper's suggested opt-out: setting the widget insensitive
during busy periods disables click-ahead.
"""

import sys
import textwrap

from repro.core.frontend import Frontend

BUSY_BACKEND = '''
    import sys, time
    print("%command b topLevel callback {echo click}")
    print("%realize")
    sys.stdout.flush()
    sys.stdin.readline()                 # go-ahead
    time.sleep(0.25)                     # busy: not reading the pipe
    count = 0
    for line in sys.stdin:
        if line.strip() == "done":
            break
        count += 1
        print("%set delivered " + str(count))
        sys.stdout.flush()
'''


def test_clicks_buffered_while_backend_busy(benchmark, wafe, tmp_path):
    script = tmp_path / "busy.py"
    script.write_text(textwrap.dedent(BUSY_BACKEND))

    def run_session(clicks=5):
        for name in list(wafe.widgets):
            if name != "topLevel":
                wafe.run_command_line("destroyWidget %s" % name)
        wafe.run_command_line("set delivered 0")
        frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
        wafe.main_loop(until=lambda: "b" in wafe.widgets and
                       wafe.widgets["b"].window is not None, max_idle=400)
        frontend.send("go\n")
        button = wafe.lookup_widget("b")
        x, y = button.window.absolute_origin()
        # All clicks land while the backend sleeps.
        for __ in range(clicks):
            wafe.app.default_display.click(x + 2, y + 2)
            wafe.app.process_pending()
        frontend.send("done\n")
        wafe.main_loop(
            until=lambda: wafe.run_script("set delivered") == str(clicks),
            max_idle=1000)
        delivered = int(wafe.run_script("set delivered"))
        frontend.close()
        return delivered

    delivered = benchmark.pedantic(run_session, rounds=3, iterations=1)
    print("\n%d clicks during busy period -> %d delivered afterwards"
          % (5, delivered))
    assert delivered == 5  # click ahead: nothing lost


def test_insensitive_widget_disables_click_ahead(benchmark, wafe):
    """The paper's remedy: "It can be deactivated by setting widgets
    insensitive"."""
    fired = []
    wafe.run_script("command b topLevel callback {echo ignored}")
    wafe.interp.write_output = lambda t: fired.append(t)
    wafe.run_script("realize")
    wafe.run_script("setSensitive b false")
    button = wafe.lookup_widget("b")
    x, y = button.window.absolute_origin()

    def click_insensitive():
        for __ in range(5):
            wafe.app.default_display.click(x + 2, y + 2)
        wafe.app.process_pending()
        return len(fired)

    count = benchmark(click_insensitive)
    assert count == 0
    print("\ninsensitive widget: 5 clicks, 0 callbacks (click-ahead off)")
