"""F6 -- Figure 6 / interactive mode: the xwafedesign workflow.

"The interactive mode offers the possibility to examine the effects of
different commands" -- this bench replays a designer session (create,
inspect, adjust, destroy) and measures per-command latency, the number
that determines how fluid interactive prototyping feels.
"""

import io

from repro.core import InteractiveSession

SESSION = [
    "form f topLevel",
    "label title f label {Designer} borderWidth 0",
    "command ok f fromVert title label OK",
    "realize",
    "gV ok label",
    "sV ok background gray75",
    "echo [getResourceList ok r]",
    "widgetTree f",
    "destroyWidget ok",
    "widgetTree f",
]


def test_designer_session_replay(benchmark, wafe):
    def replay():
        # Reset widgets from the previous round.
        for name in list(wafe.widgets):
            if name != "topLevel":
                wafe.run_command_line("destroyWidget %s" % name)
        session = InteractiveSession(wafe, output=io.StringIO())
        for command in SESSION:
            session.execute(command)
        return session.transcript

    transcript = benchmark(replay)
    assert len(transcript) == len(SESSION)
    assert transcript[4][1] == "OK"            # gV ok label
    tree_after = transcript[-1][1]
    assert "ok" not in tree_after
    print("\nreplayed %d designer commands; final tree: %s"
          % (len(SESSION), tree_after))


def test_single_interactive_command_latency(benchmark, wafe):
    session = InteractiveSession(wafe, output=io.StringIO())
    session.execute("label l topLevel")
    session.execute("realize")

    result = benchmark(session.execute, "gV l label")
    assert result == "l"
