"""C5 -- "The main disadvantage of Wafe is ... higher resource
consumption, because every Wafe application needs an additional
process.  Frequently it is necessary to duplicate data (such as a text
to be displayed in a text widget)".

Measured honestly, as the paper concedes it: process count, the bytes
duplicated when a text crosses into the frontend, and resident-set
sizes of both processes.
"""

import os
import sys
import textwrap

from repro.core.frontend import Frontend


def _rss_kb(pid):
    try:
        with open("/proc/%d/status" % pid) as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        return 0
    return 0


def test_two_process_overhead(benchmark, wafe, tmp_path):
    script = tmp_path / "idle.py"
    script.write_text(textwrap.dedent('''
        import sys
        print("%set up 1")
        sys.stdout.flush()
        for line in sys.stdin:
            if line.strip() == "bye":
                break
    '''))

    def spawn_and_measure():
        frontend = Frontend(wafe, [sys.executable, "-u", str(script)])
        wafe.main_loop(until=lambda: wafe.interp.var_exists("up"),
                       max_idle=400)
        frontend_rss = _rss_kb(os.getpid())
        backend_rss = _rss_kb(frontend.process.pid)
        processes = 2
        frontend.send("bye\n")
        frontend.wait(timeout=5)
        frontend.close()
        wafe.run_command_line("unset up")
        return processes, frontend_rss, backend_rss

    processes, frontend_rss, backend_rss = benchmark.pedantic(
        spawn_and_measure, rounds=3, iterations=1)
    print("\nresource consumption of the frontend architecture:")
    print("  processes          : %d (monolithic would use 1)" % processes)
    print("  frontend RSS       : %d kB" % frontend_rss)
    print("  backend RSS        : %d kB (the 'additional process')"
          % backend_rss)
    assert processes == 2
    assert backend_rss > 0


def test_data_duplication(benchmark, wafe):
    """A text displayed in a widget exists twice: application copy and
    frontend copy (here: the Tcl variable + the widget resource)."""
    payload = "line of text\n" * 2000  # ~26 kB

    def duplicate():
        wafe.run_command_line("destroyWidget t") \
            if "t" in wafe.widgets else None
        wafe.run_script("asciiText t topLevel editType edit")
        wafe.interp.set_var("C", payload)          # frontend copy 1
        wafe.run_script("sV t string $C")          # frontend copy 2
        stored = wafe.lookup_widget("t").get_string()
        return len(payload), len(stored)

    app_bytes, widget_bytes = benchmark(duplicate)
    print("\ntext of %d bytes -> %d bytes duplicated in the frontend "
          "(variable + widget resource)" % (app_bytes,
                                            app_bytes + widget_bytes))
    assert widget_bytes == app_bytes
