"""C1 -- "about 13000 lines of C ... about 60% generated automatically".

Runs the code generator over the shipped specs and reports the
generated-versus-handwritten split of the command layer, plus
generation speed (the cost of "relinking" Wafe with a new widget set).
"""

from repro import codegen


def test_fraction_generated(benchmark):
    stats = benchmark(codegen.fraction_generated)
    print("\ncommand layer line counts (paper: ~13000 C lines, ~60%% gen):")
    print("  generated   : %6d lines" % stats["generated_lines"])
    print("  handwritten : %6d lines" % stats["handwritten_lines"])
    print("  total       : %6d lines" % stats["total_lines"])
    print("  fraction generated: %.0f%%"
          % (stats["fraction_generated"] * 100))
    assert 0.35 <= stats["fraction_generated"] <= 0.80


def test_generation_speed(benchmark):
    """Regenerating every command binding for both builds."""

    def regenerate():
        athena, __ = codegen.generate_command_module("athena")
        motif, __ = codegen.generate_command_module("motif")
        return len(athena.splitlines()) + len(motif.splitlines())

    lines = benchmark(regenerate)
    print("\nregenerated %d binding lines" % lines)
    assert lines > 300


def test_extension_cost_one_spec_block(benchmark):
    """The paper's claim that extending Wafe is a few spec lines: adding
    mCascadeButtonHighlight costs exactly the paper's 5-line block."""
    from repro.codegen.emitter import emit_module
    from repro.codegen.specparser import parse_spec

    block = "void\nXmCascadeButtonHighlight\nin: Widget\nin: Boolean\n"

    def generate():
        return emit_module(parse_spec(block))

    source = benchmark(generate)
    spec_lines = len(block.strip().splitlines())
    generated_lines = len(source.splitlines())
    print("\n%d spec lines -> %d generated lines (leverage %.1fx)"
          % (spec_lines, generated_lines, generated_lines / spec_lines))
    assert "mCascadeButtonHighlight" in source
    assert generated_lines > 3 * spec_lines
