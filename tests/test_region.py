"""Tests for the band-based Region and its rect-list executable spec.

The differential suite rasterizes both implementations into boolean
masks -- an oracle independent of either data structure -- over
randomized rect/op sequences, pinning band-region == naive rect-list.
"""

import random

import numpy
import pytest

from repro.xlib.region import (
    NaiveRegion,
    Region,
    make_region,
    _ix_intersect,
    _ix_subtract,
    _ix_union,
)


def rasterize(region, size=64):
    mask = numpy.zeros((size, size), dtype=bool)
    for x0, y0, x1, y1 in region.rects():
        mask[max(0, y0):max(0, y1), max(0, x0):max(0, x1)] = True
    return mask


class TestIntervalAlgebra:
    def test_union_merges_touching(self):
        assert _ix_union((0, 5), (5, 9)) == (0, 9)

    def test_union_keeps_gaps(self):
        assert _ix_union((0, 2), (4, 6)) == (0, 2, 4, 6)

    def test_intersect(self):
        assert _ix_intersect((0, 10), (5, 15)) == (5, 10)
        assert _ix_intersect((0, 2, 8, 12), (1, 9)) == (1, 2, 8, 9)
        assert _ix_intersect((0, 2), (3, 4)) == ()

    def test_subtract(self):
        assert _ix_subtract((0, 10), (3, 5)) == (0, 3, 5, 10)
        assert _ix_subtract((0, 10), (0, 10)) == ()
        assert _ix_subtract((0, 4, 6, 10), (2, 8)) == (0, 2, 8, 10)


class TestRegionBasics:
    def test_empty(self):
        region = Region()
        assert region.is_empty()
        assert not region
        assert region.rects() == []
        assert region.bounds() is None
        assert region.area() == 0

    def test_single_rect(self):
        region = Region((2, 3, 10, 8))
        assert region.rects() == [(2, 3, 10, 8)]
        assert region.bounds() == (2, 3, 10, 8)
        assert region.area() == 8 * 5

    def test_degenerate_rect_ignored(self):
        region = Region()
        region.add_rect(5, 5, 5, 9)
        region.add_rect(5, 5, 9, 5)
        region.add_rect(9, 9, 5, 5)
        assert region.is_empty()

    def test_adjacent_bands_coalesce(self):
        region = Region()
        region.add_rect(0, 0, 10, 5)
        region.add_rect(0, 5, 10, 9)
        assert region.rects() == [(0, 0, 10, 9)]
        assert len(region._bands) == 1

    def test_side_by_side_rects_coalesce_into_one_band(self):
        region = Region()
        region.add_rect(0, 0, 5, 5)
        region.add_rect(5, 0, 9, 5)
        assert region.rects() == [(0, 0, 9, 5)]

    def test_overlapping_union_area(self):
        region = Region()
        region.add_rect(0, 0, 10, 10)
        region.add_rect(5, 5, 15, 15)
        assert region.area() == 100 + 100 - 25
        assert region.bounds() == (0, 0, 15, 15)

    def test_l_shape_banding_is_minimal(self):
        # 20x20 minus the 10x10 top-right corner: exactly 2 bands.
        region = Region((0, 0, 20, 20))
        region.subtract_rect(10, 0, 20, 10)
        assert len(region._bands) == 2
        assert sorted(region.rects()) == [(0, 0, 10, 10), (0, 10, 20, 20)]

    def test_subtract_punches_hole(self):
        region = Region((0, 0, 10, 10))
        region.subtract_rect(3, 3, 7, 7)
        assert region.area() == 100 - 16
        assert not region.contains_point(5, 5)
        assert region.contains_point(1, 5)

    def test_intersect_rect(self):
        region = Region((0, 0, 10, 10))
        region.intersect_rect(5, 5, 20, 20)
        assert region.rects() == [(5, 5, 10, 10)]

    def test_translate(self):
        region = Region((1, 2, 4, 6))
        region.translate(10, -2)
        assert region.rects() == [(11, 0, 14, 4)]

    def test_copy_is_independent(self):
        region = Region((0, 0, 4, 4))
        clone = region.copy()
        clone.add_rect(10, 10, 12, 12)
        assert region.area() == 16
        assert clone.area() == 20

    def test_region_equality(self):
        a = Region()
        a.add_rect(0, 0, 4, 4)
        a.add_rect(4, 0, 8, 4)
        b = Region((0, 0, 8, 4))
        assert a == b

    def test_rects_are_disjoint_and_in_band_order(self):
        region = Region()
        region.add_rect(0, 0, 10, 10)
        region.add_rect(5, 5, 15, 15)
        rects = region.rects()
        total = sum((x1 - x0) * (y1 - y0) for x0, y0, x1, y1 in rects)
        assert total == region.area()
        assert rects == sorted(rects, key=lambda r: (r[1], r[0]))

    def test_union_subtract_intersect_regions(self):
        a = Region((0, 0, 10, 10))
        b = Region((5, 0, 15, 10))
        a.union(b)
        assert a.rects() == [(0, 0, 15, 10)]
        a.subtract(Region((0, 0, 5, 10)))
        assert a.rects() == [(5, 0, 15, 10)]
        a.intersect(Region((0, 5, 100, 100)))
        assert a.rects() == [(5, 5, 15, 10)]

    def test_make_region_factory(self):
        assert isinstance(make_region(), Region)
        assert isinstance(make_region(naive=True), NaiveRegion)
        assert make_region(rect=(0, 0, 2, 2)).area() == 4


class TestNaiveRegionSpec:
    def test_add_overlapping_stays_disjoint(self):
        region = NaiveRegion()
        region.add_rect(0, 0, 10, 10)
        region.add_rect(5, 5, 15, 15)
        rects = region.rects()
        total = sum((x1 - x0) * (y1 - y0) for x0, y0, x1, y1 in rects)
        assert total == region.area() == 175
        # pairwise disjoint
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert (a[2] <= b[0] or b[2] <= a[0]
                        or a[3] <= b[1] or b[3] <= a[1])

    def test_same_api_surface(self):
        for name in ("add_rect", "union", "intersect", "subtract",
                     "intersect_rect", "subtract_rect", "translate",
                     "clear", "copy", "is_empty", "rects", "bounds",
                     "area", "contains_point"):
            assert callable(getattr(NaiveRegion(), name))
            assert callable(getattr(Region(), name))


class TestDifferential:
    """Property-style fuzz: band region == rect-list spec under
    rasterization, on randomized rect sequences."""

    def _random_rect(self, rng, size):
        x0 = rng.randrange(0, size)
        y0 = rng.randrange(0, size)
        return (x0, y0, x0 + rng.randrange(1, 16), y0 + rng.randrange(1, 16))

    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_op_sequences(self, seed):
        rng = random.Random(seed)
        size = 64
        band, naive = Region(), NaiveRegion()
        for _step in range(60):
            op = rng.choice(["add", "add", "add", "sub", "clip"])
            rect = self._random_rect(rng, size)
            if op == "add":
                band.add_rect(*rect)
                naive.add_rect(*rect)
            elif op == "sub":
                band.subtract_rect(*rect)
                naive.subtract_rect(*rect)
            else:
                # keep the clip large so the region rarely collapses
                clip = (0, 0, rect[2] + 20, rect[3] + 20)
                band.intersect_rect(*clip)
                naive.intersect_rect(*clip)
            assert band.area() == naive.area()
            assert band.bounds() == naive.bounds()
            assert (rasterize(band, size + 40)
                    == rasterize(naive, size + 40)).all()

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_region_to_region_ops(self, seed):
        rng = random.Random(1000 + seed)
        size = 64

        def build(n):
            b, nv = Region(), NaiveRegion()
            for _i in range(n):
                rect = self._random_rect(rng, size)
                b.add_rect(*rect)
                nv.add_rect(*rect)
            return b, nv

        band_a, naive_a = build(10)
        band_b, naive_b = build(10)
        for op in ("union", "intersect", "subtract"):
            ba, na = band_a.copy(), naive_a.copy()
            getattr(ba, op)(band_b)
            getattr(na, op)(naive_b)
            assert ba.area() == na.area(), op
            assert (rasterize(ba, size + 40)
                    == rasterize(na, size + 40)).all(), op

    @pytest.mark.parametrize("seed", range(6))
    def test_band_form_stays_canonical(self, seed):
        """After arbitrary ops: bands y-sorted, non-overlapping, with
        sorted disjoint x-intervals, and no two touching bands share
        x-extents (fully coalesced)."""
        rng = random.Random(2000 + seed)
        region = Region()
        for _step in range(80):
            rect = self._random_rect(rng, 50)
            if rng.random() < 0.7:
                region.add_rect(*rect)
            else:
                region.subtract_rect(*rect)
            bands = region._bands
            for y0, y1, xs in bands:
                assert y0 < y1
                assert len(xs) >= 2 and len(xs) % 2 == 0
                for i in range(0, len(xs), 2):
                    assert xs[i] < xs[i + 1]
                for i in range(1, len(xs) - 1, 2):
                    assert xs[i] < xs[i + 1]  # disjoint, sorted, gapped
            for a, b in zip(bands, bands[1:]):
                assert a[1] <= b[0]
                if a[1] == b[0]:
                    assert a[2] != b[2]  # touching bands are coalesced
