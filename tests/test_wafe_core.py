"""Integration tests for the Wafe frontend: the paper's own examples."""

import pytest

from repro.tcl.errors import TclError
from repro.xlib import close_all_displays
from repro.xlib.colors import alloc_color
from repro.core import make_wafe


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


@pytest.fixture
def mofe():
    close_all_displays()
    return make_wafe(build="motif")


def capture_echo(wafe):
    """Collect echo output (what would go to stdout / the backend)."""
    lines = []
    wafe.interp.write_output = lambda text: lines.append(text.rstrip("\n"))
    return lines


class TestPaperGetResourceList:
    def test_label_resource_count_is_42(self, wafe):
        # "the number of resources available for the Label widget class
        #  is printed, which is 42 using the X11R5 Xaw3d libraries"
        lines = capture_echo(wafe)
        wafe.run_script("label l topLevel")
        wafe.run_script("echo [getResourceList l retVal]")
        assert lines == ["42"]

    def test_resource_list_variable_contents(self, wafe):
        wafe.run_script("label l topLevel")
        wafe.run_script("getResourceList l retVal")
        names = wafe.run_script("set retVal").split()
        assert names[:12] == [
            "destroyCallback", "ancestorSensitive", "x", "y", "width",
            "height", "borderWidth", "sensitive", "screen", "depth",
            "colormap", "background",
        ]
        assert len(names) == 42

    def test_echo_resources_line(self, wafe):
        lines = capture_echo(wafe)
        wafe.run_script("label l topLevel")
        wafe.run_script("getResourceList l retVal")
        wafe.run_script('echo Resources: $retVal')
        assert lines[0].startswith(
            "Resources: destroyCallback ancestorSensitive x y")


class TestWidgetCreation:
    def test_create_and_reference_by_name(self, wafe):
        wafe.run_script("label 1 topLevel")
        assert wafe.lookup_widget("1").CLASS_NAME == "Label"

    def test_creation_args_set_resources(self, wafe):
        wafe.run_script("label label1 topLevel background red foreground blue")
        widget = wafe.lookup_widget("label1")
        assert widget["background"] == alloc_color("red")
        assert widget["foreground"] == alloc_color("blue")

    def test_duplicate_name_rejected(self, wafe):
        wafe.run_script("label l topLevel")
        with pytest.raises(TclError, match="already exists"):
            wafe.run_script("label l topLevel")

    def test_unknown_parent_rejected(self, wafe):
        with pytest.raises(TclError, match='no such widget "nope"'):
            wafe.run_script("label l nope")

    def test_unmanaged_creation(self, wafe):
        wafe.run_script("label l topLevel -unmanaged")
        assert wafe.lookup_widget("l").managed is False

    def test_athena_command_absent_in_motif_build(self, mofe):
        # "if you choose to install the OSF/Motif version, the command
        #  to create the Athena text widget, asciiText, won't be
        #  available"
        with pytest.raises(TclError, match="invalid command name"):
            mofe.run_script("asciiText t topLevel")
        mofe.run_script("mPushButton pressMe topLevel")
        assert mofe.lookup_widget("pressMe").CLASS_NAME == "XmPushButton"

    def test_motif_commands_absent_in_athena_build(self, wafe):
        with pytest.raises(TclError, match="invalid command name"):
            wafe.run_script("mPushButton b topLevel")

    def test_application_shell_on_other_display(self, wafe):
        wafe.run_script("applicationShell top2 dec4:0")
        shell = wafe.lookup_widget("top2")
        wafe.run_script("label remote top2")
        wafe.run_script("realizeWidget top2")
        assert shell.display().name == "dec4:0"
        assert wafe.lookup_widget("remote").display().name == "dec4:0"
        assert wafe.lookup_widget("l" if False else "remote").window is not None


class TestSetGetValues:
    def test_paper_sv_example(self, wafe):
        wafe.run_script("label label1 topLevel background red")
        wafe.run_script('setValues label1 background "tomato" label "Hi Man"')
        widget = wafe.lookup_widget("label1")
        assert widget["background"] == alloc_color("tomato")
        assert widget["label"] == "Hi Man"

    def test_sv_gv_aliases(self, wafe):
        wafe.run_script("label l topLevel")
        wafe.run_script("sV l label hello")
        assert wafe.run_script("gV l label") == "hello"

    def test_gv_in_command_substitution(self, wafe):
        lines = capture_echo(wafe)
        wafe.run_script("label label1 topLevel label Content")
        wafe.run_script("echo [gV label1 label]")
        assert lines == ["Content"]

    def test_get_values_multi(self, wafe):
        wafe.run_script("label l topLevel width 120 height 30")
        wafe.run_script("getValues l width w height h")
        assert wafe.run_script("set w") == "120"
        assert wafe.run_script("set h") == "30"


class TestMergeResources:
    def test_paper_merge_resources_example(self, wafe):
        wafe.run_script(
            "mergeResources *Font fixed *foreground blue *background red")
        wafe.run_script("label hello topLevel")
        widget = wafe.lookup_widget("hello")
        assert widget["foreground"] == alloc_color("blue")
        assert widget["background"] == alloc_color("red")

    def test_merge_resources_applies_to_all_later_widgets(self, wafe):
        wafe.run_script("mergeResources *foreground blue")
        wafe.run_script("label one topLevel")
        wafe.run_script("command two topLevel")
        assert wafe.lookup_widget("one")["foreground"] == alloc_color("blue")
        assert wafe.lookup_widget("two")["foreground"] == alloc_color("blue")

    def test_creation_args_override_merge_resources(self, wafe):
        wafe.run_script("mergeResources *foreground blue")
        wafe.run_script("label l topLevel foreground red")
        assert wafe.lookup_widget("l")["foreground"] == alloc_color("red")

    def test_single_block_form(self, wafe):
        wafe.run_script('mergeResources "*foreground: green"')
        wafe.run_script("label l topLevel")
        assert wafe.lookup_widget("l")["foreground"] == alloc_color("green")


class TestCallbacks:
    def test_paper_hello_world_callback(self, wafe):
        lines = capture_echo(wafe)
        wafe.run_script('command hello topLevel callback "echo hello world"')
        wafe.run_script("realize")
        button = wafe.lookup_widget("hello")
        x, y = button.window.absolute_origin()
        wafe.app.default_display.click(x + 2, y + 2)
        wafe.app.process_pending()
        assert lines == ["hello world"]

    def test_paper_c1_c2_callback_readback(self, wafe):
        # The whole script from the paper, verbatim semantics.
        lines = capture_echo(wafe)
        wafe.run_script("form f topLevel")
        wafe.run_script('command c1 f callback "echo i am %w."')
        wafe.run_script("command c2 f callback [gV c1 callback] fromVert c1")
        wafe.run_script("realize")
        display = wafe.app.default_display
        for name in ("c1", "c2"):
            widget = wafe.lookup_widget(name)
            x, y = widget.window.absolute_origin()
            display.click(x + 2, y + 2)
            wafe.app.process_pending()
        assert lines == ["i am c1.", "i am c2."]

    def test_callback_set_via_sv(self, wafe):
        lines = capture_echo(wafe)
        wafe.run_script("command quit topLevel")
        wafe.run_script('sV quit callback "echo bye"')
        wafe.run_script("realize")
        button = wafe.lookup_widget("quit")
        x, y = button.window.absolute_origin()
        wafe.app.default_display.click(x + 1, y + 1)
        wafe.app.process_pending()
        assert lines == ["bye"]

    def test_list_callback_percent_codes(self, wafe):
        # The paper: sV chooseLst callback "sV confirmLab label %s"
        wafe.run_script("form f topLevel")
        wafe.run_script("label confirmLab f label empty")
        wafe.run_script(
            'list chooseLst f list {alpha beta gamma} fromVert confirmLab')
        wafe.run_script('sV chooseLst callback "sV confirmLab label %s"')
        wafe.run_script("realize")
        lst = wafe.lookup_widget("chooseLst")
        x, y = lst.window.absolute_origin()
        row = lst.row_height()
        wafe.app.default_display.click(x + 3, y + 2 + row + 1)  # 2nd row
        wafe.app.process_pending()
        assert wafe.run_script("gV confirmLab label") == "beta"

    def test_quit_command_ends_loop(self, wafe):
        lines = capture_echo(wafe)
        wafe.run_script('command hello topLevel label "Wafe new World" '
                        'callback "echo Goodbye; quit"')
        wafe.run_script("realize")
        button = wafe.lookup_widget("hello")
        x, y = button.window.absolute_origin()
        wafe.app.default_display.click(x + 2, y + 2)
        wafe.app.process_pending()
        assert lines == ["Goodbye"]
        assert wafe.quit_requested


class TestPredefinedCallbacks:
    def _popup_setup(self, wafe):
        # Build a popup shell by hand (shells are created via the API);
        # position it away from the top-level so clicks don't collide.
        from repro.xt.shell import TransientShell

        wafe.run_script("form f topLevel")
        wafe.run_script("command b f")
        shell = TransientShell("popup", wafe.top_level,
                               args={"x": "300", "y": "300"})
        wafe.widgets["popup"] = shell
        wafe.run_script("label inside popup label {popup content}")
        wafe.run_script("realize")
        return wafe.lookup_widget("b"), shell

    def _click(self, wafe, widget):
        x, y = widget.window.absolute_origin()
        wafe.app.default_display.click(x + 2, y + 2)
        wafe.app.process_pending()

    def test_none_realizes_without_grab(self, wafe):
        button, shell = self._popup_setup(wafe)
        wafe.run_script("callback b callback none popup")
        self._click(wafe, button)
        assert shell.popped_up
        assert wafe.app.default_display.grab_window is None

    def test_exclusive_grabs(self, wafe):
        button, shell = self._popup_setup(wafe)
        wafe.run_script("callback b callback exclusive popup")
        self._click(wafe, button)
        assert shell.popped_up
        assert wafe.app.default_display.grab_window is shell.window

    def test_nonexclusive_grabs_with_owner_events(self, wafe):
        button, shell = self._popup_setup(wafe)
        wafe.run_script("callback b callback nonexclusive popup")
        self._click(wafe, button)
        assert shell.popped_up
        assert wafe.app.default_display.grab_owner_events is True

    def test_popdown(self, wafe):
        button, shell = self._popup_setup(wafe)
        wafe.run_script("callback b callback none popup")
        self._click(wafe, button)
        wafe.run_script("command down topLevel")
        wafe.run_script("callback down callback popdown popup")
        wafe.run_script("realize")
        self._click(wafe, wafe.lookup_widget("down"))
        assert not shell.popped_up

    def test_position(self, wafe):
        button, shell = self._popup_setup(wafe)
        wafe.run_script("callback b callback none popup")
        wafe.run_script("callback b callback position popup 200 150")
        self._click(wafe, button)
        assert (shell.resources["x"], shell.resources["y"]) == (200, 150)

    def test_position_cursor(self, wafe):
        button, shell = self._popup_setup(wafe)
        wafe.run_script("callback b callback none popup")
        wafe.run_script("callback b callback positionCursor popup")
        x, y = button.window.absolute_origin()
        wafe.app.default_display.click(x + 2, y + 2)
        wafe.app.process_pending()
        assert shell.resources["x"] == x + 2
        assert shell.resources["y"] == y + 2

    def test_unknown_predefined_rejected(self, wafe):
        wafe.run_script("command b topLevel")
        with pytest.raises(TclError, match="unknown predefined callback"):
            wafe.run_script(  # wafelint: skip -- rejection is the point
                "callback b callback bogus popup")

    def test_motif_armcallback_example(self, mofe):
        # "mPushButton b topLevel; callback b armCallback none popup"
        from repro.xt.shell import TransientShell

        mofe.run_script("mPushButton b topLevel")
        shell = TransientShell("popup", mofe.top_level)
        mofe.widgets["popup"] = shell
        mofe.run_script("mLabel inside popup")
        mofe.run_script("callback b armCallback none popup")
        mofe.run_script("realize")
        button = mofe.lookup_widget("b")
        x, y = button.window.absolute_origin()
        mofe.app.default_display.press_button(x + 2, y + 2)
        mofe.app.process_pending()
        assert shell.popped_up
        mofe.app.default_display.release_button(x + 2, y + 2)


class TestActions:
    def test_paper_xev_example_exact_output(self, wafe):
        # label xev topLevel; action xev override
        #   {<KeyPress>: exec(echo %k %a %s)} ... typing "w!" prints:
        #   198 w w / 174 Shift_L / 197 ! exclam
        lines = capture_echo(wafe)
        wafe.run_script("label xev topLevel")
        wafe.run_script(
            "action xev override {<KeyPress>: exec(echo %k %a %s)}")
        wafe.run_script("realize")
        xev = wafe.lookup_widget("xev")
        wafe.app.default_display.type_string(xev.window, "w!")
        wafe.app.process_pending()
        assert lines == ["198 w w", "174 Shift_L", "197 ! exclam"]

    def test_menubutton_enterwindow_popup(self, wafe):
        wafe.run_script("menuButton mb topLevel")
        wafe.run_script("simpleMenu menu mb")
        wafe.run_script("smeBSB entry menu")
        wafe.run_script('action mb override "<EnterWindow>: PopupMenu()"')
        wafe.run_script("realize")
        button = wafe.lookup_widget("mb")
        x, y = button.window.absolute_origin()
        wafe.app.default_display.warp_pointer(x + 2, y + 2)
        wafe.app.process_pending()
        assert wafe.lookup_widget("menu").popped_up

    def test_action_augment_keeps_existing(self, wafe):
        lines = capture_echo(wafe)
        wafe.run_script("command b topLevel callback {echo pressed}")
        wafe.run_script('action b augment "<EnterWindow>: exec(echo enter)"')
        wafe.run_script("realize")
        button = wafe.lookup_widget("b")
        x, y = button.window.absolute_origin()
        wafe.app.default_display.click(x + 1, y + 1)
        wafe.app.process_pending()
        assert "pressed" in lines

    def test_exec_action_with_command_substitution(self, wafe):
        # The prime-factor binding: exec(echo [gV input string])
        lines = capture_echo(wafe)
        wafe.run_script("asciiText input topLevel editType edit width 200")
        wafe.run_script(
            "action input override {<Key>Return: exec(echo [gV input string])}")
        wafe.run_script("realize")
        text = wafe.lookup_widget("input")
        display = wafe.app.default_display
        display.type_string(text.window, "60")
        display.type_string(text.window, "\r")
        wafe.app.process_pending()
        assert lines == ["60"]


class TestGeneratedCommands:
    def test_destroy_widget_frees_name(self, wafe):
        wafe.run_script("label l topLevel")
        wafe.run_script("destroyWidget l")
        assert wafe.run_script("widgetExists l") == "0"
        with pytest.raises(TclError, match="no such widget"):
            wafe.run_script("gV l label")

    def test_set_sensitive_and_is_sensitive(self, wafe):
        wafe.run_script("command b topLevel")
        assert wafe.run_script("isSensitive b") == "1"
        wafe.run_script("setSensitive b false")
        assert wafe.run_script("isSensitive b") == "0"

    def test_parent_and_name(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("label l f")
        assert wafe.run_script("parent l") == "f"
        assert wafe.run_script("name l") == "l"

    def test_form_allow_resize(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("label l f")
        wafe.run_script("formAllowResize l true")
        assert wafe.lookup_widget("l").constraints["resizable"] is True

    def test_list_show_current_struct_convention(self, wafe):
        wafe.run_script("list l topLevel list {a b c}")
        wafe.run_script("listHighlight l 2")
        result = wafe.run_script("listShowCurrent l info")
        assert result == "2"
        assert wafe.run_script("set info(index)") == "2"
        assert wafe.run_script("set info(string)") == "c"

    def test_move_and_resize(self, wafe):
        wafe.run_script("label l topLevel")
        wafe.run_script("realize")
        wafe.run_script("moveWidget l 50 60")
        widget = wafe.lookup_widget("l")
        assert (widget["x"], widget["y"]) == (50, 60)
        wafe.run_script("resizeWidget l 200 100 1")
        assert (widget["width"], widget["height"]) == (200, 100)

    def test_add_timeout_runs_script(self, wafe):
        wafe.run_script("set fired 0")
        wafe.run_script("addTimeOut 1 {set fired 1}")
        wafe.main_loop(until=lambda: wafe.run_script("set fired") == "1",
                       max_idle=50)
        assert wafe.run_script("set fired") == "1"

    def test_wrong_arity_message(self, wafe):
        with pytest.raises(TclError, match="wrong # args"):
            wafe.run_script("destroyWidget")  # wafelint: skip -- arity test

    def test_motif_cascade_highlight(self, mofe):
        mofe.run_script("mCascadeButton cb topLevel")
        mofe.run_script("realize")
        mofe.run_script("mCascadeButtonHighlight cb true")
        assert mofe.lookup_widget("cb").highlighted is True
        mofe.run_script("mCascadeButtonHighlight cb false")
        assert mofe.lookup_widget("cb").highlighted is False

    def test_motif_command_append_value(self, mofe):
        mofe.run_script("mCommand box topLevel")
        mofe.run_script("mCommandAppendValue box {ls}")
        mofe.run_script("mCommandAppendValue box { -l}")
        assert mofe.lookup_widget("box")["command"] == "ls -l"

    def test_plotter_commands(self, wafe):
        wafe.run_script("barGraph g topLevel data {1 2 3}")
        wafe.run_script("realize")
        wafe.run_script("plotterSetData g {5 1 9 4}")
        count = wafe.run_script("plotterBarHeights g heights")
        assert count == "4"
        heights = [int(h) for h in wafe.run_script("set heights").split()]
        assert heights[2] == max(heights)


class TestMemoryManagement:
    def test_destroying_form_frees_descendants(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("label a f")
        wafe.run_script("command b f fromVert a")
        wafe.run_script("destroyWidget f")
        for name in ("f", "a", "b"):
            assert wafe.run_script("widgetExists %s" % name) == "0"

    def test_callback_resource_replaced_old_value_freed(self, wafe):
        wafe.run_script("command b topLevel callback {echo one}")
        first = wafe.lookup_widget("b").resources["callback"]
        wafe.run_script("sV b callback {echo two}")
        second = wafe.lookup_widget("b").resources["callback"]
        assert first is not second
        assert second.source == "echo two"
