"""Tests for the quark-interned Xrm machinery.

Covers the quark intern table, the tree-backed search-list lookup and
its equivalence to the retained naive matcher (differential test),
resource-file escape decoding, specifier validation and its
mergeResources advisory, generation invalidation, ``info xrmstats``,
the event-type dispatch index, and the shell ``geometry`` resource.
"""

import random

import pytest

from repro.core import make_wafe
from repro.xlib import close_all_displays, xtypes
from repro.xlib.events import XEvent
from repro.xt.translations import parse_translation_table
from repro.xt.xrm import (
    XrmDatabase,
    parse_specifier,
    quark,
    quark_list,
    quark_name,
)


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


class TestQuarks:
    def test_interning_is_stable(self):
        assert quark("background") == quark("background")
        assert quark("background") != quark("Background")

    def test_round_trip(self):
        q = quark("a-new-component")
        assert quark_name(q) == "a-new-component"

    def test_quark_list(self):
        qs = quark_list(["wafe", "form", "quit"])
        assert qs == (quark("wafe"), quark("form"), quark("quit"))


class TestSpecifierValidation:
    @pytest.mark.parametrize("spec", ["", "   ", ".", "*", "..", "*.",
                                      "a.", "a*", "a.b.", "wafe*form*"])
    def test_invalid_specifiers_rejected(self, spec):
        assert parse_specifier(spec) == ([], [])

    def test_put_refuses_invalid_specifier(self):
        db = XrmDatabase()
        assert db.put("a.b.", "x") is False
        assert len(db) == 0

    def test_put_lines_reports_rejections(self):
        db = XrmDatabase()
        rejected = db.put_lines("*good: 1\nbad.: 2\n*: 3\n")
        assert rejected == ["bad.", "*"]
        assert len(db) == 1

    def test_surrounding_whitespace_is_stripped(self):
        assert parse_specifier("  *Font ") == (["*"], ["Font"])


class TestValueEscapes:
    def get(self, text, names="w v", classes="W V"):
        db = XrmDatabase()
        db.put_lines(text)
        return db.query(names.split(), classes.split())

    def test_backslash_n_is_newline(self):
        assert self.get("*v: line1\\nline2") == "line1\nline2"

    def test_double_backslash_is_backslash(self):
        assert self.get("*v: a\\\\b") == "a\\b"

    def test_escaped_leading_space(self):
        assert self.get("*v: \\ indented") == " indented"

    def test_escaped_tab(self):
        assert self.get("*v: \\\tx") == "\tx"

    def test_octal_escape(self):
        assert self.get("*v: bell\\007!") == "bell\x07!"

    def test_short_octal_passes_through(self):
        # Only exactly three octal digits are a coded character.
        assert self.get("*v: a\\07b") == "a\\07b"

    def test_unknown_escape_passes_through(self):
        assert self.get("*v: C:\\path") == "C:\\path"

    def test_continuation_joins_lines(self):
        assert self.get("*v: one\\\ntwo") == "onetwo"

    def test_even_backslash_run_does_not_continue(self):
        # "one\\" + newline: the backslashes are an escaped backslash
        # belonging to the value; the next line is its own entry.
        db = XrmDatabase()
        db.put_lines("*v: one\\\\\n*w: two\n")
        assert db.query(["x", "v"], ["X", "V"]) == "one\\"
        assert db.query(["x", "w"], ["X", "W"]) == "two"

    def test_comment_with_trailing_backslash_does_not_swallow(self):
        db = XrmDatabase()
        db.put_lines("! a comment \\\n*v: kept\n")
        assert db.query(["x", "v"], ["X", "V"]) == "kept"


class TestPrecedenceCornerCases:
    """Byte-for-byte precedence pins, checked against BOTH engines."""

    def both(self, entries, names, classes):
        db = XrmDatabase()
        for spec, value in entries:
            db.put(spec, value)
        via_tree = db.query(names.split(), classes.split())
        via_naive = db.query_naive(names.split(), classes.split())
        assert via_tree == via_naive
        return via_tree

    def test_tight_class_beats_loose_name(self):
        # Per-level qualities: CLASS_TIGHT (5) > NAME_LOOSE (3).
        assert self.both(
            [("wafe.Form.label", "tight-class"), ("wafe*form.label", "loose-name")],
            "wafe form label", "Wafe Form Label") == "tight-class"

    def test_any_tight_beats_name_loose(self):
        assert self.both(
            [("wafe.?.label", "any-tight"), ("wafe*form.label", "name-loose")],
            "wafe form label", "Wafe Form Label") == "any-tight"

    def test_earlier_level_dominates_later_quality(self):
        # A name match at level 1 beats any number of better matches
        # deeper down (lexicographic, leftmost most significant).
        assert self.both(
            [("wafe.form*label", "shallow"), ("*form.quit.label", "deep")],
            "wafe form quit label", "Wafe Form Command Label") == "shallow"

    def test_skip_costs_beneath_everything(self):
        assert self.both(
            [("*label", "skips"), ("*Wafe*label", "class-then-skips")],
            "wafe form label", "Wafe Form Label") == "class-then-skips"

    def test_question_component_matching_literal_question(self):
        # A widget literally named "?" matches a "?" component as a
        # NAME, not as ANY (the naive matcher's elif order; the tree
        # must agree).
        assert self.both(
            [("wafe.?.label", "via-q")],
            "wafe ? label", "Wafe Form Label") == "via-q"

    def test_later_serial_wins_after_merge(self):
        db = XrmDatabase()
        db.put("*label", "first")
        other = XrmDatabase()
        other.put("*label", "second")
        db.merge(other)
        assert db.query(["w", "label"], ["W", "Label"]) == "second"
        assert db.query_naive(["w", "label"], ["W", "Label"]) == "second"

    def test_loose_skip_depth(self):
        # "*quit.label" must reach quit at any depth.
        assert self.both(
            [("*quit.label", "deep")],
            "wafe outer inner quit label",
            "Wafe Form Form Command Label") == "deep"

    def test_entry_longer_than_query_never_matches(self):
        assert self.both(
            [("wafe.form.quit.label", "long")],
            "wafe form label", "Wafe Form Label") is None


class TestDifferential:
    """Randomized databases: the quark tree and the naive matcher must
    return identical answers -- the naive scan is the executable
    specification of the precedence rules."""

    NAMES = ["wafe", "form", "quit", "ok", "box", "w1", "w2", "?"]
    CLASSES = ["Wafe", "Form", "Command", "Label", "Box", "?"]
    COMPONENTS = NAMES + CLASSES + ["other"]

    def random_database(self, rng, entries):
        db = XrmDatabase()
        for serial in range(entries):
            depth = rng.randint(1, 4)
            spec_parts = []
            for level in range(depth):
                binding = rng.choice([".", "*"])
                component = rng.choice(self.COMPONENTS)
                if level == 0 and binding == ".":
                    spec_parts.append(component)
                else:
                    spec_parts.append(binding + component)
            db.put("".join(spec_parts), "v%d" % serial)
        return db

    def random_query(self, rng):
        depth = rng.randint(1, 5)
        names = [rng.choice(self.NAMES) for __ in range(depth)]
        classes = [rng.choice(self.CLASSES) for __ in range(depth)]
        return names, classes

    def test_engines_agree_on_random_databases(self):
        rng = random.Random(19930125)  # the USENIX '93 paper, pinned
        for __ in range(150):
            db = self.random_database(rng, rng.randint(1, 12))
            for __q in range(20):
                names, classes = self.random_query(rng)
                assert db.query(names, classes) == \
                    db.query_naive(names, classes), \
                    (names, classes,
                     [(e.bindings, e.components, e.value)
                      for e in db._entries])

    def test_engines_agree_after_incremental_merges(self):
        rng = random.Random(42)
        db = XrmDatabase()
        for round_no in range(30):
            extra = self.random_database(rng, rng.randint(1, 4))
            db.merge(extra)
            for __ in range(10):
                names, classes = self.random_query(rng)
                assert db.query(names, classes) == \
                    db.query_naive(names, classes)


class TestSearchListCaching:
    def test_search_lists_are_memoised(self):
        db = XrmDatabase()
        db.put("*Command.background", "gray")
        nq = quark_list(["wafe", "quit"])
        cq = quark_list(["Wafe", "Command"])
        first = db.get_search_list(nq, cq)
        assert db.get_search_list(nq, cq) is first
        stats = db.stats()
        assert stats["searchlist_hits"] == 1
        assert stats["searchlist_misses"] == 1

    def test_mutation_invalidates_memoisation(self):
        db = XrmDatabase()
        db.put("*background", "old")
        nq = quark_list(["wafe", "quit"])
        cq = quark_list(["Wafe", "Command"])
        slist = db.get_search_list(nq, cq)
        assert db.search(slist, quark("background"), quark("Background")) \
            == "old"
        generation = db.generation
        db.put("*quit.background", "new")
        assert db.generation > generation
        slist = db.get_search_list(nq, cq)
        assert db.search(slist, quark("background"), quark("Background")) \
            == "new"

    def test_naive_escape_hatch(self):
        db = XrmDatabase()
        db.put("*label", "x")
        db.use_search_lists = False
        assert db.query(["w", "label"], ["W", "Label"]) == "x"
        assert db.stats()["searches"] == 0  # tree path never ran


class TestGenerationInvalidation:
    """mergeResources after widget creation must affect widgets created
    afterwards -- the acceptance criterion for the generation counter."""

    def test_merge_affects_subsequent_widgets(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("command before f")
        wafe.run_script("mergeResources {*Command.label: Merged}")
        wafe.run_script("command after f")
        assert wafe.run_script("gV after label") == "Merged"
        # The earlier widget keeps its creation-time value.
        assert wafe.run_script("gV before label") == "before"

    def test_merge_visible_to_requeries_of_existing_widgets(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("command b f")
        widget = wafe.lookup_widget("b")
        assert wafe.app.query_resource(widget, "fresh", "Fresh") is None
        wafe.run_script("mergeResources *b.fresh value")
        assert wafe.app.query_resource(widget, "fresh", "Fresh") == "value"

    def test_app_name_change_invalidates_widget_cache(self, wafe):
        wafe.run_script("mergeResources {other*title: ForOther}")
        top = wafe.top_level
        assert wafe.app.query_resource(top, "title", "Title") is None
        wafe.app.app_name = "other"
        assert wafe.app.query_resource(top, "title", "Title") == "ForOther"

    def test_merge_resources_advisory_for_bad_specifier(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("mergeResources {bad.: oops\n*good: fine}")
        assert len(errors) == 1
        assert "invalid resource specifier" in errors[0]
        assert '"bad."' in errors[0]
        wafe.run_script("mergeResources {also.bad.} value")
        assert len(errors) == 2


class TestInfoXrmstats:
    def test_reports_counters(self, wafe):
        wafe.run_script("info xrmstats reset")
        wafe.run_script("mergeResources {*Command.label: X}")
        wafe.run_script("form f topLevel")
        wafe.run_script("command b f")
        stats = wafe.run_script("info xrmstats")
        fields = stats.split()
        pairs = dict(zip(fields[::2], fields[1::2]))
        assert int(pairs["entries"]) >= 1
        assert int(pairs["quarks"]) > 0
        assert int(pairs["searches"]) > 0
        assert int(pairs["generationBumps"]) >= 1
        assert 0.0 <= float(pairs["searchListHitRate"]) <= 1.0

    def test_reset(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("info xrmstats reset")
        stats = wafe.run_script("info xrmstats")
        fields = stats.split()
        pairs = dict(zip(fields[::2], fields[1::2]))
        assert pairs["searches"] == "0"
        assert pairs["searchListHits"] == "0"

    def test_wrong_args(self, wafe):
        from repro.tcl.errors import TclError

        with pytest.raises(TclError):
            wafe.run_script("info xrmstats bogus extra")


class TestTranslationIndex:
    def table(self):
        return parse_translation_table(
            "<Key>a: ka()\n"
            "<Btn1Down>: press()\n"
            "<Btn2Down>: press2()\n"
            "<EnterWindow>: enter()\n"
            "<Btn1Down>,<Btn1Up>: click()\n")

    def test_lookup_equals_linear_scan(self):
        table = self.table()
        events = [
            XEvent(xtypes.ButtonPress, None, button=1),
            XEvent(xtypes.ButtonPress, None, button=2),
            XEvent(xtypes.EnterNotify, None),
            XEvent(xtypes.KeyPress, None, keycode=198),
            XEvent(xtypes.Expose, None),
        ]
        for event in events:
            linear = None
            for production in table.productions:
                if production.matches(event):
                    linear = production.actions
                    break
            assert table.lookup(event) == linear

    def test_index_does_not_break_sequences(self):
        table = self.table()
        progress = {}
        press = XEvent(xtypes.ButtonPress, None, button=1)
        release = XEvent(xtypes.ButtonRelease, None, button=1)
        assert table.lookup_stateful(press, progress) == [("press", [])]
        assert progress  # the click() sequence is in flight
        assert table.lookup_stateful(release, progress) == [("click", [])]
        assert not progress  # completed sequences leave no state

    def test_unrelated_event_resets_in_flight_sequence(self):
        table = self.table()
        progress = {}
        press = XEvent(xtypes.ButtonPress, None, button=1)
        other = XEvent(xtypes.Expose, None)
        release = XEvent(xtypes.ButtonRelease, None, button=1)
        table.lookup_stateful(press, progress)
        # Expose is not indexed for any production start, but with a
        # sequence in flight the full table must be scanned to reset.
        assert table.lookup_stateful(other, progress) is None
        assert not progress
        assert table.lookup_stateful(release, progress) is None

    def test_set_values_translations_resets_progress(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script(
            "command b f translations {<Btn1Down>,<Btn1Up>: set()}")
        widget = wafe.lookup_widget("b")
        widget._translation_progress = {12345: 1}  # an in-flight sequence
        wafe.run_script("sV b translations {<Btn1Down>: set()}")
        assert widget._translation_progress == {}


class TestShellGeometry:
    def test_geometry_resource_sizes_shell(self, wafe):
        wafe.run_script("mergeResources {wafe.geometry: 321x87+10+20}")
        wafe.run_script("label l topLevel label Hi")
        wafe.run_script("realize")
        shell = wafe.top_level
        assert shell.resources["width"] == 321
        assert shell.resources["height"] == 87
        assert shell.resources["x"] == 10
        assert shell.resources["y"] == 20

    def test_merge_between_create_and_realize_still_applies(self, wafe):
        # The shell exists since frontend construction; the merge must
        # still reach it when it realizes (generation revalidation).
        wafe.run_script("label l topLevel label Hi")
        wafe.run_script("mergeResources {wafe.geometry: 200x100}")
        wafe.run_script("realize")
        shell = wafe.top_level
        assert shell.resources["width"] == 200
        assert shell.resources["height"] == 100

    def test_malformed_geometry_ignored(self, wafe):
        wafe.run_script("mergeResources {wafe.geometry: bananas}")
        wafe.run_script("label l topLevel label Hi")
        wafe.run_script("realize")  # must not raise
        assert wafe.top_level.resources["width"] >= 1
