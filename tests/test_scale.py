"""Scale tests: the stack at sizes real applications reach."""

import pytest

from repro.xlib import close_all_displays
from repro.core import make_wafe


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


class TestScale:
    def test_two_hundred_widget_tree(self, wafe):
        wafe.run_script("box root topLevel")
        for i in range(20):
            wafe.run_script("form row%d root" % i)
            previous = None
            for j in range(9):
                name = "cell%d_%d" % (i, j)
                extra = (" fromHoriz %s" % previous) if previous else ""
                # wafelint: skip -- %s juxtaposed after }
                wafe.run_script("label %s row%d label {%d.%d}%s"
                                % (name, i, i, j, extra))
                previous = name
        wafe.run_script("realize")
        assert len(wafe.widgets) == 1 + 1 + 20 + 180
        # Every cell realized and viewable.
        widget = wafe.lookup_widget("cell19_8")
        assert widget.window is not None and widget.window.viewable()

    def test_thousand_item_list(self, wafe):
        items = " ".join("item%04d" % i for i in range(1000))
        wafe.run_script("list big topLevel -unmanaged list {%s}" % items)
        lst = wafe.lookup_widget("big")
        assert len(lst.items()) == 1000
        lst.highlight(777)
        assert lst.current().string == "item0777"
        assert wafe.run_script("listShowCurrent big out") == "777"

    def test_five_hundred_dispatched_events(self, wafe):
        wafe.run_script("set n 0")
        wafe.run_script("label pad topLevel")
        wafe.run_script("action pad override {<KeyPress>: exec(incr n)}")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("pad")
        display = wafe.app.default_display
        for __ in range(500):
            display.press_key(widget.window, 198, release=False)
        wafe.app.process_pending()
        assert wafe.run_script("set n") == "500"

    def test_deep_form_chain(self, wafe):
        wafe.run_script("form f topLevel")
        previous = None
        for i in range(60):
            extra = (" fromVert w%d" % (i - 1)) if previous is not None \
                else ""
            wafe.run_script(  # wafelint: skip -- %s juxtaposed after }
                "label w%d f label {row %d}%s" % (i, i, extra))
            previous = i
        wafe.run_script("realize")
        top_y = wafe.lookup_widget("w0").resources["y"]
        bottom_y = wafe.lookup_widget("w59").resources["y"]
        assert bottom_y > top_y + 59  # strictly descending chain

    def test_large_tcl_data_through_widget(self, wafe):
        payload = "x" * 50000
        wafe.run_script("asciiText t topLevel editType edit")
        wafe.interp.set_var("big", payload)
        wafe.run_script("sV t string $big")
        assert len(wafe.lookup_widget("t").get_string()) == 50000

    def test_many_create_destroy_cycles_no_leak(self, wafe):
        for round_no in range(50):
            wafe.run_script("form f%d topLevel" % round_no)
            wafe.run_script("command b%d f%d callback {echo hi}"
                            % (round_no, round_no))
            wafe.run_script("destroyWidget f%d" % round_no)
        assert set(wafe.widgets) == {"topLevel"}
        # The window registry does not accumulate dead windows.
        assert len(wafe.app._window_widgets) <= 1
