"""Tests for the communication machinery: line protocol, frontend mode
with a real child process, mass transfer, and the three modes."""

import io
import os
import sys
import textwrap

import pytest

from repro.xlib import close_all_displays
from repro.core import InteractiveSession, make_wafe, run_file
from repro.core.channel import LineParser, LineTooLong, MassTransferState
from repro.core.frontend import Frontend, backend_for_invocation


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


class TestLineParser:
    def test_command_vs_output_classification(self):
        parser = LineParser()
        events = parser.feed("%label l topLevel\nplain text\n")
        assert events == [("command", "label l topLevel"),
                          ("output", "plain text")]

    def test_incremental_feeding(self):
        parser = LineParser()
        assert parser.feed("%set a ") == []
        assert parser.feed("1\n") == [("command", "set a 1")]

    def test_counts(self):
        parser = LineParser()
        parser.feed("%a\nb\n%c\n")
        assert parser.lines_seen == 3
        assert parser.commands_seen == 2

    def test_custom_prefix(self):
        parser = LineParser(prefix="@")
        events = parser.feed("@cmd\n%not\n")
        assert events == [("command", "cmd"), ("output", "%not")]

    def test_long_line_within_limit(self):
        parser = LineParser()
        payload = "x" * 60000
        events = parser.feed("%set a " + payload + "\n")
        assert events[0][1].endswith(payload)

    def test_line_too_long_raises(self):
        parser = LineParser(max_line=100)
        with pytest.raises(LineTooLong):
            parser.feed("%" + "x" * 200 + "\n")

    def test_binary_garbage_survives(self):
        parser = LineParser()
        events = parser.feed(b"\xff\xfe plain\n")
        assert events[0][0] == "output"


class TestMassTransferState:
    def test_accumulates_until_limit(self):
        state = MassTransferState("C", 10, "done")
        assert state.feed(b"12345") is None
        assert state.missing == 5
        payload, leftover = state.feed(b"67890abc")
        assert payload == b"1234567890"
        assert leftover == b"abc"


def write_backend(tmp_path, body):
    """A Python backend speaking the Wafe protocol on stdio."""
    script = tmp_path / "backend.py"
    script.write_text(textwrap.dedent(body))
    return [sys.executable, "-u", str(script)]


class TestFrontendMode:
    def test_backend_builds_widgets_and_gets_answer(self, wafe, tmp_path):
        command = write_backend(tmp_path, '''
            import sys
            print("%command hello topLevel callback {echo pressed}")
            print("%realize")
            sys.stdout.flush()
            line = sys.stdin.readline().strip()
            print("backend saw: " + line)
            sys.stdout.flush()
        ''')
        passthrough = []
        frontend = Frontend(wafe, command, passthrough=passthrough.append)

        def realized():
            widget = wafe.widgets.get("hello")
            return widget is not None and widget.window is not None

        wafe.main_loop(until=realized, max_idle=400)
        assert wafe.run_script("widgetExists hello") == "1"
        # Click the button: the callback echoes into the backend's stdin.
        button = wafe.lookup_widget("hello")
        x, y = button.window.absolute_origin()
        wafe.app.default_display.click(x + 2, y + 2)
        wafe.app.process_pending()
        wafe.main_loop(until=lambda: any("backend saw" in l
                                         for l in passthrough),
                       max_idle=400)
        frontend.close()
        assert "backend saw: pressed" in passthrough

    def test_non_command_lines_pass_through(self, wafe, tmp_path):
        command = write_backend(tmp_path, '''
            print("just output")
            print("%set x 1")
            print("more output")
        ''')
        passthrough = []
        frontend = Frontend(wafe, command, passthrough=passthrough.append)
        wafe.main_loop(until=lambda: len(passthrough) >= 2, max_idle=400)
        frontend.close()
        assert passthrough == ["just output", "more output"]
        assert wafe.run_script("set x") == "1"

    def test_backend_exit_ends_main_loop(self, wafe, tmp_path):
        command = write_backend(tmp_path, 'print("%set done 1")')
        frontend = Frontend(wafe, command)
        wafe.main_loop(max_idle=400)
        assert frontend.eof_seen
        frontend.close()
        assert wafe.run_script("set done") == "1"

    def test_click_ahead_buffering(self, wafe, tmp_path):
        # The paper: "click ahead is possible due to buffering in the
        # I/O channels" -- clicks during backend busyness are not lost.
        command = write_backend(tmp_path, '''
            import sys, time
            print("%command b topLevel callback {echo click}")
            print("%realize")
            sys.stdout.flush()
            sys.stdin.readline()          # wait for the go-ahead
            time.sleep(0.3)               # busy computing
            seen = []
            for line in sys.stdin:
                seen.append(line.strip())
                print("got %d" % len(seen))
                sys.stdout.flush()
                if len(seen) >= 3:
                    break
        ''')
        passthrough = []
        frontend = Frontend(wafe, command, passthrough=passthrough.append)

        def realized():
            widget = wafe.widgets.get("b")
            return widget is not None and widget.window is not None

        wafe.main_loop(until=realized, max_idle=400)
        frontend.send("go\n")
        button = wafe.lookup_widget("b")
        x, y = button.window.absolute_origin()
        # Three clicks while the backend sleeps: all are buffered.
        for __ in range(3):
            wafe.app.default_display.click(x + 2, y + 2)
            wafe.app.process_pending()
        wafe.main_loop(until=lambda: "got 3" in passthrough, max_idle=800)
        frontend.close()
        assert "got 3" in passthrough

    def test_mass_transfer_channel(self, wafe, tmp_path):
        # The paper's example: 100000 bytes over the data channel into
        # the Tcl variable C, then run the completion command.
        command = write_backend(tmp_path, '''
            import os, sys
            print("%asciiText text topLevel editType edit")
            print("%echo listening on [getChannel]")
            sys.stdout.flush()
            line = sys.stdin.readline()     # "listening on N"
            fd = int(line.split()[-1])
            print("%setCommunicationVariable C 100000 "
                  "{sV text string $C; echo stored}")
            sys.stdout.flush()
            os.write(fd, b"A" * 100000)
            sys.stdin.readline()            # wait for "stored" ack? no:
        ''')
        passthrough = []
        frontend = Frontend(wafe, command, passthrough=passthrough.append)
        stored = []
        wafe.interp.write_output = lambda t: stored.append(t)
        # "echo" goes to the backend; watch the text widget instead.
        def done():
            try:
                widget = wafe.widgets.get("text")
                return widget is not None and \
                    len(widget.get_string()) >= 100000
            except Exception:
                return False
        wafe.main_loop(until=done, max_idle=1200)
        frontend.close()
        text = wafe.lookup_widget("text").get_string()
        assert len(text) == 100000
        assert set(text) == {"A"}

    def test_init_com_resource(self, wafe, tmp_path):
        # -xrm '*InitCom: ...' sends a startup command to the backend.
        wafe.app.merge_resources("*InitCom: startup-goal.")
        command = write_backend(tmp_path, '''
            import sys
            first = sys.stdin.readline().strip()
            print("init: " + first)
            sys.stdout.flush()
        ''')
        passthrough = []
        frontend = Frontend(wafe, command, passthrough=passthrough.append)
        wafe.main_loop(until=lambda: bool(passthrough), max_idle=400)
        frontend.close()
        assert passthrough == ["init: startup-goal."]

    def test_symlink_naming_scheme(self):
        assert backend_for_invocation("/usr/bin/X11/xwafeApp") == "wafeApp"
        assert backend_for_invocation("xdirtree") == "dirtree"
        assert backend_for_invocation("wafe") is None
        assert backend_for_invocation("/usr/bin/X11/xwafe") is None


class TestFileMode:
    def test_paper_file_mode_script(self, wafe, tmp_path):
        # Figure 4's file-mode example, with a quit so the loop ends.
        script = tmp_path / "hello.wafe"
        script.write_text(
            "#!/usr/bin/X11/wafe --f\n"
            'command hello topLevel label "Wafe new World" '
            'callback "echo Goodbye; quit"\n'
            "realize\n"
            "quit\n"
        )
        run_file(wafe, str(script), max_idle=5)
        assert wafe.run_script("widgetExists hello") == "1"
        button = wafe.lookup_widget("hello")
        assert button["label"] == "Wafe new World"
        assert button.realized

    def test_shebang_line_is_skipped(self, wafe, tmp_path):
        script = tmp_path / "s.wafe"
        script.write_text("#!/usr/bin/X11/wafe --f\nset ok 1\nquit\n")
        run_file(wafe, str(script), max_idle=5)
        assert wafe.run_script("set ok") == "1"


class TestInteractiveMode:
    def test_step_by_step_session(self, wafe):
        output = io.StringIO()
        session = InteractiveSession(wafe, output=output)
        session.execute("label l topLevel")
        session.execute("getResourceList l retVal")
        session.execute("echo Resources: $retVal")
        assert wafe.run_script("widgetExists l") == "1"
        assert len(session.transcript) == 3
        assert session.transcript[1][1] == "42"

    def test_errors_reported_not_fatal(self, wafe):
        output = io.StringIO()
        session = InteractiveSession(wafe, output=output)
        session.execute("nosuchcommand")
        session.execute("set ok 1")
        assert "Error:" in output.getvalue()
        assert wafe.run_script("set ok") == "1"

    def test_run_reads_stream_until_quit(self, wafe):
        output = io.StringIO()
        session = InteractiveSession(wafe, output=output)
        transcript = session.run(io.StringIO("set a 5\nquit\nset b 6\n"))
        assert wafe.run_script("set a") == "5"
        assert wafe.quit_requested
        assert len(transcript) == 2  # 'set b' never ran


class TestCliArgumentSplitting:
    def test_paper_rules(self):
        from repro.core.cli import split_arguments

        options, xt_args, app_args = split_arguments(
            ["--f", "script.wafe", "-display", "host:0", "extra"])
        assert options == {"f": "script.wafe"}
        assert xt_args == ["-display", "host:0"]
        assert app_args == ["extra"]

    def test_xrm_goes_to_xt(self):
        from repro.core.cli import split_arguments

        __, xt_args, __ = split_arguments(["-xrm", "*InitCom: go."])
        assert xt_args == ["-xrm", "*InitCom: go."]

    def test_app_option(self):
        from repro.core.cli import split_arguments

        options, __, app_args = split_arguments(
            ["--app", "backend", "arg1", "arg2"])
        assert options["app"] == "backend"
        assert app_args == ["arg1", "arg2"]
