"""Failure injection for the multi-session server (docs/SERVER.md).

Every test drives a real WafeServer and real sockets cooperatively in
one process: the client sockets are nonblocking and the server loop is
pumped by hand, so misbehavior (disconnects mid-command, half-open
sockets, budget bombs, stalled readers) is injected deterministically
with no sleeps longer than the budgets under test.
"""

import os
import signal
import socket

import pytest

from repro.xlib import close_all_displays
from repro.server import (
    ServerConfig,
    SessionQuotas,
    WafeServer,
)
from repro.server.listener import ServerError


def make_server(**kwargs):
    close_all_displays()
    kwargs.setdefault("compile", True)
    return WafeServer(**kwargs)


def pump(server, n=30, timeout=0.005):
    for __ in range(n):
        server.run_once(timeout=timeout)


def connect(addr):
    client = socket.create_connection(addr)
    client.setblocking(False)
    return client


def drain(client):
    """Read whatever the server has sent so far (nonblocking)."""
    out = b""
    while True:
        try:
            data = client.recv(65536)
        except BlockingIOError:
            return out
        except (ConnectionResetError, OSError):
            return out
        if not data:
            return out
        out += data


def open_session(server, addr):
    client = connect(addr)
    pump(server, 10)
    greeting = drain(client)
    assert b"wafe server" in greeting
    return client


def roundtrip(server, client, token):
    client.sendall(b"%echo " + token.encode() + b"\n")
    out = b""
    for __ in range(100):
        pump(server, 5)
        out += drain(client)
        if token.encode() in out:
            return out
    raise AssertionError("no round trip for %r; got %r" % (token, out))


@pytest.fixture
def server():
    srv = make_server()
    yield srv
    srv.shutdown()


@pytest.fixture
def tcp(server):
    addr = server.listen_tcp("127.0.0.1", 0)
    return addr


class TestSessionBasics:
    def test_greeting_and_roundtrip(self, server, tcp):
        client = open_session(server, tcp)
        assert b"pong" in roundtrip(server, client, "pong")
        client.close()

    def test_sessions_are_isolated_worlds(self, server, tcp):
        a = open_session(server, tcp)
        b = open_session(server, tcp)
        a.sendall(b"%label only_a topLevel\n%set shared from_a\n")
        pump(server, 20)
        # The same widget name is free in the neighbor; the variable
        # does not leak either.
        b.sendall(b"%echo [widgetExists only_a]:[info exists shared]\n")
        out = b""
        for __ in range(100):
            pump(server, 5)
            out += drain(b)
            if b"0:0" in out:
                break
        assert b"0:0" in out
        assert len(server.sessions) == 2

    def test_quit_ends_only_its_session(self, server, tcp):
        a = open_session(server, tcp)
        b = open_session(server, tcp)
        a.sendall(b"%quit\n")
        pump(server, 20)
        assert server.supervisor.ended["quit"] == 1
        assert len(server.sessions) == 1
        assert b"alive" in roundtrip(server, b, "alive")

    def test_unknown_noncommand_line_reflected(self, server, tcp):
        client = open_session(server, tcp)
        client.sendall(b"just some text\n")
        pump(server, 20)
        assert b"error: not a command line" in drain(client)
        assert b"ok" in roundtrip(server, client, "ok")


class TestDisconnects:
    def test_disconnect_mid_command(self, server, tcp):
        client = open_session(server, tcp)
        # A partial line (no newline) then a hard close: the parser
        # holds the fragment, EOF reaps the session cleanly.
        client.sendall(b"%label half topLevel")
        pump(server, 10)
        client.close()
        pump(server, 30)
        assert server.supervisor.ended["eof"] == 1
        assert not server.sessions

    def test_disconnect_does_not_disturb_neighbor(self, server, tcp):
        doomed = open_session(server, tcp)
        neighbor = open_session(server, tcp)
        doomed.sendall(b"%label x topLevel\n")
        doomed.close()
        pump(server, 30)
        assert server.supervisor.ended["eof"] == 1
        assert b"fine" in roundtrip(server, neighbor, "fine")

    def test_abrupt_reset_while_output_queued(self, server, tcp):
        client = open_session(server, tcp)
        # Queue output the client will never read, then vanish.
        client.sendall(b"%echo [string repeat x 60000]\n")
        client.close()
        pump(server, 60)
        assert not server.sessions
        leaked = server.shutdown()
        assert leaked == 0


class TestQuotas:
    def test_widget_bomb_trips_and_neighbor_lives(self, tcp, server):
        bomber = open_session(server, tcp)
        neighbor = open_session(server, tcp)
        bomber.sendall(b"%sessionQuota maxWidgets 20\n"
                       b"%sessionQuota maxTrips 2\n")
        pump(server, 10)
        script = b"".join(b"%%label w%d topLevel\n" % i for i in range(40))
        bomber.sendall(script)
        pump(server, 120)
        assert server.quota_trips["widgets"] >= 2
        assert server.supervisor.ended["quota"] == 1
        assert bomber.fileno() < 0 or drain(bomber) is not None
        assert b"live" in roundtrip(server, neighbor, "live")

    def test_eval_time_bomb_reaped_neighbor_roundtrips(self):
        server = make_server(
            quota_defaults={"eval_time_ms": 50, "max_trips": 2})
        try:
            addr = server.listen_tcp("127.0.0.1", 0)
            hostile = open_session(server, addr)
            neighbor = open_session(server, addr)
            hostile.sendall(b"%while 1 {}\n%while 1 {}\n")
            pump(server, 60)
            assert server.quota_trips["time"] >= 2
            assert server.supervisor.ended["quota"] == 1
            assert b"ok" in roundtrip(server, neighbor, "ok")
            assert b"error: session quota trip limit reached" \
                in drain(hostile)
        finally:
            server.shutdown()

    def test_xrm_bomb_trips(self, server, tcp):
        client = open_session(server, tcp)
        client.sendall(b"%sessionQuota maxXrmEntries 5\n")
        pump(server, 10)
        for i in range(8):
            client.sendall(b"%%mergeResources *res%d value\n" % i)
        pump(server, 60)
        assert server.quota_trips["xrm"] >= 1
        out = drain(client)
        assert b"resource-database quota exceeded" in out

    def test_oversized_line_resyncs_and_trips(self, server, tcp):
        client = open_session(server, tcp)
        client.sendall(b"%sessionQuota maxLine 64\n")
        pump(server, 10)
        client.sendall(b"%echo before\n" + b"%" + b"x" * 200 + b"\n"
                       + b"%echo after\n")
        out = b""
        for __ in range(100):
            pump(server, 5)
            out += drain(client)
            if b"after" in out:
                break
        # The garbage line was reported, the lines around it ran.
        assert b"before" in out
        assert b"after" in out
        assert b"exceeds 64 bytes" in out
        assert server.quota_trips["line"] == 1

    def test_stalled_reader_overflow_trips(self):
        server = make_server(
            quota_defaults={"high_water": 4096, "max_trips": 1})
        try:
            addr = server.listen_tcp("127.0.0.1", 0)
            client = open_session(server, addr)
            # Ask for far more output than the high water and never
            # read: the drop is a trip, and max_trips=1 reaps.
            for __ in range(40):
                client.sendall(b"%echo [string repeat y 4000]\n")
            pump(server, 200)
            assert server.quota_trips["overflow"] >= 1
            assert server.supervisor.ended["quota"] == 1
        finally:
            server.shutdown()

    def test_session_quota_command_ledger(self, server, tcp):
        client = open_session(server, tcp)
        client.sendall(b"%echo [sessionQuota maxWidgets]\n")
        out = b""
        for __ in range(60):
            pump(server, 5)
            out += drain(client)
            if b"512" in out:
                break
        assert b"512" in out


class TestIdleReaper:
    def test_half_open_socket_reaped(self):
        config = ServerConfig()
        config.set("reap_interval_ms", 20)
        server = make_server(config=config,
                             quota_defaults={"idle_ms": 50})
        try:
            addr = server.listen_tcp("127.0.0.1", 0)
            half_open = open_session(server, addr)
            # Sends nothing, reads nothing, never closes: a classic
            # half-open client.  The reaper collects it.
            for __ in range(200):
                pump(server, 5, timeout=0.01)
                if server.supervisor.ended["idle"]:
                    break
            assert server.supervisor.ended["idle"] == 1
            assert server.quota_trips["idle"] == 1
            assert not server.sessions
            del half_open
        finally:
            server.shutdown()

    def test_active_session_not_reaped(self):
        config = ServerConfig()
        config.set("reap_interval_ms", 20)
        server = make_server(config=config,
                             quota_defaults={"idle_ms": 200})
        try:
            addr = server.listen_tcp("127.0.0.1", 0)
            busy = open_session(server, addr)
            for i in range(5):
                assert b"t%d" % i in roundtrip(server, busy, "t%d" % i)
            assert server.supervisor.ended["idle"] == 0
            assert len(server.sessions) == 1
        finally:
            server.shutdown()


class TestCapacity:
    def test_max_sessions_refusal(self):
        config = ServerConfig()
        config.set("max_sessions", 2)
        server = make_server(config=config)
        try:
            addr = server.listen_tcp("127.0.0.1", 0)
            a = open_session(server, addr)
            b = open_session(server, addr)
            refused = connect(addr)
            pump(server, 20)
            out = drain(refused)
            assert b"server busy" in out
            # ...and the connection is closed, not hung.
            for __ in range(50):
                pump(server, 5)
                try:
                    if refused.recv(4096) == b"":
                        break
                except BlockingIOError:
                    continue
                except (ConnectionResetError, OSError):
                    break
            assert server.counters["refused"] == 1
            assert len(server.sessions) == 2
            # Capacity frees up when a session ends.
            a.close()
            pump(server, 30)
            c = open_session(server, addr)
            assert b"room" in roundtrip(server, c, "room")
            del b
        finally:
            server.shutdown()


class TestUnixSockets:
    def test_unix_listener_roundtrip(self, tmp_path):
        server = make_server()
        path = str(tmp_path / "wafe.sock")
        try:
            server.listen_unix(path)
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            client.connect(path)
            client.setblocking(False)
            pump(server, 10)
            assert b"wafe server" in drain(client)
            assert b"ux" in roundtrip(server, client, "ux")
        finally:
            server.shutdown()
        # Shutdown unlinked the path.
        assert not os.path.exists(path)

    def test_stale_socket_path_recovered(self, tmp_path):
        path = str(tmp_path / "stale.sock")
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(path)
        dead.close()  # bound but never listening: stale
        server = make_server()
        try:
            server.listen_unix(path)  # must unlink and rebind
            assert os.path.exists(path)
        finally:
            server.shutdown()

    def test_regular_file_never_unlinked(self, tmp_path):
        path = tmp_path / "precious.txt"
        path.write_text("do not delete")
        server = make_server()
        try:
            with pytest.raises(ServerError):
                server.listen_unix(str(path))
            assert path.read_text() == "do not delete"
        finally:
            server.shutdown()

    def test_live_server_path_not_stolen(self, tmp_path):
        path = str(tmp_path / "live.sock")
        first = make_server()
        second = WafeServer()
        try:
            first.listen_unix(path)
            with pytest.raises(ServerError):
                second.listen_unix(path)
            assert os.path.exists(path)
        finally:
            second.shutdown()
            first.shutdown()


class TestShutdown:
    def test_shutdown_drains_and_leaks_nothing(self, tmp_path):
        server = make_server()
        path = str(tmp_path / "drain.sock")
        server.listen_unix(path)
        addr = server.listen_tcp("127.0.0.1", 0)
        clients = [open_session(server, addr) for __ in range(5)]
        for i, client in enumerate(clients):
            client.sendall(b"%%label s%d topLevel\n" % i)
        pump(server, 30)
        # Queue a goodbye that shutdown must still deliver.
        for client in clients:
            client.sendall(b"%echo goodbye\n")
        pump(server, 30)
        leaked = server.shutdown()
        assert leaked == 0
        assert not server.sessions
        assert server.supervisor.ended["shutdown"] == 5
        assert not os.path.exists(path)
        for client in clients:
            assert b"goodbye" in drain(client)

    def test_sigterm_requests_orderly_stop(self, tcp):
        server = make_server()
        addr = server.listen_tcp("127.0.0.1", 0)
        client = open_session(server, addr)
        server.install_signal_handlers()
        try:
            os.kill(os.getpid(), signal.SIGTERM)
            leaked = server.run()  # observes the stop flag, drains
        finally:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            signal.signal(signal.SIGINT, signal.default_int_handler)
        assert leaked == 0
        assert server.supervisor.ended["shutdown"] == 1
        del client

    def test_shutdown_idempotent(self, server, tcp):
        assert server.shutdown() == server.shutdown()


class TestSupervisorLedger:
    def test_unknown_kind_counts_as_error(self, server, tcp):
        client = open_session(server, tcp)
        session = list(server.sessions.values())[0]
        session.end("exploded", "test detail")
        assert server.supervisor.ended["error"] == 1
        assert "unknown end kind" in server.supervisor.history[-1][2]
        del client

    def test_serverstats_shape(self, server, tcp):
        client = open_session(server, tcp)
        roundtrip(server, client, "x")
        stats = server.serverstats()
        assert stats["sessionsAccepted"] == 1
        assert stats["sessionsActive"] == 1
        assert stats["latencySamples"] >= 1
        assert stats["dispatchP99Ms"] >= stats["dispatchP50Ms"] >= 0
        for kind in ("Eof", "Quota", "Idle", "Shutdown"):
            assert "ended%s" % kind in stats

    def test_backend_status_detached_in_session(self, server, tcp):
        client = open_session(server, tcp)
        client.sendall(b"%echo [backendStatus]\n")
        out = b""
        for __ in range(60):
            pump(server, 5)
            out += drain(client)
            if b"detached" in out:
                break
        assert b"detached" in out


class TestStdioSession:
    def test_stdio_degenerate_session(self, tmp_path):
        from repro.server.session import Session, StdioTransport

        server = make_server()
        in_r, in_w = os.pipe()
        out_r, out_w = os.pipe()
        os.set_blocking(out_r, False)
        # Pipes stand in for the process's stdin/stdout so the test
        # does not flip the runner's real fd 0 nonblocking.
        transport = StdioTransport(in_fd=in_r, out_fd=out_w)
        session = Session(server, 99, transport)
        server.sessions[99] = session
        os.write(in_w, b"%echo via-stdio\n")
        out = b""
        for __ in range(100):
            pump(server, 5)
            try:
                out += os.read(out_r, 65536)
            except BlockingIOError:
                pass
            if b"via-stdio" in out:
                break
        assert b"via-stdio" in out
        os.close(in_w)
        pump(server, 20)
        assert session.ended and session.end_reason == "eof"
        assert server.shutdown() == 0
        for fd in (in_r, out_r, out_w):
            try:
                os.close(fd)
            except OSError:
                pass


class TestEventCoreAccept:
    def test_accept_on_nonready_listener_returns_none(self):
        from repro.xt.eventcore import EventCore

        core = EventCore()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        sock.setblocking(False)
        try:
            assert core.accept_connection(sock) is None
            assert core.stats()["accepts"] == 0
        finally:
            sock.close()

    def test_accept_returns_nonblocking_conn(self):
        from repro.xt.eventcore import EventCore

        core = EventCore()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        sock.setblocking(False)
        client = socket.create_connection(sock.getsockname())
        try:
            for __ in range(100):
                accepted = core.accept_connection(sock)
                if accepted is not None:
                    break
            assert accepted is not None
            conn, __ = accepted
            assert conn.getblocking() is False
            assert core.stats()["accepts"] == 1
            conn.close()
        finally:
            client.close()
            sock.close()

    def test_accept_failure_counted_not_raised(self):
        from repro.xt.eventcore import EventCore

        core = EventCore()

        class BadSock:
            def accept(self):
                raise OSError(9999, "synthetic failure")

        assert core.accept_connection(BadSock()) is None
        assert core.stats()["accept_failures"] == 1


class TestSharedCore:
    def test_released_sources_do_not_leak(self, server, tcp):
        client = open_session(server, tcp)
        session = list(server.sessions.values())[0]
        # A session script leaves a timer and a work proc behind...
        session.wafe.app.add_timeout(10_000, lambda: None)
        session.wafe.app.add_work_proc(lambda: False)
        client.close()
        pump(server, 30)
        # ...but teardown swept them: nothing of the session remains.
        assert not server.sessions
        assert server.shutdown() == 0

    def test_session_quit_does_not_stop_server(self, server, tcp):
        a = open_session(server, tcp)
        a.sendall(b"%quit\n")
        pump(server, 30)
        # The shared core survives the session-level Wafe.quit().
        b = open_session(server, tcp)
        assert b"next" in roundtrip(server, b, "next")
