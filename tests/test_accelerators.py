"""Tests for accelerators: keyboard shortcuts redirected to widgets.

The ``accelerators`` Core resource holds a translation-like table; once
installed on a destination widget (XtInstallAccelerators), events that
reach the destination fire the *source* widget's actions -- the classic
use is typing into a form and having a keystroke press a button.
"""

import pytest

from repro.xlib import close_all_displays
from repro.core import make_wafe


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


def lines_of(wafe):
    lines = []
    wafe.interp.write_output = lambda t: lines.append(t.rstrip("\n"))
    return lines


class TestAccelerators:
    def test_keystroke_on_form_presses_button(self, wafe):
        lines = lines_of(wafe)
        wafe.run_script("form f topLevel")
        wafe.run_script("asciiText input f editType edit width 120")
        # #override lets the shortcut beat the text widget's catch-all
        # <KeyPress> binding, as in Xt.
        wafe.run_script("command go f fromVert input "
                        "callback {echo activated} "
                        "accelerators {#override\\n"
                        "<Key>F1: set() notify() unset()}")
        wafe.run_script("installAccelerators input go")
        wafe.run_script("realize")
        text = wafe.lookup_widget("input")
        from repro.xlib.keysym import keysym_to_keycode

        f1, __ = keysym_to_keycode("F1")
        wafe.app.default_display.press_key(text.window, f1)
        wafe.app.process_pending()
        assert lines == ["activated"]

    def test_own_translations_take_precedence(self, wafe):
        lines = lines_of(wafe)
        wafe.run_script("label dest topLevel")
        wafe.run_script("action dest override {<Key>a: exec(echo own)}")
        wafe.run_script("command src topLevel -unmanaged "
                        "callback {echo accel} "
                        'accelerators "<Key>a: exec(echo accel)"')
        wafe.run_script("installAccelerators dest src")
        wafe.run_script("realize")
        dest = wafe.lookup_widget("dest")
        wafe.app.default_display.type_string(dest.window, "a")
        wafe.app.process_pending()
        assert lines == ["own"]

    def test_accelerator_fires_on_source_widget(self, wafe):
        # %w in an exec accelerator names the *source* widget.
        lines = lines_of(wafe)
        wafe.run_script("label dest topLevel")
        wafe.run_script("command src topLevel -unmanaged "
                        'accelerators "<Key>q: exec(echo from %w)"')
        wafe.run_script("installAccelerators dest src")
        wafe.run_script("realize")
        dest = wafe.lookup_widget("dest")
        wafe.app.default_display.type_string(dest.window, "q")
        wafe.app.process_pending()
        assert lines == ["from src"]

    def test_install_all_accelerators_walks_subtree(self, wafe):
        lines = lines_of(wafe)
        wafe.run_script("label dest topLevel")
        wafe.run_script("form menu topLevel -unmanaged")
        wafe.run_script("command one menu "
                        'accelerators "<Key>1: exec(echo one)"')
        wafe.run_script("command two menu "
                        'accelerators "<Key>2: exec(echo two)"')
        wafe.run_script("installAllAccelerators dest menu")
        wafe.run_script("realize")
        dest = wafe.lookup_widget("dest")
        wafe.app.default_display.type_string(dest.window, "21")
        wafe.app.process_pending()
        assert lines == ["two", "one"]

    def test_destroyed_source_disables_binding(self, wafe):
        lines = lines_of(wafe)
        wafe.run_script("label dest topLevel")
        wafe.run_script("command src topLevel -unmanaged "
                        'accelerators "<Key>z: exec(echo boom)"')
        wafe.run_script("installAccelerators dest src")
        wafe.run_script("realize")
        wafe.run_script("destroyWidget src")
        dest = wafe.lookup_widget("dest")
        wafe.app.default_display.type_string(dest.window, "z")
        wafe.app.process_pending()
        assert lines == []

    def test_accelerators_resource_readback(self, wafe):
        wafe.run_script('command b topLevel '
                        'accelerators "<Key>F2: set()"')
        value = wafe.run_script("gV b accelerators")
        assert "<Key>F2" in value
