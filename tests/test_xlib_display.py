"""Tests for the simulated display server: windows, events, grabs."""

import pytest

from repro.xlib import close_all_displays, open_display, xtypes
from repro.xlib.events import XEvent


@pytest.fixture
def display():
    close_all_displays()
    return open_display(":0")


def make_window(display, parent=None, x=0, y=0, w=100, h=50):
    window = display.create_window(parent, x, y, w, h)
    window.map()
    return window


class TestWindowTree:
    def test_root_exists_and_mapped(self, display):
        assert display.root.mapped
        assert display.root.width == 1024

    def test_create_child(self, display):
        window = display.create_window(None, 10, 20, 100, 50)
        assert window.parent is display.root
        assert window in display.root.children

    def test_absolute_origin_nested(self, display):
        outer = make_window(display, x=10, y=20)
        inner = make_window(display, parent=outer, x=5, y=6)
        assert inner.absolute_origin() == (15, 26)

    def test_viewable_requires_all_ancestors_mapped(self, display):
        outer = display.create_window(None, 0, 0, 100, 100)
        inner = display.create_window(outer, 0, 0, 10, 10)
        inner.map()
        assert not inner.viewable()
        outer.map()
        assert inner.viewable()

    def test_destroy_removes_subtree(self, display):
        outer = make_window(display)
        inner = make_window(display, parent=outer)
        outer.destroy()
        assert inner.destroyed
        assert outer not in display.root.children

    def test_window_at_picks_deepest(self, display):
        outer = make_window(display, x=0, y=0, w=200, h=200)
        inner = make_window(display, parent=outer, x=50, y=50, w=20, h=20)
        assert display.window_at(55, 55) is inner
        assert display.window_at(10, 10) is outer

    def test_window_at_honours_z_order(self, display):
        below = make_window(display, x=0, y=0, w=100, h=100)
        above = make_window(display, x=0, y=0, w=100, h=100)
        assert display.window_at(5, 5) is above
        below.raise_window()
        assert display.window_at(5, 5) is below

    def test_configure_generates_expose(self, display):
        window = make_window(display)
        window.select_input(xtypes.ExposureMask)
        while display.pending():
            display.next_event()
        window.configure(width=300)
        types = [display.next_event().type for __ in range(display.pending())]
        assert xtypes.Expose in types


class TestEventQueue:
    def test_map_generates_expose_when_selected(self, display):
        window = display.create_window(None, 0, 0, 50, 50)
        window.select_input(xtypes.ExposureMask)
        window.map()
        event = display.next_event()
        assert event.type == xtypes.Expose
        assert event.window is window

    def test_no_expose_without_mask(self, display):
        window = display.create_window(None, 0, 0, 50, 50)
        window.map()
        assert display.pending() == 0

    def test_put_and_next_fifo(self, display):
        window = make_window(display)
        display.put_event(XEvent(xtypes.KeyPress, window, keycode=1))
        display.put_event(XEvent(xtypes.KeyPress, window, keycode=2))
        assert display.next_event().keycode == 1
        assert display.next_event().keycode == 2

    def test_event_gets_timestamp(self, display):
        window = make_window(display)
        display.put_event(XEvent(xtypes.KeyPress, window))
        assert display.next_event().time > 0

    def test_destroy_flushes_window_events(self, display):
        window = make_window(display)
        display.put_event(XEvent(xtypes.KeyPress, window))
        window.destroy()
        remaining = [display.next_event() for __ in range(display.pending())]
        assert all(e.window is not window for e in remaining)


class TestPointer:
    def test_button_press_targets_window_under_pointer(self, display):
        window = make_window(display, x=10, y=10, w=50, h=30)
        window.select_input(xtypes.ButtonPressMask)
        display.press_button(20, 20)
        event = display.next_event()
        assert event.type == xtypes.ButtonPress
        assert event.window is window
        assert (event.x, event.y) == (10, 10)
        assert (event.x_root, event.y_root) == (20, 20)

    def test_click_gives_press_then_release(self, display):
        window = make_window(display)
        display.click(5, 5)
        assert display.next_event().type == xtypes.ButtonPress
        assert display.next_event().type == xtypes.ButtonRelease

    def test_button_state_tracked(self, display):
        make_window(display)
        display.press_button(5, 5, button=1)
        assert display.pointer_state & xtypes.Button1Mask
        display.release_button(5, 5, button=1)
        assert not display.pointer_state & xtypes.Button1Mask

    def test_enter_leave_crossing(self, display):
        left = make_window(display, x=0, y=0, w=50, h=50)
        right = make_window(display, x=100, y=0, w=50, h=50)
        left.select_input(xtypes.EnterWindowMask | xtypes.LeaveWindowMask)
        right.select_input(xtypes.EnterWindowMask | xtypes.LeaveWindowMask)
        display.warp_pointer(10, 10)
        assert display.next_event().type == xtypes.EnterNotify
        display.warp_pointer(110, 10)
        leave = display.next_event()
        enter = display.next_event()
        assert leave.type == xtypes.LeaveNotify and leave.window is left
        assert enter.type == xtypes.EnterNotify and enter.window is right

    def test_grab_redirects_outside_clicks(self, display):
        popup = make_window(display, x=0, y=0, w=50, h=50)
        other = make_window(display, x=100, y=0, w=50, h=50)
        other.select_input(xtypes.ButtonPressMask)
        popup.select_input(xtypes.ButtonPressMask)
        display.grab_pointer(popup)
        display.press_button(110, 10)  # over 'other'
        event = display.next_event()
        assert event.window is popup
        display.ungrab_pointer()
        display.release_button(110, 10)


class TestKeyboard:
    def test_press_key_targets_focus(self, display):
        window = make_window(display)
        display.set_input_focus(window)
        display.press_key(None, 198)
        event = display.next_event()
        assert event.type == xtypes.KeyPress
        assert event.window is window
        assert event.keycode == 198

    def test_type_string_generates_shift_sequence(self, display):
        window = make_window(display)
        display.type_string(window, "w!")
        presses = []
        while display.pending():
            event = display.next_event()
            if event.type == xtypes.KeyPress:
                presses.append((event.keycode, event.state))
        # w, Shift_L, then shifted '1' -- the paper's exact scenario.
        assert presses == [(198, 0), (174, 0), (197, xtypes.ShiftMask)]


class TestSelections:
    def test_owner_and_convert(self, display):
        owner = make_window(display)
        requestor = make_window(display)
        display.set_selection_owner("PRIMARY", owner,
                                    lambda target: "hello selection")
        assert display.get_selection_owner("PRIMARY") is owner
        display.convert_selection("PRIMARY", "STRING", requestor)
        events = [display.next_event() for __ in range(display.pending())]
        notify = [e for e in events if e.type == xtypes.SelectionNotify][0]
        assert notify.data == "hello selection"

    def test_losing_selection_sends_clear(self, display):
        first = make_window(display)
        first.select_input(0xFFFFFFFF)
        second = make_window(display)
        display.set_selection_owner("PRIMARY", first, lambda t: "a")
        display.set_selection_owner("PRIMARY", second, lambda t: "b")
        events = [display.next_event() for __ in range(display.pending())]
        assert any(e.type == xtypes.SelectionClear and e.window is first
                   for e in events)

    def test_convert_unowned_selection(self, display):
        requestor = make_window(display)
        display.convert_selection("PRIMARY", "STRING", requestor)
        events = [display.next_event() for __ in range(display.pending())]
        notify = [e for e in events if e.type == xtypes.SelectionNotify][0]
        assert notify.property is None


class TestMultipleDisplays:
    def test_named_displays_are_distinct(self):
        close_all_displays()
        one = open_display(":0")
        two = open_display("dec4:0")
        assert one is not two
        assert open_display(":0") is one
