"""AsciiText selections: the Xt selection mechanism through a widget."""

import pytest

from repro.xlib import close_all_displays
from repro.core import make_wafe


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


class TestTextSelection:
    def test_select_owns_primary(self, wafe):
        wafe.run_script("asciiText t topLevel editType edit "
                        "string {hello world}")
        wafe.run_script("realize")
        text = wafe.lookup_widget("t")
        text.select(0, 5)
        assert text.selected_text() == "hello"
        display = wafe.app.default_display
        assert display.get_selection_owner("PRIMARY") is text.window

    def test_paste_between_widgets_via_primary(self, wafe):
        # The classic X cut-and-paste: select in one text widget, press
        # button 2 in another.
        wafe.run_script("form f topLevel")
        wafe.run_script("asciiText src f editType edit string {payload}")
        wafe.run_script("asciiText dst f editType edit string {} "
                        "fromVert src")
        wafe.run_script("realize")
        src = wafe.lookup_widget("src")
        dst = wafe.lookup_widget("dst")
        src.select(0, 7)
        x, y = dst.window.absolute_origin()
        wafe.app.default_display.click(x + 3, y + 3, button=2)
        wafe.app.process_pending()
        assert dst.get_string() == "payload"

    def test_select_word_action(self, wafe):
        wafe.run_script("asciiText t topLevel editType edit "
                        "string {one two three}")
        wafe.run_script("realize")
        text = wafe.lookup_widget("t")
        text.set_insertion_point(5)  # inside "two"
        from repro.xaw.text import _action_select_word

        _action_select_word(text, None, [])
        assert text.selected_text() == "two"

    def test_select_all_action(self, wafe):
        wafe.run_script("asciiText t topLevel editType edit string {abc}")
        wafe.run_script("realize")
        text = wafe.lookup_widget("t")
        from repro.xaw.text import _action_select_all

        _action_select_all(text, None, [])
        assert text.selected_text() == "abc"

    def test_selection_readable_via_wafe_command(self, wafe):
        wafe.run_script("asciiText t topLevel editType edit "
                        "string {selected stuff}")
        wafe.run_script("label asker topLevel -unmanaged")
        wafe.run_script("realize")
        wafe.run_script("realizeWidget asker")
        wafe.lookup_widget("t").select(0, 8)
        value = wafe.run_script("getSelectionValue asker PRIMARY STRING")
        assert value == "selected"

    def test_paste_into_readonly_is_refused(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("asciiText src f editType edit string {x}")
        wafe.run_script("asciiText ro f editType read string {fixed} "
                        "fromVert src")
        wafe.run_script("realize")
        wafe.lookup_widget("src").select(0, 1)
        ro = wafe.lookup_widget("ro")
        x, y = ro.window.absolute_origin()
        wafe.app.default_display.click(x + 3, y + 3, button=2)
        wafe.app.process_pending()
        assert ro.get_string() == "fixed"
