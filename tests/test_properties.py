"""Property-based tests (hypothesis) on the substrate invariants."""

import string as _string

from hypothesis import assume, given, settings, strategies as st

from repro.tcl import Interp, TclError
from repro.tcl.expr import format_number, parse_number
from repro.tcl.lists import list_to_string, quote_element, string_to_list
from repro.tcl.parser import parse_script
from repro.core.channel import LineParser, MassTransferState
from repro.xt.xrm import XrmDatabase, parse_specifier
from repro.xlib import keysym as keysymmod


# ----------------------------------------------------------------------
# Tcl lists: the canonical quoting discipline is loss-free.

tcl_element = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=20,
)


class TestTclListProperties:
    @given(st.lists(tcl_element, max_size=10))
    def test_list_roundtrip(self, elements):
        assert string_to_list(list_to_string(elements)) == elements

    @given(tcl_element)
    def test_quote_element_single(self, element):
        quoted = quote_element(element)
        assert string_to_list(quoted) == [element]

    @given(st.lists(tcl_element, max_size=6))
    def test_llength_matches(self, elements):
        tcl = Interp()
        tcl.set_var("l", list_to_string(elements))
        assert tcl.eval("llength $l") == str(len(elements))

    @given(st.lists(tcl_element, min_size=1, max_size=6),
           st.integers(min_value=0, max_value=5))
    def test_lindex_matches(self, elements, index):
        assume(index < len(elements))
        tcl = Interp()
        tcl.set_var("l", list_to_string(elements))
        assert tcl.eval("lindex $l %d" % index) == elements[index]

    @given(st.lists(tcl_element, max_size=8))
    def test_lappend_equals_building(self, elements):
        tcl = Interp()
        for element in elements:
            tcl.call(["lappend", "out", element])
        built = tcl.get_var("out") if elements else ""
        assert string_to_list(built) == elements


# ----------------------------------------------------------------------
# The Tcl parser never crashes with a non-Tcl exception.

any_script = st.text(
    alphabet=st.characters(min_codepoint=9, max_codepoint=126),
    max_size=60,
)


class TestParserRobustness:
    @given(any_script)
    @settings(max_examples=300)
    def test_parse_raises_only_tclerror(self, script):
        try:
            parse_script(script)
        except TclError:
            pass  # syntax errors are fine; anything else would escape

    @given(any_script)
    @settings(max_examples=200)
    def test_eval_raises_only_tclerror(self, script):
        tcl = Interp()
        try:
            tcl.eval(script)
        except TclError:
            pass

    @given(st.lists(tcl_element, min_size=1, max_size=5))
    def test_braced_word_is_literal(self, elements):
        body = " ".join(elements)
        assume("{" not in body and "}" not in body and "\\" not in body)
        tcl = Interp()
        assert tcl.eval("set x {%s}" % body) == body


# ----------------------------------------------------------------------
# expr agrees with Python on integer arithmetic.

small_int = st.integers(min_value=-10**6, max_value=10**6)


class TestExprProperties:
    @given(small_int, small_int)
    def test_addition(self, a, b):
        tcl = Interp()
        assert tcl.eval("expr {%d + %d}" % (a, b)) == str(a + b)

    @given(small_int, small_int)
    def test_multiplication(self, a, b):
        tcl = Interp()
        assert tcl.eval("expr {%d * %d}" % (a, b)) == str(a * b)

    @given(small_int, small_int)
    def test_comparison_total_order(self, a, b):
        tcl = Interp()
        less = tcl.eval("expr {%d < %d}" % (a, b))
        greater = tcl.eval("expr {%d > %d}" % (a, b))
        equal = tcl.eval("expr {%d == %d}" % (a, b))
        assert [less, greater, equal].count("1") == 1

    @given(small_int, st.integers(min_value=1, max_value=10**4))
    def test_div_mod_c_identity(self, a, b):
        # Tcl documents C semantics: (a/b)*b + a%b == a.
        tcl = Interp()
        quotient = int(tcl.eval("expr {%d / %d}" % (a, b)))
        remainder = int(tcl.eval("expr {%d %% %d}" % (a, b)))
        assert quotient * b + remainder == a
        assert abs(remainder) < b

    @given(small_int)
    def test_number_roundtrip(self, n):
        assert parse_number(format_number(n)) == n

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e12, max_value=1e12))
    def test_float_roundtrip_close(self, x):
        parsed = parse_number(format_number(x))
        assert parsed is not None
        if x != 0:
            assert abs(parsed - x) <= abs(x) * 1e-9
        else:
            assert parsed == 0


# ----------------------------------------------------------------------
# string match is reflexive for literal text; format/scan inverses.

literal_text = st.text(alphabet=_string.ascii_letters + _string.digits,
                       min_size=0, max_size=15)


class TestStringProperties:
    @given(literal_text)
    def test_match_literal_self(self, text):
        tcl = Interp()
        assert tcl.call(["string", "match", text, text]) == "1"

    @given(literal_text)
    def test_star_matches_everything(self, text):
        tcl = Interp()
        assert tcl.call(["string", "match", "*", text]) == "1"

    @given(small_int)
    def test_format_scan_decimal_inverse(self, n):
        tcl = Interp()
        formatted = tcl.call(["format", "%d", str(n)])
        tcl.call(["scan", formatted, "%d", "out"])
        assert tcl.get_var("out") == str(n)

    @given(literal_text)
    def test_toupper_tolower_involution_on_ascii(self, text):
        tcl = Interp()
        up = tcl.call(["string", "toupper", text])
        down = tcl.call(["string", "tolower", up])
        assert down == text.lower()


# ----------------------------------------------------------------------
# Xrm database: structural invariants.

component = st.text(alphabet=_string.ascii_lowercase, min_size=1,
                    max_size=6)


class TestXrmProperties:
    @given(st.lists(component, min_size=1, max_size=4))
    def test_exact_tight_spec_matches_itself(self, names):
        db = XrmDatabase()
        db.put(".".join(names), "value")
        classes = [n.capitalize() for n in names]
        assert db.query(names, classes) == "value"

    @given(st.lists(component, min_size=1, max_size=4))
    def test_star_resource_matches_any_path(self, names):
        db = XrmDatabase()
        db.put("*" + names[-1], "wild")
        classes = [n.capitalize() for n in names]
        assert db.query(names, classes) == "wild"

    @given(component, component)
    def test_later_duplicate_wins(self, name, value_suffix):
        db = XrmDatabase()
        db.put("*" + name, "first")
        db.put("*" + name, "second" + value_suffix)
        assert db.query(["app", name], ["App", name.capitalize()]) == \
            "second" + value_suffix

    @given(st.lists(component, min_size=1, max_size=5))
    def test_specifier_roundtrip(self, names):
        spec = "*" + ".".join(names)
        bindings, components = parse_specifier(spec)
        assert components == names
        assert bindings[0] == "*"
        assert all(b == "." for b in bindings[1:])


# ----------------------------------------------------------------------
# The protocol parser: chunking-invariance (the pipe can split lines
# anywhere) and classification.

protocol_line = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=30,
)


class TestChannelProperties:
    @given(st.lists(protocol_line, max_size=8), st.data())
    def test_chunking_invariance(self, lines, data):
        stream = "".join(line + "\n" for line in lines).encode()
        whole = LineParser().feed(stream)
        # Now feed the same bytes in arbitrary chunks.
        parser = LineParser()
        events = []
        i = 0
        while i < len(stream):
            step = data.draw(st.integers(min_value=1, max_value=10))
            events.extend(parser.feed(stream[i : i + step]))
            i += step
        assert events == whole

    @given(st.lists(protocol_line, max_size=8))
    def test_classification(self, lines):
        stream = "".join(line + "\n" for line in lines).encode()
        events = LineParser().feed(stream)
        assert len(events) == len(lines)
        for line, (kind, text) in zip(lines, events):
            if line.startswith("%"):
                assert kind == "command" and text == line[1:]
            else:
                assert kind == "output" and text == line

    @given(st.binary(min_size=1, max_size=200),
           st.integers(min_value=1, max_value=150), st.data())
    def test_mass_transfer_chunk_invariance(self, payload, limit, data):
        assume(limit <= len(payload))
        state = MassTransferState("C", limit, "done")
        i = 0
        result = None
        while i < len(payload) and result is None:
            step = data.draw(st.integers(min_value=1, max_value=40))
            result = state.feed(payload[i : i + step])
            i += step
        assert result is not None
        received, leftover = result
        assert received == payload[:limit]
        assert received + leftover == payload[:i]


# ----------------------------------------------------------------------
# Keysyms: typing any printable ASCII produces that character back.


class TestKeyboardProperties:
    @given(st.integers(min_value=33, max_value=126))
    def test_type_lookup_roundtrip(self, code):
        ch = chr(code)
        keycode, shifted = keysymmod.char_to_keycode(ch)
        assert keycode != 0
        text, __ = keysymmod.lookup_string(keycode, shifted)
        assert text == ch

    @given(st.integers(min_value=33, max_value=126))
    def test_keysym_name_roundtrip(self, code):
        name = keysymmod.keysym_to_string(code)
        assert name != ""
        assert keysymmod.string_to_keysym(name) == code


# ----------------------------------------------------------------------
# XPM: write/parse is the identity on pixel arrays.


class TestXpmProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8), st.data())
    def test_roundtrip(self, width, height, data):
        import numpy

        from repro.xlib.xpm import parse_xpm, write_xpm

        palette = [0x000000, 0xFF0000, 0x00FF00, 0x0000FF, 0xFFFFFF]
        image = numpy.zeros((height, width), dtype=numpy.uint32)
        for y in range(height):
            for x in range(width):
                image[y, x] = data.draw(st.sampled_from(palette))
        again = parse_xpm(write_xpm(image))
        assert (again == image).all()
