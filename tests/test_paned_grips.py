"""Tests for Grip widgets and Paned drag-resizing."""

import pytest

from repro.xlib import close_all_displays
from repro.core import make_wafe


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


def build_paned(wafe):
    wafe.run_script("paned p topLevel width 120")
    wafe.run_script("label top p label {top pane} height 40")
    wafe.run_script("label bottom p label {bottom pane} height 40")
    wafe.run_script("realize")
    return wafe.lookup_widget("p")


class TestGrips:
    def test_grip_created_between_panes(self, wafe):
        paned = build_paned(wafe)
        top = wafe.lookup_widget("top")
        assert top in paned._grips
        grip = paned._grips[top]
        assert grip.realized and grip.window is not None
        # The grip sits at the boundary below the top pane.
        assert grip.resources["y"] >= top.resources["height"] - 2

    def test_no_grip_after_last_pane(self, wafe):
        paned = build_paned(wafe)
        bottom = wafe.lookup_widget("bottom")
        assert bottom not in paned._grips

    def test_show_grips_false_suppresses(self, wafe):
        wafe.run_script("paned p topLevel showGrips false")
        wafe.run_script("label a p")
        wafe.run_script("label b p")
        wafe.run_script("realize")
        assert wafe.lookup_widget("p")._grips == {}

    def test_drag_grip_resizes_pane(self, wafe):
        paned = build_paned(wafe)
        top = wafe.lookup_widget("top")
        bottom = wafe.lookup_widget("bottom")
        grip = paned._grips[top]
        before_height = top.resources["height"]
        before_bottom_y = bottom.resources["y"]
        gx, gy = grip.window.absolute_origin()
        display = wafe.app.default_display
        # Press on the grip, drag 25px down, release.
        display.press_button(gx + 3, gy + 3)
        wafe.app.process_pending()
        display.motion(gx + 3, gy + 3 + 25)
        wafe.app.process_pending()
        display.release_button(gx + 3, gy + 3 + 25)
        wafe.app.process_pending()
        assert top.constraints["preferredPaneSize"] == before_height + 25
        assert top.resources["height"] == before_height + 25
        assert bottom.resources["y"] == before_bottom_y + 25

    def test_drag_respects_min_constraint(self, wafe):
        wafe.run_script("paned p topLevel width 100")
        wafe.run_script("label a p height 50 min 30")
        wafe.run_script("label b p height 50")
        wafe.run_script("realize")
        paned = wafe.lookup_widget("p")
        pane = wafe.lookup_widget("a")
        grip = paned._grips[pane]
        gx, gy = grip.window.absolute_origin()
        display = wafe.app.default_display
        display.press_button(gx + 2, gy + 2)
        display.motion(gx + 2, gy - 100)  # far above the minimum
        display.release_button(gx + 2, gy - 100)
        wafe.app.process_pending()
        assert pane.resources["height"] == 30

    def test_grip_creation_command(self, wafe):
        wafe.run_script("grip g topLevel")
        assert wafe.lookup_widget("g").CLASS_NAME == "Grip"


class TestImplicitGrab:
    def test_drag_outside_window_still_delivers(self, wafe):
        # Motion events during a button drag go to the pressed widget
        # even when the pointer leaves it (the implicit pointer grab).
        wafe.run_script("set moves 0")
        wafe.run_script("label pad topLevel width 50 height 30")
        wafe.run_script("action pad override "
                        "{<BtnMotion>: exec(incr moves)}")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("pad")
        x, y = widget.window.absolute_origin()
        display = wafe.app.default_display
        display.press_button(x + 5, y + 5)
        display.motion(x + 500, y + 300)  # way outside the widget
        display.motion(x + 600, y + 300)
        display.release_button(x + 600, y + 300)
        wafe.app.process_pending()
        assert wafe.run_script("set moves") == "2"

    def test_grab_cleared_after_release(self, wafe):
        wafe.run_script("label pad topLevel")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("pad")
        x, y = widget.window.absolute_origin()
        display = wafe.app.default_display
        display.press_button(x + 2, y + 2)
        assert display.implicit_grab is widget.window
        display.release_button(x + 2, y + 2)
        assert display.implicit_grab is None
