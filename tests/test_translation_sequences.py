"""Tests for multi-event translation sequences (double-click et al.)."""

import pytest

from repro.xlib import close_all_displays, xtypes
from repro.xlib.events import XEvent
from repro.xt.translations import parse_translation_table
from repro.core import make_wafe


def press(button=1):
    return XEvent(xtypes.ButtonPress, None, button=button)


def release(button=1):
    return XEvent(xtypes.ButtonRelease, None, button=button)


class TestStatefulMatcher:
    def table(self, text):
        return parse_translation_table(text)

    def test_sequence_fires_only_when_complete(self):
        table = self.table("<Btn1Down>,<Btn1Up>: click()")
        progress = {}
        assert table.lookup_stateful(press(), progress) is None
        assert table.lookup_stateful(release(), progress) == [("click", [])]

    def test_sequence_resets_after_firing(self):
        table = self.table("<Btn1Down>,<Btn1Up>: click()")
        progress = {}
        table.lookup_stateful(press(), progress)
        table.lookup_stateful(release(), progress)
        # A lone release does not fire again.
        assert table.lookup_stateful(release(), progress) is None

    def test_broken_sequence_resets(self):
        table = self.table("<Btn1Down>,<Btn1Up>: click()")
        progress = {}
        table.lookup_stateful(press(), progress)
        key = XEvent(xtypes.KeyPress, None, keycode=198)
        assert table.lookup_stateful(key, progress) is None
        # The earlier press no longer counts.
        assert table.lookup_stateful(release(), progress) is None

    def test_sequence_can_restart_mid_flight(self):
        table = self.table("<Btn1Down>,<Btn1Down>: double()")
        progress = {}
        assert table.lookup_stateful(press(), progress) is None
        assert table.lookup_stateful(press(), progress) == [("double", [])]

    def test_triple_sequence(self):
        table = self.table("<Key>a,<Key>b,<Key>c: abc()")

        def key(keycode):
            return XEvent(xtypes.KeyPress, None, keycode=keycode)

        from repro.xlib.keysym import keysym_to_keycode

        a, __ = keysym_to_keycode("a")
        b, __ = keysym_to_keycode("b")
        c, __ = keysym_to_keycode("c")
        progress = {}
        assert table.lookup_stateful(key(a), progress) is None
        assert table.lookup_stateful(key(b), progress) is None
        assert table.lookup_stateful(key(c), progress) == [("abc", [])]

    def test_single_event_productions_unaffected(self):
        table = self.table("<Btn1Down>: set()\n<Btn1Up>: notify()")
        progress = {}
        assert table.lookup_stateful(press(), progress) == [("set", [])]
        assert table.lookup_stateful(release(), progress) == [("notify", [])]

    def test_stateless_lookup_ignores_sequences(self):
        table = self.table("<Btn1Down>,<Btn1Up>: click()")
        assert table.lookup(press()) is None


class TestThroughDispatch:
    @pytest.fixture
    def wafe(self):
        close_all_displays()
        return make_wafe()

    def test_press_then_release_sequence_in_widget(self, wafe):
        lines = []
        wafe.interp.write_output = lambda t: lines.append(t.rstrip("\n"))
        wafe.run_script("label l topLevel")
        wafe.run_script("action l override "
                        "{<Btn1Down>,<Btn1Up>: exec(echo full-click)}")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("l")
        x, y = widget.window.absolute_origin()
        display = wafe.app.default_display
        display.press_button(x + 1, y + 1)
        wafe.app.process_pending()
        assert lines == []  # not yet
        display.release_button(x + 1, y + 1)
        wafe.app.process_pending()
        assert lines == ["full-click"]

    def test_toggle_default_translation_is_a_sequence(self, wafe):
        # Toggle's stock binding <Btn1Down>,<Btn1Up>: the state flips
        # only once the button is released over the widget.
        wafe.run_script("toggle t topLevel")
        wafe.run_script("realize")
        toggle = wafe.lookup_widget("t")
        x, y = toggle.window.absolute_origin()
        display = wafe.app.default_display
        display.press_button(x + 1, y + 1)
        wafe.app.process_pending()
        assert toggle["state"] is False
        display.release_button(x + 1, y + 1)
        wafe.app.process_pending()
        assert toggle["state"] is True

    def test_sequences_are_per_widget(self, wafe):
        lines = []
        wafe.interp.write_output = lambda t: lines.append(t.rstrip("\n"))
        wafe.run_script("form f topLevel")
        wafe.run_script("label a f")
        wafe.run_script("label b f fromHoriz a")
        for name in ("a", "b"):
            wafe.run_script("action %s override "
                            "{<Btn1Down>,<Btn1Up>: exec(echo %s)}"
                            % (name, name))
        wafe.run_script("realize")
        display = wafe.app.default_display
        ax, ay = wafe.lookup_widget("a").window.absolute_origin()
        bx, by = wafe.lookup_widget("b").window.absolute_origin()
        # Press on a, but release on b: neither sequence completes on
        # the other widget's window.
        display.press_button(ax + 1, ay + 1)
        display.release_button(bx + 1, by + 1)
        wafe.app.process_pending()
        assert lines == []
        # A clean click on b fires b only.
        display.click(bx + 1, by + 1)
        wafe.app.process_pending()
        assert lines == ["b"]
