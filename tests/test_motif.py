"""Tests for the Motif layer: XmString parsing/rendering and widgets."""

import pytest

from repro.xlib import close_all_displays
from repro.xlib.colors import alloc_color
from repro.xlib.graphics import window_pixels
from repro.xt import ApplicationShell, XtAppContext
from repro.motif import (
    FontListError,
    RIGHT_TO_LEFT,
    LEFT_TO_RIGHT,
    XmCascadeButton,
    XmCommand,
    XmLabel,
    XmPushButton,
    XmRowColumn,
    XmText,
    XmToggleButton,
    parse_font_list,
    parse_xmstring,
)

PAPER_FONTLIST = "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft"
PAPER_LABEL = r"I'm\bft bold\ft and\rl strange"


@pytest.fixture
def app():
    close_all_displays()
    return XtAppContext(app_name="mofe", app_class="Mofe")


@pytest.fixture
def top(app):
    return ApplicationShell("topLevel", None, app=app)


class TestFontList:
    def test_paper_fontlist_parses(self):
        font_list = parse_font_list(PAPER_FONTLIST)
        assert font_list.tags() == ["ft", "bft"]
        assert font_list.font("ft").weight == "medium"
        assert font_list.font("bft").weight == "bold"
        assert font_list.default_tag == "ft"

    def test_bad_pattern_raises(self):
        with pytest.raises(FontListError):
            parse_font_list("*nosuchfontfamily*=x")


class TestXmStringParsing:
    def test_paper_figure3_segments(self):
        font_list = parse_font_list(PAPER_FONTLIST)
        xmstring = parse_xmstring(PAPER_LABEL, font_list)
        texts = [(s.text, s.tag, s.direction) for s in xmstring.segments]
        assert texts == [
            ("I'm", "ft", LEFT_TO_RIGHT),
            (" bold", "bft", LEFT_TO_RIGHT),
            (" and", "ft", LEFT_TO_RIGHT),
            (" strange", "ft", RIGHT_TO_LEFT),
        ]

    def test_plain_text_reconstructs(self):
        font_list = parse_font_list(PAPER_FONTLIST)
        xmstring = parse_xmstring(PAPER_LABEL, font_list)
        assert xmstring.plain_text() == "I'm bold and strange"

    def test_unknown_escape_kept_literally(self):
        font_list = parse_font_list(PAPER_FONTLIST)
        xmstring = parse_xmstring(r"a\zz b", font_list)
        assert xmstring.plain_text() == r"a\zz b"

    def test_longest_tag_prefix_wins(self):
        # 'bft' must match before 'b...' could be misread.
        font_list = parse_font_list(PAPER_FONTLIST)
        xmstring = parse_xmstring(r"\bftX", font_list)
        assert xmstring.segments[0].tag == "bft"
        assert xmstring.segments[0].text == "X"

    def test_direction_toggling(self):
        font_list = parse_font_list(PAPER_FONTLIST)
        xmstring = parse_xmstring(r"ab\rlcd\lref", font_list)
        dirs = [s.direction for s in xmstring.segments]
        assert dirs == [LEFT_TO_RIGHT, RIGHT_TO_LEFT, LEFT_TO_RIGHT]

    def test_width_uses_segment_fonts(self):
        font_list = parse_font_list(PAPER_FONTLIST)
        plain = parse_xmstring("hello", font_list)
        bold = parse_xmstring(r"\bfthello", font_list)
        assert bold.width(font_list) > plain.width(font_list)


class TestXmLabel:
    def test_figure3_label_renders(self, top):
        label = XmLabel("l", top, args={
            "fontList": PAPER_FONTLIST,
            "labelString": PAPER_LABEL,
            "foreground": "black",
        })
        top.realize()
        label.redraw()
        pixels = window_pixels(label.window)
        assert (pixels == alloc_color("black")).any()
        assert label.compound_string().plain_text() == "I'm bold and strange"

    def test_rtl_segment_renders_differently(self, top):
        ltr = XmLabel("a", top, args={"fontList": PAPER_FONTLIST,
                                      "labelString": "xy"})
        top.realize()
        ltr.redraw()
        first = window_pixels(ltr.window).copy()
        ltr.set_values({"labelString": r"\rlxy"})
        second = window_pixels(ltr.window)
        assert (first != second).any()

    def test_default_label_is_widget_name(self, top):
        label = XmLabel("hello", top)
        assert label.compound_string().plain_text() == "hello"


class TestXmButtons:
    def test_pushbutton_arm_and_activate(self, app, top):
        events = []
        button = XmPushButton("b", top)
        button.add_callback("armCallback", lambda w, d: events.append("arm"))
        button.add_callback("activateCallback",
                            lambda w, d: events.append("activate"))
        button.add_callback("disarmCallback",
                            lambda w, d: events.append("disarm"))
        top.realize()
        x, y = button.window.absolute_origin()
        app.default_display.click(x + 3, y + 3)
        app.process_pending()
        assert events == ["arm", "activate", "disarm"]

    def test_cascade_button_highlight(self, top):
        button = XmCascadeButton("c", top)
        top.realize()
        before = window_pixels(button.window).copy()
        button.highlight(True)
        after = window_pixels(button.window)
        assert (before != after).any()
        button.highlight(False)

    def test_toggle_button_state(self, app, top):
        changes = []
        toggle = XmToggleButton("t", top)
        toggle.add_callback("valueChangedCallback",
                            lambda w, d: changes.append(d))
        top.realize()
        x, y = toggle.window.absolute_origin()
        app.default_display.click(x + 2, y + 2)
        app.process_pending()
        assert toggle.get_state() is True
        assert changes == [True]


class TestXmTextAndCommand:
    def test_text_get_set(self, top):
        text = XmText("t", top)
        text.set_string("hello motif")
        assert text.get_string() == "hello motif"

    def test_command_append_value(self, top):
        command = XmCommand("cmd", top)
        command.append_value("ls")
        command.append_value(" -l")
        assert command["command"] == "ls -l"

    def test_command_entered_goes_to_history(self, top):
        entered = []
        command = XmCommand("cmd", top)
        command.add_callback("commandEnteredCallback",
                             lambda w, d: entered.append(d))
        command.set_value("make")
        result = command.enter_command()
        assert result == "make"
        assert command["historyItems"] == ["make"]
        assert entered == ["make"]
        assert command["command"] == ""

    def test_history_bounded(self, top):
        command = XmCommand("cmd", top, args={"historyMaxItems": "2"})
        for i in range(4):
            command.set_value("c%d" % i)
            command.enter_command()
        assert command["historyItems"] == ["c2", "c3"]


class TestXmRowColumn:
    def test_vertical_stacking(self, top):
        column = XmRowColumn("rc", top)
        one = XmLabel("one", column)
        two = XmLabel("two", column)
        top.realize()
        assert two.resources["y"] > one.resources["y"]

    def test_horizontal_orientation(self, top):
        row = XmRowColumn("rc", top, args={"orientation": "horizontal"})
        one = XmLabel("one", row)
        two = XmLabel("two", row)
        top.realize()
        assert two.resources["x"] > one.resources["x"]
        assert one.resources["y"] == two.resources["y"]
