"""The unified event core: fault paths, hostile handlers, both backends.

The suites here are the ISSUE-8 hostile-handler corpus: handlers that
raise (quarantine after N strikes, loop stays live), handlers that
stall (slow-handler watchdog), timers scheduled from inside timers,
EINTR injected via a real signal during the wait, fd recycling behind
the core's back, and the bounded shutdown drain.  Most run against
both the selectors backend and the retained raw-``select`` executable
spec (``EventCore(use_selectors=False)``).
"""

import os
import signal
import sys
import textwrap
import time

import pytest

from repro.xlib import close_all_displays
from repro.xt.eventcore import EventCore
from repro.core import make_wafe
from repro.core.frontend import Frontend
from repro.core.supervisor import BackendSupervisor, substitute_quarantine

BACKENDS = [True, False]
BACKEND_IDS = ["selectors", "select-spec"]


@pytest.fixture(params=BACKENDS, ids=BACKEND_IDS)
def core(request):
    return EventCore(use_selectors=request.param)


def make_pipe():
    """A nonblocking pipe as (reader fileobj, writer fd)."""
    read_fd, write_fd = os.pipe()
    os.set_blocking(read_fd, False)
    reader = os.fdopen(read_fd, "rb", buffering=0)
    return reader, write_fd


def poll_until(core, predicate, deadline_s=5.0, step=0.05):
    deadline = time.monotonic() + deadline_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        core.run_due_timers()
        core.poll(step)
        core.run_one_work_proc()


# ----------------------------------------------------------------------
# Timers: the monotonic heap


class TestTimers:
    def test_fire_in_deadline_order(self, core):
        order = []
        core.add_timer(40, order.append, ("late",))
        core.add_timer(1, order.append, ("early",))
        poll_until(core, lambda: len(order) == 2)
        assert order == ["early", "late"]

    def test_remove_is_lazy_and_safe(self, core):
        fired = []
        timer_id = core.add_timer(1, fired.append, (1,))
        assert core.remove_timer(timer_id) is True
        assert core.remove_timer(timer_id) is False  # double: no-op
        time.sleep(0.01)
        assert core.run_due_timers() == 0
        assert fired == []
        assert core.next_deadline() is None  # tombstone discarded

    def test_timer_added_from_within_a_timer(self, core):
        order = []

        def outer():
            order.append("outer")
            core.add_timer(1, lambda: order.append("inner"))

        core.add_timer(1, outer)
        poll_until(core, lambda: order == ["outer", "inner"])

    def test_zero_ms_reschedule_does_not_spin_one_pass(self, core):
        """A 0ms timer that reschedules itself fires once per
        run_due_timers pass, never in a tight loop inside one pass."""
        count = []

        def tick():
            count.append(1)
            core.add_timer(0, tick)

        core.add_timer(0, tick)
        time.sleep(0.001)
        assert core.run_due_timers() == 1

    def test_raising_timer_contained_and_reported(self, core):
        contained = []
        core.error_handler = lambda ctx, exc: contained.append((ctx, exc))
        core.add_timer(1, lambda: 1 / 0)
        poll_until(core, lambda: bool(contained))
        assert contained[0][0] == "timeout handler"
        assert core.stats()["handler_errors"] == 1


# ----------------------------------------------------------------------
# fd watches: edge cases that used to KeyError or misfire


class TestWatchEdgeCases:
    def test_remove_from_inside_own_handler(self, core):
        reader, write_fd = make_pipe()
        hits = []
        holder = {}

        def handler(fileobj):
            fileobj.read(100)
            hits.append(1)
            core.remove_watch(holder["id"])

        holder["id"] = core.add_reader(reader, handler)
        os.write(write_fd, b"x")
        poll_until(core, lambda: bool(hits))
        os.write(write_fd, b"y")
        core.poll(0.05)
        assert hits == [1]  # removed: no refire
        os.close(write_fd)
        reader.close()

    def test_double_remove_is_safe_noop(self, core):
        reader, write_fd = make_pipe()
        watch_id = core.add_reader(reader, lambda f: None)
        assert core.remove_watch(watch_id) is True
        assert core.remove_watch(watch_id) is False
        assert core.remove_watch(99999) is False
        os.close(write_fd)
        reader.close()

    def test_handler_removing_sibling_suppresses_stale_dispatch(self,
                                                                core):
        """Two watches ready in the same batch; whichever dispatches
        first removes the other -- the removed one must not fire."""
        reader_a, write_a = make_pipe()
        reader_b, write_b = make_pipe()
        fired = []
        ids = {}

        def make_handler(name, other):
            def handler(fileobj):
                fileobj.read(100)
                fired.append(name)
                core.remove_watch(ids[other])
            return handler

        ids["a"] = core.add_reader(reader_a, make_handler("a", "b"))
        ids["b"] = core.add_reader(reader_b, make_handler("b", "a"))
        os.write(write_a, b"x")
        os.write(write_b, b"x")
        poll_until(core, lambda: bool(fired))
        core.poll(0.05)
        assert len(fired) == 1  # exactly one survived the batch
        for fd in (write_a, write_b):
            os.close(fd)
        reader_a.close()
        reader_b.close()

    def test_closed_then_reused_fd_does_not_misfire(self, core):
        """Close a watched fd without unregistering, let the OS recycle
        the number, register a new watch: the stale registration must
        neither fire the old handler nor misfire the new one."""
        reader, write_fd = make_pipe()
        old_fd = reader.fileno()
        old_hits = []
        core.add_reader(reader, lambda f: old_hits.append(1))
        reader.close()  # closed behind the core's back
        os.close(write_fd)
        # os.pipe reuses the lowest free descriptor -- usually the one
        # just closed.  The test is meaningful either way; assert the
        # common case when we get it.
        new_reader, new_write = make_pipe()
        new_hits = []
        core.add_reader(new_reader, lambda f: (f.read(10),
                                               new_hits.append(1)))
        if new_reader.fileno() == old_fd:
            assert core.stats()["dead_fd_drops"] >= 1  # stale purged
        core.poll(0.05)
        assert new_hits == []   # no data yet: no misfire
        assert old_hits == []   # stale handler never fires
        os.write(new_write, b"z")
        poll_until(core, lambda: bool(new_hits))
        assert old_hits == []
        os.close(new_write)
        new_reader.close()

    def test_dead_fd_reaped_with_leak_counter(self, core):
        messages = []
        core.report = messages.append
        reader, write_fd = make_pipe()
        core.add_reader(reader, lambda f: None)
        reader.close()
        os.close(write_fd)
        assert core.reap_dead_fds() == 1
        assert core.stats()["dead_fd_drops"] == 1
        assert core.active_watches() == 0
        assert any("dead fd" in m for m in messages)

    def test_idle_blocking_poll_reaps_silent_leaks(self, core):
        """epoll drops a closed fd silently; a timed-out blocking poll
        must notice and release the watch (else has_sources pins the
        loop open forever)."""
        reader, write_fd = make_pipe()
        core.add_reader(reader, lambda f: None)
        reader.close()
        os.close(write_fd)
        core.poll(0.01)
        assert core.active_watches() == 0
        assert not core.has_sources()


# ----------------------------------------------------------------------
# Quarantine: the per-handler exception firewall


class TestQuarantine:
    def test_raising_handler_quarantined_loop_stays_live(self, core):
        contained = []
        quarantined = []
        messages = []
        core.error_handler = lambda ctx, exc: contained.append(ctx)
        core.report = messages.append
        core.on_quarantine = (
            lambda kind, fd, label, strikes, exc:
            quarantined.append((kind, fd, label, strikes)))

        bad_reader, bad_write = make_pipe()
        good_reader, good_write = make_pipe()
        good_hits = []

        def bad_handler(fileobj):
            raise RuntimeError("hostile handler")  # never reads: stays ready

        core.add_reader(bad_reader, bad_handler, label="hostile")
        core.add_reader(good_reader, lambda f: (f.read(10),
                                                good_hits.append(1)))
        os.write(bad_write, b"x")
        poll_until(core, lambda: bool(quarantined))
        stats = core.stats()
        assert stats["quarantined"] == 1
        assert stats["handler_errors"] == core.QUARANTINE_STRIKES
        assert len(contained) == core.QUARANTINE_STRIKES
        kind, fd, label, strikes = quarantined[0]
        assert (kind, label, strikes) == ("input", "hostile",
                                          core.QUARANTINE_STRIKES)
        assert any("quarantined" in m for m in messages)
        # The loop is still live: the healthy watch keeps working.
        os.write(good_write, b"y")
        poll_until(core, lambda: bool(good_hits))
        # ...and the hostile one is genuinely gone.
        core.poll(0.05)
        assert stats["quarantined"] == core.stats()["quarantined"]
        for fd_ in (bad_write, good_write):
            os.close(fd_)
        bad_reader.close()
        good_reader.close()

    def test_strikes_reset_on_success(self, core):
        core.error_handler = lambda ctx, exc: None
        reader, write_fd = make_pipe()
        state = {"raise": True}

        def flaky(fileobj):
            data = fileobj.read(10)
            if state["raise"] and data:
                raise RuntimeError("flaky")

        core.add_reader(reader, flaky)
        # strikes-1 failures, then a success, then strikes-1 more:
        # never quarantined because the streak resets.
        for round_ in range(2):
            for __ in range(core.QUARANTINE_STRIKES - 1):
                os.write(write_fd, b"x")
                poll_until(core, lambda n=core.stats()["dispatches"]:
                           core.stats()["dispatches"] > n)
            state["raise"] = False
            os.write(write_fd, b"x")
            poll_until(core, lambda n=core.stats()["dispatches"]:
                       core.stats()["dispatches"] > n)
            state["raise"] = True
        assert core.stats()["quarantined"] == 0
        assert core.active_watches() == 1
        os.close(write_fd)
        reader.close()

    def test_quarantine_hook_failure_is_contained(self, core):
        contained = []
        core.error_handler = lambda ctx, exc: contained.append(ctx)

        def exploding_hook(*args):
            raise RuntimeError("hook is hostile too")

        core.on_quarantine = exploding_hook
        reader, write_fd = make_pipe()
        core.add_reader(reader, lambda f: 1 / 0)
        os.write(write_fd, b"x")
        poll_until(core, lambda: core.stats()["quarantined"] == 1)
        assert "quarantine hook" in contained
        os.close(write_fd)
        reader.close()


# ----------------------------------------------------------------------
# The slow-handler watchdog


class TestSlowHandlerWatchdog:
    def test_slow_handler_reported(self, core):
        messages = []
        core.report = messages.append
        core.handler_time_limit_ms = 10
        reader, write_fd = make_pipe()
        core.add_reader(
            reader,
            lambda f: (f.read(10), time.sleep(0.05)), label="sleepy")
        os.write(write_fd, b"x")
        poll_until(core, lambda: core.stats()["slow_dispatches"] >= 1)
        assert any("handlerTimeLimit" in m and "sleepy" in m
                   for m in messages)
        os.close(write_fd)
        reader.close()

    def test_fast_handlers_not_reported(self, core):
        messages = []
        core.report = messages.append
        core.handler_time_limit_ms = 500
        core.add_timer(1, lambda: None)
        poll_until(core, lambda: core.stats()["timers_fired"] == 1)
        assert core.stats()["slow_dispatches"] == 0
        assert messages == []

    def test_slow_timer_reported_too(self, core):
        messages = []
        core.report = messages.append
        core.handler_time_limit_ms = 10
        core.add_timer(1, lambda: time.sleep(0.05), label="slow timer")
        poll_until(core, lambda: core.stats()["timers_fired"] == 1)
        assert core.stats()["slow_dispatches"] == 1
        assert any("slow timer" in m for m in messages)


# ----------------------------------------------------------------------
# EINTR: real signals during the wait


class TestEintr:
    @pytest.fixture(autouse=True)
    def _alarm(self):
        hits = []
        previous = signal.signal(signal.SIGALRM,
                                 lambda signum, frame: hits.append(1))
        self.signal_hits = hits
        yield
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

    def test_timer_fires_despite_signal_storm(self, core):
        fired = []
        core.add_timer(120, fired.append, (1,))
        signal.setitimer(signal.ITIMER_REAL, 0.01, 0.01)
        start = time.monotonic()
        poll_until(core, lambda: bool(fired), deadline_s=5.0)
        elapsed = time.monotonic() - start
        assert self.signal_hits  # the storm really happened
        assert elapsed < 3.0     # signals did not park the timer

    def test_wait_writable_deadline_survives_signals(self, core):
        read_fd, write_fd = os.pipe()
        os.set_blocking(write_fd, False)
        while True:  # fill the pipe so it is never writable
            try:
                if os.write(write_fd, b"x" * 4096) == 0:
                    break
            except BlockingIOError:
                break
        signal.setitimer(signal.ITIMER_REAL, 0.01, 0.01)
        start = time.monotonic()
        assert core.wait_writable(write_fd, 0.3) is False
        elapsed = time.monotonic() - start
        assert self.signal_hits
        assert 0.25 <= elapsed < 1.5  # bounded: not extended per signal
        os.close(read_fd)
        os.close(write_fd)

    def test_poll_survives_signal_during_select(self, core):
        reader, write_fd = make_pipe()
        hits = []
        core.add_reader(reader, lambda f: (f.read(10), hits.append(1)))
        signal.setitimer(signal.ITIMER_REAL, 0.01, 0.01)
        core.poll(0.1)  # signal lands inside the wait; no exception
        os.write(write_fd, b"x")
        poll_until(core, lambda: bool(hits))
        assert self.signal_hits
        os.close(write_fd)
        reader.close()


# ----------------------------------------------------------------------
# wait_writable and the shutdown drain


class TestShutdown:
    def test_wait_writable_true_on_writable_pipe(self, core):
        read_fd, write_fd = os.pipe()
        assert core.wait_writable(write_fd, 0.5) is True
        os.close(read_fd)
        os.close(write_fd)

    def test_wait_writable_false_on_dead_fd(self, core):
        read_fd, write_fd = os.pipe()
        os.close(read_fd)
        os.close(write_fd)
        assert core.wait_writable(write_fd, 0.2) is False

    def test_shutdown_drains_pending_writer(self, core):
        read_fd, write_fd = os.pipe()
        os.set_blocking(write_fd, False)
        drained = []
        holder = {}

        def on_writable(fd):
            drained.append(1)
            core.remove_watch(holder["id"])  # "queue" now empty

        holder["id"] = core.add_writer(write_fd, on_writable)
        leaked = core.shutdown(drain_timeout=1.0)
        assert drained == [1]
        assert leaked == 0
        assert not core.has_sources()
        os.close(read_fd)
        os.close(write_fd)

    def test_shutdown_bounded_when_never_writable(self, core):
        messages = []
        core.report = messages.append
        read_fd, write_fd = os.pipe()
        os.set_blocking(write_fd, False)
        while True:  # full pipe, nobody reading
            try:
                if os.write(write_fd, b"x" * 4096) == 0:
                    break
            except BlockingIOError:
                break
        core.add_writer(write_fd, lambda fd: None)
        start = time.monotonic()
        leaked = core.shutdown(drain_timeout=0.2)
        elapsed = time.monotonic() - start
        assert leaked == 1
        assert elapsed < 2.0
        assert core.stats()["leaked_watches"] == 1
        assert any("shutdown" in m for m in messages)
        assert not core.has_sources()
        os.close(read_fd)
        os.close(write_fd)

    def test_core_usable_after_shutdown(self, core):
        core.shutdown()
        fired = []
        core.add_timer(1, fired.append, (1,))
        reader, write_fd = make_pipe()
        core.add_reader(reader, lambda f: (f.read(10), fired.append(2)))
        os.write(write_fd, b"x")
        poll_until(core, lambda: len(fired) == 2)
        os.close(write_fd)
        reader.close()


# ----------------------------------------------------------------------
# The percent codes of onHandlerQuarantine


class TestQuarantineSubstitution:
    def test_all_codes(self):
        exc = RuntimeError("boom")
        out = substitute_quarantine("k=%k f=%f l=%l n=%n e=%e pct=%%",
                                    "input", 7, "backend stdout", 3, exc)
        assert out == ("k=input f=7 l=backend stdout n=3 "
                       "e=RuntimeError: boom pct=%")

    def test_missing_label_and_exc(self):
        assert substitute_quarantine("%l|%e", "output", 1, None, 1,
                                     None) == "|"

    def test_unknown_code_left_alone(self):
        assert substitute_quarantine("%z", "input", 1, "l", 1,
                                     None) == "%z"


# ----------------------------------------------------------------------
# Wafe-level integration: resources, commands, info eventstats


@pytest.fixture(params=BACKENDS, ids=BACKEND_IDS)
def wafe(request):
    close_all_displays()
    return make_wafe(use_selectors=request.param)


def eventstats(wafe):
    fields = wafe.run_script("info eventstats").split()
    return dict(zip(fields[::2], fields[1::2]))


class TestWafeIntegration:
    def test_info_eventstats_shape(self, wafe):
        stats = eventstats(wafe)
        expected_backend = ("select" if not wafe.app.core.use_selectors
                            else "selectors:")
        assert stats["backend"].startswith(expected_backend)
        for key in ("activeInputs", "activeOutputs", "pendingTimers",
                    "registered", "dispatches", "quarantined",
                    "slowDispatches", "staleSkips", "deadFdDrops",
                    "handlerTimeLimitMs"):
            assert key in stats

    def test_info_eventstats_counts_and_reset(self, wafe):
        wafe.app.add_timeout(1, lambda: None)
        wafe.app.main_loop(max_idle=5)
        stats = eventstats(wafe)
        assert int(stats["timersFired"]) >= 1
        assert int(stats["polls"]) >= 1
        wafe.run_script("info eventstats reset")
        stats = eventstats(wafe)
        assert stats["timersFired"] == "0"
        assert stats["polls"] == "0"

    def test_handler_time_limit_command(self, wafe):
        assert wafe.run_script("handlerTimeLimit") == "0"
        wafe.run_script("handlerTimeLimit 25")
        assert wafe.app.core.handler_time_limit_ms == 25
        assert wafe.run_script("handlerTimeLimit") == "25"

    def test_handler_time_limit_resource(self, wafe):
        wafe.app.merge_resources("wafe.handlerTimeLimit: 40")
        wafe.supervision.load_resources(wafe.app)
        wafe.apply_fault_containment()
        assert wafe.app.core.handler_time_limit_ms == 40

    def test_on_handler_quarantine_script_runs(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script(
            "onHandlerQuarantine {set quarantined {%k fd %f after %n}}")
        reader, write_fd = make_pipe()
        wafe.app.add_input(reader, lambda f: 1 / 0, label="hostile")
        os.write(write_fd, b"x")
        deadline = time.monotonic() + 5.0
        while wafe.app.core.stats()["quarantined"] == 0:
            assert time.monotonic() < deadline
            wafe.app.process_one(block=True)
        strikes = wafe.app.core.QUARANTINE_STRIKES
        assert wafe.interp.get_var("quarantined") == \
            "input fd %d after %d" % (reader.fileno(), strikes)
        assert any("quarantined" in e for e in errors)
        os.close(write_fd)
        reader.close()

    def test_slow_handler_reported_through_error_sink(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("handlerTimeLimit 10")
        wafe.app.add_timeout(1, lambda: time.sleep(0.05))
        wafe.app.main_loop(max_idle=10)
        assert any("handlerTimeLimit" in e for e in errors)
        assert eventstats(wafe)["slowDispatches"] == "1"


# ----------------------------------------------------------------------
# Frontend + supervisor regression on both backends


def write_backend(tmp_path, body):
    script = tmp_path / "backend.py"
    script.write_text(textwrap.dedent(body))
    return [sys.executable, "-u", str(script)]


ECHO_BACKEND = """
    import sys
    print("%set started 1")
    sys.stdout.flush()
    for line in sys.stdin:
        print("%set got " + line.strip())
        sys.stdout.flush()
        break
"""


class TestFrontendOnBothBackends:
    def test_roundtrip_and_close_drain(self, wafe, tmp_path):
        command = write_backend(tmp_path, ECHO_BACKEND)
        frontend = Frontend(wafe, command)
        interp = wafe.interp
        wafe.app.main_loop(until=lambda: interp.var_exists("started"),
                           max_idle=2000)
        frontend.send("ping\n")
        wafe.app.main_loop(until=lambda: interp.var_exists("got"),
                           max_idle=2000)
        assert interp.get_var("got") == "ping"
        frontend.close()
        assert frontend.exit_status is not None
        assert eventstats(wafe)["activeInputs"] == "0"

    def test_supervisor_restart_on_new_core(self, wafe, tmp_path):
        wafe.run_script("restartPolicy on-failure 2 1")
        counter = tmp_path / "runs"
        command = write_backend(tmp_path, """
            import os, sys
            path = {path!r}
            n = 1
            if os.path.exists(path):
                n = int(open(path).read()) + 1
            open(path, "w").write(str(n))
            print("%set runs " + str(n))
            sys.stdout.flush()
            sys.exit(3)
        """.format(path=str(counter)))
        wafe.error_sink = lambda msg: None
        supervisor = BackendSupervisor(wafe, command)
        supervisor.start()
        wafe.main_loop(until=lambda: supervisor.restart_count >= 2,
                       max_idle=4000)
        assert supervisor.restart_count == 2
        assert int(wafe.interp.get_var("runs")) >= 2
        supervisor.stop()
        # The backoff timers all ran or were cancelled on the new core.
        assert wafe.app._timeouts == []
