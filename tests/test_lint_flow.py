"""Flow-sensitive wafelint: the CFG builder, the dataflow engine, and
rules W012..W017, plus the deterministic-diagnostics contract."""

from repro.lint import check
from repro.lint.analyzer import Analyzer
from repro.lint.cfg import PROC, build_graph
from repro.lint.dataflow import (
    ConstLattice,
    Liveness,
    NAC,
    SetUnion,
    reachable_blocks,
    solve,
)
from repro.lint.knowledge import knowledge_for


def _lit(stmt, i):
    """The literal text of statement word ``i`` (test helper)."""
    return stmt.words[i].literal_value()


def codes(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, "expected a %s among %r" % (code, diagnostics)
    return found


# ---------------------------------------------------------------------------
# The CFG builder


class TestCFG:
    def test_straight_line_is_one_block(self):
        graph = build_graph("set a 1\nset b 2\nset c 3\n")
        real = [b for b in graph.blocks if b.stmts]
        assert len(real) == 1
        assert [s.name for s in real[0].stmts] == ["set", "set", "set"]

    def test_if_produces_branch_and_join(self):
        graph = build_graph(
            "if {$a} { set x 1 } else { set x 2 }\nset y $x\n")
        assert len(graph.branches) == 1
        # Both arms reach the join; the join reaches the final set.
        join_preds = {len(b.preds) for b in graph.blocks}
        assert 2 in join_preds

    def test_while_has_back_edge_and_loop_info(self):
        graph = build_graph("while {$i < 3} { incr i }\n")
        (loop,) = graph.loops
        assert loop.cond_text == "$i < 3"
        assert loop.head in {s for b in loop.body_blocks for s in b.succs}

    def test_break_binds_to_innermost_loop(self):
        graph = build_graph(
            "while {1} { while {1} { break } }\n")
        inner = graph.loops[-1]
        outer = graph.loops[0]
        assert len(inner.breaks) + len(outer.breaks) == 1
        assert inner.breaks or outer.breaks

    def test_proc_body_is_a_subgraph(self):
        graph = build_graph("proc f {a b} { set c $a }\nf 1 2\n")
        (sub,) = graph.subgraphs
        assert sub.kind == PROC
        assert tuple(sub.params) == ("a", "b")

    def test_return_makes_following_block_predecessorless(self):
        graph = build_graph("return\nset dead 1\n")
        reachable = reachable_blocks(graph)
        dead = [b for b in graph.blocks
                if b.stmts and b.stmts[0].name == "set"]
        assert dead and dead[0] not in reachable

    def test_catch_body_blocks_are_marked(self):
        graph = build_graph("catch { set x $boom } msg\n")
        assert any(b.in_catch for b in graph.blocks)


# ---------------------------------------------------------------------------
# The dataflow engine (direct, rule-independent)


class TestDataflow:
    def test_set_union_reaches_a_join(self):
        graph = build_graph(
            "if {$c} { set a 1 } else { set b 2 }\nset z 3\n")
        problem = SetUnion(
            gen=lambda s: [_lit(s, 1)] if s.name == "set" else [],
            kill=lambda s: [],
            boundary_names=("c",))
        states = solve(graph, problem)
        exit_state = states[graph.exit]
        # May-analysis: both arms' definitions survive the join.
        assert problem.contains(exit_state, "a")
        assert problem.contains(exit_state, "b")
        assert problem.contains(exit_state, "c")

    def test_liveness_kills_through_all_live_boundary(self):
        graph = build_graph("set a 1\nset a 2\n")
        problem = Liveness(
            uses=lambda s: ((), False),
            defs=lambda s: (_lit(s, 1),) if s.name == "set" else (),
            boundary_all=True)
        states = solve(graph, problem)
        block = next(b for b in graph.blocks if b.stmts)
        from repro.lint.dataflow import stmt_states
        seen = {}
        for stmt, after in stmt_states(problem, block, states[block]):
            seen[stmt.line] = Liveness.is_live(after, "a")
        assert seen[2] is True    # final value outlives the script
        assert seen[1] is False   # overwritten before any read

    def test_const_lattice_join_demotes_to_nac(self):
        graph = build_graph(
            "if {$c} { set a 1 } else { set a 2 }\nset z $a\n")

        def effects(stmt, state):
            if stmt.name == "set" and len(stmt.words) == 3:
                state[_lit(stmt, 1)] = _lit(stmt, 2)

        problem = ConstLattice(effects)
        states = solve(graph, problem)
        assert problem.value_of(states[graph.exit], "a") is NAC

    def test_const_lattice_straight_line_proves(self):
        graph = build_graph("set a 1\nset b $a\n")

        def effects(stmt, state):
            if stmt.name == "set" and len(stmt.words) == 3:
                state[_lit(stmt, 1)] = _lit(stmt, 2)

        problem = ConstLattice(effects)
        states = solve(graph, problem)
        assert problem.value_of(states[graph.exit], "a") == "1"


# ---------------------------------------------------------------------------
# W012 use-before-set


class TestUseBeforeSet:  # W012
    def test_plain_read_before_any_assignment(self):
        (diag,) = only(check("set y $x\n"), "W012")
        assert '"x"' in diag.message
        assert diag.severity == "error"
        assert diag.line == 1

    def test_self_read_in_first_assignment(self):
        assert "W012" in codes(check("set x $x\n"))

    def test_assigned_on_only_one_path_is_not_flagged(self):
        # May-analysis: "never assigned on ANY path" keeps zero false
        # positives; a maybe-path is not reported.
        script = "if {$::cond} { set v 1 }\necho $v\n"
        assert "W012" not in codes(check(script))

    def test_catch_probe_idiom_is_clean(self):
        script = ("if {[catch {set v $maybe}]} { set v 0 }\n"
                  "echo $v\n")
        assert "W012" not in codes(check(script))

    def test_info_exists_guard_is_clean(self):
        assert "W012" not in codes(
            check("if {[info exists q]} { echo $q }\n"))

    def test_foreach_variable_visible_after_loop(self):
        assert "W012" not in codes(
            check("foreach i {1 2 3} { echo $i }\necho $i\n"))

    def test_upvar_proc_call_shields_later_reads(self):
        script = ("proc fill {name} { upvar $name v; set v 1 }\n"
                  "fill x\n"
                  "echo $x\n")
        assert "W012" not in codes(check(script))

    def test_communication_variable_is_external(self):
        script = ("setCommunicationVariable answer 3 {echo done}\n"
                  "echo $answer\n")
        assert "W012" not in codes(check(script))

    def test_proc_params_are_defined(self):
        assert "W012" not in codes(
            check("proc f {a} { echo $a }\nf 1\n"))

    def test_earlier_chunk_definitions_carry_over(self):
        kb = knowledge_for("athena")
        analyzer = Analyzer(kb, filename="two-chunks")
        analyzer.collect("set shared 1\n", 1, 1)
        analyzer.collect("echo $shared\n", 10, 1)
        analyzer.analyze("set shared 1\n", 1, 1)
        analyzer.analyze("echo $shared\n", 10, 1)
        assert "W012" not in codes(analyzer.diagnostics())

    def test_embedded_chunks_assume_host_mutations(self):
        # A chunk harvested from a Python host: the host may set any
        # variable between chunks (pipes, set_var), so no W012.
        kb = knowledge_for("athena")
        analyzer = Analyzer(kb, filename="host.py")
        analyzer.collect("echo $fromHost\n", 5, 1, embedded=True)
        analyzer.analyze("echo $fromHost\n", 5, 1)
        assert "W012" not in codes(analyzer.diagnostics())


# ---------------------------------------------------------------------------
# W013 unreachable flow


class TestUnreachableFlow:  # W013
    def test_join_after_both_branches_return(self):
        script = ("proc f {} {\n"
                  "  if {$::a} { return 1 } else { return 2 }\n"
                  "  set dead 1\n"
                  "}\nf\n")
        (diag,) = only(check(script), "W013")
        assert (diag.line, diag.col) == (3, 3)
        assert diag.severity == "warning"

    def test_same_block_unreachable_stays_w010(self):
        diags = check("proc f {} {\n  return\n  echo never\n}\nf\n")
        assert "W010" in codes(diags)
        assert "W013" not in codes(diags)

    def test_cascade_reports_once(self):
        script = ("proc f {} {\n"
                  "  if {$::a} { return 1 } else { return 2 }\n"
                  "  if {$::b} { echo x } else { echo y }\n"
                  "  echo z\n"
                  "}\nf\n")
        assert codes(only(check(script), "W013")) == ["W013"]


# ---------------------------------------------------------------------------
# W014 dead assignment


class TestDeadAssignment:  # W014
    def test_overwritten_before_read_in_private_proc(self):
        script = ("proc g {} {\n"
                  "  set t 1\n"
                  "  set t 2\n"
                  "  return $t\n"
                  "}\ng\n")
        (diag,) = only(check(script), "W014")
        assert (diag.line, diag.col) == (2, 3)
        assert diag.severity == "warning"

    def test_toplevel_final_store_outlives_the_script(self):
        # Later chunks and callbacks can read anything: the *final*
        # value is live at a top-level script's exit -- but an
        # unconditional overwrite still kills the first store.
        diags = only(check("set t 1\nset t 2\n"), "W014")
        assert [d.line for d in diags] == [1]
        assert "W014" not in codes(check("set t 1\n"))

    def test_read_between_stores_is_live(self):
        script = ("proc g {} {\n"
                  "  set t 1\n"
                  "  echo $t\n"
                  "  set t 2\n"
                  "  return $t\n"
                  "}\ng\n")
        assert "W014" not in codes(check(script))

    def test_branch_read_keeps_the_store_alive(self):
        script = ("proc g {c} {\n"
                  "  set t 1\n"
                  "  if {$c} { echo $t }\n"
                  "  set t 2\n"
                  "  return $t\n"
                  "}\ng 1\n")
        assert "W014" not in codes(check(script))


# ---------------------------------------------------------------------------
# W015 constant conditions


class TestConstantCondition:  # W015
    def test_const_true_loop_without_break(self):
        script = "set n 5\nwhile {$n > 0} { label topLevel l }\n"
        (diag,) = only(check(script, build="both"), "W015")
        assert "always true" in diag.message
        assert "eval limit" in diag.message

    def test_const_true_loop_with_break_is_clean(self):
        assert "W015" not in codes(check("while {1 == 1} { break }\n"))

    def test_loop_mutating_its_variable_is_clean(self):
        assert "W015" not in codes(
            check("set n 5\nwhile {$n > 0} { incr n -1 }\n"))

    def test_const_false_loop_body_never_runs(self):
        (diag,) = only(check("while {2 < 1} { echo x }\n"), "W015")
        assert "never runs" in diag.message

    def test_if_zero_comment_idiom_is_deliberate(self):
        # `if 0 { ... }` is Tcl's block comment: never flagged.
        assert "W015" not in codes(check("if 0 { echo debug }\n"))
        assert "W015" not in codes(check("if {0} { echo debug }\n"))

    def test_propagated_constant_branch(self):
        (diag,) = only(
            check("set x 1\nif {$x > 1} { echo big }\n"), "W015")
        assert "always false" in diag.message


# ---------------------------------------------------------------------------
# W016 use after destroy


class TestUseAfterDestroy:  # W016
    def test_set_values_after_destroy(self):
        script = ("label topLevel l\n"
                  "destroyWidget l\n"
                  "sV l label x\n")
        (diag,) = only(check(script), "W016")
        assert '"l"' in diag.message
        assert diag.line == 3

    def test_recreation_clears_the_destroyed_state(self):
        script = ("label l topLevel\n"
                  "destroyWidget l\n"
                  "label l topLevel\n"
                  "sV l label x\n")
        assert "W016" not in codes(check(script))

    def test_destroy_on_one_branch_still_warns(self):
        script = ("label topLevel l\n"
                  "if {$::done} { destroyWidget l }\n"
                  "sV l label x\n")
        (diag,) = only(check(script), "W016")
        assert "may already be destroyed" in diag.message


# ---------------------------------------------------------------------------
# W017 user-proc arity (flow-insensitive, whole file)


class TestProcArity:  # W017
    def test_wrong_count_is_an_error(self):
        diags = check("proc greet {a} { echo $a }\ngreet x y\n")
        (diag,) = only(diags, "W017")
        assert diag.severity == "error"
        assert "expects 1" in diag.message

    def test_multiple_definitions_any_match_wins(self):
        script = ("proc f {a} { echo $a }\n"
                  "proc f {a b} { echo $a$b }\n"
                  "f 1\nf 1 2\n")
        assert "W017" not in codes(check(script))

    def test_multiple_definitions_none_match(self):
        script = ("proc f {a} { echo $a }\n"
                  "proc f {a b} { echo $a$b }\n"
                  "f 1 2 3\n")
        (diag,) = only(check(script), "W017")
        assert "1 or 2" in diag.message

    def test_rename_disables_the_rule(self):
        script = ("proc f {a} { echo $a }\n"
                  "rename f g\n"
                  "g 1 2\n")
        assert "W017" not in codes(check(script))

    def test_args_soaks_extras(self):
        assert "W017" not in codes(
            check("proc f {a args} { echo $a }\nf 1 2 3 4 5\n"))


# ---------------------------------------------------------------------------
# Deterministic diagnostics (the schema-2 contract)


class TestDeterminism:
    SCRIPT = "set y $x\nset y $x\nfrobnicate\n"

    def test_sorted_by_position_then_rule(self):
        diags = check(self.SCRIPT)
        keys = [(d.file, d.line, d.col, d.code) for d in diags]
        assert keys == sorted(keys)

    def test_duplicates_collapse(self):
        diags = check(self.SCRIPT)
        keys = [(d.file, d.line, d.col, d.code, d.message) for d in diags]
        assert len(keys) == len(set(keys))

    def test_two_passes_identical(self):
        first = [d.format() for d in check(self.SCRIPT)]
        second = [d.format() for d in check(self.SCRIPT)]
        assert first == second
