"""Tests for the code generator: spec language, naming, emission."""

import pytest

from repro import codegen
from repro.codegen.emitter import emit_module, emit_reference
from repro.codegen.specparser import (
    FunctionSpec,
    SpecError,
    WidgetClassSpec,
    command_name_for,
    creation_command_for,
    parse_spec,
)

PAPER_CLASS_SPEC = """\
~widgetClass
XmCascadeButton
#include <Xm/CascadeB.h>
"""

PAPER_FUNCTION_SPEC = """\
void
XmCascadeButtonHighlight
in: Widget
in: Boolean
"""


class TestNamingConventions:
    """The paper's prefix-stripping rules, including its own examples."""

    def test_xt_prefix(self):
        assert command_name_for("XtDestroyWidget") == "destroyWidget"

    def test_xaw_prefix(self):
        # "XawFormAllowResize is called formAllowResize"
        assert command_name_for("XawFormAllowResize") == "formAllowResize"

    def test_motif_m_prefix(self):
        # "XmCommandAppendValue is therefore called mCommandAppendValue"
        assert command_name_for("XmCommandAppendValue") == \
            "mCommandAppendValue"

    def test_creation_commands(self):
        assert creation_command_for("Toggle") == "toggle"
        assert creation_command_for("XmCascadeButton") == "mCascadeButton"
        assert creation_command_for("AsciiText") == "asciiText"

    def test_no_prefix_passes_through(self):
        assert command_name_for("PlotterSetData") == "plotterSetData"


class TestSpecParsing:
    def test_paper_widget_class_block(self):
        items = parse_spec(PAPER_CLASS_SPEC)
        assert len(items) == 1
        spec = items[0]
        assert isinstance(spec, WidgetClassSpec)
        assert spec.class_name == "XmCascadeButton"
        assert spec.include == "<Xm/CascadeB.h>"

    def test_paper_function_block(self):
        items = parse_spec(PAPER_FUNCTION_SPEC)
        spec = items[0]
        assert isinstance(spec, FunctionSpec)
        assert spec.return_type == "void"
        assert spec.c_name == "XmCascadeButtonHighlight"
        assert [(a.direction, a.type) for a in spec.arguments] == \
            [("in", "Widget"), ("in", "Boolean")]

    def test_blank_lines_separate_blocks(self):
        items = parse_spec(PAPER_CLASS_SPEC + "\n" + PAPER_FUNCTION_SPEC)
        assert len(items) == 2

    def test_comments_become_docs(self):
        items = parse_spec("// Toggle the state\nvoid\nFoo\nin: Widget\n")
        assert items[0].doc == "Toggle the state"

    def test_out_struct_fields(self):
        items = parse_spec("Int\nFoo\nin: Widget\nout: Struct index,string\n")
        out = items[0].out_args[0]
        assert out.fields == ["index", "string"]

    def test_unknown_type_rejected(self):
        with pytest.raises(SpecError, match="unknown in type"):
            parse_spec("void\nFoo\nin: Quux\n")

    def test_unknown_return_rejected(self):
        with pytest.raises(SpecError, match="unknown return type"):
            parse_spec("quux\nFoo\nin: Widget\n")

    def test_every_spec_error_carries_file_and_line(self):
        # filename:lineno: so a bad spec line is findable in an editor.
        bad_blocks = [
            ("void\nXt\nin: Widget\n", 1),          # underivable name
            ("~widgetClass\n", 1),                   # missing class name
            ("void\nFoo\nin: Quux\n", 1),            # unknown in type
            ("quux\nFoo\n", 1),                      # unknown return type
            ("void\nFoo\nbroken line\n", 1),         # bad argument line
            ("void\nFoo\nout: Struct\n", 1),         # missing fields
            ("void\nFoo\nsideways: Widget\n", 1),    # bad direction
        ]
        for text, lineno in bad_blocks:
            with pytest.raises(SpecError) as exc:
                parse_spec(text, source="bad.spec")
            assert str(exc.value).startswith("bad.spec:%d:" % lineno), \
                (text, str(exc.value))

    def test_spec_error_line_points_at_the_block(self):
        text = "void\nFoo\nin: Widget\n\n\nvoid\nXt\n"
        with pytest.raises(SpecError, match=r"^bad\.spec:6:"):
            parse_spec(text, source="bad.spec")


class TestEmission:
    def test_generated_module_compiles(self):
        items = parse_spec(PAPER_CLASS_SPEC + "\n" + PAPER_FUNCTION_SPEC)
        source = emit_module(items, source="test.spec")
        compile(source, "<test>", "exec")

    def test_generated_module_registers_both_commands(self):
        items = parse_spec(PAPER_CLASS_SPEC + "\n" + PAPER_FUNCTION_SPEC)
        source = emit_module(items)
        assert '("mCascadeButton", cmd_mCascadeButton)' in source
        assert '("mCascadeButtonHighlight", cmd_mCascadeButtonHighlight)' \
            in source

    def test_arity_check_in_generated_code(self):
        items = parse_spec(PAPER_FUNCTION_SPEC)
        source = emit_module(items)
        assert "if len(argv) != 3:" in source
        assert "mCascadeButtonHighlight widget boolean" in source

    def test_reference_manual_lists_commands(self):
        items = parse_spec(PAPER_CLASS_SPEC + "\n" + PAPER_FUNCTION_SPEC)
        reference = emit_reference(items)
        assert "`mCascadeButton name parent" in reference
        assert "XmCascadeButtonHighlight" in reference


class TestShippedSpecs:
    def test_athena_build_compiles(self):
        commands, source = codegen.compile_commands("athena")
        names = {name for name, __ in commands}
        assert {"label", "command", "toggle", "asciiText",
                "destroyWidget", "getResourceList",
                "formAllowResize", "popup", "barGraph"} <= names

    def test_motif_build_compiles(self):
        commands, __ = codegen.compile_commands("motif")
        names = {name for name, __ in commands}
        assert {"mLabel", "mPushButton", "mCascadeButton",
                "mCascadeButtonHighlight", "mCommandAppendValue",
                "destroyWidget"} <= names
        assert "label" not in names  # Athena classes not mixed in

    def test_every_function_spec_has_a_native(self):
        from repro.core.natives import NATIVE

        for build in ("athena", "motif"):
            items = codegen.load_specs(codegen.BUILD_SPECS[build])
            for item in items:
                if isinstance(item, FunctionSpec):
                    assert item.c_name in NATIVE, \
                        "missing native for %s" % item.c_name

    def test_every_widget_class_spec_has_a_class(self):
        from repro.core.wafe import _class_table

        for build in ("athena", "motif"):
            table = _class_table(build)
            items = codegen.load_specs(codegen.BUILD_SPECS[build])
            for item in items:
                if isinstance(item, WidgetClassSpec):
                    assert item.class_name in table, \
                        "missing class %s" % item.class_name

    def test_reference_generation(self):
        reference = codegen.generate_reference("athena")
        assert "| `label name parent" in reference

    def test_fraction_generated_reproduces_claim(self):
        # The paper: "about 60% of the code is generated automatically".
        stats = codegen.fraction_generated()
        assert stats["generated_lines"] > 0
        assert stats["handwritten_lines"] > 0
        assert 0.35 <= stats["fraction_generated"] <= 0.8
