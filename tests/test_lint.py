"""wafelint tests: every rule code, exact positions, extraction, the
CLI, the ``--lint`` frontend flag, and termination on hostile input."""

import json
import os
import re
import subprocess
import sys
import time

import pytest

from repro.core.percent import ACTION_CODE_EVENTS
from repro.lint import ERROR, RULES, WARNING, check
from repro.lint.cli import lint_file, main as lint_main
from repro.lint.extract import extract_markdown, extract_python
from repro.lint.knowledge import knowledge_for

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))


def codes(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, "expected a %s among %r" % (code, diagnostics)
    return found


# ---------------------------------------------------------------------------
# Rules, one by one


class TestUnknownCommand:  # W001
    def test_typo_is_flagged(self):
        (diag,) = check("commnad b topLevel label OK\n")
        assert diag.code == "W001"
        assert diag.severity == ERROR
        assert "commnad" in diag.message
        assert (diag.line, diag.col) == (1, 1)

    def test_known_surfaces_are_silent(self):
        clean = ("form f topLevel\n"
                 "label lbl f label hi\n"
                 "realize\n"
                 "echo [wafeVersion]\n")
        assert check(clean) == []

    def test_script_procs_count(self):
        assert check("proc helper {} { echo hi }\nhelper\n") == []

    def test_proc_defined_after_use_counts(self):
        # collect runs before analyze: order in the file is irrelevant.
        assert check("helper\nproc helper {} { echo hi }\n") == []

    def test_extra_commands_accepted(self):
        assert check("myAppCmd 1 2\n") != []
        assert check("myAppCmd 1 2\n", extra_commands=("myAppCmd",)) == []

    def test_motif_commands_need_motif_build(self):
        script = "mLabel lbl topLevel\n"
        assert codes(check(script, build="athena")) == ["W001"]
        assert check(script, build="motif") == []
        assert check(script, build="both") == []

    def test_dynamic_names_are_not_guessed_at(self):
        # No W001 guess for a dynamic command word; the flow pass does
        # flag the read of the never-assigned variable (W012).
        assert codes(check("$cmd one two\n")) == ["W012"]

    def test_commands_inside_bodies(self):
        diags = check("proc f {} {\n    frobnicate\n}\nf\n")
        (diag,) = only(diags, "W001")
        assert (diag.line, diag.col) == (2, 5)

    def test_unknown_predefined_callback(self):
        script = ("command c topLevel label OK\n"
                  "callback c callback popdow box\n")
        (diag,) = only(check(script), "W001")
        assert "popdow" in diag.message
        assert diag.line == 2

    def test_exit_and_exec_are_not_wafe_commands(self):
        # (and the linter must not execute them while finding that out)
        assert codes(check("exit\n")) == ["W001"]
        assert codes(check("exec rm -rf /\n")) == ["W001"]


class TestArityMismatch:  # W002 (spec commands) / W017 (user procs)
    def test_proc_called_with_too_many(self):
        diags = check("proc greet {name} { echo $name }\ngreet a b\n")
        (diag,) = only(diags, "W017")
        assert "expects 1" in diag.message
        assert diag.line == 2

    def test_proc_defaults_and_args(self):
        script = ("proc f {a {b 1} args} { echo $a }\n"
                  "f\n"          # too few
                  "f 1\n"        # ok
                  "f 1 2 3 4\n"  # ok (args soaks the rest)
                  )
        diags = only(check(script), "W017")
        assert [d.line for d in diags] == [2]

    def test_spec_function_arity(self):
        # XtBell: widget + int -> exactly two arguments.
        diags = check("bell topLevel\n")
        (diag,) = only(diags, "W002")
        assert "bell" in diag.message
        assert check("bell topLevel 100\n") == []

    def test_creation_needs_name_and_parent(self):
        (diag,) = only(check("label onlyname\n"), "W002")
        assert diag.line == 1

    def test_odd_attribute_list(self):
        diags = check("label lbl topLevel label\n")
        (diag,) = only(diags, "W002")
        assert "even" in diag.message

    def test_unmanaged_flag_is_skipped(self):
        assert check("label lbl topLevel -unmanaged label hi\n") == []


class TestUnknownResource:  # W003
    def test_creation_attribute(self):
        diags = check("label lbl topLevel labell hi\n")
        (diag,) = only(diags, "W003")
        assert 'unknown resource "labell" for widget class Label' \
            in diag.message
        assert (diag.line, diag.col) == (1, 20)

    def test_constraint_resources_of_parent_are_valid(self):
        script = ("form f topLevel\n"
                  "label a f label one\n"
                  "label b f fromHoriz a label two\n")
        assert check(script) == []

    def test_set_values_resource(self):
        script = "label lbl topLevel label hi\nsV lbl colour red\n"
        (diag,) = only(check(script), "W003")
        assert diag.line == 2

    def test_get_value_resource(self):
        script = "label lbl topLevel label hi\ngV lbl labell\n"
        (diag,) = only(check(script), "W003")
        assert "labell" in diag.message

    def test_add_callback_resource(self):
        script = ("command c topLevel label OK\n"
                  "addCallback c callbock {echo hi}\n")
        (diag,) = only(check(script), "W003")
        assert "callbock" in diag.message

    def test_unknown_widget_class_is_conservative(self):
        # 'mystery' was never created here: no class, no complaint.
        assert check("sV mystery anything x\n") == []


class TestInvalidPercentCode:  # W004
    def test_key_code_on_button_event(self):
        script = "label l topLevel\n" \
                 "action l override {<Btn1Down>: exec(echo %a)}\n"
        (diag,) = only(check(script), "W004")
        assert "%a" in diag.message and "ButtonPress" in diag.message
        assert diag.severity == ERROR

    def test_button_code_on_key_event(self):
        script = "label l topLevel\n" \
                 "action l override {<KeyPress>: exec(echo %b)}\n"
        (diag,) = only(check(script), "W004")
        assert "%b" in diag.message

    def test_valid_matrix_combinations_are_silent(self):
        script = ("label l topLevel\n"
                  "action l override {<KeyPress>: exec(echo %k %s %a)}\n"
                  "action l override {<Btn1Down>: exec(echo %b %x %y)}\n"
                  "action l override {<EnterWindow>: exec(echo %X %Y %t)}\n")
        assert check(script) == []

    def test_unknown_code_warns(self):
        script = "label l topLevel\n" \
                 "action l override {<KeyPress>: exec(echo %q)}\n"
        (diag,) = only(check(script), "W004")
        assert diag.severity == WARNING

    def test_unknown_callback_code_warns(self):
        script = ("command c topLevel label OK\n"
                  "addCallback c callback {echo %q}\n")
        (diag,) = only(check(script), "W004")
        assert diag.severity == WARNING

    def test_matrix_is_the_single_source_of_truth(self):
        # Every (code, invalid-event) pair from the runtime table is an
        # error; every valid pair is silent.  Event names per type that
        # the translation parser understands:
        event_names = {"<KeyPress>": "KeyPress", "<Btn1Down>":
                       "ButtonPress", "<EnterWindow>": "EnterNotify"}
        from repro.xlib import xtypes

        type_of = {"<KeyPress>": xtypes.KeyPress,
                   "<Btn1Down>": xtypes.ButtonPress,
                   "<EnterWindow>": xtypes.EnterNotify}
        for code, valid_types in ACTION_CODE_EVENTS.items():
            if code == "t":
                continue  # %t substitutes "unknown" instead of ""
            for event, etype in type_of.items():
                script = ("label l topLevel\n"
                          "action l override {%s: exec(echo %%%s)}\n"
                          % (event, code))
                diags = [d for d in check(script) if d.code == "W004"]
                if etype in valid_types:
                    assert diags == [], (code, event)
                else:
                    assert len(diags) == 1, (code, event)


class TestPercentContextMismatch:  # W005
    def test_action_code_in_callback(self):
        script = ("command c topLevel label OK\n"
                  "addCallback c callback {echo %x}\n")
        (diag,) = only(check(script), "W005")
        assert diag.severity == ERROR
        assert "action percent code" in diag.message

    def test_callback_code_in_action(self):
        script = "label l topLevel\n" \
                 "action l override {<KeyPress>: exec(echo %i)}\n"
        (diag,) = only(check(script), "W005")
        assert "callback percent code" in diag.message

    def test_class_codes_are_valid_in_their_callback(self):
        script = ("list lst topLevel list {a b}\n"
                  "sV lst callback {echo picked %s at %i on %w}\n")
        assert check(script) == []

    def test_universal_w_is_valid_everywhere(self):
        script = ("command c topLevel label OK\n"
                  "addCallback c callback {echo %w %%}\n"
                  "action c override {<Btn1Down>: exec(echo %w)}\n")
        assert check(script) == []


class TestUnbalancedDelimiter:  # W006
    def test_missing_close_bracket_position(self):
        (diag,) = check("set y [unclosed\n")
        assert diag.code == "W006"
        assert (diag.line, diag.col) == (1, 7)

    def test_missing_close_brace(self):
        diags = only(check("echo {unclosed\n"), "W006")
        assert diags[0].col == 6

    def test_recovery_continues_past_the_error(self):
        script = "set y [unclosed\nfrobnicate\n"
        found = codes(check(script))
        assert "W006" in found and "W001" in found

    def test_error_inside_proc_body_composes_position(self):
        script = 'proc f {} {\n    echo "unclosed\n}\nf\n'
        diags = only(check(script), "W006")
        assert diags[0].line == 2


class TestBadTranslation:  # W007
    def test_unknown_event_type(self):
        script = "label l topLevel\n" \
                 "action l override {<WheelUp>: exec(echo hi)}\n"
        (diag,) = only(check(script), "W007")
        assert diag.severity == ERROR
        assert diag.line == 2

    def test_unknown_action_name(self):
        script = ("command c topLevel label OK\n"
                  "action c override {<Btn1Down>: frobnicate()}\n")
        (diag,) = only(check(script), "W007")
        assert diag.severity == WARNING
        assert "frobnicate" in diag.message

    def test_class_actions_are_known(self):
        script = ("command c topLevel label OK\n"
                  "action c override {<Btn1Down>: set() notify() unset()}\n")
        assert check(script) == []

    def test_bad_mode(self):
        script = "label l topLevel\n" \
                 "action l sideways {<Btn1Down>: exec(echo hi)}\n"
        (diag,) = only(check(script), "W007")
        assert "sideways" in diag.message


class TestSuspiciousSet:  # W008
    def test_three_argument_set(self):
        (diag,) = check("set greeting hello world\n")
        assert diag.code == "W008"
        assert diag.severity == WARNING

    def test_normal_set_is_fine(self):
        assert check("set greeting {hello world}\nset copy $greeting\n") \
            == []


class TestUnbracedExpr:  # W009
    def test_expr_with_dollar(self):
        (diag,) = check("set x 1\nexpr $x + 1\n")
        assert diag.code == "W009"
        assert diag.severity == WARNING
        assert diag.line == 2

    def test_if_condition(self):
        diags = only(check('set x 1\nif "$x > 1" { echo big }\n'), "W009")
        assert diags[0].line == 2

    def test_braced_forms_are_silent(self):
        # (W015 legitimately proves the if-branch dead -- x is the
        # constant 1 -- so only assert the absence of W009 here.)
        script = ("set x 1\n"
                  "if {$x > 1} { echo big }\n"
                  "while {$x < 3} { incr x }\n"
                  "echo [expr {$x * 2}]\n")
        assert "W009" not in codes(check(script))


class TestUnreachableCode:  # W010
    def test_code_after_return(self):
        script = "proc f {} {\n    return\n    echo never\n}\nf\n"
        (diag,) = only(check(script), "W010")
        assert diag.severity == WARNING
        assert (diag.line, diag.col) == (3, 5)

    def test_code_after_break(self):
        script = "while {1} {\n    break\n    echo never\n}\n"
        (diag,) = only(check(script), "W010")
        assert diag.line == 3

    def test_terminator_last_is_fine(self):
        assert check("proc f {} {\n    echo hi\n    return\n}\nf\n") == []


# ---------------------------------------------------------------------------
# Cross-cutting properties


class TestAcceptance:
    """The ISSUE's acceptance bar: one broken script, many rules, all
    positions exact, same through text and JSON."""

    BROKEN = (
        "proc greet {name} {\n"
        "    echo hello $name\n"
        "}\n"
        "greet a b\n"                                   # W017 @ 4:1
        "frobnicate 1 2\n"                              # W001 @ 5:1
        "label lbl topLevel labell hi\n"                # W003 @ 6:20
        "command c topLevel label OK\n"
        "addCallback c callback {echo pressed %x}\n"    # W005 @ 8:38
        "action c override {<Btn1Down>: exec(echo %a)}\n"  # W004
        "set x 1 2\n"                                   # W008 @ 10:1
        "expr $x + 1\n"                                 # W009 @ 11:6
        "return\n"
        "echo unreachable\n"                            # W010 @ 13:1
        "set y [unclosed\n"                             # W006 @ 14:7
    )

    def test_at_least_four_distinct_rules(self):
        distinct = set(codes(check(self.BROKEN)))
        assert len(distinct) >= 4
        assert {"W001", "W017", "W003", "W006"} <= distinct

    def test_positions(self):
        by_code = {}
        for diag in check(self.BROKEN, filename="broken.wafe"):
            by_code.setdefault(diag.code, diag)
        assert (by_code["W017"].line, by_code["W017"].col) == (4, 1)
        assert (by_code["W001"].line, by_code["W001"].col) == (5, 1)
        assert (by_code["W003"].line, by_code["W003"].col) == (6, 20)
        assert (by_code["W005"].line, by_code["W005"].col) == (8, 38)
        assert (by_code["W008"].line, by_code["W008"].col) == (10, 1)
        assert (by_code["W009"].line, by_code["W009"].col) == (11, 6)
        assert (by_code["W010"].line, by_code["W010"].col) == (13, 1)
        assert (by_code["W006"].line, by_code["W006"].col) == (14, 7)

    def test_text_format(self):
        (diag,) = check("frobnicate\n", filename="x.wafe")
        assert diag.format() == \
            'x.wafe:1:1: error: unknown command "frobnicate" ' \
            "[W001 unknown-command]"

    def test_json_round_trip(self):
        (diag,) = check("frobnicate\n", filename="x.wafe")
        data = json.loads(json.dumps(diag.as_dict()))
        assert data == {"code": "W001", "rule": "unknown-command",
                        "severity": "error",
                        "message": 'unknown command "frobnicate"',
                        "file": "x.wafe", "line": 1, "col": 1}

    def test_every_shipped_rule_is_exercised_somewhere(self):
        # Lexical rules are covered here; the flow-sensitive rules
        # (W012..W017) live in tests/test_lint_flow.py.
        text = ""
        for name in ("test_lint.py", "test_lint_flow.py"):
            with open(os.path.join(os.path.dirname(__file__), name),
                      "r") as handle:
                text += handle.read()
        for code in RULES:
            assert text.count(code) >= 2, "rule %s lacks a test" % code


class TestSafeProfile:
    """W011: commands the runtime hides under --safe."""

    def test_hidden_commands_flagged_with_reason(self):
        diags = check("source helpers.wafe\nsetPrefix @\n",
                      safe_profile=True)
        assert codes(diags) == ["W011", "W011"]
        assert "hidden in safe mode" in diags[0].message
        assert "filesystem" in diags[0].message  # the reason, inline

    def test_off_by_default(self):
        assert check("source helpers.wafe\n") == []

    def test_flags_match_the_runtime_hidden_set(self):
        # The rule and the runtime hide from the same table: every
        # entry is flagged, and a non-entry never is.
        from repro.core.safemode import SAFE_HIDDEN_COMMANDS

        script = "".join("%s x\n" % name
                         for name in sorted(SAFE_HIDDEN_COMMANDS))
        diags = [d for d in check(script, safe_profile=True)
                 if d.code == "W011"]
        assert len(diags) == len(SAFE_HIDDEN_COMMANDS)
        assert all(d.code == "W011"
                   for d in check("echo hi\n", safe_profile=True)) is True

    def test_cli_safe_profile_flag(self, tmp_path, capsys):
        from repro.lint.cli import main

        path = tmp_path / "app.wafe"
        path.write_text("source helpers.wafe\n")
        assert main([str(path)]) == 0
        capsys.readouterr()
        assert main(["--safe-profile", str(path)]) == 1
        out = capsys.readouterr().out
        assert "W011" in out


class TestTermination:
    """The linter never executes scripts: hostile input finishes fast."""

    CASES = {
        "infinite-loop": "while {1} { echo spin }\n",
        "exit": "exit\n",
        "exec": "exec rm -rf /\n",
        "recursion": "proc f {} { f }\nf\n",
        "deep-nesting": ("if {1} " + "{ if {1} " * 100 + "{ echo x }"
                         + " }" * 100 + "\n"),
        "many-commands": "echo hi\n" * 5000,
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_terminates_quickly(self, name):
        start = time.time()
        check(self.CASES[name])
        assert time.time() - start < 5.0

    def test_never_touches_the_interpreter(self, tmp_path):
        # A script whose execution would be observable.
        marker = tmp_path / "marker"
        script = "puts [open %s w] oops\n" % marker
        check(script)
        assert not marker.exists()


class TestExtraction:
    def test_python_run_script_literals(self):
        source = (
            "def build(wafe):\n"
            '    wafe.run_script("form f topLevel")\n'
            '    wafe.run_script("label l f label hi"\n'
            '                    " borderWidth 0")\n'
        )
        chunks, extra = extract_python(source)
        assert [c.text for c in chunks] == \
            ["form f topLevel", "label l f label hi borderWidth 0"]
        assert chunks[0].line == 2
        assert extra == set()

    def test_python_percent_formats_are_neutralized(self):
        source = 'w.run_script("sV lbl label {%s}" % value)\n'
        chunks, __ = extract_python(source)
        assert chunks[0].text == "sV lbl label {$0}"
        assert len(chunks[0].text) == len("sV lbl label {%s}")

    def test_neutralized_placeholder_reads_as_dynamic(self):
        # A placeholder in command position must not produce a bogus
        # "unknown command" against the literal filler text: the $0
        # marker makes the word dynamic, which W001 already skips.
        source = 'w.run_script("%s %s topLevel" % (kind, name))\n'
        chunks, __ = extract_python(source)
        assert chunks[0].text == "$0 $0 topLevel"

    def test_double_percent_stays_literal(self):
        source = 'w.run_script("sV g format {%d%%}" % n)\n'
        chunks, __ = extract_python(source)
        assert chunks[0].text == "sV g format {$0%%}"

    def test_skip_pragma_drops_the_literal(self):
        source = (
            'w.run_script("frobnicate now")  # wafelint: skip\n'
            '# wafelint: skip -- deliberately broken\n'
            'w.run_script("zorch")\n'
            'w.run_script(  # wafelint: skip\n'
            '    "mangle everything")\n'
            'w.run_script("form f topLevel")\n')
        chunks, __ = extract_python(source)
        assert [c.text for c in chunks] == ["form f topLevel"]

    def test_trailing_pragma_does_not_bleed_into_the_next_call(self):
        source = (
            'w.run_script("frobnicate now")  # wafelint: skip\n'
            'w.run_script("zorchify all")\n')
        chunks, __ = extract_python(source)
        assert [c.text for c in chunks] == ["zorchify all"]

    def test_eval_literals_need_opt_in(self):
        source = 'interp.eval("set a 1")\n'
        assert extract_python(source)[0] == []
        chunks, __ = extract_python(source, harvest_eval=True)
        assert [c.text for c in chunks] == ["set a 1"]

    def test_python_register_command_harvested(self):
        source = ('wafe.register_command("showCard", func)\n'
                  'wafe.run_script("sV lst callback {showCard %s}")\n')
        __, extra = extract_python(source)
        assert extra == {"showCard"}

    def test_markdown_tcl_fences(self):
        source = ("# Title\n"
                  "```tcl\n"
                  "form f topLevel\n"
                  "```\n"
                  "```python\n"
                  "print('not tcl')\n"
                  "```\n")
        chunks = extract_markdown(source)
        assert len(chunks) == 1
        assert chunks[0].text == "form f topLevel\n"
        assert chunks[0].line == 3

    def test_lint_file_positions_point_into_the_host_file(self, tmp_path):
        path = tmp_path / "app.py"
        path.write_text('wafe.run_script("frobnicate now")\n')
        diags = lint_file(str(path), knowledge_for("athena"))
        (diag,) = only(diags, "W001")
        assert diag.line == 1
        assert diag.file == str(path)

    def test_procs_shared_across_chunks(self, tmp_path):
        path = tmp_path / "app.py"
        path.write_text(
            'wafe.run_script("proc helper {} { echo hi }")\n'
            'wafe.run_script("helper")\n')
        assert lint_file(str(path), knowledge_for("athena")) == []


class TestCli:
    def test_exit_zero_on_clean(self, tmp_path, capsys):
        path = tmp_path / "ok.wafe"
        path.write_text("form f topLevel\nrealize\n")
        assert lint_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_exit_one_on_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.wafe"
        path.write_text("frobnicate\n")
        assert lint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "W001" in out and "1 error" in out

    def test_warnings_do_not_fail(self, tmp_path, capsys):
        path = tmp_path / "warn.wafe"
        path.write_text("set x 1 2\n")
        assert lint_main([str(path)]) == 0
        assert "W008" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "bad.wafe"
        path.write_text("frobnicate\n")
        assert lint_main(["--format", "json", str(path)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == 2
        assert data["files"] == 1
        assert data["errors"] == 1
        assert data["diagnostics"][0]["code"] == "W001"
        assert data["diagnostics"][0]["line"] == 1

    def test_json_diagnostics_are_sorted_and_unique(self, tmp_path, capsys):
        path = tmp_path / "multi.wafe"
        path.write_text("frobnicate\nset x 1 2\nfrobnicate\n")
        lint_main(["--format", "json", str(path)])
        data = json.loads(capsys.readouterr().out)
        keys = [(d["file"], d["line"], d["col"], d["code"])
                for d in data["diagnostics"]]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_directory_walk(self, tmp_path, capsys):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.wafe").write_text("frobnicate\n")
        (tmp_path / "b.tcl").write_text("set x 1 2\n")
        (tmp_path / "ignored.txt").write_text("frobnicate\n")
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "W001" in out and "W008" in out

    def test_missing_file_is_status_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "absent.wafe")]) == 2

    def test_extra_commands_flag(self, tmp_path):
        path = tmp_path / "app.wafe"
        path.write_text("myCmd 1\n")
        assert lint_main([str(path)]) == 1
        assert lint_main(["--extra-commands", "myCmd", str(path)]) == 0

    def test_module_entry_point(self, tmp_path):
        path = tmp_path / "bad.wafe"
        path.write_text("frobnicate\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(path)],
            env=env, stdout=subprocess.PIPE, timeout=60)
        assert result.returncode == 1
        assert b"W001" in result.stdout

    def test_repo_examples_and_docs_are_clean(self):
        assert lint_main(["--build", "both",
                          os.path.join(REPO, "examples"),
                          os.path.join(REPO, "docs")]) == 0


class TestLintDocs:
    def test_every_rule_is_documented_with_a_firing_example(self):
        # docs/LINT.md has one section per rule; linting each section's
        # example blocks must produce that section's code.
        with open(os.path.join(REPO, "docs", "LINT.md"), "r") as handle:
            text = handle.read()
        sections = re.split(r"^### (W\d{3}) ", text, flags=re.M)
        documented = set()
        for code, body in zip(sections[1::2], sections[2::2]):
            blocks = re.findall(r"^```\n(.*?)^```", body,
                                flags=re.S | re.M)
            assert blocks, "rule %s has no example block" % code
            # safe_profile on: W011 is opt-in and its examples must
            # fire too; it only ever adds diagnostics elsewhere.
            diags = check("\n".join(blocks), build="both",
                          safe_profile=True)
            assert code in codes(diags), \
                "rule %s examples do not trigger it" % code
            documented.add(code)
        assert documented == set(RULES)


class TestFrontendLintFlag:
    def test_file_mode_reports_before_running(self, tmp_path, capsys):
        from repro.core import make_wafe
        from repro.core.modes import run_file
        from repro.xlib import close_all_displays

        close_all_displays()
        script = tmp_path / "app.wafe"
        script.write_text("#!/usr/bin/env wafe\n"
                          "form f topLevel\n"
                          "set x 1\n"
                          "expr $x + 1\n"
                          "quit\n")
        wafe = make_wafe()
        reports = []
        wafe.error_sink = reports.append
        run_file(wafe, str(script), main_loop=False, lint=True)
        assert any("W009" in message for message in reports)
        # Positions refer to the file on disk, shebang included.
        assert any(":4:6:" in message for message in reports)

    def test_lint_accepts_live_registered_commands(self, tmp_path):
        from repro.core import make_wafe
        from repro.core.modes import run_file
        from repro.xlib import close_all_displays

        close_all_displays()
        script = tmp_path / "app.wafe"
        script.write_text("appCmd hello\nquit\n")
        wafe = make_wafe()
        wafe.register_command("appCmd", lambda w, argv: "")
        reports = []
        wafe.error_sink = reports.append
        run_file(wafe, str(script), main_loop=False, lint=True)
        assert reports == []
