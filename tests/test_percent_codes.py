"""Tests for the percent-code tables (the paper's second and third
tables): every valid code/event combination, and the invalid ones."""

import pytest

from repro.xlib import close_all_displays, xtypes
from repro.xlib.events import XEvent
from repro.core import make_wafe
from repro.core.percent import (
    ACTION_CODE_EVENTS,
    substitute_action,
    substitute_callback,
)


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


@pytest.fixture
def widget(wafe):
    wafe.run_script("label w topLevel")
    return wafe.lookup_widget("w")


def button_event(widget, **kw):
    defaults = dict(button=1, x=5, y=6, x_root=15, y_root=16)
    defaults.update(kw)
    return XEvent(xtypes.ButtonPress, None, **defaults)


def key_event(widget, keycode=198, state=0, **kw):
    defaults = dict(keycode=keycode, state=state, x=1, y=2,
                    x_root=11, y_root=12)
    defaults.update(kw)
    return XEvent(xtypes.KeyPress, None, **defaults)


class TestActionCodeTable:
    """One test per row of the paper's table."""

    def test_t_event_type(self, widget):
        assert substitute_action("%t", widget, button_event(widget)) == \
            "ButtonPress"
        assert substitute_action("%t", widget, key_event(widget)) == \
            "KeyPress"
        enter = XEvent(xtypes.EnterNotify, None)
        assert substitute_action("%t", widget, enter) == "EnterNotify"

    def test_t_unknown_for_unsupported_events(self, widget):
        # "%t will expand to unknown, if the event is not included"
        expose = XEvent(xtypes.Expose, None)
        assert substitute_action("%t", widget, expose) == "unknown"
        motion = XEvent(xtypes.MotionNotify, None)
        assert substitute_action("%t", widget, motion) == "unknown"

    def test_w_widget_name_all_events(self, widget):
        for event in (button_event(widget), key_event(widget),
                      XEvent(xtypes.LeaveNotify, None)):
            assert substitute_action("%w", widget, event) == "w"

    def test_b_button_number(self, widget):
        assert substitute_action("%b", widget,
                                 button_event(widget, button=3)) == "3"
        release = XEvent(xtypes.ButtonRelease, None, button=2)
        assert substitute_action("%b", widget, release) == "2"

    def test_b_invalid_for_key_events(self, widget):
        assert substitute_action("%b", widget, key_event(widget)) == ""

    def test_coordinates(self, widget):
        event = button_event(widget)
        assert substitute_action("%x %y %X %Y", widget, event) == "5 6 15 16"

    def test_a_ascii_character(self, widget):
        assert substitute_action("%a", widget, key_event(widget, 198)) == "w"
        shifted = key_event(widget, 197, state=xtypes.ShiftMask)
        assert substitute_action("%a", widget, shifted) == "!"

    def test_a_empty_for_modifier_key(self, widget):
        assert substitute_action("%a", widget, key_event(widget, 174)) == ""

    def test_k_keycode(self, widget):
        assert substitute_action("%k", widget, key_event(widget, 198)) == \
            "198"

    def test_s_keysym(self, widget):
        assert substitute_action("%s", widget, key_event(widget, 198)) == "w"
        assert substitute_action("%s", widget, key_event(widget, 174)) == \
            "Shift_L"
        shifted = key_event(widget, 197, state=xtypes.ShiftMask)
        assert substitute_action("%s", widget, shifted) == "exclam"

    def test_key_codes_invalid_for_button_events(self, widget):
        event = button_event(widget)
        assert substitute_action("%a%k%s", widget, event) == ""

    def test_percent_percent_literal(self, widget):
        assert substitute_action("100%%", widget, button_event(widget)) == \
            "100%"

    def test_unknown_code_passes_through(self, widget):
        assert substitute_action("%q", widget, button_event(widget)) == "%q"

    def test_validity_matrix_is_the_papers(self):
        button = {xtypes.ButtonPress, xtypes.ButtonRelease}
        key = {xtypes.KeyPress, xtypes.KeyRelease}
        crossing = {xtypes.EnterNotify, xtypes.LeaveNotify}
        everything = button | key | crossing
        assert set(ACTION_CODE_EVENTS["t"]) == everything
        assert set(ACTION_CODE_EVENTS["w"]) == everything
        assert set(ACTION_CODE_EVENTS["b"]) == button
        for code in "xyXY":
            assert set(ACTION_CODE_EVENTS[code]) == everything
        for code in "aks":
            assert set(ACTION_CODE_EVENTS[code]) == key


class TestInvalidCombinations:
    """Exhaustive: every (code, event-type) pair the table declares
    invalid substitutes the empty string -- asserted against
    ACTION_CODE_EVENTS itself so the test follows the table."""

    UNIVERSE = (xtypes.ButtonPress, xtypes.ButtonRelease, xtypes.KeyPress,
                xtypes.KeyRelease, xtypes.EnterNotify, xtypes.LeaveNotify,
                xtypes.Expose, xtypes.MotionNotify)

    def _event(self, widget, event_type):
        if event_type in (xtypes.ButtonPress, xtypes.ButtonRelease):
            return XEvent(event_type, None, button=1, x=5, y=6,
                          x_root=15, y_root=16)
        if event_type in (xtypes.KeyPress, xtypes.KeyRelease):
            return XEvent(event_type, None, keycode=198, state=0,
                          x=1, y=2, x_root=11, y_root=12)
        return XEvent(event_type, None)

    def test_every_invalid_pair_substitutes_empty(self, widget):
        checked = 0
        for code, valid_types in ACTION_CODE_EVENTS.items():
            for event_type in self.UNIVERSE:
                if event_type in valid_types:
                    continue
                result = substitute_action("%" + code, widget,
                                           self._event(widget, event_type))
                expected = "unknown" if code == "t" else ""
                assert result == expected, (code, event_type)
                checked += 1
        assert checked > 0  # the table really does exclude combinations

    def test_every_valid_pair_substitutes_something(self, widget):
        for code, valid_types in ACTION_CODE_EVENTS.items():
            if code == "a":
                continue  # %a is legitimately empty for non-ASCII keys
            for event_type in valid_types:
                result = substitute_action("%" + code, widget,
                                           self._event(widget, event_type))
                assert result != "", (code, event_type)


class TestCallbackCodes:
    def test_w_always_available(self, wafe, widget):
        assert substitute_callback("%w", widget, "callback", None) == "w"

    def test_list_codes(self, wafe):
        from repro.xaw.list import ListReturn

        wafe.run_script("list lst topLevel list {a b}")
        lst = wafe.lookup_widget("lst")
        data = ListReturn(1, "b")
        assert substitute_callback("%i/%s/%w", lst, "callback", data) == \
            "1/b/lst"

    def test_list_codes_without_call_data(self, wafe):
        wafe.run_script("list lst topLevel list {a b}")
        lst = wafe.lookup_widget("lst")
        assert substitute_callback("%i", lst, "callback", None) == ""

    def test_codes_unknown_for_class_pass_through(self, widget):
        # %i is only defined for List callbacks; on a Label it is literal.
        assert substitute_callback("%i", widget, "callback", None) == "%i"

    def test_scrollbar_jump_value(self, wafe):
        wafe.run_script("scrollbar sb topLevel")
        bar = wafe.lookup_widget("sb")
        assert substitute_callback("%v", bar, "jumpProc", 0.25) == "0.25"
