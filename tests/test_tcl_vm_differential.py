"""Differential fuzzing: the bytecode VM against the executable spec.

The tree-walker (``Interp(compile=False)``) is the reference semantics;
the plan engine (``compile="plans"``) and the bytecode VM
(``compile=True``) must be observationally identical to it -- same
results, same error messages, byte-identical ``errorInfo`` tracebacks,
same ``errorCode``, the same work-unit accounting (``info cmdcount``,
watchdog command-budget trips), and all of that on both the cold and
the cached evaluation of every script.

Three corpora drive the comparison: the hand-written equivalence
scripts shared with ``test_tcl_compile``, the hostile corpus distilled
from the fault-containment suite, and a seeded random script generator
that leans on the constructs the VM inlines (set/incr/expr/if/while/
for/foreach) plus the hazards that force its deoptimisation paths.
"""

import random

import pytest

from repro.tcl import Interp
from repro.tcl.errors import TclError, TclLimitError

from tests.test_tcl_compile import EQUIVALENCE_SCRIPTS

#: Interp configurations under test; the tree-walker defines truth.
#: The vm engine runs twice -- optimizer off and on -- so every script
#: in every corpus also pins the optimizer's semantic invisibility.
ENGINES = (
    {"compile": False},
    {"compile": "plans"},
    {"compile": True, "optimize": False},
    {"compile": True},
)
ENGINE_IDS = ("tree", "plans", "vm-noopt", "vm")


def snapshot(engine, script, rounds=2, commands=None, prelude=None):
    """Run ``script`` ``rounds`` times; capture every observable.

    Round 2 exercises the cached/compiled path, which is where inline
    caches (and their invalidation bugs) live.
    """
    interp = Interp(**engine) if isinstance(engine, dict) \
        else Interp(compile=engine)
    if prelude:
        interp.eval(prelude)
    if commands:
        interp.set_eval_limits(commands=commands)
    observed = []
    for __ in range(rounds):
        try:
            observed.append(("ok", interp.eval(script)))
        except TclLimitError as err:
            observed.append(("limit", err.limit))
        except TclError as err:
            observed.append(("error", str(err.result)))
    for global_name in ("errorInfo", "errorCode"):
        try:
            observed.append((global_name,
                             interp.eval("set %s" % global_name)))
        except TclError:
            observed.append((global_name, None))
    observed.append(("cmdcount", interp.eval("info cmdcount")))
    observed.append(("trips", interp.eval_stats()["limit_trips"]))
    return observed


def assert_engines_agree(script, **kwargs):
    reference = snapshot(ENGINES[0], script, **kwargs)
    for engine, label in zip(ENGINES[1:], ENGINE_IDS[1:]):
        assert snapshot(engine, script, **kwargs) == reference, (
            "engine %r diverged from the tree-walker on:\n%s"
            % (label, script))
    return reference


# ----------------------------------------------------------------------
# Corpus 1: the equivalence scripts (results + accounting)


class TestEquivalenceCorpus:
    @pytest.mark.parametrize("script", EQUIVALENCE_SCRIPTS)
    def test_engines_agree(self, script):
        assert_engines_agree(script)


# ----------------------------------------------------------------------
# Corpus 2: the hostile corpus (errors, tracebacks, budgets)


HOSTILE_SCRIPTS = [
    # Errors inside every construct the VM inlines.
    "unknowncmd a b",
    "set",
    "set a b c d",
    "incr missing",
    "set x notanumber\nincr x",
    "incr x notanumber",
    "expr {1 +}",
    "expr {1 / 0}",
    "expr {$undefinedvar + 1}",
    "if {1 +} {set x 1}",
    "if {1} {error inside-then} else {set x 2}",
    "if {0} {set x 1} else {error inside-else}",
    "if {1} {x} else",          # malformed tail never reached
    "if {0} {x} else",          # malformed tail reached: must error
    "while {$i <} {incr i}",
    "set i 0\nwhile {$i < 3} {incr i\nerror loop-body}",
    "for {set i 0} {$i <} {incr i} {set x 1}",
    "for {set i 0} {$i < 3} {incr i} {error for-body}",
    "for {set i 0} {$i < 3} {error for-next} {set x 1}",
    "foreach x {a b} {error foreach-body}",
    "foreach x {bad {list} {{} {}} {incr}} {set y $x}",
    'foreach x "un {balanced" {set y $x}',
    "proc p {} {error deep}\np",
    "proc outer {} {inner}\nproc inner {} {error deep}\nouter",
    "catch {error caught} msg\nset msg",
    "error msg myinfo mycode",
    # Nested bodies with errors at different depths.
    "for {set i 0} {$i < 4} {incr i} {\n"
    "  if {$i == 2} {\n"
    "    while {1} {error nested-deep}\n"
    "  }\n"
    "}",
    # break/continue misuse at top level.
    "break",
    "continue",
    # Variable hazards: traces, arrays vs scalars, unset mid-loop.
    'set a(k) v\nset a "scalar"',
    "set s scalar\nset s(k) v",
    "set i 0\nwhile {$i < 5} {incr i\nif {$i == 3} {unset i}}",
    "for {set i 0} {$i < 5} {incr i} {if {$i == 2} {unset i}}",
]


class TestHostileCorpus:
    @pytest.mark.parametrize("script", HOSTILE_SCRIPTS)
    def test_engines_agree(self, script):
        assert_engines_agree(script)

    @pytest.mark.parametrize("script, budget", [
        ("while 1 {}", 500),
        ("set x 0\nwhile 1 {incr x}", 500),
        ("set x 0\nfor {set i 0} {1} {incr i} {incr x}", 500),
        ("catch {while 1 {}}", 400),
        ("proc spin {} {while 1 {}}\nspin", 300),
        ("set s 0\nfor {set i 0} {$i < 100000} {incr i} {incr s $i}",
         777),
    ])
    def test_command_budget_trips_identically(self, script, budget):
        # The watchdog counts work units (commands + nested eval
        # entries); the VM must account exactly like the tree-walker,
        # so the trip fires after the same unit -- observable through
        # identical `info cmdcount` and the loop counter left behind.
        assert_engines_agree(script, commands=budget)

    def test_traces_observe_identical_sequences(self):
        script = (
            "set log {}\n"
            "proc tracer {name index op} {global log\n"
            "  lappend log $name/$op}\n"
            "trace variable watched rwu tracer\n"
            "for {set i 0} {$i < 3} {incr i} {\n"
            "  set watched $i\n"
            "  set copy $watched\n"
            "}\n"
            "unset watched\n"
            "set log"
        )
        assert_engines_agree(script)


# ----------------------------------------------------------------------
# Corpus 3: mid-flight command-table and variable mutations
# (the inline-cache invalidation paths)


class TestMidFlightMutation:
    def test_rename_between_cached_evals(self):
        prelude = "proc shadowed {} {return original}"
        script = (
            "set r [shadowed]\n"
            "rename shadowed {}\n"
            "proc shadowed {} {return redefined}\n"
            "set r2 [shadowed]\n"
            "proc shadowed {} {return original}\n"
            "list $r $r2"
        )
        assert_engines_agree(script, prelude=prelude, rounds=3)

    def test_set_renamed_away_mid_script(self):
        # `set` disappears between the first and second statement: the
        # VM's inlined OP_SET must notice via its generation check.
        script = (
            "set a 1\n"
            "rename set assign\n"
            "catch {set b 2} msg\n"
            "assign restored 3\n"
            "rename assign set\n"
            "list $a $msg $restored"
        )
        assert_engines_agree(script, rounds=3)

    def test_proc_shadows_builtin_incr(self):
        script = (
            "set n 0\n"
            "incr n\n"
            "rename incr _incr\n"
            "proc incr {name} {upvar $name v; set v shadowed}\n"
            "incr n\n"
            "rename incr {}\n"
            "rename _incr incr\n"
            "set n"
        )
        assert_engines_agree(script, rounds=3)

    def test_hidden_command_fails_identically(self):
        interps = [Interp(**e) for e in ENGINES]
        outcomes = []
        for interp in interps:
            interp.eval("set x 1")           # warm caches on `set`
            interp.hide_command("set")
            try:
                interp.eval("set x 2")
                outcomes.append(("ok",))
            except TclError as err:
                outcomes.append(("error", str(err.result),
                                 interp.eval("info cmdcount")))
            interp.expose_command("set")
            outcomes.append(("after", interp.eval("set x")))
        assert outcomes[0::2] == [outcomes[0]] * len(interps)
        assert outcomes[1::2] == [outcomes[1]] * len(interps)
        assert "invalid command name" in outcomes[0][1]

    def test_upvar_links_invalidate_cached_slots(self):
        script = (
            "proc bump {} {upvar 1 n v\nincr v}\n"
            "set n 0\n"
            "for {set i 0} {$i < 5} {incr i} {bump}\n"
            "set n"
        )
        assert_engines_agree(script)

    def test_unset_then_reset_in_cached_loop(self):
        script = (
            "set total 0\n"
            "for {set i 0} {$i < 6} {incr i} {\n"
            "  unset total\n"
            "  set total $i\n"
            "}\n"
            "set total"
        )
        assert_engines_agree(script)


# ----------------------------------------------------------------------
# Corpus 4: seeded random scripts


_VARS = ["a", "b", "c", "d"]


def _gen_expr(rng, depth=0):
    if depth > 2 or rng.random() < 0.4:
        if rng.random() < 0.5:
            return str(rng.randint(-20, 20))
        return "$%s" % rng.choice(_VARS)
    op = rng.choice(["+", "-", "*", "<", ">", "<=", ">=", "==", "!="])
    return "(%s %s %s)" % (
        _gen_expr(rng, depth + 1), op, _gen_expr(rng, depth + 1))


def _gen_stmt(rng, depth=0):
    roll = rng.random()
    var = rng.choice(_VARS)
    if roll < 0.25:
        return "set %s %d" % (var, rng.randint(-50, 50))
    if roll < 0.40:
        return "incr %s %d" % (var, rng.randint(-3, 3))
    if roll < 0.55:
        return "set %s [expr {%s}]" % (var, _gen_expr(rng))
    if roll < 0.65 and depth < 2:
        return "if {%s} {\n%s\n} else {\n%s\n}" % (
            _gen_expr(rng), _gen_block(rng, depth + 1),
            _gen_block(rng, depth + 1))
    if roll < 0.75 and depth < 2:
        limit = rng.randint(1, 8)
        return ("for {set %s 0} {$%s < %d} {incr %s} {\n%s\n}"
                % (var, var, limit, var, _gen_block(rng, depth + 1)))
    if roll < 0.82 and depth < 2:
        items = " ".join(str(rng.randint(0, 9))
                         for __ in range(rng.randint(1, 4)))
        return "foreach %s {%s} {\n%s\n}" % (
            var, items, _gen_block(rng, depth + 1))
    if roll < 0.88:
        # Hazards: unset (epoch bump), array elements, errors in catch.
        hazard = rng.choice([
            "catch {unset %s}" % var,
            "set arr(%s) %d" % (var, rng.randint(0, 9)),
            "catch {incr %s oops} msg" % var,
            "catch {nosuchcommand} msg",
        ])
        return hazard
    if roll < 0.94:
        # Optimizer bait: constant-set chains, foldable exprs, and
        # constant conditions -- shapes OP_SETDEAD / OP_CONSTEXPR /
        # W_FOLDED / precomputed-truth rewrite.
        bait = rng.choice([
            "set %s %d\nset %s %d\nset %s %d" % (
                var, rng.randint(0, 9), var, rng.randint(0, 9),
                var, rng.randint(0, 9)),
            "set %s [expr {%d + %d * %d}]" % (
                var, rng.randint(0, 9), rng.randint(0, 9),
                rng.randint(0, 9)),
            "expr {%d %% %d}" % (rng.randint(0, 99), rng.randint(1, 9)),
            "while {0} {set %s never}" % var,
            "if {1} {set %s taken} else {set %s nottaken}" % (var, var),
            "incr %s [expr {%d - %d}]" % (
                var, rng.randint(0, 9), rng.randint(0, 9)),
        ])
        return bait
    return "set %s [string length %s%d]" % (var, var, rng.randint(0, 99))


def _gen_block(rng, depth):
    return "\n".join(_gen_stmt(rng, depth)
                     for __ in range(rng.randint(1, 3)))


def _gen_script(rng):
    lines = ["set %s %d" % (v, rng.randint(0, 9)) for v in _VARS]
    lines += [_gen_stmt(rng) for __ in range(rng.randint(3, 8))]
    lines.append("list $a $b $c $d [info cmdcount]")
    return "\n".join(lines)


class TestRandomizedDifferential:
    # Every random script runs under a command budget: generated loop
    # bodies may rewrite their own loop variable into an infinite loop,
    # and a trip is itself a differential observable (the engines must
    # stop after the identical work unit).
    @pytest.mark.parametrize("seed", range(40))
    def test_random_script_engines_agree(self, seed):
        rng = random.Random(4242 + seed)
        script = _gen_script(rng)
        assert_engines_agree(script, commands=20000)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_script_under_tight_budget(self, seed):
        rng = random.Random(9000 + seed)
        script = _gen_script(rng)
        assert_engines_agree(script, commands=50 + seed * 17)
