"""Tests for the nameToWidget and setPrefix additions."""

import sys
import textwrap

import pytest

from repro.tcl.errors import TclError
from repro.xlib import close_all_displays
from repro.core import make_wafe
from repro.core.frontend import Frontend


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


class TestNameToWidget:
    def test_direct_path(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("command deep f")
        assert wafe.run_script("nameToWidget topLevel f.deep") == "deep"
        assert wafe.run_script("nameToWidget f deep") == "deep"

    def test_star_skips_levels(self, wafe):
        wafe.run_script("form outer topLevel")
        wafe.run_script("box middle outer")
        wafe.run_script("label target middle")
        assert wafe.run_script("nameToWidget topLevel *target") == "target"

    def test_missing_path_raises(self, wafe):
        wafe.run_script("form f topLevel")
        with pytest.raises(TclError, match="no widget named"):
            wafe.run_script("nameToWidget f ghost")


class TestSetPrefix:
    def test_prefix_change_takes_effect(self, wafe, tmp_path):
        script = tmp_path / "prefix.py"
        script.write_text(textwrap.dedent('''
            import sys
            print("%setPrefix @")
            print("%this line is output now")
            print("@set switched 1")
            sys.stdout.flush()
        '''))
        passthrough = []
        front = Frontend(wafe, [sys.executable, "-u", str(script)],
                         passthrough=passthrough.append)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("switched"),
                       max_idle=400)
        front.close()
        assert wafe.run_script("set switched") == "1"
        assert passthrough == ["%this line is output now"]

    def test_set_prefix_without_backend_rejected(self, wafe):
        with pytest.raises(TclError, match="no application attached"):
            wafe.run_script("setPrefix @")


class TestTopLevelControlFlow:
    def test_return_at_top_level_ends_script(self, wafe):
        assert wafe.run_script(  # wafelint: skip -- W010 is deliberate
            "set a 1; return early; set a 2") == "early"
        assert wafe.run_script("set a") == "1"

    def test_break_at_top_level_is_error(self, wafe):
        with pytest.raises(TclError, match="break"):
            wafe.run_script("break")
