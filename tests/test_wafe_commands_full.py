"""Coverage of the full generated command surface (Xt/Xaw/Motif/Plotter)."""

import pytest

from repro.tcl.errors import TclError
from repro.xlib import close_all_displays
from repro.core import make_wafe


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


@pytest.fixture
def mofe():
    close_all_displays()
    return make_wafe(build="motif")


class TestXtLifecycleCommands:
    def test_realize_unrealize_widget(self, wafe):
        wafe.run_script("label l topLevel")
        assert wafe.run_script("isRealized l") == "0"
        wafe.run_script("realize")
        assert wafe.run_script("isRealized l") == "1"
        wafe.run_script("unrealizeWidget l")
        assert wafe.run_script("isRealized l") == "0"

    def test_manage_unmanage(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("label l f -unmanaged")
        assert wafe.run_script("isManaged l") == "0"
        wafe.run_script("manageChild l")
        assert wafe.run_script("isManaged l") == "1"
        wafe.run_script("unmanageChild l")
        assert wafe.run_script("isManaged l") == "0"

    def test_map_unmap(self, wafe):
        wafe.run_script("label l topLevel")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("l")
        wafe.run_script("unmapWidget l")
        assert not widget.window.mapped
        wafe.run_script("mapWidget l")
        assert widget.window.mapped

    def test_bell(self, wafe):
        wafe.run_script("label l topLevel")
        wafe.run_script("bell l 50")
        wafe.run_script("bell l 0")
        assert wafe.bell_count == 2

    def test_sensitive_propagates_to_children(self, wafe):
        wafe.run_script("form f topLevel")
        wafe.run_script("command b f")
        wafe.run_script("setSensitive f false")
        assert wafe.run_script("isSensitive b") == "0"
        wafe.run_script("setSensitive f true")
        assert wafe.run_script("isSensitive b") == "1"


class TestPopupCommands:
    def _setup(self, wafe):
        from repro.xt.shell import TransientShell

        shell = TransientShell("pop", wafe.top_level,
                               args={"x": "400", "y": "200"})
        wafe.widgets["pop"] = shell
        wafe.run_script("label inside pop")
        wafe.run_script("realize")
        return shell

    def test_popup_grab_kinds(self, wafe):
        shell = self._setup(wafe)
        for kind in ("none", "nonexclusive", "exclusive"):
            wafe.run_script("popup pop %s" % kind)
            assert shell.popped_up
            wafe.run_script("popdown pop")
            assert not shell.popped_up

    def test_popup_bad_grab_kind(self, wafe):
        self._setup(wafe)
        with pytest.raises(TclError, match="bad grab kind"):
            wafe.run_script("popup pop sometimes")

    def test_popup_non_shell_rejected(self, wafe):
        wafe.run_script("label l topLevel")
        with pytest.raises(TclError, match="not a shell"):
            wafe.run_script("popup l none")


class TestTimeoutAndWorkProcCommands:
    def test_remove_timeout(self, wafe):
        wafe.run_script("set fired 0")
        timeout_id = wafe.run_script("addTimeOut 1 {set fired 1}")
        wafe.run_script("removeTimeOut %s" % timeout_id)
        wafe.main_loop(max_idle=3)
        assert wafe.run_script("set fired") == "0"

    def test_add_work_proc_runs_until_true(self, wafe):
        wafe.run_script("set n 0")
        wafe.run_script("addWorkProc {incr n; expr {$n >= 3}}")
        wafe.main_loop(max_idle=20)
        assert wafe.run_script("set n") == "3"


class TestSelectionCommands:
    def test_own_and_get_selection(self, wafe):
        wafe.run_script("label owner topLevel")
        wafe.run_script("label asker topLevel -unmanaged")
        wafe.run_script("realize")
        wafe.run_script("realizeWidget asker")
        wafe.run_script('ownSelection owner PRIMARY {concat the payload}')
        value = wafe.run_script("getSelectionValue asker PRIMARY STRING")
        assert value == "the payload"

    def test_disown_selection(self, wafe):
        wafe.run_script("label owner topLevel")
        wafe.run_script("realize")
        wafe.run_script("ownSelection owner PRIMARY {concat x}")
        wafe.run_script("disownSelection owner PRIMARY")
        value = wafe.run_script("getSelectionValue owner PRIMARY STRING")
        assert value == ""

    def test_selection_converts_per_request(self, wafe):
        wafe.run_script("label owner topLevel")
        wafe.run_script("realize")
        wafe.run_script("set n 0")
        wafe.run_script("ownSelection owner PRIMARY {incr n}")
        assert wafe.run_script("getSelectionValue owner PRIMARY STRING") == "1"
        assert wafe.run_script("getSelectionValue owner PRIMARY STRING") == "2"


class TestTranslationCommands:
    def test_override_translations_command(self, wafe, capsys):
        lines = []
        wafe.interp.write_output = lambda t: lines.append(t.rstrip("\n"))
        wafe.run_script("label l topLevel")
        wafe.run_script(
            'overrideTranslations l "<EnterWindow>: exec(echo in)"')
        wafe.run_script("realize")
        widget = wafe.lookup_widget("l")
        x, y = widget.window.absolute_origin()
        wafe.app.default_display.warp_pointer(x + 1, y + 1)
        wafe.app.process_pending()
        assert lines == ["in"]

    def test_augment_translations_command(self, wafe):
        lines = []
        wafe.interp.write_output = lambda t: lines.append(t.rstrip("\n"))
        wafe.run_script("command b topLevel callback {echo press}")
        wafe.run_script('augmentTranslations b "<Btn1Down>: exec(echo mine)"')
        wafe.run_script("realize")
        widget = wafe.lookup_widget("b")
        x, y = widget.window.absolute_origin()
        wafe.app.default_display.click(x + 1, y + 1)
        wafe.app.process_pending()
        # Augment defers to the existing binding: Command's set() wins.
        assert "press" in lines and "mine" not in lines


class TestAthenaCommands:
    def test_list_change_and_highlight_cycle(self, wafe):
        wafe.run_script("list l topLevel list {a}")
        wafe.run_script("realize")
        wafe.run_script("listChange l {x y z} true")
        wafe.run_script("listHighlight l 1")
        assert wafe.run_script("listShowCurrent l cur") == "1"
        assert wafe.run_script("set cur(string)") == "y"
        wafe.run_script("listUnhighlight l")
        assert wafe.run_script("listShowCurrent l cur2") == "-1"

    def test_text_insertion_point_commands(self, wafe):
        wafe.run_script("asciiText t topLevel editType edit string hello")
        wafe.run_script("textSetInsertionPoint t 2")
        assert wafe.run_script("textGetInsertionPoint t") == "2"
        wafe.lookup_widget("t").insert("XX")
        assert wafe.run_script("gV t string") == "heXXllo"

    def test_text_replace_command(self, wafe):
        wafe.run_script("asciiText t topLevel editType edit "
                        "string {hello world}")
        wafe.run_script("textReplace t 6 11 {wafe!}")
        assert wafe.run_script("gV t string") == "hello wafe!"
        assert wafe.run_script("textGetInsertionPoint t") == "11"

    def test_text_selection_commands(self, wafe):
        wafe.run_script("asciiText t topLevel editType edit "
                        "string {select me}")
        wafe.run_script("realize")
        wafe.run_script("textSetSelection t 0 6")
        assert wafe.run_script("textGetSelection t") == "select"

    def test_scrollbar_set_thumb_command(self, wafe):
        wafe.run_script("scrollbar s topLevel")
        wafe.run_script("scrollbarSetThumb s 0.25 0.5")
        bar = wafe.lookup_widget("s")
        assert bar["topOfThumb"] == 0.25
        assert bar["shown"] == 0.5

    def test_strip_chart_sample_command(self, wafe):
        wafe.run_script("stripChart c topLevel update 0")
        wafe.run_script("set v 7")
        chart = wafe.lookup_widget("c")
        chart.add_callback("getValue",
                           lambda w, holder: holder.__setitem__(0, 7.0))
        wafe.run_script("realize")
        assert wafe.run_script("stripChartSample c") == "7.0"

    def test_viewport_set_coordinates_command(self, wafe):
        wafe.run_script("viewport v topLevel width 80 height 40")
        wafe.run_script("label big v label {x\nx\nx\nx\nx\nx\nx\nx}")
        wafe.run_script("realize")
        wafe.run_script("viewportSetCoordinates v 0 25")
        child = wafe.lookup_widget("big")
        assert child.resources["y"] == -25

    def test_dialog_get_value_string_command(self, wafe):
        wafe.run_script("dialog d topLevel label {Name:} value {gustaf}")
        assert wafe.run_script("dialogGetValueString d") == "gustaf"

    def test_toggle_and_menu_creation_commands(self, wafe):
        wafe.run_script("toggle t topLevel state true")
        assert wafe.lookup_widget("t")["state"] is True
        wafe.run_script("menuButton mb topLevel")
        wafe.run_script("simpleMenu m mb")
        wafe.run_script("smeLine sep m")
        wafe.run_script("sme plain m")
        assert wafe.lookup_widget("m").CLASS_NAME == "SimpleMenu"

    def test_box_and_paned_creation(self, wafe):
        wafe.run_script("box b topLevel orientation horizontal")
        wafe.run_script("paned p b")
        wafe.run_script("label inside p")
        wafe.run_script("realize")
        assert wafe.lookup_widget("p").realized


class TestMotifCommands:
    def test_toggle_state_commands(self, mofe):
        mofe.run_script("mToggleButton t topLevel")
        assert mofe.run_script("mToggleButtonGetState t") == "0"
        mofe.run_script("mToggleButtonSetState t true false")
        assert mofe.run_script("mToggleButtonGetState t") == "1"

    def test_toggle_notify_flag(self, mofe):
        changes = []
        mofe.run_script("mToggleButton t topLevel")
        mofe.lookup_widget("t").add_callback(
            "valueChangedCallback", lambda w, d: changes.append(d))
        mofe.run_script("mToggleButtonSetState t true false")
        assert changes == []
        mofe.run_script("mToggleButtonSetState t false true")
        assert changes == [False]

    def test_text_commands(self, mofe):
        mofe.run_script("mText t topLevel")
        mofe.run_script("mTextSetString t {hello motif}")
        assert mofe.run_script("mTextGetString t") == "hello motif"

    def test_command_box_lifecycle(self, mofe):
        mofe.run_script("mCommand c topLevel")
        mofe.run_script("mCommandSetValue c {make all}")
        assert mofe.run_script("mCommandEnter c") == "make all"
        history = mofe.lookup_widget("c")["historyItems"]
        assert history == ["make all"]

    def test_rowcolumn_and_separator(self, mofe):
        mofe.run_script("mRowColumn rc topLevel")
        mofe.run_script("mLabel a rc")
        mofe.run_script("mSeparator sep rc")
        mofe.run_script("mLabel b rc")
        mofe.run_script("realize")
        a = mofe.lookup_widget("a")
        b = mofe.lookup_widget("b")
        assert b.resources["y"] > a.resources["y"]


class TestWidgetReferenceErrors:
    @pytest.mark.parametrize("script", [
        "destroyWidget ghost",
        "gV ghost label",
        "sV ghost label x",
        "popup ghost none",
        "listHighlight ghost 0",
    ])
    def test_unknown_widget_message(self, wafe, script):
        with pytest.raises(TclError, match='no such widget "ghost"'):
            wafe.run_script(script)

    def test_wrong_class_operation(self, wafe):
        wafe.run_script("label l topLevel")
        with pytest.raises(TclError, match="does not support"):
            wafe.run_script("listHighlight l 0")
