"""Tests for damage-region rendering, expose coalescing, clipped
redraw, and the widget partial-repaint fast paths.

The differential corpus at the bottom drives identical widget trees
through identical operation scripts on the band-damage path, the
naive-rect-list-damage path, and the eager-expose spec path
(``use_regions=False``), asserting the screen framebuffers end up
byte-identical at every checkpoint.
"""

import pytest

from repro.core import make_wafe
from repro.xlib import close_all_displays, open_display, xtypes
from repro.xlib.graphics import window_pixels
from repro.xt import ApplicationShell, XtAppContext
from repro.xaw import BarGraph, Label, LineGraph, Scrollbar


@pytest.fixture
def display():
    close_all_displays()
    return open_display(":0")


@pytest.fixture
def app():
    close_all_displays()
    return XtAppContext()


@pytest.fixture
def top(app):
    return ApplicationShell("topLevel", None, app=app)


def make_window(display, parent=None, x=0, y=0, w=100, h=50, mask=None):
    window = display.create_window(parent, x, y, w, h)
    window.select_input(xtypes.ExposureMask if mask is None else mask)
    window.map()
    return window


def drain_exposes(display):
    events = []
    while display.pending():
        event = display.next_event()
        if event.type == xtypes.Expose:
            events.append(event)
    return events


class TestDamageAccumulation:
    def test_damage_coalesces_into_one_series(self, display):
        window = make_window(display)
        drain_exposes(display)
        display.damage_rect(window, 0, 0, 10, 10)
        display.damage_rect(window, 10, 0, 10, 10)  # adjacent: coalesces
        events = drain_exposes(display)
        assert len(events) == 1
        event = events[0]
        assert (event.x, event.y, event.width, event.height) == (0, 0, 20, 10)
        assert event.count == 0

    def test_disjoint_damage_emits_count_series(self, display):
        window = make_window(display)
        drain_exposes(display)
        display.damage_rect(window, 0, 0, 5, 5)
        display.damage_rect(window, 40, 30, 5, 5)
        events = drain_exposes(display)
        assert len(events) == 2
        # X count contract: all but the last carry count > 0.
        assert [e.count for e in events] == [1, 0]

    def test_overlapping_damage_never_double_exposes(self, display):
        window = make_window(display)
        drain_exposes(display)
        display.damage_rect(window, 0, 0, 20, 20)
        display.damage_rect(window, 10, 10, 20, 20)
        events = drain_exposes(display)
        exposed = sum(e.width * e.height for e in events)
        assert exposed == 400 + 400 - 100

    def test_damage_clipped_to_window(self, display):
        window = make_window(display, w=50, h=40)
        drain_exposes(display)
        display.damage_rect(window, -10, -10, 1000, 1000)
        events = drain_exposes(display)
        assert len(events) == 1
        event = events[0]
        assert (event.x, event.y, event.width, event.height) == (0, 0, 50, 40)

    def test_unviewable_window_accumulates_nothing(self, display):
        window = display.create_window(None, 0, 0, 50, 40)
        window.select_input(xtypes.ExposureMask)
        display.damage_rect(window, 0, 0, 10, 10)
        assert drain_exposes(display) == []

    def test_destroyed_window_damage_dropped(self, display):
        window = make_window(display)
        drain_exposes(display)
        display.damage_rect(window, 0, 0, 10, 10)
        window.destroy()
        assert drain_exposes(display) == []

    def test_damage_without_exposure_mask_is_silent(self, display):
        window = make_window(display, mask=0)
        display.damage_rect(window, 0, 0, 10, 10)
        assert drain_exposes(display) == []

    def test_eager_spec_path_still_immediate(self, display):
        display.use_regions = False
        make_window(display)
        # The eager path queues without needing a flush point.
        assert any(e.type == xtypes.Expose for e in display.queue)

    def test_renderstats_counters_track(self, display):
        window = make_window(display)
        drain_exposes(display)
        display.reset_render_stats()
        display.damage_rect(window, 0, 0, 10, 10)
        display.damage_rect(window, 50, 20, 10, 10)
        drain_exposes(display)
        stats = display.render_stats
        assert stats["damage_rects"] == 2
        assert stats["damage_pixels"] == 200
        assert stats["expose_series"] == 1
        assert stats["expose_events"] == 2
        assert stats["exposed_pixels"] == 200
        assert stats["damage_flushes"] == 1


class TestConfigureAndRaiseDamage:
    def test_move_damages_subtree(self, display):
        outer = make_window(display, w=100, h=100)
        inner = make_window(display, parent=outer, x=10, y=10, w=20, h=20)
        drain_exposes(display)
        outer.configure(x=30)
        events = drain_exposes(display)
        assert {e.window for e in events} == {outer, inner}

    def test_resize_damages_subtree(self, display):
        outer = make_window(display, w=100, h=100)
        inner = make_window(display, parent=outer, x=10, y=10, w=20, h=20)
        drain_exposes(display)
        outer.configure(width=150)
        events = drain_exposes(display)
        # The repainting parent overwrites the child's pixels, so the
        # child must repaint too.
        assert {e.window for e in events} == {outer, inner}

    def test_northwest_resize_leaves_unrevealed_children_alone(self,
                                                               display):
        outer = make_window(display, w=100, h=100)
        outer.bit_gravity = "northwest"
        make_window(display, parent=outer, x=10, y=10, w=20, h=20)
        drain_exposes(display)
        outer.configure(width=150)
        events = drain_exposes(display)
        # Only the revealed strip is damaged; the child is outside it.
        assert {e.window for e in events} == {outer}

    def test_northwest_gravity_resize_damages_only_new_strip(self, display):
        window = make_window(display, w=100, h=80)
        window.bit_gravity = "northwest"
        drain_exposes(display)
        window.configure(width=120)
        events = drain_exposes(display)
        assert len(events) == 1
        event = events[0]
        assert (event.x, event.y, event.width, event.height) == \
            (100, 0, 20, 80)

    def test_northwest_gravity_shrink_damages_nothing(self, display):
        window = make_window(display, w=100, h=80)
        window.bit_gravity = "northwest"
        drain_exposes(display)
        window.configure(width=60)
        assert drain_exposes(display) == []

    def test_raise_damages_only_previously_occluded_area(self, display):
        below = make_window(display, x=0, y=0, w=100, h=100)
        make_window(display, x=50, y=50, w=100, h=100)  # overlaps corner
        drain_exposes(display)
        below.raise_window()
        events = drain_exposes(display)
        assert len(events) == 1
        event = events[0]
        assert (event.x, event.y, event.width, event.height) == \
            (50, 50, 50, 50)

    def test_raise_of_topmost_window_damages_nothing(self, display):
        make_window(display, x=0, y=0, w=100, h=100)
        topmost = make_window(display, x=50, y=50, w=100, h=100)
        drain_exposes(display)
        topmost.raise_window()
        assert drain_exposes(display) == []

    def test_raise_generates_exposure_on_eager_spec_path(self, display):
        # The satellite bug: restacking used to repaint nothing at all.
        display.use_regions = False
        below = make_window(display, x=0, y=0, w=100, h=100)
        make_window(display, x=50, y=50, w=100, h=100)
        drain_exposes(display)
        below.raise_window()
        events = drain_exposes(display)
        assert events and events[0].window is below

    def test_raise_damage_propagates_to_children(self, display):
        below = make_window(display, x=0, y=0, w=100, h=100)
        child = make_window(display, parent=below, x=60, y=60, w=30, h=30)
        make_window(display, x=50, y=50, w=100, h=100)
        drain_exposes(display)
        below.raise_window()
        events = drain_exposes(display)
        windows = {e.window for e in events}
        assert below in windows and child in windows


class TestWidgetClippedRedraw:
    def test_expose_series_batches_until_count_zero(self, app, top):
        label = Label("l", top, args={"label": "hello"})
        top.realize()
        app.process_pending()
        display = app.default_display
        clips = []
        original = label.expose

        def counting_expose(event):
            clips.append(label.window.paint_clip)
            original(event)

        label.expose = counting_expose
        display.damage_rect(label.window, 0, 0, 3, 3)
        display.damage_rect(label.window, 10, 8, 3, 3)
        app.process_pending()
        # Two damage rects, one batched series: the class expose ran
        # once per rect, each time with the paint clip installed.
        assert len(clips) == 2
        assert all(clip is not None for clip in clips)
        assert label.window.paint_clip is None  # reset afterwards

    def test_partial_expose_repaints_only_clip(self, app, top):
        label = Label("l", top, args={"label": "zz"})
        top.realize()
        app.process_pending()
        display = app.default_display
        before = window_pixels(label.window)
        # Trash the framebuffer, then damage only the left half.
        half = label.window.width // 2
        display.screen.framebuffer[:] = 0x123456
        display.damage_rect(label.window, 0, 0, half, label.window.height)
        app.process_pending()
        after = window_pixels(label.window)
        assert (after[:, :half] == before[:, :half]).all()
        assert (after[:, half:] == 0x123456).all()

    def test_scrollbar_thumb_move_damages_thin_strips(self, app, top):
        bar = Scrollbar("sb", top, args={"orientation": "vertical",
                                         "length": "400",
                                         "thickness": "20"})
        top.realize()
        app.process_pending()
        display = app.default_display
        display.reset_render_stats()
        bar.redraw()
        full_drawn = display.render_stats["drawn_pixels"]
        display.reset_render_stats()
        bar.set_thumb(top=0.1)
        moved = display.render_stats["drawn_pixels"]
        assert 0 < moved < full_drawn / 2

    def test_scrollbar_move_matches_full_redraw_pixels(self, app, top):
        bar = Scrollbar("sb", top, args={"orientation": "vertical",
                                         "length": "200",
                                         "thickness": "20"})
        top.realize()
        app.process_pending()
        bar.set_thumb(top=0.25)
        partial = window_pixels(bar.window)
        bar.redraw()
        assert (window_pixels(bar.window) == partial).all()

    def test_label_text_change_damages_text_extent_only(self, app, top):
        label = Label("l", top, args={"label": "W" * 10, "resize": "false",
                                      "width": "400", "height": "100"})
        top.realize()
        app.process_pending()
        display = app.default_display
        display.reset_render_stats()
        label.redraw()
        full_drawn = display.render_stats["drawn_pixels"]
        display.reset_render_stats()
        label.set_values({"label": "W" * 9})
        app.process_pending()
        drawn = display.render_stats["drawn_pixels"]
        assert 0 < drawn < full_drawn / 2
        assert label.label_text() == "W" * 9

    def test_label_partial_update_matches_full_redraw(self, app, top):
        label = Label("l", top, args={"label": "alpha", "resize": "false",
                                      "width": "300", "height": "80"})
        top.realize()
        app.process_pending()
        label.set_values({"label": "omega"})
        app.process_pending()
        partial = window_pixels(label.window)
        label.redraw()
        assert (window_pixels(label.window) == partial).all()

    def test_linegraph_append_with_point_spacing_is_partial(self, app, top):
        graph = LineGraph("g", top, args={
            "width": "400", "height": "150", "pointSpacing": "3",
            "minValue": "0", "maxValue": "100"})
        data = list(range(0, 80, 2))
        graph.set_data(data)
        top.realize()
        app.process_pending()
        display = app.default_display
        display.reset_render_stats()
        graph.redraw()
        full_drawn = display.render_stats["drawn_pixels"]
        display.reset_render_stats()
        graph.set_data(data + [41])
        drawn = display.render_stats["drawn_pixels"]
        assert 0 < drawn < full_drawn / 10

    def test_linegraph_append_matches_full_redraw(self, app, top):
        graph = LineGraph("g", top, args={
            "width": "300", "height": "120", "pointSpacing": "4",
            "minValue": "0", "maxValue": "50"})
        graph.set_data([10, 40, 20, 30])
        top.realize()
        app.process_pending()
        graph.set_data([10, 40, 20, 30, 5, 45])
        partial = window_pixels(graph.window)
        graph.redraw()
        assert (window_pixels(graph.window) == partial).all()

    def test_linegraph_autoscale_append_falls_back(self, app, top):
        # Without a pinned value range an append can move the scale, so
        # the fast path must refuse (pointSpacing alone is not enough).
        graph = LineGraph("g", top, args={
            "width": "300", "height": "120", "pointSpacing": "4"})
        graph.set_data([10, 40, 20, 30])
        top.realize()
        app.process_pending()
        graph.set_data([10, 40, 20, 30, 95])
        partial = window_pixels(graph.window)
        graph.redraw()
        assert (window_pixels(graph.window) == partial).all()

    def test_bargraph_append_falls_back_to_full_redraw(self, app, top):
        graph = BarGraph("g", top, args={"width": "200", "height": "100"})
        graph.set_data([1, 2, 3])
        top.realize()
        app.process_pending()
        # Bars re-space on append; the base hook refuses the fast path
        # and the widget still ends up painted correctly.
        graph.set_data([1, 2, 3, 4])
        partial = window_pixels(graph.window)
        graph.redraw()
        assert (window_pixels(graph.window) == partial).all()


class TestInfoRenderstats:
    def test_renderstats_reports_and_resets(self):
        close_all_displays()
        wafe = make_wafe()
        wafe.run_script(
            "label l topLevel label {hello world}\nrealize\nsync")
        out = wafe.run_script("info renderstats")
        pairs = dict(zip(out.split()[::2], out.split()[1::2]))
        assert pairs["regions"] == "band"
        assert int(pairs["drawnPixels"]) > 0
        assert int(pairs["exposeEvents"]) > 0
        wafe.run_script("info renderstats reset")
        out = wafe.run_script("info renderstats")
        pairs = dict(zip(out.split()[::2], out.split()[1::2]))
        assert pairs["drawnPixels"] == "0"

    def test_renderstats_names_the_spec_backends(self):
        close_all_displays()
        wafe = make_wafe(use_regions=False)
        assert "regions eager" in wafe.run_script("info renderstats")
        close_all_displays()
        wafe = make_wafe(naive_regions=True)
        assert "regions naive" in wafe.run_script("info renderstats")


# ----------------------------------------------------------------------
# The differential corpus: damage paths vs eager spec, byte-identical.

CORPUS = [
    # (setup script, mutation scripts run in order with a sync after each)
    (
        "label l topLevel label {hello} width 120 height 40\n"
        "command c topLevel x 10 y 50 label {press}\n"
        "realize",
        [
            "setValues l label {changed text}",
            "setValues l label {s}",
            "setValues c x 40",
            "setValues l width 200",
        ],
    ),
    (
        "scrollbar sb topLevel orientation vertical length 150\n"
        "realize",
        [
            "scrollbarSetThumb sb 0.2 0.3",
            "scrollbarSetThumb sb 0.21 0.3",
            "scrollbarSetThumb sb 0.8 0.1",
            "scrollbarSetThumb sb 0.0 1.0",
        ],
    ),
    (
        "lineGraph g topLevel width 300 height 100 pointSpacing 5 "
        "minValue 0 maxValue 10\n"
        "realize\n"
        "plotterSetData g {1 5 2 8}",
        [
            "plotterSetData g {1 5 2 8 9}",
            "plotterSetData g {1 5 2 8 9 0 3}",
            "plotterSetData g {7 7 7}",
        ],
    ),
    (
        "form f topLevel width 200 height 120\n"
        "label a f label {one}\n"
        "label b f label {two} fromVert a\n"
        "realize",
        [
            "setValues a label {uno}",
            "setValues b vertDistance 12",
            "setValues f width 260",
            "setValues a label {einszweidrei}",
        ],
    ),
]


class TestDifferentialCorpus:
    @pytest.mark.parametrize("case", range(len(CORPUS)))
    def test_damage_paths_byte_identical_to_eager_spec(self, case):
        setup, mutations = CORPUS[case]
        frames = {}
        for mode, kwargs in (
            ("band", {}),
            ("naive", {"naive_regions": True}),
            ("eager", {"use_regions": False}),
        ):
            close_all_displays()
            wafe = make_wafe(display_name=":diff-%s" % mode, **kwargs)
            wafe.run_script(setup)
            wafe.run_script("sync")
            snapshots = [
                wafe.app.default_display.screen.framebuffer.copy()]
            for mutation in mutations:
                wafe.run_script(mutation)
                wafe.run_script("sync")
                snapshots.append(
                    wafe.app.default_display.screen.framebuffer.copy())
            frames[mode] = snapshots
        for step in range(len(frames["band"])):
            assert (frames["band"][step] == frames["eager"][step]).all(), \
                "band vs eager diverged at step %d" % step
            assert (frames["naive"][step] == frames["eager"][step]).all(), \
                "naive vs eager diverged at step %d" % step
