"""Tests for the application context: timers, inputs, loop, converters."""

import os
import time

import pytest

from repro.xlib import close_all_displays, xtypes
from repro.xlib.events import XEvent
from repro.xt import ApplicationShell, XtAppContext
from repro.xt.converters import ConversionError
from repro.xaw import Label


@pytest.fixture
def app():
    close_all_displays()
    return XtAppContext()


@pytest.fixture
def top(app):
    return ApplicationShell("topLevel", None, app=app)


class TestTimeouts:
    def test_timeout_fires_once(self, app):
        fired = []
        app.add_timeout(1, lambda: fired.append(1))
        app.main_loop(until=lambda: bool(fired), max_idle=100)
        assert fired == [1]
        # It does not fire again.
        app.main_loop(max_idle=3)
        assert fired == [1]

    def test_timeouts_fire_in_deadline_order(self, app):
        order = []
        app.add_timeout(30, lambda: order.append("late"))
        app.add_timeout(1, lambda: order.append("early"))
        app.main_loop(until=lambda: len(order) == 2, max_idle=200)
        assert order == ["early", "late"]

    def test_remove_timeout(self, app):
        fired = []
        timeout_id = app.add_timeout(1, lambda: fired.append(1))
        app.remove_timeout(timeout_id)
        app.main_loop(max_idle=5)
        assert fired == []

    def test_timeout_args(self, app):
        seen = []
        app.add_timeout(1, lambda a, b: seen.append((a, b)), "x", 2)
        app.main_loop(until=lambda: bool(seen), max_idle=100)
        assert seen == [("x", 2)]


class TestInputs:
    def test_input_fires_when_readable(self, app):
        read_fd, write_fd = os.pipe()
        os.set_blocking(read_fd, False)
        received = []
        reader = os.fdopen(read_fd, "rb", buffering=0)
        app.add_input(reader, lambda f: received.append(os.read(read_fd,
                                                                100)))
        os.write(write_fd, b"ping")
        app.main_loop(until=lambda: bool(received), max_idle=100)
        assert received == [b"ping"]
        os.close(write_fd)
        reader.close()

    def test_remove_input(self, app):
        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "rb", buffering=0)
        received = []
        input_id = app.add_input(reader, lambda f: received.append(1))
        app.remove_input(input_id)
        os.write(write_fd, b"x")
        app.main_loop(max_idle=3)
        assert received == []
        os.close(write_fd)
        reader.close()


class TestOutputs:
    def test_output_fires_when_writable(self, app):
        read_fd, write_fd = os.pipe()
        os.set_blocking(write_fd, False)
        fired = []

        def on_writable(fd):
            fired.append(fd)
            app.remove_output(output_id)

        output_id = app.add_output(write_fd, on_writable)
        app.main_loop(until=lambda: bool(fired), max_idle=100)
        assert fired == [write_fd]
        os.close(read_fd)
        os.close(write_fd)

    def test_output_waits_for_pipe_drain(self, app):
        # A full pipe is not writable; reading makes it writable again.
        read_fd, write_fd = os.pipe()
        os.set_blocking(write_fd, False)
        while True:  # fill the pipe
            try:
                if os.write(write_fd, b"x" * 4096) == 0:
                    break
            except BlockingIOError:
                break
        fired = []

        def on_writable(fd):
            fired.append(fd)
            app.remove_output(output_id)

        output_id = app.add_output(write_fd, on_writable)
        app.main_loop(max_idle=5)
        assert fired == []  # still full
        os.read(read_fd, 65536)
        app.main_loop(until=lambda: bool(fired), max_idle=100)
        assert fired == [write_fd]
        os.close(read_fd)
        os.close(write_fd)

    def test_remove_output(self, app):
        read_fd, write_fd = os.pipe()
        fired = []
        output_id = app.add_output(write_fd, lambda f: fired.append(1))
        app.remove_output(output_id)
        app.main_loop(max_idle=3)
        assert fired == []
        os.close(read_fd)
        os.close(write_fd)


class TestWorkProcs:
    def test_work_proc_runs_when_idle(self, app):
        count = []
        app.add_work_proc(lambda: (count.append(1), len(count) >= 2)[1])
        app.main_loop(max_idle=20)
        assert len(count) == 2  # removed itself after returning True

    def test_work_proc_yields_to_events(self, app, top):
        # Events are always served before work procs.
        order = []
        Label("l", top)
        top.realize()
        app.process_pending()
        app.add_work_proc(lambda: (order.append("work"), True)[1])
        app.default_display.put_event(
            XEvent(xtypes.Expose, top.window))
        app.dispatch_hook = lambda w, e: order.append("event")
        app.main_loop(max_idle=10)
        assert order[0] == "event"
        assert "work" in order


class TestMainLoop:
    def test_exits_when_no_sources(self, app):
        start = time.perf_counter()
        app.main_loop()
        assert time.perf_counter() - start < 1.0

    def test_until_predicate(self, app):
        state = {"n": 0}

        def tick():
            state["n"] += 1
            app.add_timeout(1, tick)

        app.add_timeout(1, tick)
        app.main_loop(until=lambda: state["n"] >= 3, max_idle=500)
        assert state["n"] >= 3

    def test_exit_loop(self, app):
        app.add_timeout(1, app.exit_loop)
        app.main_loop(max_idle=500)
        assert app.quit_requested


class TestDispatch:
    def test_dispatch_hook_sees_all_events(self, app, top):
        seen = []
        app.dispatch_hook = lambda w, e: seen.append((w, e.type))
        Label("l", top)
        top.realize()
        app.process_pending()
        assert any(t == xtypes.Expose for __, t in seen)

    def test_event_for_destroyed_widget_ignored(self, app, top):
        label = Label("l", top)
        top.realize()
        app.process_pending()
        window = label.window
        label.destroy()
        app.dispatch_event(XEvent(xtypes.ButtonPress, window, button=1))
        # No exception; nothing dispatched.

    def test_unbound_action_skipped_not_fatal(self, app, top):
        from repro.xt.translations import parse_translation_table

        hits = []
        app.register_action("known", lambda w, e, a: hits.append(1))
        label = Label("l", top)
        label.resources["translations"] = parse_translation_table(
            "<Btn1Down>: missing() known()")
        top.realize()
        app.process_pending()
        x, y = label.window.absolute_origin()
        app.default_display.press_button(x + 1, y + 1)
        app.process_pending()
        assert hits == [1]

    def test_event_count_increments(self, app, top):
        top.realize()
        before = app.event_count
        app.dispatch_event(XEvent(xtypes.Expose, top.window))
        assert app.event_count == before + 1


class TestConverters:
    def make_label(self, top, **args):
        return Label("x%d" % id(args), top,
                     args={k: v for k, v in args.items()})

    def test_bad_dimension(self, app, top):
        with pytest.raises(ConversionError):
            self.make_label(top, width="-5")

    def test_bad_color(self, app, top):
        with pytest.raises(ConversionError):
            self.make_label(top, background="notacolor")

    def test_bad_boolean(self, app, top):
        with pytest.raises(ConversionError):
            self.make_label(top, sensitive="maybe")

    def test_bad_font(self, app, top):
        with pytest.raises(ConversionError):
            self.make_label(top, font="*no-such-font-anywhere*")

    def test_bad_justify(self, app, top):
        with pytest.raises(ConversionError):
            self.make_label(top, justify="diagonal")

    def test_hex_int(self, app, top):
        label = self.make_label(top, depth="0x18")
        assert label["depth"] == 24

    def test_xt_default_fore_back(self, app, top):
        label = self.make_label(top, background="XtDefaultBackground",
                                foreground="XtDefaultForeground")
        assert label["background"] == 0xFFFFFF
        assert label["foreground"] == 0x000000

    def test_bitmap_converter_reads_file(self, app, top, tmp_path):
        xbm = tmp_path / "icon.xbm"
        xbm.write_text("#define i_width 8\n#define i_height 1\n"
                       "static char i_bits[] = {0x0f};\n")
        label = Label("withbitmap", top, args={"bitmap": str(xbm)})
        assert label["bitmap"].shape == (1, 8)

    def test_unconvert_boolean(self, app, top):
        label = self.make_label(top, sensitive="on")
        assert label.get_value_string("sensitive") == "True"
