"""Tests for the Xrm resource database and translation parsing."""

import pytest

from repro.xlib import xtypes
from repro.xlib.events import XEvent
from repro.xt.translations import (
    TranslationError,
    merge_tables,
    parse_translation_table,
)
from repro.xt.xrm import XrmDatabase, parse_specifier


class TestSpecifierParsing:
    def test_tight_bindings(self):
        bindings, components = parse_specifier("a.b.c")
        assert components == ["a", "b", "c"]
        assert bindings == [".", ".", "."]

    def test_loose_bindings(self):
        bindings, components = parse_specifier("*Font")
        assert components == ["Font"]
        assert bindings == ["*"]

    def test_mixed(self):
        bindings, components = parse_specifier("wafe*form.label")
        assert components == ["wafe", "form", "label"]
        assert bindings == [".", "*", "."]

    def test_star_absorbs_dot(self):
        bindings, components = parse_specifier("a.*b")
        assert bindings == [".", "*"]


class TestQuery:
    def q(self, db, names, classes):
        return db.query(names.split(), classes.split())

    def test_loose_wildcard_matches_any_depth(self):
        db = XrmDatabase()
        db.put("*foreground", "blue")
        assert self.q(db, "wafe form button foreground",
                      "Wafe Form Command Foreground") == "blue"
        assert self.q(db, "wafe foreground", "Wafe Foreground") == "blue"

    def test_tight_binding_requires_adjacency(self):
        db = XrmDatabase()
        db.put("wafe.button.foreground", "red")
        assert self.q(db, "wafe button foreground",
                      "Wafe Command Foreground") == "red"
        assert self.q(db, "wafe form button foreground",
                      "Wafe Form Command Foreground") is None

    def test_class_match(self):
        db = XrmDatabase()
        db.put("*Command.background", "gray")
        assert self.q(db, "wafe form quit background",
                      "Wafe Form Command Background") == "gray"
        assert self.q(db, "wafe form lab background",
                      "Wafe Form Label Background") is None

    def test_name_beats_class(self):
        db = XrmDatabase()
        db.put("*Command.label", "by-class")
        db.put("*quit.label", "by-name")
        assert self.q(db, "wafe quit label",
                      "Wafe Command Label") == "by-name"

    def test_earlier_levels_dominate(self):
        db = XrmDatabase()
        db.put("wafe*label", "app-name")   # name match at level 0
        db.put("*form.label", "late-name")  # deeper name match
        assert self.q(db, "wafe form label",
                      "Wafe Form Label") == "app-name"

    def test_later_entry_wins_ties(self):
        db = XrmDatabase()
        db.put("*label", "first")
        db.put("*label", "second")
        assert self.q(db, "wafe form label", "Wafe Form Label") == "second"

    def test_question_mark(self):
        db = XrmDatabase()
        db.put("wafe.?.label", "q")
        assert self.q(db, "wafe anything label",
                      "Wafe Form Label") == "q"

    def test_resource_file_parsing(self):
        db = XrmDatabase()
        db.put_lines(
            "! a comment\n"
            "*Font: fixed\n"
            "wafe.title:  Hello World \n"
            "\n"
            "*background:\tred\n"
        )
        assert len(db) == 3
        assert self.q(db, "wafe form font", "Wafe Form Font") == "fixed"
        assert self.q(db, "wafe title", "Wafe Title") == "Hello World "
        assert self.q(db, "wafe background", "Wafe Background") == "red"

    def test_continuation_lines(self):
        db = XrmDatabase()
        db.put_lines("*trans: one\\\ntwo\n")
        assert self.q(db, "a trans", "A Trans") == "onetwo"

    def test_merge_overrides(self):
        base = XrmDatabase()
        base.put("*color", "old")
        extra = XrmDatabase()
        extra.put("*color", "new")
        base.merge(extra)
        assert self.q(base, "w color", "W Color") == "new"


class TestTranslationParsing:
    def test_paper_enterwindow_production(self):
        table = parse_translation_table("<EnterWindow>: PopupMenu()")
        assert len(table) == 1
        event = XEvent(xtypes.EnterNotify, None)
        assert table.lookup(event) == [("PopupMenu", [])]

    def test_paper_keypress_exec(self):
        table = parse_translation_table("<KeyPress>: exec(echo %k %a %s)")
        event = XEvent(xtypes.KeyPress, None, keycode=198)
        assert table.lookup(event) == [("exec", ["echo %k %a %s"])]

    def test_key_with_detail(self):
        table = parse_translation_table("<Key>Return: newline()")
        hit = XEvent(xtypes.KeyPress, None, keycode=189)  # Return key
        miss = XEvent(xtypes.KeyPress, None, keycode=198)  # 'w'
        assert table.lookup(hit) == [("newline", [])]
        assert table.lookup(miss) is None

    def test_button_details(self):
        table = parse_translation_table("<Btn1Down>: set()\n<Btn3Down>: menu()")
        one = XEvent(xtypes.ButtonPress, None, button=1)
        three = XEvent(xtypes.ButtonPress, None, button=3)
        assert table.lookup(one) == [("set", [])]
        assert table.lookup(three) == [("menu", [])]

    def test_modifiers(self):
        table = parse_translation_table("Shift<Key>w: shifted()")
        plain = XEvent(xtypes.KeyPress, None, keycode=198)
        shifted = XEvent(xtypes.KeyPress, None, keycode=198,
                         state=xtypes.ShiftMask)
        assert table.lookup(plain) is None
        # Shift+w produces keysym W; detail 'w' no longer matches.
        assert table.lookup(shifted) is None
        table2 = parse_translation_table("Shift<Key>W: shifted()")
        assert table2.lookup(shifted) == [("shifted", [])]

    def test_negated_modifier(self):
        table = parse_translation_table("~Shift<Btn1Down>: plain()")
        assert table.lookup(XEvent(xtypes.ButtonPress, None, button=1)) == \
            [("plain", [])]
        assert table.lookup(XEvent(xtypes.ButtonPress, None, button=1,
                                   state=xtypes.ShiftMask)) is None

    def test_multiple_actions(self):
        table = parse_translation_table("<Btn1Up>: notify() unset()")
        actions = table.lookup(XEvent(xtypes.ButtonRelease, None, button=1))
        assert actions == [("notify", []), ("unset", [])]

    def test_action_args_with_comma(self):
        table = parse_translation_table('<Key>: do(one, two)')
        actions = table.lookup(XEvent(xtypes.KeyPress, None, keycode=198))
        assert actions == [("do", ["one", "two"])]

    def test_nested_parens_in_exec_arg(self):
        # The prime-factor demo binds: exec(echo [gV input string])
        table = parse_translation_table(
            "<Key>Return: exec(echo [gV input string])")
        actions = table.lookup(XEvent(xtypes.KeyPress, None, keycode=189))
        assert actions == [("exec", ["echo [gV input string]"])]

    def test_directive_parsing(self):
        table = parse_translation_table("#override\n<Key>: a()")
        assert table.directive == "override"

    def test_unknown_event_raises(self):
        with pytest.raises(TranslationError):
            parse_translation_table("<Bogus>: a()")

    def test_missing_colon_raises(self):
        with pytest.raises(TranslationError):
            parse_translation_table("<Key>Return newline()")

    def test_first_match_wins(self):
        table = parse_translation_table(
            "<Key>Return: special()\n<KeyPress>: general()")
        ret = XEvent(xtypes.KeyPress, None, keycode=189)
        other = XEvent(xtypes.KeyPress, None, keycode=198)
        assert table.lookup(ret) == [("special", [])]
        assert table.lookup(other) == [("general", [])]


class TestTranslationMerging:
    def base(self):
        return parse_translation_table("<Btn1Down>: set()\n<Btn1Up>: notify()")

    def test_override_shadows_base(self):
        new = parse_translation_table("#override\n<Btn1Down>: mine()")
        merged = merge_tables(self.base(), new)
        press = XEvent(xtypes.ButtonPress, None, button=1)
        release = XEvent(xtypes.ButtonRelease, None, button=1)
        assert merged.lookup(press) == [("mine", [])]
        assert merged.lookup(release) == [("notify", [])]

    def test_augment_defers_to_base(self):
        new = parse_translation_table(
            "#augment\n<Btn1Down>: mine()\n<EnterWindow>: enter()")
        merged = merge_tables(self.base(), new)
        press = XEvent(xtypes.ButtonPress, None, button=1)
        enter = XEvent(xtypes.EnterNotify, None)
        assert merged.lookup(press) == [("set", [])]
        assert merged.lookup(enter) == [("enter", [])]

    def test_replace_discards_base(self):
        new = parse_translation_table("<EnterWindow>: enter()")
        merged = merge_tables(self.base(), new)
        press = XEvent(xtypes.ButtonPress, None, button=1)
        assert merged.lookup(press) is None
