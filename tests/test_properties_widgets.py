"""Property-based tests over random widget trees and translations."""

import string as _string

from hypothesis import given, settings, strategies as st

from repro.xlib import close_all_displays, xtypes
from repro.xlib.events import XEvent
from repro.xt.translations import merge_tables, parse_translation_table
from repro.core import make_wafe

# ----------------------------------------------------------------------
# Random widget trees built through Wafe commands.

CONTAINERS = ["form", "box", "paned"]
LEAVES = ["label", "command", "toggle", "scrollbar"]


@st.composite
def widget_trees(draw):
    """A list of (command, name, parent) creating a random tree."""
    count = draw(st.integers(min_value=1, max_value=8))
    nodes = []
    parents = ["topLevel"]
    for i in range(count):
        name = "w%d" % i
        parent = draw(st.sampled_from(parents))
        is_container = draw(st.booleans())
        if is_container:
            kind = draw(st.sampled_from(CONTAINERS))
            parents.append(name)
        else:
            kind = draw(st.sampled_from(LEAVES))
        nodes.append((kind, name, parent))
    return nodes


class TestWidgetTreeProperties:
    @given(widget_trees())
    @settings(max_examples=40, deadline=None)
    def test_realize_makes_every_widget_viewable(self, nodes):
        close_all_displays()
        wafe = make_wafe()
        for kind, name, parent in nodes:
            wafe.run_script("%s %s %s" % (kind, name, parent))
        wafe.run_script("realize")
        for __, name, __ in nodes:
            widget = wafe.lookup_widget(name)
            assert widget.realized
            assert widget.window is not None
            assert widget.window.viewable()

    @given(widget_trees())
    @settings(max_examples=40, deadline=None)
    def test_destroy_root_children_empties_registry(self, nodes):
        close_all_displays()
        wafe = make_wafe()
        for kind, name, parent in nodes:
            wafe.run_script("%s %s %s" % (kind, name, parent))
        wafe.run_script("realize")
        for kind, name, parent in nodes:
            if parent == "topLevel":
                wafe.run_script("destroyWidget %s" % name)
        assert set(wafe.widgets) == {"topLevel"}

    @given(widget_trees())
    @settings(max_examples=30, deadline=None)
    def test_children_fit_inside_grown_ancestors(self, nodes):
        # After geometry propagation, every widget's window rectangle
        # lies inside its parent's (the invariant behind window_at).
        close_all_displays()
        wafe = make_wafe()
        for kind, name, parent in nodes:
            wafe.run_script("%s %s %s" % (kind, name, parent))
        wafe.run_script("realize")
        for __, name, __ in nodes:
            widget = wafe.lookup_widget(name)
            window = widget.window
            parent = window.parent
            if parent is None or parent is window.display.root:
                continue
            assert window.x >= 0 and window.y >= 0
            assert window.x + window.width <= parent.width + 2
            assert window.y + window.height <= parent.height + 2

    @given(widget_trees())
    @settings(max_examples=30, deadline=None)
    def test_get_value_string_never_crashes(self, nodes):
        close_all_displays()
        wafe = make_wafe()
        for kind, name, parent in nodes:
            wafe.run_script("%s %s %s" % (kind, name, parent))
        for __, name, __ in nodes:
            widget = wafe.lookup_widget(name)
            for resource in widget.class_resources():
                widget.get_value_string(resource.name)


# ----------------------------------------------------------------------
# Translation tables under merge.

action_names = st.text(alphabet=_string.ascii_lowercase, min_size=1,
                       max_size=6)
event_specs = st.sampled_from([
    "<Btn1Down>", "<Btn1Up>", "<Btn3Down>", "<EnterWindow>",
    "<LeaveWindow>", "<Key>a", "<Key>Return", "<KeyPress>",
])


@st.composite
def tables(draw):
    lines = draw(st.lists(
        st.tuples(event_specs, action_names), min_size=1, max_size=5))
    return "\n".join("%s: %s()" % (spec, action) for spec, action in lines)


_EVENTS = [
    XEvent(xtypes.ButtonPress, None, button=1),
    XEvent(xtypes.ButtonPress, None, button=3),
    XEvent(xtypes.ButtonRelease, None, button=1),
    XEvent(xtypes.EnterNotify, None),
    XEvent(xtypes.LeaveNotify, None),
    XEvent(xtypes.KeyPress, None, keycode=217),   # 'a'
    XEvent(xtypes.KeyPress, None, keycode=189),   # Return
]


class TestTranslationMergeProperties:
    @given(tables(), tables())
    @settings(max_examples=60)
    def test_override_prefers_new_else_base(self, base_text, new_text):
        base = parse_translation_table(base_text)
        new = parse_translation_table("#override\n" + new_text)
        merged = merge_tables(base, new)
        for event in _EVENTS:
            want = new.lookup(event) or base.lookup(event)
            assert merged.lookup(event) == want

    @given(tables(), tables())
    @settings(max_examples=60)
    def test_augment_prefers_base_else_new(self, base_text, new_text):
        base = parse_translation_table(base_text)
        new = parse_translation_table("#augment\n" + new_text)
        merged = merge_tables(base, new)
        for event in _EVENTS:
            want = base.lookup(event) or new.lookup(event)
            assert merged.lookup(event) == want

    @given(tables())
    @settings(max_examples=60)
    def test_parse_is_deterministic(self, text):
        first = parse_translation_table(text)
        second = parse_translation_table(text)
        for event in _EVENTS:
            assert first.lookup(event) == second.lookup(event)

    @given(tables())
    @settings(max_examples=60)
    def test_stateful_equals_stateless_for_single_events(self, text):
        table = parse_translation_table(text)
        for event in _EVENTS:
            assert table.lookup_stateful(event, {}) == table.lookup(event)
