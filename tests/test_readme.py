"""The README's code snippets actually run (docs stay honest)."""

import os
import re

import pytest

from repro.xlib import close_all_displays

README = os.path.join(os.path.dirname(__file__), os.pardir, "README.md")


def python_blocks():
    with open(README) as handle:
        text = handle.read()
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


def test_readme_has_python_quickstart():
    assert python_blocks(), "README lost its quickstart code block"


@pytest.mark.parametrize("index,block",
                         list(enumerate(python_blocks())))
def test_readme_python_blocks_execute(index, block):
    close_all_displays()
    namespace = {}
    exec(compile(block, "README.md[block %d]" % index, "exec"), namespace)


def test_readme_interactive_transcript_is_true():
    """The wafe> transcript in the README reproduces."""
    import io

    from repro.core import InteractiveSession, make_wafe

    close_all_displays()
    wafe = make_wafe()
    session = InteractiveSession(wafe, output=io.StringIO())
    session.execute("label l topLevel")
    count = session.execute("echo [getResourceList l retVal]")
    lines = []
    wafe.interp.write_output = lambda t: lines.append(t.rstrip("\n"))
    session.execute("echo Resources: $retVal")
    assert lines[0].startswith(
        "Resources: destroyCallback ancestorSensitive x y width height "
        "borderWidth sensitive screen depth colormap background")


def test_design_experiment_index_is_complete():
    """Every bench file DESIGN.md's experiment index names exists."""
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    with open(os.path.join(root, "DESIGN.md")) as handle:
        design = handle.read()
    bench_refs = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
    assert len(bench_refs) >= 20
    for name in bench_refs:
        assert os.path.exists(os.path.join(root, "benchmarks", name)), name


def test_readme_mentioned_files_exist():
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    for path in ("DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "docs/PROTOCOL.md", "docs/wafe_reference_athena.md",
                 "examples/quickstart.py", "examples/polyglot_sh.py"):
        assert os.path.exists(os.path.join(root, path)), path
