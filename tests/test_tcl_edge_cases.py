"""Edge cases across the Tcl command set (paths the main suites skip)."""

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def tcl():
    return Interp()


class TestSetUnsetEdges:
    def test_unset_multiple(self, tcl):
        tcl.eval("set a 1; set b 2")
        tcl.eval("unset a b")
        assert tcl.eval("info exists a") == "0"
        assert tcl.eval("info exists b") == "0"

    def test_unset_array_element(self, tcl):
        tcl.eval("set a(x) 1; set a(y) 2")
        tcl.eval("unset a(x)")
        assert tcl.eval("array names a") == "y"

    def test_unset_missing_element_raises(self, tcl):
        tcl.eval("set a(x) 1")
        with pytest.raises(TclError, match="no such element"):
            tcl.eval("unset a(zz)")

    def test_incr_non_integer_raises(self, tcl):
        tcl.eval("set x abc")
        with pytest.raises(TclError, match="expected integer"):
            tcl.eval("incr x")

    def test_append_creates_variable(self, tcl):
        tcl.eval("append fresh abc")
        assert tcl.eval("set fresh") == "abc"


class TestControlFlowEdges:
    def test_switch_braced_pairs_form(self, tcl):
        result = tcl.eval("switch b {\n a {concat one}\n b {concat two}\n}")
        assert result == "two"

    def test_switch_no_match_returns_empty(self, tcl):
        assert tcl.eval("switch z {a {concat one}}") == ""

    def test_switch_regexp_mode(self, tcl):
        assert tcl.eval(
            "switch -regexp ab12 {{^[a-z]+$} {concat alpha} "
            "{[0-9]} {concat digits}}") == "digits"

    def test_case_list_form(self, tcl):
        assert tcl.eval("case b in {a {concat one} b {concat two}}") == "two"

    def test_case_multiple_patterns(self, tcl):
        assert tcl.eval(
            "case zz in {{a b} {concat ab} {y* z*} {concat yz}}") == "yz"

    def test_for_with_break_in_next_is_error_free(self, tcl):
        tcl.eval("for {set i 0} {$i < 3} {incr i} {set last $i}")
        assert tcl.eval("set last") == "2"

    def test_while_condition_reevaluated(self, tcl):
        tcl.eval("set i 0")
        tcl.eval("while {[incr i] < 4} {}")
        assert tcl.eval("set i") == "4"

    def test_nested_loops_break_inner_only(self, tcl):
        tcl.eval("""
            set log {}
            foreach i {1 2} {
                foreach j {a b c} {
                    if {$j == "b"} break
                    lappend log $i$j
                }
            }
        """)
        assert tcl.eval("set log") == "1a 2a"


class TestProcEdges:
    def test_rename_to_empty_deletes(self, tcl):
        tcl.eval("proc gone {} {}")
        tcl.eval("rename gone {}")
        with pytest.raises(TclError, match="invalid command name"):
            tcl.eval("gone")

    def test_proc_redefinition_replaces(self, tcl):
        tcl.eval("proc f {} {concat old}")
        tcl.eval("proc f {} {concat new}")
        assert tcl.eval("f") == "new"

    def test_uplevel_numeric_and_hash(self, tcl):
        tcl.eval("""
            proc outer {} {
                set local outer-val
                inner
            }
            proc inner {} {
                uplevel 1 {set seen $local}
                uplevel #0 {set top 1}
            }
        """)
        tcl.eval("outer")
        assert tcl.eval("set top") == "1"

    def test_upvar_to_array_element(self, tcl):
        tcl.eval("set a(k) start")
        tcl.eval("proc f {} {upvar a(k) x; set x done}")
        tcl.eval("f")
        assert tcl.eval("set a(k)") == "done"

    def test_info_level_negative_like(self, tcl):
        tcl.eval("proc f {a b} {info level 1}")
        assert tcl.eval("f x y") == "f x y"


class TestStringEdges:
    def test_string_range_end_keyword(self, tcl):
        assert tcl.eval("string range hello 0 end") == "hello"

    def test_string_index_negative(self, tcl):
        assert tcl.eval("string index hello -1") == ""

    def test_scan_suppressed_assignment(self, tcl):
        assert tcl.eval("scan {10 20} {%*d %d} only") == "1"
        assert tcl.eval("set only") == "20"

    def test_scan_octal(self, tcl):
        tcl.eval("scan 17 %o v")
        assert tcl.eval("set v") == "15"

    def test_scan_literal_matching(self, tcl):
        assert tcl.eval("scan {x=5} {x=%d} v") == "1"
        assert tcl.eval("set v") == "5"

    def test_format_width_star(self, tcl):
        assert tcl.eval("format %*d 6 42") == "    42"

    def test_split_single_char_groups(self, tcl):
        assert tcl.eval("split a.b.c .") == "a b c"
        assert tcl.eval("split {} .") == "{}"


class TestListEdges:
    def test_lreplace_delete_only(self, tcl):
        assert tcl.eval("lreplace {a b c} 1 1") == "a c"

    def test_linsert_negative_index_clamps(self, tcl):
        assert tcl.eval("linsert {a b} -5 z") == "z a b"

    def test_lsort_command_error_propagates(self, tcl):
        tcl.eval("proc bad {a b} {concat notanumber}")
        with pytest.raises(TclError, match="non-numeric"):
            tcl.eval("lsort -command bad {x y}")

    def test_concat_strips_whitespace(self, tcl):
        assert tcl.eval('concat { a } {b }') == "a b"

    def test_join_empty_list(self, tcl):
        assert tcl.eval("join {} -") == ""


class TestSubstEdges:
    def test_subst_all_flags(self, tcl):
        tcl.eval("set v 1")
        raw = r"a\tb $v [concat x]"
        assert tcl.eval(
            "subst -nobackslashes -nocommands -novariables {%s}" % raw) == raw

    def test_subst_backslashes_only(self, tcl):
        assert tcl.eval(r"subst -nocommands -novariables {a\tb}") == "a\tb"


class TestErrorReporting:
    def test_error_code_variable(self, tcl):
        tcl.eval("catch {error msg info CUSTOM}")
        assert tcl.eval("set errorCode") == "CUSTOM"

    def test_error_info_custom(self, tcl):
        tcl.eval("catch {error msg {custom stack}} out")
        assert "custom stack" in tcl.eval("set errorInfo")

    def test_wrong_args_messages_match_tcl_style(self, tcl):
        with pytest.raises(TclError, match='wrong # args: should be "set'):
            tcl.eval("set")
        with pytest.raises(TclError,
                           match='wrong # args: should be "llength list"'):
            tcl.eval("llength")
