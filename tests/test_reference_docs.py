"""The shipped reference docs in docs/ stay in sync with the specs."""

import os

import pytest

from repro import codegen

DOCS = os.path.join(os.path.dirname(__file__), os.pardir, "docs")


@pytest.mark.parametrize("build", ["athena", "motif"])
def test_reference_manual_is_fresh(build):
    path = os.path.join(DOCS, "wafe_reference_%s.md" % build)
    with open(path) as handle:
        shipped = handle.read()
    assert shipped == codegen.generate_reference(build), (
        "docs/wafe_reference_%s.md is stale; regenerate with "
        "`wafe-codegen --build %s --out docs`" % (build, build))


@pytest.mark.parametrize("build", ["athena", "motif"])
def test_command_dump_is_fresh(build):
    path = os.path.join(DOCS, "wafe_commands_%s.py" % build)
    with open(path) as handle:
        shipped = handle.read()
    generated, __ = codegen.generate_command_module(build)
    assert shipped == generated, (
        "docs/wafe_commands_%s.py is stale; regenerate with "
        "`wafe-codegen --build %s --out docs`" % (build, build))


def test_reference_documents_paper_examples():
    with open(os.path.join(DOCS, "wafe_reference_motif.md")) as handle:
        reference = handle.read()
    # The two commands the paper's spec examples generate.
    assert "`mCascadeButton name parent" in reference
    assert "mCascadeButtonHighlight" in reference
    assert "mCommandAppendValue" in reference
