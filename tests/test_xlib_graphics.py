"""Tests for colors, fonts, drawing, and image formats."""

import numpy
import pytest

from repro.xlib import close_all_displays, open_display
from repro.xlib.colors import alloc_color, ColorError, parse_color, pixel_to_rgb
from repro.xlib.fonts import default_font, FontError, list_fonts, load_font
from repro.xlib.graphics import (
    GC,
    Pixmap,
    clear_area,
    copy_area,
    draw_line,
    draw_rectangle,
    draw_string,
    fill_rectangle,
    put_image,
    window_pixels,
)
from repro.xlib.xpm import (
    ImageFormatError,
    parse_xbm,
    parse_xpm,
    read_image_file,
    TRANSPARENT,
    write_xpm,
)


class TestColors:
    def test_named_colors(self):
        assert parse_color("red") == (255, 0, 0)
        assert parse_color("tomato") == (255, 99, 71)
        assert parse_color("LightSteelBlue") == (176, 196, 222)
        assert parse_color("navy blue") == (0, 0, 128)

    def test_hex_forms(self):
        assert parse_color("#ff0000") == (255, 0, 0)
        assert parse_color("#f00") == (255, 0, 0)
        assert parse_color("#ffff00000000") == (255, 0, 0)

    def test_bad_color_raises(self):
        with pytest.raises(ColorError):
            parse_color("notacolor")
        with pytest.raises(ColorError):
            parse_color("#12345")

    def test_pixel_roundtrip(self):
        pixel = alloc_color("tomato")
        assert pixel_to_rgb(pixel) == (255, 99, 71)


class TestFonts:
    def test_fixed_alias(self):
        font = load_font("fixed")
        assert font.family == "fixed"
        assert font.monospace

    def test_paper_lucida_patterns(self):
        medium = load_font("*b&h-lucida-medium-r*14*")
        bold = load_font("*b&h-lucida-bold-r*14*")
        assert medium.family == "lucida" and medium.size == 14
        assert bold.weight == "bold"

    def test_list_fonts(self):
        names = list_fonts("*lucida*")
        assert names and all("lucida" in n for n in names)

    def test_no_match_raises(self):
        with pytest.raises(FontError):
            load_font("*nonexistentfamily*")

    def test_metrics_sane(self):
        font = load_font("fixed")
        assert font.ascent > 0 and font.descent >= 0
        assert font.text_width("hello") > font.text_width("hi")
        assert font.char_width("w") > 0

    def test_bold_wider(self):
        medium = load_font("*lucida-medium-r*14*")
        bold = load_font("*lucida-bold-r*14*")
        assert bold.text_width("wafe") > medium.text_width("wafe")

    def test_glyphs_deterministic_and_distinct(self):
        font = default_font()
        assert font.glyph_bits("a") == font.glyph_bits("a")
        assert font.glyph_bits("a") != font.glyph_bits("b")
        assert font.glyph_bits(" ") == [0] * 7


@pytest.fixture
def window():
    close_all_displays()
    display = open_display(":0")
    win = display.create_window(None, 10, 10, 100, 80)
    win.map()
    return win


class TestDrawing:
    def test_fill_rectangle_paints(self, window):
        gc = GC(foreground=alloc_color("red"))
        fill_rectangle(window, gc, 0, 0, 10, 10)
        pixels = window_pixels(window)
        assert pixels[5, 5] == alloc_color("red")
        assert pixels[20, 20] != alloc_color("red")

    def test_fill_clips_to_window(self, window):
        gc = GC(foreground=alloc_color("blue"))
        fill_rectangle(window, gc, 90, 70, 50, 50)  # spills past the edge
        fb = window.display.screen.framebuffer
        # Inside (abs 10+95, 10+75) painted, outside the window not.
        assert fb[80, 102] == alloc_color("blue")
        assert fb[95, 115] != alloc_color("blue")

    def test_draw_rectangle_outline_only(self, window):
        gc = GC(foreground=alloc_color("black"))
        draw_rectangle(window, gc, 0, 0, 20, 20)
        pixels = window_pixels(window)
        assert pixels[0, 5] == alloc_color("black")
        assert pixels[10, 10] != alloc_color("black")

    def test_draw_line_endpoints(self, window):
        gc = GC(foreground=alloc_color("green"))
        draw_line(window, gc, 0, 0, 30, 30)
        pixels = window_pixels(window)
        assert pixels[0, 0] == alloc_color("green")
        assert pixels[30, 30] == alloc_color("green")
        assert pixels[15, 15] == alloc_color("green")

    def test_draw_string_changes_pixels(self, window):
        gc = GC(foreground=alloc_color("black"))
        before = window_pixels(window).copy()
        width = draw_string(window, gc, 5, 20, "wafe")
        after = window_pixels(window)
        assert width == gc.font.text_width("wafe")
        assert (before != after).any()

    def test_different_strings_paint_differently(self, window):
        gc = GC(foreground=alloc_color("black"))
        draw_string(window, gc, 5, 20, "aaaa")
        first = window_pixels(window).copy()
        clear_area(window)
        draw_string(window, gc, 5, 20, "bbbb")
        second = window_pixels(window)
        assert (first != second).any()

    def test_clear_area_resets_background(self, window):
        gc = GC(foreground=alloc_color("red"))
        fill_rectangle(window, gc, 0, 0, 100, 80)
        clear_area(window)
        assert (window_pixels(window) == window.background_pixel).all()

    def test_copy_area_between_drawables(self, window):
        pixmap = Pixmap(20, 20)
        gc = GC(foreground=alloc_color("purple"))
        fill_rectangle(pixmap, gc, 0, 0, 20, 20)
        copy_area(pixmap, window, gc, 0, 0, 20, 20, 30, 30)
        pixels = window_pixels(window)
        assert pixels[35, 35] == alloc_color("purple")

    def test_pixmap_is_standalone(self):
        pixmap = Pixmap(10, 10, depth=1)
        gc = GC(foreground=1)
        fill_rectangle(pixmap, gc, 2, 2, 3, 3)
        assert pixmap.framebuffer[3, 3] == 1
        assert pixmap.framebuffer[0, 0] == 0


class TestClipRect:
    """Edge cases of the low-level clip helper.  The framebuffer is
    200x150 (fw=200, fh=150); the drawable sits at origin (10, 10) with
    a 100x80 clip, mirroring the ``window`` fixture."""

    def _clip(self, x, y, w, h, ox=10, oy=10, cw=100, ch=80, clip=None,
              fb_shape=(150, 200)):
        from repro.xlib.graphics import _clip_rect

        fb = numpy.zeros(fb_shape, dtype=numpy.uint32)
        return _clip_rect(fb, ox, oy, cw, ch, x, y, w, h, clip=clip)

    def test_interior_rect_untouched(self):
        assert self._clip(5, 6, 20, 10) == (15, 16, 35, 26)

    def test_negative_origin_clipped_to_drawable(self):
        assert self._clip(-7, -3, 20, 10) == (10, 10, 23, 17)

    def test_zero_width_rejected(self):
        assert self._clip(5, 5, 0, 10) is None

    def test_negative_extent_rejected(self):
        assert self._clip(5, 5, -4, 10) is None
        assert self._clip(5, 5, 10, -1) is None

    def test_rect_fully_outside_clip_rejected(self):
        assert self._clip(100, 0, 10, 10) is None   # past the right edge
        assert self._clip(0, 80, 10, 10) is None    # past the bottom
        assert self._clip(-30, 0, 20, 10) is None   # entirely left of it

    def test_rect_spilling_past_clip_truncated(self):
        assert self._clip(90, 70, 50, 50) == (100, 80, 110, 90)

    def test_window_larger_than_framebuffer(self):
        # A 500x400 "window" on the 200x150 framebuffer: painting its
        # full extent must stop at the framebuffer edges.
        assert self._clip(0, 0, 500, 400, ox=0, oy=0, cw=500, ch=400) == \
            (0, 0, 200, 150)

    def test_window_hanging_off_framebuffer_origin(self):
        # Drawable origin above/left of the framebuffer (negative
        # absolute coordinates).
        assert self._clip(0, 0, 30, 30, ox=-20, oy=-25) == (0, 0, 10, 5)

    def test_damage_clip_intersects(self):
        assert self._clip(0, 0, 50, 50, clip=(10, 20, 30, 40)) == \
            (20, 30, 40, 50)

    def test_damage_clip_disjoint_rejects(self):
        assert self._clip(0, 0, 10, 10, clip=(50, 50, 60, 60)) is None

    def test_empty_damage_clip_rejects(self):
        assert self._clip(0, 0, 50, 50, clip=(5, 5, 5, 40)) is None


_XPM = """/* XPM */
static char * test[] = {
"4 3 3 1",
"  c None",
". c #FF0000",
"X c blue",
" .X ",
"....",
"X  X"};
"""

_XBM = """#define test_width 8
#define test_height 2
static char test_bits[] = { 0x01, 0x80 };
"""


class TestImageFormats:
    def test_parse_xpm(self):
        image = parse_xpm(_XPM)
        assert image.shape == (3, 4)
        assert image[0, 0] == TRANSPARENT
        assert image[0, 1] == alloc_color("red")
        assert image[0, 2] == alloc_color("blue")
        assert (image[1] == alloc_color("red")).all()

    def test_parse_xbm_lsb_first(self):
        image = parse_xbm(_XBM)
        assert image.shape == (2, 8)
        assert image[0, 0] == 1 and image[0, 1] == 0
        assert image[1, 7] == 1 and image[1, 0] == 0

    def test_xpm_roundtrip(self):
        image = parse_xpm(_XPM)
        again = parse_xpm(write_xpm(image))
        assert (again == image).all()

    def test_bad_xpm_raises(self):
        with pytest.raises(ImageFormatError):
            parse_xpm("not an xpm at all")

    def test_read_image_file_fallback(self, tmp_path):
        xbm_file = tmp_path / "icon.xbm"
        xbm_file.write_text(_XBM)
        xpm_file = tmp_path / "icon.xpm"
        xpm_file.write_text(_XPM)
        __, kind = read_image_file(str(xbm_file))
        assert kind == "xbm"
        __, kind = read_image_file(str(xpm_file))
        assert kind == "xpm"

    def test_put_image(self, window):
        image = parse_xpm(_XPM)
        put_image(window, GC(), image, 0, 0)
        pixels = window_pixels(window)
        assert pixels[1, 0] == alloc_color("red")

    def test_put_image_transparency_mask(self, window):
        # 'None' XPM cells leave the destination untouched.
        gc = GC(foreground=alloc_color("yellow"))
        fill_rectangle(window, gc, 0, 0, 10, 10)
        image = parse_xpm(_XPM)
        put_image(window, GC(), image, 0, 0)
        pixels = window_pixels(window)
        assert pixels[0, 0] == alloc_color("yellow")  # transparent cell
        assert pixels[0, 1] == alloc_color("red")     # opaque cell


class TestKeysyms:
    def test_paper_pinned_keycodes(self):
        from repro.xlib.keysym import char_to_keycode, keysym_to_keycode

        assert char_to_keycode("w") == (198, False)
        assert char_to_keycode("!") == (197, True)
        assert keysym_to_keycode("Shift_L") == (174, False)

    def test_lookup_string(self):
        from repro.xlib.keysym import lookup_string, string_to_keysym

        text, sym = lookup_string(198)
        assert text == "w" and sym == ord("w")
        text, sym = lookup_string(197, shifted=True)
        assert text == "!" and sym == ord("!")
        text, sym = lookup_string(174)
        assert text == "" and sym == string_to_keysym("Shift_L")

    def test_keysym_names(self):
        from repro.xlib.keysym import keysym_to_string, string_to_keysym

        assert string_to_keysym("exclam") == ord("!")
        assert keysym_to_string(ord("!")) == "exclam"
        assert keysym_to_string(string_to_keysym("Return")) == "Return"
        assert keysym_to_string(ord("w")) == "w"

    def test_every_printable_ascii_typable(self):
        from repro.xlib.keysym import char_to_keycode

        for code in range(33, 127):
            keycode, __ = char_to_keycode(chr(code))
            assert keycode != 0, "no key for %r" % chr(code)
