"""Correctness of the Tcl compilation layer (repro.tcl.compile).

The compiled fast paths must be semantically invisible: command names
resolve at call time (so ``proc`` redefinition, ``rename`` and the
``unknown`` fallback behave identically for cached scripts), variable
traces fire the same, errorInfo is built the same, and the
``compile=False`` escape hatch gives byte-identical results for A/B
comparison.
"""

import pytest

from repro.tcl import Interp, LRUCache, TclError
from repro.tcl import expr as tcl_expr
from repro.tcl.compile import (
    CompiledScript,
    _DynamicCommand,
    _LiteralCommand,
    compile_script,
)
from repro.tcl.parser import ParseCache, parse_script


def both_interps():
    return Interp(compile=True), Interp(compile=False)


# ----------------------------------------------------------------------
# Late binding through the literal-argv fast path


class TestLateBinding:
    def test_proc_redefinition_after_caching(self):
        interp = Interp()
        interp.eval("proc greet {} {return hello}")
        script = "greet"
        assert interp.eval(script) == "hello"
        # The script is now cached; redefining the proc must take
        # effect on the very next evaluation of the same string.
        interp.eval("proc greet {} {return goodbye}")
        assert interp.eval(script) == "goodbye"

    def test_rename_after_caching(self):
        interp = Interp()
        interp.eval("proc original {} {return first}")
        script = "original"
        assert interp.eval(script) == "first"
        interp.eval("rename original moved")
        with pytest.raises(TclError, match="invalid command name"):
            interp.eval(script)
        assert interp.eval("moved") == "first"

    def test_rename_builtin_after_caching(self):
        interp = Interp()
        script = "set x 1"
        assert interp.eval(script) == "1"
        interp.eval("rename set assign")
        with pytest.raises(TclError, match='invalid command name "set"'):
            interp.eval(script)
        assert interp.eval("assign x 2") == "2"

    def test_unknown_fallback_through_literal_fast_path(self):
        interp = Interp()
        interp.eval(
            "proc unknown {args} {return [concat handled $args]}")
        script = "frobnicate a b"
        assert interp.eval(script) == "handled frobnicate a b"
        # Registering the real command must win over ``unknown`` for
        # the already-cached script.
        interp.eval("proc frobnicate {x y} {return [concat real $x $y]}")
        assert interp.eval(script) == "real a b"

    def test_unknown_fallback_without_handler(self):
        interp = Interp()
        script = "nosuchcommand"
        with pytest.raises(TclError, match="invalid command name"):
            interp.eval(script)
        interp.eval("proc nosuchcommand {} {return now-exists}")
        assert interp.eval(script) == "now-exists"


# ----------------------------------------------------------------------
# Semantic equivalence: compiled vs escape hatch


EQUIVALENCE_SCRIPTS = [
    "set s 0\nfor {set i 0} {$i < 25} {incr i} {incr s $i}\nset s",
    "set i 0\nwhile {$i < 10} {incr i}\nset i",
    'set out ""\nforeach x {a b c} {append out $x-}\nset out',
    'if {1 + 1 == 2} {set r yes} else {set r no}',
    'set a(k) v1; set a(k2) v2; set a(k)',
    'set n 3; expr {$n * [expr {$n + 1}]}',
    'proc f {x {y 7}} {return [expr {$x + $y}]}\nf 5',
    'set lst {1 2 3}; lindex $lst 1',
    'catch {error boom} msg; set msg',
    'set x 5; subst {value is $x}',
    '{} ignored words',  # empty literal command name evaluates to ""
]


class TestEquivalence:
    @pytest.mark.parametrize("script", EQUIVALENCE_SCRIPTS)
    def test_results_identical(self, script):
        compiled, reference = both_interps()
        assert compiled.eval(script) == reference.eval(script)
        # Second evaluation exercises the cached path.
        assert compiled.eval(script) == reference.eval(script)

    def test_dynamic_command_name_resolves_empty(self):
        compiled, reference = both_interps()
        for interp in (compiled, reference):
            interp.eval('set name ""')
            assert interp.eval("$name anything") == ""

    def test_errorinfo_identical(self):
        compiled, reference = both_interps()
        results = []
        for interp in (compiled, reference):
            with pytest.raises(TclError):
                interp.eval("proc p {} {error deep}\np")
            results.append(interp.eval("set errorInfo"))
        assert results[0] == results[1]
        assert "deep" in results[0]

    def test_upvar_and_uplevel(self):
        compiled, reference = both_interps()
        script = (
            "proc bump {name} {upvar $name v; incr v}\n"
            "set counter 5\nbump counter\nbump counter\nset counter"
        )
        assert compiled.eval(script) == reference.eval(script) == "7"

    def test_break_continue_in_compiled_loops(self):
        compiled, reference = both_interps()
        script = (
            "set s 0\n"
            "for {set i 0} {$i < 10} {incr i} {\n"
            "  if {$i == 3} continue\n"
            "  if {$i == 6} break\n"
            "  incr s $i\n"
            "}\nset s"
        )
        assert compiled.eval(script) == reference.eval(script) == "12"

    def test_unreached_loop_body_parse_error_stays_silent(self):
        # The body of a loop that never runs is never parsed in the
        # reference path; the hoisted compiled body must stay lazy.
        compiled, reference = both_interps()
        for interp in (compiled, reference):
            assert interp.eval('while {0} "set a \\{"') == ""
            assert interp.eval('foreach x {} "set a \\{"') == ""
            with pytest.raises(TclError):
                interp.eval('while {1} "set a \\{"')

    def test_return_at_top_level(self):
        compiled, reference = both_interps()
        assert compiled.eval("return early") == \
            reference.eval("return early") == "early"

    def test_escape_hatch_disables_compile_cache(self):
        interp = Interp(compile=False)
        interp.eval("set x 1")
        interp.eval("set x 1")
        assert len(interp.compile_cache) == 0
        assert len(interp.bytecode_cache) == 0

    def test_escape_hatch_bypasses_expr_ast_cache(self):
        # ``compile=False`` must be a *full* escape hatch: expr strings
        # are reparsed on every evaluation, never served from the
        # process-wide AST cache.
        interp = Interp(compile=False)
        tcl_expr.ast_cache.reset_stats()
        interp.eval("expr {5 + [string length abcdef]}")
        interp.eval("expr {5 + [string length abcdef]}")
        stats = tcl_expr.ast_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_cachestats_reset_clears_bytecode_counters(self):
        interp = Interp()
        script = "set hatch 3"
        interp.eval(script)
        interp.eval(script)
        assert interp.cache_stats()["bytecode"]["hits"] >= 1
        interp.eval("info cachestats reset")
        stats = interp.cache_stats()["bytecode"]
        assert stats["hits"] == 0 and stats["misses"] == 0


# ----------------------------------------------------------------------
# Variable traces under cached evaluation


class TestTracesUnderCaching:
    def _run_traced(self, interp):
        interp.eval("set log {}")
        interp.eval(
            "proc tracer {name index op} {\n"
            "  global log\n"
            "  lappend log $name/$op\n"
            "}")
        interp.eval("trace variable watched rwu tracer")
        script = "set watched 1; set watched 2; set watched"
        interp.eval(script)
        interp.eval(script)  # cached second round
        interp.eval("unset watched")
        return interp.eval("set log")

    def test_traces_fire_identically(self):
        compiled, reference = both_interps()
        assert self._run_traced(compiled) == self._run_traced(reference)
        assert "watched/w" in self._run_traced(Interp())


# ----------------------------------------------------------------------
# info cachestats


class TestCacheStats:
    def test_counters_move_on_repeat_eval(self):
        interp = Interp()
        interp.eval("info cachestats reset")
        script = "set y 42"
        interp.eval(script)
        before = interp.cache_stats()["bytecode"]
        interp.eval(script)
        interp.eval(script)
        after = interp.cache_stats()["bytecode"]
        assert after["hits"] >= before["hits"] + 2

    def test_plan_counters_move_on_repeat_eval(self):
        interp = Interp(compile="plans")
        interp.eval("info cachestats reset")
        script = "set y 42"
        interp.eval(script)
        before = interp.cache_stats()["compile"]
        interp.eval(script)
        interp.eval(script)
        after = interp.cache_stats()["compile"]
        assert after["hits"] >= before["hits"] + 2

    def test_tcl_level_introspection(self):
        interp = Interp()
        from repro.tcl import string_to_list

        report = string_to_list(interp.eval("info cachestats"))
        assert len(report) % 2 == 0
        names = report[0::2]
        assert {"parse", "compile", "bytecode", "expr"} <= set(names)
        fields = string_to_list(report[names.index("compile") * 2 + 1])
        assert "hits" in fields and "evictions" in fields

    def test_reset(self):
        interp = Interp()
        interp.eval("set z 1")
        interp.eval("set z 1")
        interp.eval("info cachestats reset")
        stats = interp.cache_stats()["compile"]
        assert stats["hits"] == 0 and stats["misses"] == 0
        stats = interp.cache_stats()["bytecode"]
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_expr_cache_hits(self):
        # The VM engine lowers expr to its own bytecode; the process-wide
        # AST cache is the caching layer of the plans engine.
        interp = Interp(compile="plans")
        tcl_expr.ast_cache.reset_stats()
        interp.eval("expr {21 * 2}")
        interp.eval("expr {21 * 2}")
        assert tcl_expr.ast_cache.hits >= 1

    def test_clear_caches(self):
        interp = Interp()
        interp.eval("set q 9")
        assert len(interp.bytecode_cache) > 0
        interp.clear_caches()
        assert len(interp.bytecode_cache) == 0
        assert len(interp.parse_cache) == 0
        assert interp.eval("set q") == "9"


# ----------------------------------------------------------------------
# The shared LRU machinery and the ParseCache satellite fix


class TestLRUCache:
    def test_evicts_oldest_not_everything(self):
        cache = LRUCache(maxsize=3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.put("d", "D")
        assert "a" not in cache
        assert all(k in cache for k in "bcd")
        assert cache.evictions == 1
        assert len(cache) == 3

    def test_hit_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh: "b" is now oldest
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_counters_and_hit_rate(self):
        cache = LRUCache(maxsize=4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_parse_cache_is_true_lru(self):
        cache = ParseCache(maxsize=4)
        scripts = ["set v %d" % i for i in range(4)]
        for script in scripts:
            cache.get(script)
        cache.get(scripts[0])          # keep the first script hot
        cache.get("set v 99")          # evicts scripts[1], not the world
        assert scripts[0] in cache
        assert scripts[1] not in cache
        assert len(cache) == 4

    def test_hot_scripts_survive_cold_stream(self):
        # The pre-fix behaviour (clear() on full) wiped the frequently
        # used entries whenever a stream of one-off scripts filled the
        # cache; true LRU keeps the hot working set resident.
        cache = ParseCache(maxsize=8)
        hot = ["set hot %d" % i for i in range(4)]
        for i in range(40):
            for script in hot:
                cache.get(script)
            cache.get("set cold %d" % i)  # distinct every time
        assert all(script in cache for script in hot)
        assert cache.stats()["hits"] >= 4 * 39


# ----------------------------------------------------------------------
# Compiled-form construction details


class TestCompiledForms:
    def test_literal_command_precomputes_argv(self):
        [command] = compile_script(parse_script("set alpha beta")).commands
        assert isinstance(command, _LiteralCommand)
        assert command.argv == ("set", "alpha", "beta")

    def test_mixed_command_gets_plan(self):
        [command] = compile_script(parse_script("set alpha $beta")).commands
        assert isinstance(command, _DynamicCommand)

    def test_literal_argv_not_shared_between_calls(self):
        interp = Interp()

        def mutator(interp_, argv):
            argv.append("mutated")
            return str(len(argv))

        interp.register("mut", mutator)
        script = "mut a"
        assert interp.eval(script) == "3"
        assert interp.eval(script) == "3"  # cache must be unaffected

    def test_compiled_script_reexecutes(self):
        interp = Interp()
        interp.eval("set n 0")
        compiled = compile_script(parse_script("incr n; incr n"))
        assert isinstance(compiled, CompiledScript)
        assert compiled.execute(interp) == "2"
        assert compiled.execute(interp) == "4"
