"""Backend supervision: exit classification, policies, restart loop.

Unit tests for the pure pieces (ExitStatus, percent substitution, the
config/resource precedence, backoff arithmetic) plus integration tests
that kill real child processes and watch the supervisor put the
session back together while the GUI keeps serving events.
"""

import os
import signal
import sys
import textwrap

import pytest

from repro.xlib import close_all_displays
from repro.core import make_wafe
from repro.core.supervisor import (
    BackendSupervisor,
    ExitStatus,
    SupervisionConfig,
    classify_exit,
    substitute_exit,
)


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


def backend(tmp_path, body, name="backend.py"):
    script = tmp_path / name
    script.write_text(textwrap.dedent(body))
    return [sys.executable, "-u", str(script)]


class TestExitStatus:
    def test_normal_exit(self):
        status = classify_exit(0)
        assert status.kind == "exit"
        assert status.code == 0
        assert status.success
        assert status.describe() == "exit 0"

    def test_failure_exit(self):
        status = classify_exit(3)
        assert status.kind == "exit"
        assert status.code == 3
        assert not status.success

    def test_signal_exit(self):
        status = classify_exit(-9)
        assert status.kind == "signal"
        assert status.code == 9
        assert not status.success
        assert status.describe() == "signal 9 (SIGKILL)"

    def test_unknown_signal_number(self):
        status = ExitStatus(-250)
        assert status.signal_name() == "SIG250"

    def test_none_passes_through(self):
        assert classify_exit(None) is None


class TestExitSubstitution:
    def test_all_codes(self):
        status = classify_exit(-15)
        out = substitute_exit("s=%s k=%k c=%c r=%r p=%p pct=%%",
                              status, 2, "prog")
        assert out == ("s=signal 15 (SIGTERM) k=signal c=15 r=2 "
                       "p=prog pct=%")

    def test_exit_code_codes(self):
        out = substitute_exit("%k %c", classify_exit(4), 0, "p")
        assert out == "exit 4"

    def test_unknown_code_left_alone(self):
        assert substitute_exit("%z", classify_exit(0), 0, "p") == "%z"

    def test_none_status(self):
        assert substitute_exit("%s/%k/%c", None, 1, "p") == "unknown/unknown/"


class TestSupervisionConfig:
    def test_defaults(self):
        config = SupervisionConfig()
        assert config.policy == "never"
        assert config.max_restarts == 5
        assert config.backoff_ms == 250
        assert config.mass_timeout_ms == 0

    def test_resources_like_init_com(self, wafe):
        wafe.app.merge_resources(textwrap.dedent("""
            *restartPolicy: on-failure
            *maxRestarts: 2
            *restartBackoff: 10
            *restartBackoffCap: 40
            *massTransferTimeout: 500
            *channelHighWater: 4096
            *onBackendExit: set gone 1
        """))
        config = wafe.supervision
        config.load_resources(wafe.app)
        assert config.policy == "on-failure"
        assert config.max_restarts == 2
        assert config.backoff_ms == 10
        assert config.backoff_cap_ms == 40
        assert config.mass_timeout_ms == 500
        assert config.high_water == 4096
        assert config.on_exit_script == "set gone 1"

    def test_explicit_command_beats_resource(self, wafe):
        wafe.app.merge_resources("*restartPolicy: always")
        wafe.run_script("restartPolicy on-failure")
        wafe.supervision.load_resources(wafe.app)
        assert wafe.supervision.policy == "on-failure"

    def test_bad_resource_reported_not_fatal(self, wafe):
        errors = []
        wafe.app.merge_resources("*restartPolicy: sometimes")
        wafe.supervision.load_resources(wafe.app, report=errors.append)
        assert wafe.supervision.policy == "never"
        assert any("restartPolicy" in e for e in errors)


class TestBackoffArithmetic:
    def test_exponential_with_cap(self, wafe):
        wafe.run_script("restartPolicy on-failure 10 100 450")
        supervisor = BackendSupervisor(wafe, ["true"])
        delays = [supervisor.backoff_delay_ms(i) for i in range(5)]
        assert delays == [100, 200, 400, 450, 450]


class TestSupervisionCommands:
    def test_restart_policy_roundtrip(self, wafe):
        assert wafe.run_script("restartPolicy") == "never 5 250 30000"
        wafe.run_script("restartPolicy always 3 100 2000")
        assert wafe.run_script("restartPolicy") == "always 3 100 2000"

    def test_restart_policy_validates(self, wafe):
        with pytest.raises(Exception):
            wafe.run_script("restartPolicy sometimes")

    def test_on_backend_exit_roundtrip(self, wafe):
        assert wafe.run_script("onBackendExit") == ""
        wafe.run_script("onBackendExit {echo gone %s}")
        assert wafe.run_script("onBackendExit") == "echo gone %s"

    def test_mass_transfer_timeout_roundtrip(self, wafe):
        assert wafe.run_script("massTransferTimeout") == "0"
        wafe.run_script("massTransferTimeout 250")
        assert wafe.run_script("massTransferTimeout") == "250"

    def test_channel_high_water_roundtrip(self, wafe):
        wafe.run_script("channelHighWater 65536")
        assert wafe.run_script("channelHighWater") == "65536"

    def test_backend_status_detached(self, wafe):
        assert wafe.run_script("backendStatus") == "detached {} 0 {}"


def _counter_backend(tmp_path):
    """Each spawn bumps a run counter file and reports it, then naps
    so the test controls the moment of death."""
    counter = tmp_path / "runs"
    body = """
        import os, sys, time
        path = {path!r}
        n = 1
        if os.path.exists(path):
            n = int(open(path).read()) + 1
        open(path, "w").write(str(n))
        print("%set runs " + str(n))
        sys.stdout.flush()
        time.sleep(30)
    """.format(path=str(counter))
    return backend(tmp_path, body)


def _runs(wafe):
    if not wafe.interp.var_exists("runs"):
        return 0
    return int(wafe.interp.get_var("runs"))


class TestRestartIntegration:
    def test_sigkill_restarts_with_backoff_and_hook(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("restartPolicy on-failure 3 40 1000")
        wafe.run_script(
            "onBackendExit {set lastStatus {%s}; set lastKind %k; "
            "set lastCount %r}")
        supervisor = BackendSupervisor(wafe, _counter_backend(tmp_path))
        supervisor.start()
        wafe.main_loop(until=lambda: _runs(wafe) >= 1, max_idle=800)
        assert supervisor.state == "running"

        # The GUI must stay responsive across the death: this timer
        # has to fire *between* the kill and the relaunch.
        ticks = []
        wafe.app.add_timeout(5, lambda: ticks.append(1))
        os.kill(supervisor.frontend.process.pid, signal.SIGKILL)
        wafe.main_loop(until=lambda: _runs(wafe) >= 2, max_idle=2000)

        assert _runs(wafe) == 2
        assert ticks  # the loop dispatched while the backend was down
        assert wafe.run_script("set lastKind") == "signal"
        assert wafe.run_script("set lastStatus") == "signal 9 (SIGKILL)"
        assert wafe.run_script("set lastCount") == "0"
        assert supervisor.backoff_schedule == [40]
        assert supervisor.restart_count == 1
        assert any("restart 1/3" in e for e in errors)
        supervisor.stop()

    def test_backoff_grows_exponentially(self, wafe, tmp_path):
        wafe.run_script("restartPolicy always 5 20 10000")
        supervisor = BackendSupervisor(wafe, _counter_backend(tmp_path))
        supervisor.start()
        for round_no in (1, 2, 3):
            wafe.main_loop(until=lambda: _runs(wafe) >= round_no,
                           max_idle=2000)
            os.kill(supervisor.frontend.process.pid, signal.SIGKILL)
        wafe.main_loop(until=lambda: _runs(wafe) >= 4, max_idle=3000)
        assert supervisor.backoff_schedule == [20, 40, 80]
        supervisor.stop()

    def test_gives_up_after_max_restarts(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("restartPolicy on-failure 1 10 100")
        wafe.run_script("onBackendExit {set exits [expr $exits + 1]}")
        wafe.run_script("set exits 0")
        supervisor = BackendSupervisor(wafe, _counter_backend(tmp_path))
        supervisor.start()
        wafe.main_loop(until=lambda: _runs(wafe) >= 1, max_idle=800)
        os.kill(supervisor.frontend.process.pid, signal.SIGKILL)
        wafe.main_loop(until=lambda: _runs(wafe) >= 2, max_idle=2000)
        os.kill(supervisor.frontend.process.pid, signal.SIGKILL)
        wafe.main_loop(until=lambda: supervisor.state == "exited",
                       max_idle=2000)
        assert supervisor.restart_count == 1
        assert any("giving up" in e for e in errors)
        # With a hook installed the loop was NOT told to exit: the
        # script owns the endgame.
        assert not wafe.app.quit_requested
        assert wafe.run_script("set exits") == "2"
        supervisor.stop()

    def test_on_failure_does_not_restart_clean_exit(self, wafe, tmp_path):
        wafe.run_script("restartPolicy on-failure 3 10 100")
        command = backend(tmp_path, 'print("%set done 1")')
        supervisor = BackendSupervisor(wafe, command)
        supervisor.start()
        wafe.main_loop(until=lambda: supervisor.state == "exited",
                       max_idle=800)
        assert supervisor.last_status.success
        assert supervisor.restart_count == 0
        assert supervisor.backoff_schedule == []
        supervisor.stop()

    def test_always_restarts_clean_exit(self, wafe, tmp_path):
        wafe.run_script("restartPolicy always 2 10 100")
        supervisor = BackendSupervisor(wafe, _counter_backend(tmp_path))
        supervisor.start()
        wafe.main_loop(until=lambda: _runs(wafe) >= 1, max_idle=800)
        supervisor.frontend.process.terminate()
        wafe.main_loop(until=lambda: _runs(wafe) >= 2, max_idle=2000)
        assert _runs(wafe) == 2
        supervisor.stop()

    def test_hook_without_restart_keeps_gui_alive(self, wafe, tmp_path):
        wafe.run_script("onBackendExit {set gone {%s}}")
        command = backend(tmp_path, "raise SystemExit(7)")
        supervisor = BackendSupervisor(wafe, command)
        supervisor.start()
        wafe.main_loop(until=lambda: wafe.interp.var_exists("gone"),
                       max_idle=800)
        assert wafe.run_script("set gone") == "exit 7"
        assert not wafe.app.quit_requested  # policy never, but hook set
        # widgets still work after the backend is gone
        assert wafe.run_script("label l topLevel; widgetExists l") == "1"
        supervisor.stop()

    def test_no_policy_no_hook_ends_loop(self, wafe, tmp_path):
        command = backend(tmp_path, 'print("%set done 1")')
        supervisor = BackendSupervisor(wafe, command)
        supervisor.start()
        wafe.main_loop(max_idle=800)
        assert supervisor.state == "exited"
        assert wafe.app.quit_requested  # historical contract preserved
        supervisor.stop()

    def test_backend_status_command(self, wafe, tmp_path):
        wafe.run_script("restartPolicy on-failure 3 30 1000")
        supervisor = BackendSupervisor(wafe, _counter_backend(tmp_path))
        supervisor.start()
        wafe.main_loop(until=lambda: _runs(wafe) >= 1, max_idle=800)
        state = wafe.run_script("backendStatus")
        pid = str(supervisor.frontend.process.pid)
        assert state.split()[0] == "running"
        assert pid in state
        os.kill(supervisor.frontend.process.pid, signal.SIGKILL)
        wafe.main_loop(until=lambda: supervisor.state != "running",
                       max_idle=2000)
        status = wafe.run_script("backendStatus")
        assert status.startswith("backoff")
        assert "signal 9 (SIGKILL)" in status
        supervisor.stop()

    def test_quit_cancels_pending_restart(self, wafe, tmp_path):
        wafe.run_script("restartPolicy always 5 5000 10000")
        supervisor = BackendSupervisor(wafe, _counter_backend(tmp_path))
        supervisor.start()
        wafe.main_loop(until=lambda: _runs(wafe) >= 1, max_idle=800)
        os.kill(supervisor.frontend.process.pid, signal.SIGKILL)
        wafe.main_loop(until=lambda: supervisor.state == "backoff",
                       max_idle=2000)
        wafe.quit()
        assert supervisor.state == "stopped"
        assert supervisor._restart_timer is None
        assert wafe.app._timeouts == []
