"""Tests for the list and string command families."""

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def tcl():
    return Interp()


class TestListCommands:
    def test_list_quotes(self, tcl):
        assert tcl.eval("list a {b c} d") == "a {b c} d"
        assert tcl.eval('list "x y"') == "{x y}"

    def test_llength(self, tcl):
        assert tcl.eval("llength {a b c}") == "3"
        assert tcl.eval("llength {}") == "0"
        assert tcl.eval("llength {a {b c}}") == "2"

    def test_lindex(self, tcl):
        assert tcl.eval("lindex {a b c} 1") == "b"
        assert tcl.eval("lindex {a b c} end") == "c"
        assert tcl.eval("lindex {a b c} 99") == ""

    def test_lrange(self, tcl):
        assert tcl.eval("lrange {a b c d} 1 2") == "b c"
        assert tcl.eval("lrange {a b c d} 2 end") == "c d"
        assert tcl.eval("lrange {a b c} 5 9") == ""

    def test_lappend(self, tcl):
        tcl.eval("lappend l a")
        tcl.eval("lappend l {b c}")
        assert tcl.eval("set l") == "a {b c}"
        assert tcl.eval("llength $l") == "2"

    def test_linsert(self, tcl):
        assert tcl.eval("linsert {a c} 1 b") == "a b c"
        assert tcl.eval("linsert {a b} 0 z") == "z a b"
        assert tcl.eval("linsert {a b} end x") == "a b x"

    def test_lreplace(self, tcl):
        assert tcl.eval("lreplace {a b c d} 1 2 X Y Z") == "a X Y Z d"
        assert tcl.eval("lreplace {a b c} 0 0") == "b c"

    def test_lsearch(self, tcl):
        assert tcl.eval("lsearch {a b c} b") == "1"
        assert tcl.eval("lsearch {a b c} z") == "-1"
        assert tcl.eval("lsearch -exact {a* b c} a*") == "0"
        assert tcl.eval("lsearch -glob {foo bar baz} b*") == "1"
        assert tcl.eval("lsearch -regexp {foo bar baz} z$") == "2"

    def test_lsort(self, tcl):
        assert tcl.eval("lsort {banana apple cherry}") == "apple banana cherry"
        assert tcl.eval("lsort -integer {10 2 33}") == "2 10 33"
        assert tcl.eval("lsort -real {1.5 0.2 10.0}") == "0.2 1.5 10.0"
        assert tcl.eval("lsort -decreasing {a b c}") == "c b a"

    def test_lsort_command(self, tcl):
        tcl.eval("proc bylen {a b} {expr [string length $a] - [string length $b]}")
        assert tcl.eval("lsort -command bylen {ccc a bb}") == "a bb ccc"

    def test_concat(self, tcl):
        assert tcl.eval("concat a {b c} d") == "a b c d"
        assert tcl.eval("concat {a b} {}") == "a b"

    def test_join(self, tcl):
        assert tcl.eval("join {a b c} -") == "a-b-c"
        assert tcl.eval("join {a b c}") == "a b c"

    def test_split(self, tcl):
        assert tcl.eval("split a:b:c :") == "a b c"
        assert tcl.eval("split {a b}") == "a b"
        assert tcl.eval("llength [split abc {}]") == "3"
        assert tcl.eval("split a::b :") == "a {} b"


class TestStringCommand:
    def test_length(self, tcl):
        assert tcl.eval("string length hello") == "5"

    def test_index(self, tcl):
        assert tcl.eval("string index hello 1") == "e"
        assert tcl.eval("string index hello end") == "o"
        assert tcl.eval("string index hello 99") == ""

    def test_range(self, tcl):
        assert tcl.eval("string range hello 1 3") == "ell"
        assert tcl.eval("string range hello 2 end") == "llo"

    def test_first_last(self, tcl):
        assert tcl.eval("string first l hello") == "2"
        assert tcl.eval("string last l hello") == "3"
        assert tcl.eval("string first z hello") == "-1"

    def test_compare(self, tcl):
        assert tcl.eval("string compare abc abd") == "-1"
        assert tcl.eval("string compare abc abc") == "0"
        assert tcl.eval("string compare b a") == "1"

    def test_case_conversion(self, tcl):
        assert tcl.eval("string toupper hello") == "HELLO"
        assert tcl.eval("string tolower HeLLo") == "hello"

    def test_trim(self, tcl):
        assert tcl.eval("string trim {  x  }") == "x"
        assert tcl.eval("string trimleft xxyxx x") == "yxx"
        assert tcl.eval("string trimright xxyxx x") == "xxy"

    def test_match(self, tcl):
        assert tcl.eval("string match f* foo") == "1"
        assert tcl.eval("string match f?o foo") == "1"
        assert tcl.eval("string match {[a-c]x} bx") == "1"
        assert tcl.eval("string match {[a-c]x} dx") == "0"
        assert tcl.eval("string match *z foo") == "0"

    def test_wordend_wordstart(self, tcl):
        assert tcl.eval("string wordend {hello world} 0") == "5"
        assert tcl.eval("string wordstart {hello world} 8") == "6"


class TestFormat:
    def test_basic(self, tcl):
        assert tcl.eval("format %d 42") == "42"
        assert tcl.eval("format %5d 42") == "   42"
        assert tcl.eval("format %-5d| 42") == "42   |"
        assert tcl.eval("format %05d 42") == "00042"

    def test_string_and_char(self, tcl):
        assert tcl.eval("format %s hello") == "hello"
        assert tcl.eval("format %c 65") == "A"
        assert tcl.eval("format %.2s hello") == "he"

    def test_float(self, tcl):
        assert tcl.eval("format %.2f 3.14159") == "3.14"
        assert tcl.eval("format %e 10000.0").startswith("1.0")

    def test_hex_octal(self, tcl):
        assert tcl.eval("format %x 255") == "ff"
        assert tcl.eval("format %X 255") == "FF"
        assert tcl.eval("format %o 8") == "10"

    def test_percent_literal(self, tcl):
        assert tcl.eval("format %d%% 50") == "50%"

    def test_multiple_args(self, tcl):
        assert tcl.eval("format {%s=%d} x 1") == "x=1"

    def test_missing_args_raises(self, tcl):
        with pytest.raises(TclError, match="not enough arguments"):
            tcl.eval("format %d")


class TestScan:
    def test_basic_decimal(self, tcl):
        assert tcl.eval("scan {42 7} {%d %d} a b") == "2"
        assert tcl.eval("set a") == "42"
        assert tcl.eval("set b") == "7"

    def test_string_conversion(self, tcl):
        tcl.eval("scan {hello world} %s w")
        assert tcl.eval("set w") == "hello"

    def test_float_conversion(self, tcl):
        tcl.eval("scan 3.25 %f x")
        assert tcl.eval("set x") == "3.25"

    def test_char_conversion(self, tcl):
        tcl.eval("scan A %c code")
        assert tcl.eval("set code") == "65"

    def test_partial_match(self, tcl):
        assert tcl.eval("scan {12 abc} {%d %d} a b") == "1"

    def test_hex(self, tcl):
        tcl.eval("scan ff %x v")
        assert tcl.eval("set v") == "255"


class TestRegexp:
    def test_match(self, tcl):
        assert tcl.eval("regexp {^h.*o$} hello") == "1"
        assert tcl.eval("regexp {^z} hello") == "0"

    def test_capture_groups(self, tcl):
        tcl.eval(r"regexp {(\d+)-(\d+)} {range 10-20 here} whole a b")
        assert tcl.eval("set whole") == "10-20"
        assert tcl.eval("set a") == "10"
        assert tcl.eval("set b") == "20"

    def test_nocase(self, tcl):
        assert tcl.eval("regexp -nocase HELLO hello") == "1"

    def test_indices(self, tcl):
        tcl.eval("regexp -indices {l+} hello span")
        assert tcl.eval("set span") == "2 3"

    def test_bad_pattern(self, tcl):
        with pytest.raises(TclError, match="couldn't compile"):
            tcl.eval("regexp {[} x")


class TestRegsub:
    def test_single(self, tcl):
        assert tcl.eval("regsub o foo 0 out") == "1"
        assert tcl.eval("set out") == "f0o"

    def test_all(self, tcl):
        assert tcl.eval("regsub -all o foo 0 out") == "2"
        assert tcl.eval("set out") == "f00"

    def test_ampersand(self, tcl):
        tcl.eval("regsub {l+} hello {<&>} out")
        assert tcl.eval("set out") == "he<ll>o"

    def test_group_reference(self, tcl):
        tcl.eval(r"regsub {(h)(e)} hello {\2\1} out")
        assert tcl.eval("set out") == "ehllo"

    def test_no_match(self, tcl):
        assert tcl.eval("regsub z hello x out") == "0"
        assert tcl.eval("set out") == "hello"
