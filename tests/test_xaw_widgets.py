"""Tests for the Athena widgets: List, AsciiText, menus, scrollbar, plotter."""

import pytest

from repro.xlib import close_all_displays, xtypes
from repro.xlib.colors import alloc_color
from repro.xlib.graphics import window_pixels
from repro.xt import XtAppContext, ApplicationShell
from repro.xaw import (
    AsciiText,
    BarGraph,
    Box,
    Command,
    Dialog,
    Form,
    Label,
    LineGraph,
    List,
    MenuButton,
    Paned,
    Scrollbar,
    SimpleMenu,
    SmeBSB,
    StripChart,
    Viewport,
)


@pytest.fixture
def app():
    close_all_displays()
    return XtAppContext()


@pytest.fixture
def top(app):
    return ApplicationShell("topLevel", None, app=app)


class TestList:
    def test_list_from_tcl_string(self, top):
        lst = List("chooseLst", top, args={"list": "alpha {beta gamma} delta"})
        assert lst.items() == ["alpha", "beta gamma", "delta"]

    def test_click_selects_and_notifies(self, app, top):
        received = []
        lst = List("l", top, args={"list": "one two three"})
        lst.add_callback("callback",
                         lambda w, d: received.append((d.list_index, d.string)))
        top.realize()
        ox, oy = lst.window.absolute_origin()
        row = lst.row_height()
        app.default_display.click(ox + 3, oy + lst.resources["internalHeight"]
                                  + row + 2)  # second row
        app.process_pending()
        assert received == [(1, "two")]

    def test_highlight_api(self, top):
        lst = List("l", top, args={"list": "a b"})
        lst.highlight(1)
        assert lst.current().string == "b"
        lst.unhighlight()
        assert lst.current() is None

    def test_change_list_resets_selection(self, top):
        lst = List("l", top, args={"list": "a b"})
        lst.highlight(0)
        lst.change_list(["x", "y", "z"])
        assert lst.current() is None
        assert lst.items() == ["x", "y", "z"]

    def test_selected_row_paints_inverse(self, app, top):
        lst = List("l", top, args={"list": "one two",
                                   "foreground": "black"})
        top.realize()
        lst.redraw()
        before = (window_pixels(lst.window) == 0).sum()
        lst.highlight(0)
        after = (window_pixels(lst.window) == 0).sum()
        assert after > before  # inverse bar adds black pixels


class TestAsciiText:
    def test_typing_inserts_characters(self, app, top):
        text = AsciiText("input", top, args={"editType": "edit",
                                             "width": "200"})
        top.realize()
        app.default_display.type_string(text.window, "42")
        app.process_pending()
        assert text.get_string() == "42"

    def test_shifted_typing(self, app, top):
        text = AsciiText("input", top, args={"editType": "edit"})
        top.realize()
        app.default_display.type_string(text.window, "w!")
        app.process_pending()
        assert text.get_string() == "w!"

    def test_backspace_deletes(self, app, top):
        from repro.xlib.keysym import keysym_to_keycode

        text = AsciiText("input", top, args={"editType": "edit"})
        top.realize()
        app.default_display.type_string(text.window, "abc")
        backspace, __ = keysym_to_keycode("BackSpace")
        app.default_display.press_key(text.window, backspace)
        app.process_pending()
        assert text.get_string() == "ab"

    def test_read_mode_rejects_typing(self, app, top):
        text = AsciiText("t", top, args={"editType": "read",
                                         "string": "fixed"})
        top.realize()
        app.default_display.type_string(text.window, "x")
        app.process_pending()
        assert text.get_string() == "fixed"

    def test_append_mode_appends(self, top):
        text = AsciiText("t", top, args={"editType": "append",
                                         "string": "log:"})
        text.set_insertion_point(0)
        text.insert("entry")
        assert text.get_string() == "log:entry"

    def test_set_values_string(self, top):
        text = AsciiText("t", top, args={"editType": "edit"})
        text.set_values({"string": "bulk content " * 10})
        assert text.get_string().startswith("bulk content")


class TestMenus:
    def test_menubutton_pops_menu_on_click(self, app, top):
        button = MenuButton("mb", top, args={"menuName": "menu"})
        menu = SimpleMenu("menu", button)
        SmeBSB("open", menu)
        SmeBSB("quit", menu)
        top.realize()
        assert not menu.popped_up
        x, y = button.window.absolute_origin()
        app.default_display.press_button(x + 2, y + 2)
        app.process_pending()
        assert menu.popped_up
        assert menu.window.mapped

    def test_menu_entry_notifies_and_pops_down(self, app, top):
        chosen = []
        button = MenuButton("mb", top, args={"menuName": "menu"})
        menu = SimpleMenu("menu", button)
        first = SmeBSB("first", menu)
        first.add_callback("callback", lambda w, d: chosen.append(w.name))
        SmeBSB("second", menu)
        top.realize()
        x, y = button.window.absolute_origin()
        app.default_display.press_button(x + 2, y + 2)
        app.process_pending()
        # Release over the first entry.
        mx, my = menu.window.absolute_origin()
        app.default_display.release_button(mx + 3, my + 3)
        app.process_pending()
        assert chosen == ["first"]
        assert not menu.popped_up

    def test_paper_enterwindow_popup_translation(self, app, top):
        # The paper: action mb override "<EnterWindow>: PopupMenu()"
        from repro.xt.translations import merge_tables, parse_translation_table

        button = MenuButton("mb", top, args={"menuName": "menu"})
        menu = SimpleMenu("menu", button)
        SmeBSB("entry", menu)
        override = parse_translation_table(
            "#override\n<EnterWindow>: PopupMenu()")
        button.resources["translations"] = merge_tables(
            button.resources["translations"], override)
        top.realize()
        x, y = button.window.absolute_origin()
        app.default_display.warp_pointer(x + 2, y + 2)
        app.process_pending()
        assert menu.popped_up


class TestContainers:
    def test_box_flows_horizontally(self, top):
        box = Box("b", top, args={"orientation": "horizontal",
                                  "width": "500"})
        one = Label("one", box)
        two = Label("two", box)
        top.realize()
        assert two.resources["x"] > one.resources["x"]
        assert one.resources["y"] == two.resources["y"]

    def test_box_vertical_default(self, top):
        box = Box("b", top)
        one = Label("one", box)
        two = Label("two", box)
        top.realize()
        assert two.resources["y"] > one.resources["y"]

    def test_paned_stacks_children(self, top):
        paned = Paned("p", top)
        one = Label("one", paned)
        two = Label("two", paned)
        three = Label("three", paned)
        top.realize()
        ys = [w.resources["y"] for w in (one, two, three)]
        assert ys == sorted(ys) and len(set(ys)) == 3

    def test_viewport_scrolls_child(self, top):
        viewport = Viewport("v", top, args={"width": "100",
                                            "height": "50",
                                            "allowVert": "true"})
        child = Label("big", viewport, args={"label": "line\n" * 20})
        top.realize()
        assert child.resources["y"] == 0
        viewport.scroll_to(y=30)
        assert child.resources["y"] == -30

    def test_viewport_scrollbar_coupling(self, app, top):
        viewport = Viewport("v", top, args={"width": "100",
                                            "height": "60",
                                            "allowVert": "true"})
        child = Label("big", viewport, args={"label": "line\n" * 30})
        top.realize()
        bar = viewport.vertical_bar
        assert bar is not None and bar.realized
        # The thumb reflects the visible fraction.
        assert 0.0 < bar["shown"] < 1.0
        # Dragging the thumb (button 2) scrolls the content.
        x, y = bar.window.absolute_origin()
        app.default_display.press_button(x + 3, y + 30, button=2)
        app.process_pending()
        assert child.resources["y"] < 0
        # Programmatic scrolling moves the thumb.
        viewport.scroll_to(y=0)
        assert bar["topOfThumb"] == 0.0

    def test_dialog_has_label_and_value(self, app, top):
        dialog = Dialog("d", top, args={"label": "Enter name:",
                                        "value": "gustaf"})
        top.realize()
        assert dialog.get_value_string("value") == "gustaf"
        names = [c.name for c in dialog.children]
        assert "label" in names and "value" in names


class TestScrollbar:
    def test_thumb_setting_clamps(self, top):
        bar = Scrollbar("s", top)
        bar.set_thumb(top=1.5, shown=-0.2)
        assert bar["topOfThumb"] == 1.0
        assert bar["shown"] == 0.0

    def test_jump_callback_on_thumb_move(self, app, top):
        jumps = []
        bar = Scrollbar("s", top, args={"length": "100"})
        bar.add_callback("jumpProc", lambda w, d: jumps.append(d))
        top.realize()
        x, y = bar.window.absolute_origin()
        app.default_display.press_button(x + 3, y + 50, button=2)
        app.process_pending()
        assert len(jumps) == 1
        assert 0.3 < jumps[0] < 0.7

    def test_scroll_callback_on_click(self, app, top):
        scrolls = []
        bar = Scrollbar("s", top, args={"length": "100"})
        bar.add_callback("scrollProc", lambda w, d: scrolls.append(d))
        top.realize()
        x, y = bar.window.absolute_origin()
        app.default_display.click(x + 3, y + 80)
        app.process_pending()
        assert len(scrolls) == 1


class TestStripChart:
    def test_sample_pulls_from_getvalue(self, top):
        chart = StripChart("c", top, args={"update": "0"})
        values = iter([1.0, 5.0, 3.0])

        def produce(widget, holder):
            holder[0] = next(values)

        chart.add_callback("getValue", produce)
        top.realize()
        assert chart.sample() == 1.0
        assert chart.sample() == 5.0
        assert chart.samples == [1.0, 5.0]


class TestPlotter:
    def test_bar_graph_heights_proportional(self, top):
        graph = BarGraph("g", top, args={"data": "1 2 4"})
        top.realize()
        graph.redraw()
        heights = graph.bar_heights()
        assert len(heights) == 3
        assert heights[0] < heights[1] < heights[2]

    def test_bar_graph_paints_bars(self, top):
        graph = BarGraph("g", top, args={"data": "1 2 4",
                                         "graphColor": "steelblue"})
        top.realize()
        graph.redraw()
        pixels = window_pixels(graph.window)
        assert (pixels == alloc_color("steelblue")).sum() > 50

    def test_line_graph_paints_series(self, top):
        graph = LineGraph("g", top, args={"data": "0 10 5 20",
                                          "graphColor": "red"})
        top.realize()
        graph.redraw()
        pixels = window_pixels(graph.window)
        assert (pixels == alloc_color("red")).sum() > 20

    def test_set_data_redraws(self, top):
        graph = BarGraph("g", top, args={"data": "1 1 1"})
        top.realize()
        graph.redraw()
        flat = graph.bar_heights()
        graph.set_data([1, 2, 3])
        assert graph.bar_heights() != flat
