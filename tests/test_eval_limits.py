"""Interpreter fault containment: the hostile-script corpus.

Every test here feeds the interpreter (or a full frontend) input that
is broken on purpose -- infinite loops, unbounded recursion, commands
that raise Python exceptions, allocation bombs -- and asserts the two
halves of the containment contract:

* the fault surfaces as a clean Tcl error (never a Python traceback,
  never a hang), and
* the interpreter / event loop / frontend stays fully usable after.
"""

import os
import sys
import textwrap

import pytest

from repro.tcl import Interp
from repro.tcl.errors import (
    TclError,
    TclLimitError,
    get_panic_log,
    set_panic_log,
)
from repro.xlib import close_all_displays
from repro.core import make_wafe
from repro.core.frontend import Frontend
from repro.core.safemode import SAFE_HIDDEN_COMMANDS


@pytest.fixture
def tcl():
    return Interp()


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


@pytest.fixture(autouse=True)
def _no_panic_log_leak():
    yield
    set_panic_log(None)


def write_backend(tmp_path, body):
    script = tmp_path / "backend.py"
    script.write_text(textwrap.dedent(body))
    return [sys.executable, "-u", str(script)]


# ----------------------------------------------------------------------
# The watchdog: time and command budgets


class TestWatchdog:
    def test_empty_infinite_loop_trips_time_budget(self, tcl):
        # `while 1 {}` dispatches zero commands per iteration -- only
        # the nested-eval accounting can catch it.
        tcl.set_eval_limits(time_ms=100)
        with pytest.raises(TclLimitError) as exc:
            tcl.eval("while 1 {}")
        assert exc.value.limit == "time"
        assert "time limit exceeded" in str(exc.value.result)

    def test_busy_infinite_loop_trips_command_budget(self, tcl):
        tcl.set_eval_limits(commands=500)
        with pytest.raises(TclLimitError) as exc:
            tcl.eval("set x 0; while 1 {incr x}")
        assert exc.value.limit == "commands"
        # The loop really was cut short (budget counts work units --
        # commands plus eval entries -- with up to a check-mask of
        # slack, so assert the order of magnitude, not the exact count).
        assert int(tcl.eval("set x")) < 600

    def test_interp_usable_after_trip(self, tcl):
        tcl.set_eval_limits(commands=200)
        with pytest.raises(TclLimitError):
            tcl.eval("while 1 {}")
        # The budget re-arms per top-level eval; normal work proceeds.
        assert tcl.eval("expr 6 * 7") == "42"
        assert tcl.eval("set greeting hello") == "hello"

    def test_catch_cannot_swallow_a_limit_trip(self, tcl):
        # A hostile script wrapping its spin loop in catch must not
        # defeat the watchdog.
        tcl.set_eval_limits(time_ms=100)
        with pytest.raises(TclLimitError):
            tcl.eval("catch {while 1 {}}")

    def test_uncompiled_path_trips_too(self):
        tcl = Interp(compile=False)
        tcl.set_eval_limits(time_ms=100)
        with pytest.raises(TclLimitError):
            tcl.eval("while 1 {}")

    def test_limits_disarmed_between_evals(self, tcl):
        tcl.set_eval_limits(commands=5000)
        for __ in range(5):
            tcl.eval("set x 0; for {set i 0} {$i < 100} {incr i} "
                     "{incr x}")
        assert tcl.eval("set x") == "100"

    def test_trips_are_counted(self, tcl):
        tcl.set_eval_limits(commands=100)
        for __ in range(3):
            with pytest.raises(TclLimitError):
                tcl.eval("while 1 {}")
        stats = tcl.eval_stats()
        assert stats["limit_trips"]["commands"] == 3

    def test_limit_validation(self, tcl):
        with pytest.raises(TclError):
            tcl.set_eval_limits(time_ms=-1)
        with pytest.raises(TclError):
            tcl.set_eval_limits(commands=-5)


# ----------------------------------------------------------------------
# Recursion containment


class TestRecursion:
    def test_self_recursive_proc(self, tcl):
        tcl.eval("proc f {} { f }")
        with pytest.raises(TclError) as exc:
            tcl.eval("f")
        assert "too many nested evaluations" in str(exc.value.result)
        assert tcl.eval("expr 1 + 1") == "2"

    def test_mutually_recursive_procs(self, tcl):
        tcl.eval("proc ping {} { pong }")
        tcl.eval("proc pong {} { ping }")
        with pytest.raises(TclError) as exc:
            tcl.eval("ping")
        assert "too many nested evaluations" in str(exc.value.result)

    def test_ten_thousand_deep_recursion_is_a_clean_tcl_error(self, tcl):
        # The acceptance scenario: a 10,000-deep recursion attempt must
        # produce the Tcl error -- never a Python RecursionError.
        tcl.eval("proc f n { if {$n > 0} { f [expr $n - 1] } }")
        with pytest.raises(TclError) as exc:
            tcl.eval("f 10000")
        assert "too many nested evaluations" in str(exc.value.result)
        # errorInfo is capped: deep failures keep tracebacks readable.
        info = tcl.eval("set errorInfo")
        assert "(additional stack frames elided)" in info
        assert len(info) < 10000

    def test_recursion_limit_is_configurable(self, tcl):
        tcl.set_recursion_limit(50)
        tcl.eval("proc f n { if {$n > 0} { f [expr $n - 1] } }")
        with pytest.raises(TclError):
            tcl.eval("f 100")
        assert tcl.eval("f 3") == ""
        with pytest.raises(TclError):
            tcl.set_recursion_limit(0)

    def test_recursion_trip_counted(self, tcl):
        tcl.eval("proc f {} { f }")
        with pytest.raises(TclError):
            tcl.eval("f")
        assert tcl.eval_stats()["limit_trips"]["recursion"] == 1


# ----------------------------------------------------------------------
# Allocation bombs


class TestAllocationBombs:
    def test_string_repeat_overflow(self, tcl):
        with pytest.raises(TclError) as exc:
            tcl.eval("string repeat abcdefgh 100000000")
        assert "string size overflow" in str(exc.value.result)
        assert tcl.eval("string repeat ab 3") == "ababab"
        assert tcl.eval("string repeat ab 0") == ""

    def test_doubling_bomb_hits_the_overflow_guard(self, tcl):
        tcl.set_eval_limits(commands=100000)
        script = ("set s x\n"
                  "while 1 { set s [string repeat $s 2] }")
        with pytest.raises(TclError) as exc:
            tcl.eval(script)
        assert ("string size overflow" in str(exc.value.result)
                or isinstance(exc.value, TclLimitError))


# ----------------------------------------------------------------------
# The Python-exception firewall


class TestFirewall:
    def test_injected_exception_becomes_tcl_error(self, tcl):
        def boom(interp, argv):
            raise ValueError("kaboom")

        tcl.commands["pycrash"] = boom
        with pytest.raises(TclError) as exc:
            tcl.eval("pycrash")
        assert not isinstance(exc.value, ValueError)
        assert 'internal error in command "pycrash"' in str(
            exc.value.result)
        assert "ValueError: kaboom" in str(exc.value.result)
        assert tcl.eval("expr 2 + 2") == "4"

    def test_firewalled_error_is_catchable_with_traceback(self, tcl):
        def boom(interp, argv):
            raise KeyError("missing")

        tcl.commands["pycrash"] = boom
        assert tcl.eval("catch {pycrash} v") == "1"
        assert "internal error" in tcl.eval("set v")
        assert "while executing" in tcl.eval("set errorInfo")

    def test_firewall_catches_counted(self, tcl):
        def boom(interp, argv):
            raise RuntimeError("x")

        tcl.commands["pycrash"] = boom
        for __ in range(2):
            tcl.eval("catch {pycrash}")
        assert tcl.eval_stats()["firewall_catches"] == 2

    def test_panic_log_records_the_traceback(self, tcl, tmp_path):
        log = tmp_path / "panic.log"
        set_panic_log(str(log))
        assert get_panic_log() == str(log)

        def boom(interp, argv):
            raise ZeroDivisionError("oops")

        tcl.commands["pycrash"] = boom
        tcl.eval("catch {pycrash}")
        text = log.read_text()
        assert "ZeroDivisionError: oops" in text
        assert "Traceback" in text
        assert 'command "pycrash"' in text


# ----------------------------------------------------------------------
# errorInfo tracebacks


class TestErrorInfo:
    SCRIPT = ("proc inner {} { error deep }\n"
              "proc outer {} { inner }\n"
              "outer\n")

    def test_traceback_shape(self, tcl):
        with pytest.raises(TclError):
            tcl.eval(self.SCRIPT)
        info = tcl.eval("set errorInfo")
        lines = info.split("\n")
        assert lines[0] == "deep"
        assert "    while executing" in lines
        assert '"error deep"' in info
        assert '(procedure "inner" line 1)' in info
        assert "    invoked from within" in info
        assert '"outer"' in info

    def test_line_numbers_in_proc_frames(self, tcl):
        tcl.eval("proc f {} {\n    set a 1\n    error midway\n}")
        with pytest.raises(TclError):
            tcl.eval("f")
        assert '(procedure "f" line 3)' in tcl.eval("set errorInfo")

    def test_compiled_and_uncompiled_tracebacks_agree(self):
        compiled = Interp()
        reference = Interp(compile=False)
        for tcl in (compiled, reference):
            with pytest.raises(TclError):
                tcl.eval(self.SCRIPT)
        assert (compiled.eval("set errorInfo")
                == reference.eval("set errorInfo"))

    def test_error_command_regression(self, tcl):
        # `error msg info code` must seed errorInfo with the *info*
        # argument and set errorCode from the *code* argument.
        assert tcl.eval(
            "list [catch {error msg myinfo mycode} v] $v") == "1 msg"
        assert tcl.eval("set errorCode") == "mycode"
        assert tcl.eval("set errorInfo") == "myinfo"

    def test_error_without_code_gets_none(self, tcl):
        tcl.eval("catch {error plain}")
        assert tcl.eval("set errorCode") == "NONE"


# ----------------------------------------------------------------------
# Safe mode


class TestSafeMode:
    def test_enable_hides_the_dangerous_set(self, wafe):
        hidden = wafe.enable_safe_mode()
        assert "source" in hidden
        assert wafe.safe_mode
        with pytest.raises(TclError) as exc:
            wafe.run_script("source /etc/passwd")
        assert "invalid command name" in str(exc.value.result)

    def test_info_hidden_lists_them(self, wafe):
        assert wafe.run_script("info hidden") == ""
        wafe.enable_safe_mode()
        listed = wafe.run_script("info hidden").split()
        assert "source" in listed
        assert listed == sorted(listed)

    def test_hidden_commands_leave_info_commands(self, wafe):
        wafe.enable_safe_mode()
        assert "source" not in wafe.run_script("info commands").split()

    def test_rename_cannot_resurrect(self, wafe):
        wafe.enable_safe_mode()
        with pytest.raises(TclError):
            wafe.run_script("rename source reader")

    def test_safe_mode_command_is_one_way(self, wafe):
        assert wafe.run_script("safeMode") == "0"
        assert wafe.run_script("safeMode on") == "1"
        assert wafe.run_script("safeMode") == "1"
        with pytest.raises(TclError):
            wafe.run_script("safeMode off")

    def test_limit_commands_are_hidden_in_safe_mode(self, wafe):
        # A backend must not be able to disarm its own watchdog.
        wafe.run_script("evalLimit 0 5000")
        wafe.enable_safe_mode()
        with pytest.raises(TclError):
            wafe.run_script("evalLimit 0 0")
        with pytest.raises(TclError):
            wafe.run_script("recursionLimit 100000")

    def test_embedder_can_expose_again(self, wafe):
        wafe.enable_safe_mode()
        wafe.interp.expose_command("source")
        assert "source" in wafe.run_script("info commands").split()

    def test_cli_flag_parses(self):
        from repro.core.cli import split_arguments

        options, __, app_args = split_arguments(
            ["--safe", "--app", "prog", "arg"])
        assert options.get("safe") is True
        assert options["app"] == "prog"
        assert app_args == ["arg"]

    def test_safe_mode_resource(self, wafe):
        wafe.app.load_resource_string("wafe.safeMode: true")
        wafe.supervision.load_resources(wafe.app)
        wafe.apply_fault_containment()
        assert wafe.safe_mode
        assert "source" in wafe.run_script("info hidden").split()


# ----------------------------------------------------------------------
# Runtime limit commands and resources


class TestLimitCommands:
    def test_eval_limit_command(self, wafe):
        assert wafe.run_script("evalLimit") == "0 0"
        wafe.run_script("evalLimit 0 400")
        assert wafe.run_script("evalLimit") == "0 400"
        errors = []
        wafe.error_sink = errors.append
        wafe.run_command_line("while 1 {}")  # wafelint: skip -- must spin
        assert any("command count limit exceeded" in e for e in errors)
        # The loop -- and the frontend -- keep going.
        assert wafe.run_script("expr 1 + 2") == "3"

    def test_recursion_limit_command(self, wafe):
        assert wafe.run_script("recursionLimit") == "1000"
        wafe.run_script("recursionLimit 60")
        assert wafe.interp.recursion_limit == 60
        with pytest.raises(TclError):
            wafe.run_script("recursionLimit 0")

    def test_limit_resources(self, wafe):
        wafe.app.load_resource_string(
            "wafe.evalCommandLimit: 300\nwafe.recursionLimit: 80\n")
        wafe.supervision.load_resources(wafe.app)
        wafe.apply_fault_containment()
        assert wafe.interp.limit_commands == 300
        assert wafe.interp.recursion_limit == 80

    def test_explicit_command_beats_resource(self, wafe):
        wafe.run_script("evalLimit 0 999")
        wafe.app.load_resource_string("wafe.evalCommandLimit: 300")
        wafe.supervision.load_resources(wafe.app)
        wafe.apply_fault_containment()
        assert wafe.interp.limit_commands == 999


# ----------------------------------------------------------------------
# The Xt-side firewall


class TestXtFirewall:
    def test_timeout_handler_exception_contained(self, wafe):
        errors = []
        wafe.error_sink = errors.append

        def boom():
            raise ValueError("timer blew up")

        wafe.app.add_timeout(0, boom)
        wafe.app.process_one(block=False)
        assert any("internal error in timeout handler" in e
                   and "ValueError" in e for e in errors)

    def test_broken_work_proc_removed_not_retried(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        calls = []

        def boom():
            calls.append(1)
            raise RuntimeError("work proc blew up")

        wafe.app.add_work_proc(boom)
        wafe.app.process_one(block=False)
        wafe.app.process_one(block=False)
        assert calls == [1]
        assert wafe.app._work_procs == []
        assert any("work proc" in e for e in errors)

    def test_callback_exception_does_not_stop_the_list(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("command b topLevel callback {echo hi}")
        widget = wafe.lookup_widget("b")
        ran = []

        def boom(w, call_data):
            raise KeyError("callback blew up")

        callback_list = widget.resources["callback"]
        callback_list.add(boom)
        callback_list.add(lambda w, call_data: ran.append(1))
        callback_list.call(widget)
        assert ran == [1]
        assert any("callback on widget" in e for e in errors)

    def test_tcl_error_in_timeout_reported_with_traceback(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.app.add_timeout(0, wafe.run_script, "error boom")
        wafe.app.process_one(block=False)
        assert any(e.startswith("boom") and "while executing" in e
                   for e in errors)


# ----------------------------------------------------------------------
# Frontend mode end-to-end: the acceptance scenario


class TestFrontendContainment:
    def test_infinite_loop_line_comes_back_as_error(self, wafe,
                                                    tmp_path):
        # A backend sends `while 1 {}`; the frontend must answer with
        # an error line within the time budget and stay responsive.
        command = write_backend(tmp_path, '''
            import sys
            print("%evalLimit 150")
            print("%while 1 {}")
            sys.stdout.flush()
            line = sys.stdin.readline().strip()
            if line.startswith("error:"):
                print("%set recovered 1")
            sys.stdout.flush()
            sys.stdin.readline()   # hold the pipe open
        ''')
        errors = []
        wafe.error_sink = errors.append
        frontend = Frontend(wafe, command)
        wafe.main_loop(
            until=lambda: wafe.interp.var_exists("recovered"),
            max_idle=2000)
        frontend.close()
        assert wafe.run_script("set recovered") == "1"
        assert any("time limit exceeded" in e for e in errors)

    def test_python_crash_line_keeps_frontend_alive(self, wafe,
                                                    tmp_path):
        def boom(w, argv):
            raise OSError("disk on fire")

        wafe.register_command("pycrash", boom)
        command = write_backend(tmp_path, '''
            import sys
            print("%pycrash")
            sys.stdout.flush()
            line = sys.stdin.readline().strip()
            if "internal error" in line:
                print("%set recovered 1")
            sys.stdout.flush()
            sys.stdin.readline()
        ''')
        errors = []
        wafe.error_sink = errors.append
        frontend = Frontend(wafe, command)
        wafe.main_loop(
            until=lambda: wafe.interp.var_exists("recovered"),
            max_idle=2000)
        frontend.close()
        assert wafe.run_script("set recovered") == "1"
        assert any("OSError" in e for e in errors)


# ----------------------------------------------------------------------
# Introspection


class TestEvalStats:
    def test_info_evalstats(self, tcl):
        tcl.eval("set x 1")
        fields = tcl.eval("info evalstats").split()
        stats = dict(zip(fields[::2], fields[1::2]))
        assert int(stats["commands"]) > 0
        assert stats["recursionLimit"] == "1000"
        assert int(stats["peakNesting"]) >= 1

    def test_info_evalstats_reset(self, tcl):
        tcl.eval("proc f {} { error x }")
        tcl.eval("catch {f}")
        tcl.eval("info evalstats reset")
        fields = tcl.eval("info evalstats").split()
        stats = dict(zip(fields[::2], fields[1::2]))
        assert stats["firewallCatches"] == "0"

    def test_hidden_count_in_stats(self, wafe):
        wafe.enable_safe_mode()
        fields = wafe.run_script("info evalstats").split()
        stats = dict(zip(fields[::2], fields[1::2]))
        assert int(stats["hiddenCommands"]) == len(
            wafe.run_script("info hidden").split())


class TestSafeHiddenTable:
    def test_every_entry_has_a_reason(self):
        for name, reason in SAFE_HIDDEN_COMMANDS.items():
            assert isinstance(reason, str) and reason, name
