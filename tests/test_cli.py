"""End-to-end tests of the wafe/mofe command line (subprocess level)."""

import subprocess
import sys

import pytest

WAFE = [sys.executable, "-c",
        "import sys; from repro.core.cli import main;"
        " sys.exit(main(['wafe'] + sys.argv[1:]))"]
MOFE = [sys.executable, "-c",
        "import sys; from repro.core.cli import motif_main;"
        " sys.exit(motif_main(['mofe'] + sys.argv[1:]))"]


def run_cli(base, args, stdin="", timeout=60):
    result = subprocess.run(base + args, input=stdin.encode(),
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, timeout=timeout)
    return result.returncode, result.stdout.decode(), result.stderr.decode()


class TestFileMode:
    def test_file_mode_runs_script(self, tmp_path):
        script = tmp_path / "hello.wafe"
        script.write_text(
            "#!/usr/bin/X11/wafe --f\n"
            "label l topLevel label {Wafe new World}\n"
            "realize\n"
            "echo [gV l label]\n"
            "quit\n"
        )
        code, out, err = run_cli(WAFE, ["--f", str(script)])
        assert code == 0, err
        assert "Wafe new World" in out

    def test_bare_script_path_selects_file_mode(self, tmp_path):
        script = tmp_path / "s.wafe"
        script.write_text("echo [wafeVersion]\nquit\n")
        code, out, __ = run_cli(WAFE, [str(script)])
        assert code == 0
        assert "0.93-repro" in out

    def test_xrm_option_feeds_database(self, tmp_path):
        script = tmp_path / "s.wafe"
        script.write_text(
            "label l topLevel\n"
            "echo [gV l label]\n"
            "quit\n"
        )
        code, out, __ = run_cli(
            WAFE, ["-xrm", "*label: from-xrm", "--f", str(script)])
        assert code == 0
        assert "from-xrm" in out

    def test_motif_build_script(self, tmp_path):
        script = tmp_path / "m.wafe"
        script.write_text(
            "mLabel l topLevel labelString {hello motif}\n"
            "realize\n"
            "echo done\n"
            "quit\n"
        )
        code, out, __ = run_cli(MOFE, ["--f", str(script)])
        assert code == 0
        assert "done" in out


class TestInteractiveMode:
    def test_stdin_session(self):
        session = (
            "label l topLevel\n"
            "echo [getResourceList l r]\n"
            "quit\n"
        )
        code, out, __ = run_cli(WAFE, [], stdin=session)
        assert code == 0
        assert "42" in out

    def test_errors_do_not_kill_session(self):
        session = "bogus command here\necho still-alive\nquit\n"
        code, out, err = run_cli(WAFE, [], stdin=session)
        assert code == 0
        assert "still-alive" in out


class TestFrontendMode:
    def test_app_option_spawns_backend(self, tmp_path):
        backend = tmp_path / "backend.py"
        backend.write_text(
            "import sys\n"
            "print('%label l topLevel label {from backend}')\n"
            "print('%realize')\n"
            "print('%echo [gV l label]')\n"
            "sys.stdout.flush()\n"
            "for line in sys.stdin:\n"
            "    print('backend got: ' + line.strip())\n"
            "    sys.stdout.flush()\n"
            "    break\n"
        )
        code, out, __ = run_cli(
            WAFE, ["--app", sys.executable, "-u", str(backend)])
        assert code == 0
        # The echo went down the pipe; the backend printed it as a
        # non-command line which Wafe passed through to stdout.
        assert "backend got: from backend" in out


class TestResourceFile:
    def test_resources_flag_lowest_precedence(self, tmp_path):
        resource_file = tmp_path / "Wafe.ad"
        resource_file.write_text("*label: from-file\n*width: 150\n")
        script = tmp_path / "s.wafe"
        script.write_text(
            "label a topLevel\n"
            "label b topLevel label from-args\n"
            "echo [gV a label]/[gV b label]/[gV a width]\n"
            "quit\n"
        )
        code, out, __ = run_cli(
            WAFE, ["--resources", str(resource_file), "--f", str(script)])
        assert code == 0
        assert "from-file/from-args/150" in out

    def test_xrm_overrides_resource_file(self, tmp_path):
        resource_file = tmp_path / "Wafe.ad"
        resource_file.write_text("*label: from-file\n")
        script = tmp_path / "s.wafe"
        script.write_text("label a topLevel\necho [gV a label]\nquit\n")
        code, out, __ = run_cli(
            WAFE, ["--resources", str(resource_file),
                   "-xrm", "*label: from-xrm", "--f", str(script)])
        assert code == 0
        assert "from-xrm" in out


class TestUtilityFlags:
    def test_version_flag(self):
        code, out, __ = run_cli(WAFE, ["--version"])
        assert code == 0
        assert "0.93-repro" in out
