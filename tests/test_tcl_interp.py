"""Integration tests for the Tcl interpreter: evaluation semantics."""

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def tcl():
    return Interp()


class TestVariables:
    def test_set_and_get(self, tcl):
        assert tcl.eval("set a hello") == "hello"
        assert tcl.eval("set a") == "hello"

    def test_substitution(self, tcl):
        tcl.eval("set a world")
        assert tcl.eval('set b "hello $a"') == "hello world"

    def test_unset(self, tcl):
        tcl.eval("set a 1")
        tcl.eval("unset a")
        with pytest.raises(TclError, match="no such variable"):
            tcl.eval("set a")

    def test_read_missing_raises(self, tcl):
        with pytest.raises(TclError, match='can\'t read "nope"'):
            tcl.eval("set x $nope")

    def test_array_set_get(self, tcl):
        tcl.eval("set arr(one) 1")
        tcl.eval("set arr(two) 2")
        assert tcl.eval("set arr(one)") == "1"
        assert tcl.eval('set k two; set arr($k)') == "2"

    def test_array_vs_scalar_conflict(self, tcl):
        tcl.eval("set a 1")
        with pytest.raises(TclError, match="isn't array"):
            tcl.eval("set a(x) 1")
        tcl.eval("set b(x) 1")
        with pytest.raises(TclError, match="variable is array"):
            tcl.eval("set b 2")

    def test_incr(self, tcl):
        tcl.eval("set i 5")
        assert tcl.eval("incr i") == "6"
        assert tcl.eval("incr i 10") == "16"
        assert tcl.eval("incr i -1") == "15"

    def test_append(self, tcl):
        tcl.eval("append s foo bar")
        assert tcl.eval("set s") == "foobar"
        tcl.eval("append s baz")
        assert tcl.eval("set s") == "foobarbaz"

    def test_dollar_in_braces_not_substituted(self, tcl):
        assert tcl.eval("set a {$x}") == "$x"


class TestCommandSubstitution:
    def test_nested(self, tcl):
        assert tcl.eval("set a [expr 1+[expr 2+3]]") == "6"

    def test_result_is_single_word(self, tcl):
        tcl.eval('set x "two words"')
        # $x stays one word: llength of a one-element list command
        assert tcl.eval("llength [list $x]") == "1"


class TestControlFlow:
    def test_if_else(self, tcl):
        assert tcl.eval("if {1 < 2} {set r yes} else {set r no}") == "yes"
        assert tcl.eval("if {1 > 2} {set r yes} else {set r no}") == "no"

    def test_if_elseif(self, tcl):
        script = "if {$x == 1} {set r one} elseif {$x == 2} {set r two} else {set r many}"
        tcl.eval("set x 2")
        assert tcl.eval(script) == "two"
        tcl.eval("set x 9")
        assert tcl.eval(script) == "many"

    def test_if_then_keyword(self, tcl):
        assert tcl.eval("if 1 then {set r ok}") == "ok"

    def test_while_loop(self, tcl):
        tcl.eval("set i 0; set sum 0")
        tcl.eval("while {$i < 5} {incr sum $i; incr i}")
        assert tcl.eval("set sum") == "10"

    def test_for_loop(self, tcl):
        tcl.eval("set sum 0")
        tcl.eval("for {set i 1} {$i <= 4} {incr i} {incr sum $i}")
        assert tcl.eval("set sum") == "10"

    def test_foreach(self, tcl):
        tcl.eval("set out {}")
        tcl.eval("foreach x {a b c} {append out $x-}")
        assert tcl.eval("set out") == "a-b-c-"

    def test_break(self, tcl):
        tcl.eval("set i 0")
        tcl.eval("while 1 {incr i; if {$i >= 3} break}")
        assert tcl.eval("set i") == "3"

    def test_continue(self, tcl):
        tcl.eval("set sum 0")
        tcl.eval("foreach x {1 2 3 4} {if {$x == 2} continue; incr sum $x}")
        assert tcl.eval("set sum") == "8"

    def test_switch_exact(self, tcl):
        assert tcl.eval("switch b {a {set r 1} b {set r 2} default {set r 3}}") == "2"
        assert tcl.eval("switch z {a {set r 1} default {set r 3}}") == "3"

    def test_switch_glob(self, tcl):
        assert tcl.eval("switch -glob foo.c {*.h {set r hdr} *.c {set r src}}") == "src"

    def test_switch_fallthrough(self, tcl):
        assert tcl.eval("switch b {a - b {set r ab} c {set r c}}") == "ab"

    def test_case_command(self, tcl):
        assert tcl.eval("case abc in {a*} {set r star} default {set r other}") == "star"


class TestProcs:
    def test_simple_proc(self, tcl):
        tcl.eval("proc double {x} {expr $x * 2}")
        assert tcl.eval("double 21") == "42"

    def test_return(self, tcl):
        tcl.eval("proc f {} {return early; set never reached}")
        assert tcl.eval("f") == "early"

    def test_default_argument(self, tcl):
        tcl.eval("proc greet {{name world}} {return hello-$name}")
        assert tcl.eval("greet") == "hello-world"
        assert tcl.eval("greet tcl") == "hello-tcl"

    def test_args_collects_rest(self, tcl):
        tcl.eval("proc count {first args} {llength $args}")
        assert tcl.eval("count a b c d") == "3"

    def test_missing_argument_raises(self, tcl):
        tcl.eval("proc f {a b} {}")
        with pytest.raises(TclError, match="no value given for parameter"):
            tcl.eval("f 1")

    def test_too_many_arguments_raises(self, tcl):
        tcl.eval("proc f {a} {}")
        with pytest.raises(TclError, match="too many arguments"):
            tcl.eval("f 1 2")

    def test_local_scope(self, tcl):
        tcl.eval("set x global")
        tcl.eval("proc f {} {set x local; return $x}")
        assert tcl.eval("f") == "local"
        assert tcl.eval("set x") == "global"

    def test_global_command(self, tcl):
        tcl.eval("set counter 0")
        tcl.eval("proc bump {} {global counter; incr counter}")
        tcl.eval("bump; bump")
        assert tcl.eval("set counter") == "2"

    def test_upvar(self, tcl):
        tcl.eval("proc swap {an bn} {upvar $an a $bn b; set t $a; set a $b; set b $t}")
        tcl.eval("set x 1; set y 2; swap x y")
        assert tcl.eval("set x") == "2"
        assert tcl.eval("set y") == "1"

    def test_uplevel(self, tcl):
        tcl.eval("proc setit {} {uplevel {set z fromproc}}")
        tcl.eval("setit")
        assert tcl.eval("set z") == "fromproc"

    def test_recursion(self, tcl):
        tcl.eval("proc fact {n} {if {$n <= 1} {return 1}; expr $n * [fact [expr $n-1]]}")
        assert tcl.eval("fact 6") == "720"

    def test_rename(self, tcl):
        tcl.eval("proc f {} {return ok}")
        tcl.eval("rename f g")
        assert tcl.eval("g") == "ok"
        with pytest.raises(TclError, match="invalid command name"):
            tcl.eval("f")

    def test_info_body_and_args(self, tcl):
        tcl.eval("proc f {a {b 2}} {return $a$b}")
        assert tcl.eval("info args f") == "a b"
        assert tcl.eval("info body f") == "return $a$b"
        assert tcl.eval("info default f b out") == "1"
        assert tcl.eval("set out") == "2"


class TestErrors:
    def test_catch_ok(self, tcl):
        assert tcl.eval("catch {set a 1} msg") == "0"
        assert tcl.eval("set msg") == "1"

    def test_catch_error(self, tcl):
        assert tcl.eval("catch {error boom} msg") == "1"
        assert tcl.eval("set msg") == "boom"

    def test_catch_break_code(self, tcl):
        assert tcl.eval("catch {break}") == "3"
        assert tcl.eval("catch {continue}") == "4"

    def test_error_command(self, tcl):
        with pytest.raises(TclError, match="custom message"):
            tcl.eval("error {custom message}")

    def test_error_info_accumulates(self, tcl):
        tcl.eval("proc f {} {error deep}")
        tcl.eval("catch {f}")
        assert "deep" in tcl.eval("set errorInfo")

    def test_invalid_command(self, tcl):
        with pytest.raises(TclError, match='invalid command name "nosuch"'):
            tcl.eval("nosuch arg")

    def test_infinite_recursion_stopped(self, tcl):
        tcl.eval("proc loop {} {loop}")
        with pytest.raises(TclError, match="too many nested"):
            tcl.eval("loop")


class TestEvalAndSubst:
    def test_eval_concat(self, tcl):
        assert tcl.eval("eval set a 5") == "5"

    def test_eval_list(self, tcl):
        tcl.eval("set cmd {set b 7}")
        assert tcl.eval("eval $cmd") == "7"

    def test_subst(self, tcl):
        tcl.eval("set x 42")
        assert tcl.eval("subst {val=$x}") == "val=42"

    def test_subst_nocommands(self, tcl):
        assert tcl.eval("subst -nocommands {[nosuch]}") == "[nosuch]"

    def test_subst_novariables(self, tcl):
        assert tcl.eval("subst -novariables {$x}") == "$x"


class TestMisc:
    def test_info_exists(self, tcl):
        assert tcl.eval("info exists nope") == "0"
        tcl.eval("set yep 1")
        assert tcl.eval("info exists yep") == "1"

    def test_info_commands_contains_builtins(self, tcl):
        commands = tcl.eval("info commands").split()
        for name in ("set", "proc", "expr", "foreach", "string"):
            assert name in commands

    def test_info_level(self, tcl):
        tcl.eval("proc f {} {info level}")
        assert tcl.eval("info level") == "0"
        assert tcl.eval("f") == "1"

    def test_time_command(self, tcl):
        result = tcl.eval("time {set a 1} 10")
        assert result.endswith("microseconds per iteration")

    def test_puts_through_hook(self, tcl):
        captured = []
        tcl.write_output = captured.append
        tcl.eval("puts hello")
        assert captured == ["hello\n"]

    def test_array_commands(self, tcl):
        tcl.eval("array set colors {red #f00 green #0f0}")
        assert tcl.eval("array size colors") == "2"
        assert tcl.eval("array exists colors") == "1"
        assert tcl.eval("array exists nope") == "0"
        assert set(tcl.eval("array names colors").split()) == {"red", "green"}
        assert tcl.eval("set colors(red)") == "#f00"

    def test_semicolons_and_result(self, tcl):
        assert tcl.eval("set a 1; set b 2") == "2"
