"""Lint-vs-runtime differential fuzzer.

The flow rules in :mod:`repro.lint.flowrules` make claims about what
scripts *do at runtime* -- W012 claims a variable read can fail, W013
claims a statement can never execute.  Those claims are checkable: run
the script and watch.  This suite generates random scripts from a
grammar both the linter and the interpreter fully understand and pins
the two soundness directions that matter:

* **W012 completeness** -- a script the flow pass considers clean
  (no W012) must never raise ``can't read "x": no such variable`` when
  executed.  W012 is deliberately a *may* analysis (a variable
  assigned on one branch is not reported, to keep false positives at
  zero), so the generator keeps conditional writes confined to
  variables that are already unconditionally assigned: within that
  grammar "may-assigned" and "definitely-assigned" coincide and the
  completeness property is exact.  Reads are unrestricted -- scripts
  that read a never-assigned variable must come out flagged.
* **W013 soundness** -- a statement the flow pass flags as unreachable
  must never execute.  Proven two ways: a registered probe command
  records every call (must record none), and ``info cmdcount`` is
  byte-identical with the flagged statement deleted from the script
  (an executed-but-unobserved statement would still pay a work unit).

Scripts run under eval limits (nested loops can still spin), so the
CI failure-injection job runs this file under pytest-timeout alongside
the other watchdog-dependent suites.  The very first run of this
fuzzer caught a real bug: the constant-propagation join treated
_TOP-tainted loop states as replace-wholesale and the worklist
ping-ponged forever (see ConstLattice.join).
"""

import random
import re

import pytest

from repro.lint import check
from repro.tcl import Interp
from repro.tcl.errors import TclError

_CANT_READ = re.compile(r'can\'t read "[^"]*": no such variable')

_VARS = ["a", "b", "c", "d"]

#: Ghost variables: only ever tested with ``info exists`` and read
#: inside the guarded branch -- never assigned, so the guard is the
#: only thing keeping the read safe.
_GHOSTS = ["g1", "g2"]


# ----------------------------------------------------------------------
# W012: lint-clean scripts never raise a missing-variable read


def _write_target(rng, definite):
    """A variable that is safe to assign below the top level.

    Falls back to the pre-seeded ``w0`` (see :func:`_gen_script`) --
    never to an arbitrary variable, because a conditional write (even
    an ``incr`` on a loop back-edge) makes its target may-assigned and
    silences W012 for reads the runtime can still lose.
    """
    pool = sorted(definite) or ["w0"]
    return rng.choice(pool)


def _read_var(rng, definite):
    """A variable to read: usually one already assigned (so a healthy
    share of the corpus comes out lint-clean and actually exercises
    the completeness property), sometimes any (so flagged scripts and
    true runtime failures stay represented too)."""
    if definite and rng.random() < 0.8:
        return rng.choice(sorted(definite))
    return rng.choice(_VARS)


def _gen_stmt(rng, depth, definite):
    """One random statement.

    ``definite`` is the set of variables unconditionally assigned so
    far; it is only grown at depth 0 (straight-line code).  Nested
    blocks may *read* anything -- unassigned reads must surface as
    W012 -- but only *write* variables already in ``definite``, so the
    linter's may-assigned model stays exact for this grammar.
    """
    var = rng.choice(_VARS)
    other = _read_var(rng, definite)
    roll = rng.random()
    if roll < 0.24:
        target = var if depth == 0 else _write_target(rng, definite)
        if depth == 0:
            definite.add(target)
        return "set %s %d" % (target, rng.randint(0, 9))
    if roll < 0.36:
        target = var if depth == 0 else _write_target(rng, definite)
        if depth == 0 and other in definite:
            definite.add(target)
        return "set %s $%s" % (target, other)
    if roll < 0.44:
        target = var if depth == 0 else _write_target(rng, definite)
        return "incr %s" % target
    if roll < 0.52:
        target = var if depth == 0 else _write_target(rng, definite)
        if depth == 0 and other in definite:
            definite.add(target)
        return "set %s [string length $%s]" % (target, other)
    if roll < 0.58:
        # catch swallows the read error and neither sink nor msg is
        # ever read again, so this is safe whatever $other holds.
        return "catch {set sink $%s} msg" % other
    if roll < 0.66 and depth < 2:
        return "if {$%s > 4} {\n%s\n} else {\n%s\n}" % (
            other,
            _gen_block(rng, depth + 1, definite),
            _gen_block(rng, depth + 1, definite))
    if roll < 0.72 and depth < 2:
        # The guard is the sole protection for the ghost read.
        ghost = rng.choice(_GHOSTS)
        return "if {[info exists %s]} {\nset sink $%s\n%s\n}" % (
            ghost, ghost, _gen_block(rng, depth + 1, definite))
    if roll < 0.80 and depth < 2:
        counter = _write_target(rng, definite)
        return "while {$%s < %d} {\nincr %s\n%s\n}" % (
            counter, rng.randint(1, 6), counter,
            _gen_block(rng, depth + 1, definite))
    if roll < 0.86 and depth < 2:
        if depth == 0:
            definite.add(var)
        target = var if depth == 0 else _write_target(rng, definite)
        return "foreach %s {1 2 3} {\n%s\n}" % (
            target, _gen_block(rng, depth + 1, definite))
    if roll < 0.92 and depth == 0:
        definite.discard(var)
        return "unset -nocomplain %s" % var
    return "set %s [expr {$%s * 2 + 1}]" % (
        var if depth == 0 else _write_target(rng, definite), other)


def _gen_block(rng, depth, definite):
    return "\n".join(_gen_stmt(rng, depth, definite)
                     for _ in range(rng.randint(1, 3)))


def _gen_script(rng):
    definite = {"w0"}
    body = "\n".join(_gen_stmt(rng, 0, definite)
                     for _ in range(rng.randint(3, 10)))
    return "set w0 0\n%s\n" % body


def _lint_codes(script, extra=()):
    return [d.code for d in check(script, extra_commands=extra)]


def _run(script, commands=20000, register=None):
    """Execute under the default (vm + optimizer) engine with limits."""
    interp = Interp()
    if register:
        for name, func in register.items():
            interp.register(name, func)
    interp.set_eval_limits(commands=commands)
    try:
        interp.eval(script)
    except TclError as err:
        return str(err.result)
    return None


class TestUseBeforeSetNeverLies:
    """W012-clean scripts must not raise missing-variable reads."""

    @pytest.mark.parametrize("seed", range(150))
    def test_clean_scripts_never_raise_cant_read(self, seed):
        rng = random.Random(31000 + seed)
        script = _gen_script(rng)
        if "W012" in _lint_codes(script):
            pytest.skip("script legitimately flagged; the completeness "
                        "direction only concerns clean scripts")
        error = _run(script)
        if error is not None:
            assert not _CANT_READ.search(error), (
                "lint said every read is definitely assigned, but the "
                "runtime disagrees:\n%s\n-> %s" % (script, error))

    def test_corpus_exercises_both_verdicts(self):
        """The generator must produce clean AND flagged scripts --
        otherwise the parametrized property above tests nothing."""
        verdicts = set()
        for seed in range(150):
            rng = random.Random(31000 + seed)
            verdicts.add("W012" in _lint_codes(_gen_script(rng)))
            if len(verdicts) == 2:
                return
        raise AssertionError("generator corpus is one-sided: %r" % verdicts)

    def test_known_tricky_shapes_stay_consistent(self):
        # Regression pins for shapes that historically tempt false
        # cleanliness: loop-carried defs and catch probes.
        for script in (
            "while {[info exists t] == 0} {set t 1}\nset u $t\n",
            "if {[catch {set x $maybe}]} {set x fallback}\nset y $x\n",
            "foreach v {1 2} {set w $v}\nset z $w\n",
        ):
            codes = _lint_codes(script)
            error = _run(script)
            if "W012" not in codes and error is not None:
                assert not _CANT_READ.search(error), script


# ----------------------------------------------------------------------
# W013: flagged-unreachable statements never execute


def _gen_unreachable_script(rng):
    """A script with ``probe`` planted where the CFG proves no path
    arrives.  Returns (script, probe_line)."""
    prefix = ["set %s %d" % (v, rng.randint(0, 9)) for v in _VARS[:2]]
    shape = rng.randrange(3)
    if shape == 0:
        # Join after both branches of a proc return.
        body = ("if {$n > %d} {\nreturn big\n} else {\nreturn small\n}\n"
                "probe dead" % rng.randint(0, 9))
        lines = prefix + ["proc judge {n} {"] + body.split("\n") + [
            "}", "judge $a", "judge $b"]
    elif shape == 1:
        # Statement after an unconditional error, across a block join.
        lines = prefix + [
            "if {$a > %d} {\nerror boom\n} else {\nerror bust\n}"
            % rng.randint(0, 9),
            "probe dead",
        ]
        lines = "\n".join(lines).split("\n")
    else:
        # Every arm of an if/elseif/else chain returns.
        body = ("if {$n > %d} {\nreturn big\n} elseif {$n > %d} {\n"
                "return mid\n} else {\nreturn small\n}\nprobe dead"
                % (rng.randint(5, 9), rng.randint(0, 4)))
        lines = prefix + ["proc grade {n} {"] + body.split("\n") + [
            "}", "grade $b"]
    script = "\n".join(lines) + "\n"
    probe_line = next(i + 1 for i, text in enumerate(lines)
                      if text.startswith("probe"))
    return script, probe_line


class TestUnreachableNeverExecutes:
    """W013-flagged statements must be invisible at runtime."""

    @pytest.mark.parametrize("seed", range(60))
    def test_flagged_statement_never_runs(self, seed):
        rng = random.Random(47000 + seed)
        script, probe_line = _gen_unreachable_script(rng)
        diags = check(script, extra_commands=("probe",))
        flagged = [d for d in diags
                   if d.code == "W013" and d.line == probe_line]
        assert flagged, (
            "generator planted an unreachable probe at line %d but the "
            "flow pass missed it:\n%s" % (probe_line, script))

        calls = []

        def probe(interp, argv):
            calls.append(tuple(argv))
            return ""

        interp = Interp()
        interp.register("probe", probe)
        interp.set_eval_limits(commands=5000)
        try:
            interp.eval(script)
        except TclError:
            pass
        assert calls == [], (
            "statement flagged W013 executed anyway:\n%s" % script)

        # cmdcount proof: deleting the unreachable line changes nothing
        # the accounting can see -- even an unobserved execution would
        # have paid a work unit.
        with_probe = int(interp.eval("info cmdcount"))
        stripped = "\n".join(
            text for i, text in enumerate(script.split("\n"))
            if i + 1 != probe_line)
        control = Interp()
        control.set_eval_limits(commands=5000)
        try:
            control.eval(stripped)
        except TclError:
            pass
        without_probe = int(control.eval("info cmdcount"))
        # Both interps pay the same unit for their own "info cmdcount"
        # call, so the totals must match exactly.
        assert with_probe == without_probe, (
            "cmdcount shifted when the W013 line was deleted:\n%s"
            % script)
