"""Unit tests for the Tcl script parser and list syntax."""

import pytest

from repro.tcl.errors import TclError
from repro.tcl.lists import list_to_string, quote_element, string_to_list
from repro.tcl.parser import parse_script


def words_of(script, command=0):
    return parse_script(script)[command].words


class TestCommandSplitting:
    def test_single_command(self):
        cmds = parse_script("set a 1")
        assert len(cmds) == 1
        assert len(cmds[0].words) == 3

    def test_newline_separates_commands(self):
        assert len(parse_script("set a 1\nset b 2")) == 2

    def test_semicolon_separates_commands(self):
        assert len(parse_script("set a 1; set b 2")) == 2

    def test_semicolon_inside_braces_does_not_separate(self):
        cmds = parse_script("set a {1; 2}")
        assert len(cmds) == 1

    def test_comment_skipped(self):
        assert parse_script("# a comment\nset a 1")[0].words[0].literal_value() == "set"

    def test_comment_only_at_command_start(self):
        # A '#' mid-command is literal.
        words = words_of("set a x#y")
        assert words[2].literal_value() == "x#y"

    def test_empty_script(self):
        assert parse_script("") == []
        assert parse_script("  \n\t ;; \n") == []

    def test_backslash_newline_continues_command(self):
        cmds = parse_script("set a \\\n 1")
        assert len(cmds) == 1
        assert len(cmds[0].words) == 3


class TestQuoting:
    def test_braces_are_literal(self):
        word = words_of("set a {$x [y]}")[2]
        assert word.braced
        assert word.literal_value() == "$x [y]"

    def test_nested_braces(self):
        word = words_of("set a {x {y {z}} w}")[2]
        assert word.literal_value() == "x {y {z}} w"

    def test_quotes_group_whitespace(self):
        word = words_of('set a "hello world"')[2]
        assert word.parts == [("lit", "hello world")]

    def test_missing_close_brace_raises(self):
        with pytest.raises(TclError):
            parse_script("set a {unclosed")

    def test_missing_close_quote_raises(self):
        with pytest.raises(TclError):
            parse_script('set a "unclosed')

    def test_extra_after_close_brace_raises(self):
        with pytest.raises(TclError):
            parse_script("set a {x}y")

    def test_backslash_escapes(self):
        word = words_of(r"set a x\ty")[2]
        assert word.literal_value() == "x\ty"

    def test_backslash_hex_escape(self):
        assert words_of(r"set a \x41")[2].literal_value() == "A"

    def test_backslash_octal_escape(self):
        assert words_of(r"set a \101")[2].literal_value() == "A"

    def test_brace_backslash_newline(self):
        word = words_of("set a {one \\\n   two}")[2]
        assert word.literal_value() == "one  two"


class TestSubstitutionParts:
    def test_variable_part(self):
        word = words_of("set a $x")[2]
        assert word.parts == [("var", ("x", None))]

    def test_braced_variable_name(self):
        word = words_of("set a ${weird name}")[2]
        assert word.parts == [("var", ("weird name", None))]

    def test_array_variable(self):
        word = words_of("set a $arr(key)")[2]
        kind, (name, index_parts) = word.parts[0]
        assert kind == "var" and name == "arr"
        assert index_parts == [("lit", "key")]

    def test_array_index_substitution(self):
        word = words_of("set a $arr($i)")[2]
        __, (__, index_parts) = word.parts[0]
        assert index_parts == [("var", ("i", None))]

    def test_command_substitution(self):
        word = words_of("set a [list 1 2]")[2]
        assert word.parts == [("cmd", "list 1 2")]

    def test_nested_command_substitution(self):
        word = words_of("set a [outer [inner]]")[2]
        assert word.parts == [("cmd", "outer [inner]")]

    def test_mixed_parts(self):
        word = words_of("set a pre$x[cmd]post")[2]
        kinds = [p[0] for p in word.parts]
        assert kinds == ["lit", "var", "cmd", "lit"]

    def test_lone_dollar_is_literal(self):
        word = words_of("set a $")[2]
        assert word.parts == [("lit", "$")]

    def test_unclosed_bracket_raises(self):
        with pytest.raises(TclError):
            parse_script("set a [list 1")


class TestTclLists:
    def test_simple_split(self):
        assert string_to_list("a b c") == ["a", "b", "c"]

    def test_braced_elements(self):
        assert string_to_list("a {b c} d") == ["a", "b c", "d"]

    def test_quoted_elements(self):
        assert string_to_list('a "b c" d') == ["a", "b c", "d"]

    def test_nested_braces_kept(self):
        assert string_to_list("{a {b c}} d") == ["a {b c}", "d"]

    def test_backslash_in_bare_element(self):
        assert string_to_list(r"a\ b c") == ["a b", "c"]

    def test_empty_string(self):
        assert string_to_list("") == []
        assert string_to_list("   \t\n") == []

    def test_unmatched_brace_raises(self):
        with pytest.raises(TclError):
            string_to_list("{a b")

    def test_quote_plain(self):
        assert quote_element("abc") == "abc"

    def test_quote_empty(self):
        assert quote_element("") == "{}"

    def test_quote_spaces(self):
        assert quote_element("a b") == "{a b}"

    def test_quote_special_chars(self):
        assert quote_element("$x") == "{$x}"

    def test_roundtrip(self):
        values = ["plain", "two words", "", "{brace}", "$dollar", "back\\slash", "semi;colon"]
        assert string_to_list(list_to_string(values)) == values

    def test_roundtrip_unbalanced_brace(self):
        values = ["open{", "close}"]
        assert string_to_list(list_to_string(values)) == values


class TestPositions:
    """Line/column threading: every token knows where it came from and
    parse errors carry exact 1-based positions."""

    def test_line_col_helper(self):
        from repro.tcl.parser import line_col

        script = "one\ntwo three\nfour"
        assert line_col(script, 0) == (1, 1)
        assert line_col(script, 3) == (1, 4)
        assert line_col(script, 4) == (2, 1)
        assert line_col(script, 8) == (2, 5)
        assert line_col(script, len(script)) == (3, 5)

    def test_command_positions(self):
        script = "echo one\necho two\n  echo three\n"
        commands = parse_script(script)
        from repro.tcl.parser import line_col

        positions = [line_col(script, c.pos) for c in commands]
        assert positions == [(1, 1), (2, 1), (3, 3)]

    def test_word_positions(self):
        script = 'echo {braced arg} "quoted arg" bare\n'
        (command,) = parse_script(script)
        assert [w.pos for w in command.words] == [0, 5, 18, 31]

    def test_unclosed_brace_error_position(self):
        with pytest.raises(TclError) as exc:
            parse_script("echo ok\necho {unclosed\n")
        assert exc.value.line == 2
        assert exc.value.col == 6
        assert "line 2 column 6" in exc.value.result

    def test_unclosed_bracket_error_position(self):
        # Anchored at the outermost unclosed bracket.
        with pytest.raises(TclError) as exc:
            parse_script("set x [nested [deeper\n")
        assert (exc.value.line, exc.value.col) == (1, 7)

    def test_unclosed_quote_error_position(self):
        with pytest.raises(TclError) as exc:
            parse_script('echo "unclosed\n')
        assert (exc.value.line, exc.value.col) == (1, 6)

    def test_missing_variable_close_brace_position(self):
        # Anchored at the $ that started the variable reference.
        with pytest.raises(TclError) as exc:
            parse_script("echo ${unclosed\n")
        assert (exc.value.line, exc.value.col) == (1, 6)

    def test_extra_characters_after_close_brace(self):
        with pytest.raises(TclError) as exc:
            parse_script("echo {a}b\n")
        assert (exc.value.line, exc.value.col) == (1, 9)

    def test_plain_errors_have_no_position(self):
        # Errors raised outside parsing keep the old shape.
        err = TclError("boom")
        assert err.line is None and err.col is None
