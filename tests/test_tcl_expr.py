"""Tests for the expr expression evaluator."""

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def tcl():
    return Interp()


def ex(tcl, expression):
    return tcl.eval("expr {%s}" % expression)


class TestArithmetic:
    def test_precedence(self, tcl):
        assert ex(tcl, "1+2*3") == "7"
        assert ex(tcl, "(1+2)*3") == "9"

    def test_integer_division_truncates_toward_zero(self, tcl):
        assert ex(tcl, "7/2") == "3"
        assert ex(tcl, "-7/2") == "-3"

    def test_float_division(self, tcl):
        assert ex(tcl, "7.0/2") == "3.5"

    def test_modulo(self, tcl):
        assert ex(tcl, "7%3") == "1"
        assert ex(tcl, "-7%3") == "-1"

    def test_divide_by_zero(self, tcl):
        with pytest.raises(TclError, match="divide by zero"):
            ex(tcl, "1/0")

    def test_unary_minus(self, tcl):
        assert ex(tcl, "-3+1") == "-2"
        assert ex(tcl, "--3") == "3"

    def test_hex_and_octal_literals(self, tcl):
        assert ex(tcl, "0x10") == "16"
        assert ex(tcl, "010") == "8"

    def test_float_formatting(self, tcl):
        assert ex(tcl, "1.5+1.5") == "3.0"
        assert ex(tcl, "0.1+0.2") == "0.3"


class TestLogicAndComparison:
    def test_comparisons(self, tcl):
        assert ex(tcl, "1 < 2") == "1"
        assert ex(tcl, "2 <= 2") == "1"
        assert ex(tcl, "3 > 4") == "0"
        assert ex(tcl, "1 == 1.0") == "1"
        assert ex(tcl, "1 != 2") == "1"

    def test_string_comparison(self, tcl):
        assert ex(tcl, '"abc" == "abc"') == "1"
        assert ex(tcl, '"abc" < "abd"') == "1"

    def test_logical_ops(self, tcl):
        assert ex(tcl, "1 && 0") == "0"
        assert ex(tcl, "1 || 0") == "1"
        assert ex(tcl, "!1") == "0"
        assert ex(tcl, "!0") == "1"

    def test_lazy_evaluation(self, tcl):
        # The right side would divide by zero if evaluated.
        assert ex(tcl, "0 && [expr 1/0]") == "0"
        assert ex(tcl, "1 || [expr 1/0]") == "1"

    def test_ternary(self, tcl):
        assert ex(tcl, "1 ? 10 : 20") == "10"
        assert ex(tcl, "0 ? 10 : 20") == "20"

    def test_bitwise(self, tcl):
        assert ex(tcl, "5 & 3") == "1"
        assert ex(tcl, "5 | 3") == "7"
        assert ex(tcl, "5 ^ 3") == "6"
        assert ex(tcl, "~0") == "-1"
        assert ex(tcl, "1 << 4") == "16"
        assert ex(tcl, "16 >> 2") == "4"

    def test_bitwise_rejects_float(self, tcl):
        with pytest.raises(TclError):
            ex(tcl, "1.5 & 2")


class TestSubstitutionInExpr:
    def test_variables(self, tcl):
        tcl.eval("set x 4")
        assert ex(tcl, "$x * $x") == "16"

    def test_array_variables(self, tcl):
        tcl.eval("set a(k) 3")
        assert ex(tcl, "$a(k) + 1") == "4"

    def test_command_substitution(self, tcl):
        assert ex(tcl, "[llength {a b c}] + 1") == "4"

    def test_quoted_string_operand(self, tcl):
        tcl.eval("set s hello")
        assert ex(tcl, '"$s" == "hello"') == "1"

    def test_unbraced_expr_args_concatenated(self, tcl):
        assert tcl.eval("expr 1 + 2") == "3"


class TestMathFunctions:
    def test_abs(self, tcl):
        assert ex(tcl, "abs(-5)") == "5"
        assert ex(tcl, "abs(-5.5)") == "5.5"

    def test_int_and_round(self, tcl):
        assert ex(tcl, "int(3.9)") == "3"
        assert ex(tcl, "round(3.5)") == "4"
        assert ex(tcl, "round(-3.5)") == "-4"

    def test_double(self, tcl):
        assert ex(tcl, "double(2)") == "2.0"

    def test_sqrt(self, tcl):
        assert ex(tcl, "sqrt(16)") == "4.0"

    def test_pow(self, tcl):
        assert ex(tcl, "pow(2,10)") == "1024"

    def test_two_arg_functions(self, tcl):
        assert ex(tcl, "fmod(7,3)") == "1.0"
        assert ex(tcl, "hypot(3,4)") == "5.0"

    def test_domain_error(self, tcl):
        with pytest.raises(TclError, match="domain error"):
            ex(tcl, "sqrt(-1)")

    def test_unknown_function(self, tcl):
        with pytest.raises(TclError, match="unknown math function"):
            ex(tcl, "nosuch(1)")


class TestBooleanWords:
    def test_true_false_words(self, tcl):
        assert tcl.eval("if true {set r 1} else {set r 0}") == "1"
        assert tcl.eval("if false {set r 1} else {set r 0}") == "0"

    def test_yes_no_on_off(self, tcl):
        assert tcl.eval("if yes {set r 1}") == "1"
        assert tcl.eval("if on {set r 1}") == "1"
        assert tcl.eval("if no {set r 1} else {set r 0}") == "0"

    def test_bad_boolean(self, tcl):
        with pytest.raises(TclError, match="expected boolean"):
            tcl.eval("if notabool {set r 1}")


class TestSyntaxErrors:
    def test_trailing_garbage(self, tcl):
        with pytest.raises(TclError, match="syntax error"):
            ex(tcl, "1 2")

    def test_missing_operand(self, tcl):
        with pytest.raises(TclError):
            ex(tcl, "1 +")

    def test_unbalanced_paren(self, tcl):
        with pytest.raises(TclError):
            ex(tcl, "(1 + 2")
