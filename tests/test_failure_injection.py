"""Failure injection: the frontend must survive misbehaving backends."""

import os
import signal
import sys
import textwrap
import time

import pytest

from repro.xlib import close_all_displays
from repro.core import make_wafe
from repro.core.frontend import Frontend
from repro.core.supervisor import BackendSupervisor


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


def backend(tmp_path, body, name="bad.py"):
    script = tmp_path / name
    script.write_text(textwrap.dedent(body))
    return [sys.executable, "-u", str(script)]


class TestBackendFailures:
    def test_bad_commands_reported_not_fatal(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        command = backend(tmp_path, '''
            print("%this is not a command")
            print("%label ok topLevel")
            print("%set done 1")
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("done"),
                       max_idle=400)
        front.close()
        assert errors  # the bad line was reported...
        assert wafe.run_script("widgetExists ok") == "1"  # ...and survived

    def test_backend_crash_mid_stream(self, wafe, tmp_path):
        command = backend(tmp_path, '''
            import sys
            print("%label l topLevel")
            sys.stdout.flush()
            raise SystemExit(3)
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=400)
        assert front.eof_seen
        assert wafe.run_script("widgetExists l") == "1"
        front.close()

    def test_oversized_line_rejected_cleanly(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        command = backend(tmp_path, '''
            import sys
            sys.stdout.write("%set big {" + "x" * 200000 + "}\\n")
            sys.stdout.write("%set after 1\\n")
            sys.stdout.flush()
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=600)
        front.close()
        assert any("exceeds" in e for e in errors)

    def test_partial_line_at_eof_is_dropped(self, wafe, tmp_path):
        command = backend(tmp_path, '''
            import sys
            print("%set complete 1")
            sys.stdout.write("%set truncated")  # no newline, then exit
            sys.stdout.flush()
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=400)
        front.close()
        assert wafe.run_script("set complete") == "1"
        assert wafe.run_script("info exists truncated") == "0"

    def test_echo_after_backend_death_is_safe(self, wafe, tmp_path):
        command = backend(tmp_path, 'print("%set up 1")')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=400)
        front.wait(timeout=5)
        # Callback firing after the pipe is gone must not raise.
        wafe.echo("into the void")
        front.close()

    def test_oversized_line_does_not_drop_valid_neighbours(self, wafe,
                                                           tmp_path):
        # Regression: a LineTooLong used to abandon every valid line
        # that arrived in the same read.  Now the error is reported,
        # the parser resynchronizes at the next newline, and the lines
        # before *and* after the monster are still executed.
        errors = []
        wafe.error_sink = errors.append
        command = backend(tmp_path, '''
            import sys
            sys.stdout.write("%set before 1\\n")
            sys.stdout.write("%set big {" + "x" * 200000 + "}\\n")
            sys.stdout.write("%set after 1\\n")
            sys.stdout.flush()
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("after"),
                       max_idle=800)
        front.close()
        assert wafe.run_script("set before") == "1"
        assert wafe.run_script("set after") == "1"
        assert wafe.run_script("info exists big") == "0"
        assert any("exceeds" in e for e in errors)

    def test_crashed_backend_is_reaped_without_close(self, wafe, tmp_path):
        # Regression: _handle_eof never wait()ed, so the child stayed a
        # zombie until close().  Now EOF reaps and classifies it.
        command = backend(tmp_path, 'print("%set done 1")\nraise SystemExit(5)')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=800)
        assert front.eof_seen
        assert front.process.returncode == 5  # reaped: no zombie
        assert front.exit_status.kind == "exit"
        assert front.exit_status.code == 5
        # The pid is fully collected -- waiting again must fail.
        with pytest.raises(ChildProcessError):
            os.waitpid(front.process.pid, os.WNOHANG)
        front.close()

    def test_binary_garbage_passthrough(self, wafe, tmp_path):
        lines = []
        command = backend(tmp_path, '''
            import sys
            sys.stdout.buffer.write(b"\\xff\\xfe garbage\\n")
            sys.stdout.buffer.write(b"%set ok 1\\n")
            sys.stdout.buffer.flush()
        ''')
        front = Frontend(wafe, command, passthrough=lines.append)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("ok"),
                       max_idle=400)
        front.close()
        assert wafe.run_script("set ok") == "1"
        assert len(lines) == 1


class TestBackpressure:
    """A backend that never drains its stdin must not freeze the GUI."""

    def test_pipe_full_never_blocks_event_loop(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("channelHighWater 300000")
        command = backend(tmp_path, '''
            import sys, time
            print("%set ready 1")
            sys.stdout.flush()
            time.sleep(30)     # never reads stdin
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("ready"),
                       max_idle=800)
        chunk = "x" * 65536
        started = time.monotonic()
        for __ in range(8):    # 512 KiB at a 300000-byte high water
            front.send(chunk)
        elapsed = time.monotonic() - started
        # A blocking write() would park here until the 64 KiB pipe
        # drained -- i.e. forever.  The non-blocking path returns fast.
        assert elapsed < 2.0
        assert any("overflow" in e for e in errors)
        assert front.queued_bytes() <= 300000
        assert front.dropped_bytes > 0
        # The event loop keeps dispatching: timers fire while the
        # output sits queued behind the full pipe.
        fired = []
        wafe.app.add_timeout(5, lambda: fired.append(1))
        wafe.main_loop(until=lambda: bool(fired), max_idle=800)
        assert fired
        front.close()

    def test_queued_output_drains_when_backend_reads(self, wafe, tmp_path):
        # Fill past the pipe capacity, then let the backend read: the
        # output watch drains the pending queue with no explicit flush.
        command = backend(tmp_path, '''
            import sys, time
            print("%set ready 1")
            sys.stdout.flush()
            time.sleep(0.4)    # let the frontend overfill the pipe
            total = 0
            while total < 131072:
                total += len(sys.stdin.readline())
            print("%set got " + str(total))
            sys.stdout.flush()
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("ready"),
                       max_idle=800)
        line = "y" * 8191 + "\n"
        for __ in range(16):   # 128 KiB: twice the pipe capacity
            front.send(line)
        assert front.queued_bytes() > 0  # the pipe filled up
        wafe.main_loop(until=lambda: wafe.interp.var_exists("got"),
                       max_idle=2000)
        assert int(wafe.run_script("set got")) >= 131072
        assert front.queued_bytes() == 0
        front.close()

    def test_overflow_error_reported_once_per_episode(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("channelHighWater 1000")
        command = backend(tmp_path, '''
            import sys, time
            print("%set ready 1")
            sys.stdout.flush()
            time.sleep(30)
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("ready"),
                       max_idle=800)
        for __ in range(50):
            front.send("z" * 100)
        overflow_errors = [e for e in errors if "overflow" in e]
        assert len(overflow_errors) == 1
        front.close()


class TestSignalRestart:
    """The ISSUE acceptance scenario: SIGKILL mid-stream, supervised."""

    def test_sigkill_mid_stream_backoff_and_hook(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("restartPolicy on-failure 2 30 500")
        wafe.run_script("onBackendExit {set obit {%s after %r restarts}}")
        marker = tmp_path / "spawned"
        command = backend(tmp_path, '''
            import os, sys, time
            path = %r
            n = 1
            if os.path.exists(path):
                n = int(open(path).read()) + 1
            open(path, "w").write(str(n))
            sys.stdout.write("%%set spawn " + str(n) + "\\n"
                             "%%label l" + str(n) + " topLevel\\n")
            sys.stdout.flush()
            time.sleep(30)
        ''' % str(marker))
        supervisor = BackendSupervisor(wafe, command)
        supervisor.start()

        def spawn(n):
            # Key on the *last* line of the burst so the kill cannot
            # race the backend's own writes.
            return lambda: ("l%d" % n) in wafe.widgets

        wafe.main_loop(until=spawn(1), max_idle=800)
        os.kill(supervisor.frontend.process.pid, signal.SIGKILL)
        wafe.main_loop(until=spawn(2), max_idle=2000)
        # The GUI survived: widgets from both incarnations exist and
        # the session is healthy again.
        assert wafe.run_script("widgetExists l1") == "1"
        assert wafe.run_script("widgetExists l2") == "1"
        assert wafe.run_script("set obit") == \
            "signal 9 (SIGKILL) after 0 restarts"
        assert supervisor.backoff_schedule == [30]
        assert any("restart 1/2" in e for e in errors)
        supervisor.stop()


class TestMassTransferWatchdog:
    def test_stalled_transfer_aborts_with_timeout_status(self, wafe,
                                                         tmp_path):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("massTransferTimeout 120")
        command = backend(tmp_path, '''
            import os, sys, time
            print("%echo chan [getChannel]")
            sys.stdout.flush()
            fd = int(sys.stdin.readline().split()[-1])
            print("%setCommunicationVariable C 1000 {set done $transferStatus}")
            sys.stdout.flush()
            os.write(fd, b"A" * 10)    # 10 of 1000 bytes, then stall
            time.sleep(30)
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("done"),
                       max_idle=2000)
        front.close()
        # The completion script still ran -- with the error status and
        # the partial payload -- instead of waiting forever.
        assert wafe.run_script("set done") == "timeout"
        assert wafe.run_script("set C") == "A" * 10
        assert any("stalled" in e for e in errors)

    def test_slow_but_live_transfer_is_not_killed(self, wafe, tmp_path):
        # Progress resets the watchdog: a trickle that never pauses
        # longer than the timeout completes normally.
        wafe.run_script("massTransferTimeout 400")
        command = backend(tmp_path, '''
            import os, sys, time
            print("%echo chan [getChannel]")
            sys.stdout.flush()
            fd = int(sys.stdin.readline().split()[-1])
            print("%setCommunicationVariable C 50 {set done $transferStatus}")
            sys.stdout.flush()
            for i in range(5):
                os.write(fd, b"B" * 10)
                time.sleep(0.1)
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("done"),
                       max_idle=2000)
        front.close()
        assert wafe.run_script("set done") == "ok"
        assert wafe.run_script("set C") == "B" * 50

    def test_leftover_bytes_feed_the_next_request(self, wafe, tmp_path):
        # Regression: bytes beyond the limit were stuffed into a fresh
        # state with an empty completion script and silently dropped.
        # Now they are preserved for the next request.
        command = backend(tmp_path, '''
            import os, sys
            print("%echo chan [getChannel]")
            sys.stdout.flush()
            fd = int(sys.stdin.readline().split()[-1])
            print("%setCommunicationVariable C 100 "
                  "{set first $C; setCommunicationVariable D 50 "
                  "{set second $D; set done 1}}")
            sys.stdout.flush()
            os.write(fd, b"X" * 100 + b"Y" * 50)   # one burst, two requests
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("done"),
                       max_idle=2000)
        front.close()
        assert wafe.run_script("set first") == "X" * 100
        assert wafe.run_script("set second") == "Y" * 50


class TestScriptErrorPaths:
    def test_error_in_callback_does_not_stop_dispatch(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("form f topLevel")
        wafe.run_script("command bad f callback {error boom}")
        wafe.run_script("command good f fromVert bad callback {set ok 1}")
        wafe.run_script("realize")
        for name in ("bad", "good"):
            widget = wafe.lookup_widget(name)
            x, y = widget.window.absolute_origin()
            wafe.app.default_display.click(x + 2, y + 2)
            wafe.app.process_pending()
        # The report now carries the full errorInfo traceback; the
        # message proper is its first line.
        assert len(errors) == 1
        assert errors[0].split("\n")[0] == "boom"
        assert "while executing" in errors[0]
        assert wafe.run_script("set ok") == "1"

    def test_error_in_exec_action_reported(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("label l topLevel")
        wafe.run_script(  # wafelint: skip -- failure is the point
            "action l override {<Btn1Down>: exec(nosuchcmd)}")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("l")
        x, y = widget.window.absolute_origin()
        wafe.app.default_display.press_button(x + 1, y + 1)
        wafe.app.process_pending()
        assert any("nosuchcmd" in e for e in errors)

    def test_destroy_inside_own_callback(self, wafe):
        # A button whose callback destroys itself: classic re-entrancy.
        wafe.run_script("command b topLevel callback {destroyWidget b}")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("b")
        x, y = widget.window.absolute_origin()
        wafe.app.default_display.click(x + 2, y + 2)
        wafe.app.process_pending()
        assert wafe.run_script("widgetExists b") == "0"
