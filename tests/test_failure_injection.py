"""Failure injection: the frontend must survive misbehaving backends."""

import sys
import textwrap

import pytest

from repro.xlib import close_all_displays
from repro.core import make_wafe
from repro.core.frontend import Frontend


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


def backend(tmp_path, body, name="bad.py"):
    script = tmp_path / name
    script.write_text(textwrap.dedent(body))
    return [sys.executable, "-u", str(script)]


class TestBackendFailures:
    def test_bad_commands_reported_not_fatal(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        command = backend(tmp_path, '''
            print("%this is not a command")
            print("%label ok topLevel")
            print("%set done 1")
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("done"),
                       max_idle=400)
        front.close()
        assert errors  # the bad line was reported...
        assert wafe.run_script("widgetExists ok") == "1"  # ...and survived

    def test_backend_crash_mid_stream(self, wafe, tmp_path):
        command = backend(tmp_path, '''
            import sys
            print("%label l topLevel")
            sys.stdout.flush()
            raise SystemExit(3)
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=400)
        assert front.eof_seen
        assert wafe.run_script("widgetExists l") == "1"
        front.close()

    def test_oversized_line_rejected_cleanly(self, wafe, tmp_path):
        errors = []
        wafe.error_sink = errors.append
        command = backend(tmp_path, '''
            import sys
            sys.stdout.write("%set big {" + "x" * 200000 + "}\\n")
            sys.stdout.write("%set after 1\\n")
            sys.stdout.flush()
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=600)
        front.close()
        assert any("exceeds" in e for e in errors)

    def test_partial_line_at_eof_is_dropped(self, wafe, tmp_path):
        command = backend(tmp_path, '''
            import sys
            print("%set complete 1")
            sys.stdout.write("%set truncated")  # no newline, then exit
            sys.stdout.flush()
        ''')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=400)
        front.close()
        assert wafe.run_script("set complete") == "1"
        assert wafe.run_script("info exists truncated") == "0"

    def test_echo_after_backend_death_is_safe(self, wafe, tmp_path):
        command = backend(tmp_path, 'print("%set up 1")')
        front = Frontend(wafe, command)
        wafe.main_loop(max_idle=400)
        front.wait(timeout=5)
        # Callback firing after the pipe is gone must not raise.
        wafe.echo("into the void")
        front.close()

    def test_binary_garbage_passthrough(self, wafe, tmp_path):
        lines = []
        command = backend(tmp_path, '''
            import sys
            sys.stdout.buffer.write(b"\\xff\\xfe garbage\\n")
            sys.stdout.buffer.write(b"%set ok 1\\n")
            sys.stdout.buffer.flush()
        ''')
        front = Frontend(wafe, command, passthrough=lines.append)
        wafe.main_loop(until=lambda: wafe.interp.var_exists("ok"),
                       max_idle=400)
        front.close()
        assert wafe.run_script("set ok") == "1"
        assert len(lines) == 1


class TestScriptErrorPaths:
    def test_error_in_callback_does_not_stop_dispatch(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("form f topLevel")
        wafe.run_script("command bad f callback {error boom}")
        wafe.run_script("command good f fromVert bad callback {set ok 1}")
        wafe.run_script("realize")
        for name in ("bad", "good"):
            widget = wafe.lookup_widget(name)
            x, y = widget.window.absolute_origin()
            wafe.app.default_display.click(x + 2, y + 2)
            wafe.app.process_pending()
        assert errors == ["boom"]
        assert wafe.run_script("set ok") == "1"

    def test_error_in_exec_action_reported(self, wafe):
        errors = []
        wafe.error_sink = errors.append
        wafe.run_script("label l topLevel")
        wafe.run_script("action l override {<Btn1Down>: exec(nosuchcmd)}")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("l")
        x, y = widget.window.absolute_origin()
        wafe.app.default_display.press_button(x + 1, y + 1)
        wafe.app.process_pending()
        assert any("nosuchcmd" in e for e in errors)

    def test_destroy_inside_own_callback(self, wafe):
        # A button whose callback destroys itself: classic re-entrancy.
        wafe.run_script("command b topLevel callback {destroyWidget b}")
        wafe.run_script("realize")
        widget = wafe.lookup_widget("b")
        x, y = widget.window.absolute_origin()
        wafe.app.default_display.click(x + 2, y + 2)
        wafe.app.process_pending()
        assert wafe.run_script("widgetExists b") == "0"
