"""Tests for the Xt widget core: resources, lifecycle, dispatch."""

import pytest

from repro.xlib import close_all_displays, xtypes
from repro.xlib.colors import alloc_color
from repro.xt import ApplicationShell, XtAppContext
from repro.xt.widget import WidgetError
from repro.xaw import Command, Form, Label, Toggle


@pytest.fixture
def app():
    close_all_displays()
    return XtAppContext()


@pytest.fixture
def top(app):
    return ApplicationShell("topLevel", None, app=app)


class TestResourceLists:
    def test_label_has_exactly_42_resources(self):
        # The paper's interactive example: getResourceList on Label
        # prints 42 with the X11R5 Xaw3d libraries.
        assert len(Label.class_resources()) == 42

    def test_label_resource_list_starts_like_the_paper(self):
        names = [r.name for r in Label.class_resources()]
        # "Resources: destroyCallback ancestorSensitive x y width height
        #  borderWidth sensitive screen depth colormap background (...)"
        assert names[:12] == [
            "destroyCallback", "ancestorSensitive", "x", "y", "width",
            "height", "borderWidth", "sensitive", "screen", "depth",
            "colormap", "background",
        ]

    def test_command_inherits_label_resources(self):
        names = {r.name for r in Command.class_resources()}
        assert {"label", "font", "callback", "highlightThickness"} <= names

    def test_subclass_count_is_super_plus_own(self):
        label_count = len(Label.class_resources())
        command_count = len(Command.class_resources())
        assert command_count == label_count + 4


class TestCreation:
    def test_create_with_args(self, top):
        label = Label("l", top, args={"label": "Hi", "background": "red",
                                      "foreground": "blue"})
        assert label["label"] == "Hi"
        assert label["background"] == alloc_color("red")
        assert label["foreground"] == alloc_color("blue")

    def test_defaults_applied(self, top):
        label = Label("l", top)
        assert label["borderWidth"] == 1
        assert label["sensitive"] is True
        assert label["justify"] == "center"
        assert label["label"] == "l"  # Label defaults to its name

    def test_unknown_resource_raises(self, top):
        with pytest.raises(WidgetError, match='unknown resource "bogus"'):
            Label("l", top, args={"bogus": "1"})

    def test_resource_database_supplies_values(self, app, top):
        app.merge_resources("*Label.foreground: tomato")
        label = Label("l", top)
        assert label["foreground"] == alloc_color("tomato")

    def test_args_beat_database(self, app, top):
        # The paper: creation arguments override resource-file settings.
        app.merge_resources("*foreground: red")
        label = Label("l", top, args={"foreground": "blue"})
        assert label["foreground"] == alloc_color("blue")

    def test_constraint_resources_from_args(self, top):
        form = Form("f", top)
        one = Label("one", form)
        two = Label("two", form, args={"fromVert": "one"})
        assert two.constraints["fromVert"] == "one"
        assert one in form.children and two in form.children


class TestSetGetValues:
    def test_set_values_converts(self, top):
        label = Label("l", top)
        label.set_values({"background": "tomato", "label": "Hi Man"})
        assert label["background"] == alloc_color("tomato")
        assert label["label"] == "Hi Man"

    def test_get_value_string(self, top):
        label = Label("l", top, args={"label": "x", "width": "120"})
        assert label.get_value_string("label") == "x"
        assert label.get_value_string("width") == "120"
        assert label.get_value_string("sensitive") == "True"

    def test_get_pixel_as_hex(self, top):
        label = Label("l", top, args={"background": "red"})
        assert label.get_value_string("background") == "#FF0000"

    def test_bad_resource_name_raises(self, top):
        label = Label("l", top)
        with pytest.raises(WidgetError, match='no resource "bogus"'):
            label.get_value_string("bogus")


class TestRealizeAndDraw:
    def test_realize_creates_window_tree(self, top):
        form = Form("f", top)
        label = Label("l", form, args={"label": "hello"})
        top.realize()
        assert top.window is not None
        assert form.window is not None
        assert label.window is not None
        assert label.window.viewable()

    def test_shell_sizes_to_child(self, top):
        Label("l", top, args={"label": "a rather long label text"})
        top.realize()
        assert top.window.width > 20

    def test_label_paints_text(self, top):
        from repro.xlib.graphics import window_pixels

        label = Label("l", top, args={"label": "wafe",
                                      "foreground": "black"})
        top.realize()
        label.redraw()
        pixels = window_pixels(label.window)
        assert (pixels == alloc_color("black")).any()

    def test_set_values_triggers_repaint(self, top):
        from repro.xlib.graphics import window_pixels

        label = Label("l", top, args={"label": "aaa"})
        top.realize()
        label.redraw()
        before = window_pixels(label.window).copy()
        label.set_values({"background": "red"})
        after = window_pixels(label.window)
        assert (before != after).any()
        assert (after == alloc_color("red")).any()


class TestEventDispatch:
    def test_command_callback_fires_on_click(self, app, top):
        fired = []
        button = Command("b", top, args={"label": "press"})
        button.add_callback("callback", lambda w, d: fired.append(w.name))
        top.realize()
        x, y = button.window.absolute_origin()
        app.default_display.click(x + 2, y + 2)
        app.process_pending()
        assert fired == ["b"]

    def test_insensitive_widget_ignores_clicks(self, app, top):
        fired = []
        button = Command("b", top)
        button.add_callback("callback", lambda w, d: fired.append(1))
        button.set_values({"sensitive": "false"})
        top.realize()
        x, y = button.window.absolute_origin()
        app.default_display.click(x + 2, y + 2)
        app.process_pending()
        assert fired == []

    def test_toggle_flips_state(self, app, top):
        toggle = Toggle("t", top)
        top.realize()
        x, y = toggle.window.absolute_origin()
        app.default_display.click(x + 2, y + 2)
        app.process_pending()
        assert toggle["state"] is True
        app.default_display.click(x + 2, y + 2)
        app.process_pending()
        assert toggle["state"] is False

    def test_toggle_radio_group_exclusive(self, app, top):
        form = Form("f", top)
        one = Toggle("one", form, args={"radioGroup": "g"})
        two = Toggle("two", form, args={"radioGroup": "g",
                                        "fromHoriz": "one"})
        top.realize()
        one.set_state(True)
        two.set_state(True)
        assert one["state"] is False
        assert two["state"] is True

    def test_expose_dispatch_repaints(self, app, top):
        from repro.xlib.events import XEvent
        from repro.xlib.graphics import window_pixels

        label = Label("l", top, args={"label": "zz",
                                      "foreground": "black"})
        top.realize()
        # Trash the framebuffer, then deliver an Expose.
        label.window.display.screen.framebuffer[:] = 0xFFFFFF
        app.dispatch_event(XEvent(xtypes.Expose, label.window))
        assert (window_pixels(label.window) == alloc_color("black")).any()


class TestDestroy:
    def test_destroy_runs_destroy_callback(self, app, top):
        seen = []
        label = Label("l", top)
        label.add_callback("destroyCallback", lambda w, d: seen.append(w.name))
        label.destroy()
        assert seen == ["l"]

    def test_destroy_frees_resources(self, app, top):
        label = Label("l", top)
        top.realize()
        window = label.window
        label.destroy()
        assert label.destroyed
        assert label.resources == {}
        assert window.destroyed
        assert app.widget_for_window(window) is None

    def test_destroy_cascades_to_children(self, app, top):
        form = Form("f", top)
        label = Label("l", form)
        form.destroy()
        assert label.destroyed


class TestFormLayout:
    def test_fromvert_stacks_vertically(self, top):
        form = Form("f", top)
        one = Label("one", form)
        two = Label("two", form, args={"fromVert": "one"})
        top.realize()
        assert two.resources["y"] > one.resources["y"]
        assert two.resources["y"] >= one.resources["y"] + \
            one.resources["height"]

    def test_fromhoriz_stacks_horizontally(self, top):
        form = Form("f", top)
        one = Label("one", form)
        two = Label("two", form, args={"fromHoriz": "one"})
        top.realize()
        assert two.resources["x"] >= one.resources["x"] + \
            one.resources["width"]

    def test_paper_prime_factor_layout(self, top):
        # The demo: input; result fromVert input; quit fromVert result;
        # info fromVert result fromHoriz quit.
        from repro.xaw import AsciiText

        form = Form("topf", top)
        text = AsciiText("input", form, args={"editType": "edit",
                                              "width": "200"})
        result = Label("result", form, args={"fromVert": "input",
                                             "width": "200", "label": ""})
        quit_btn = Command("quit", form, args={"fromVert": "result"})
        info = Label("info", form, args={"fromVert": "result",
                                         "fromHoriz": "quit",
                                         "borderWidth": "0",
                                         "width": "150", "label": ""})
        top.realize()
        assert result.resources["y"] > text.resources["y"]
        assert quit_btn.resources["y"] > result.resources["y"]
        assert info.resources["x"] > quit_btn.resources["x"]
        assert info.resources["y"] == quit_btn.resources["y"]
