"""Integration tests: every shipped example runs green as a subprocess."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src"))


def _env():
    """Subprocesses run from tmp_path, so a relative PYTHONPATH from
    the invoking shell would not resolve; pin the absolute src dir."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env

EXAMPLES = [
    "quickstart.py",
    "primefactors.py",
    "xwafeping.py",
    "xdirtree.py",
    "xev_label.py",
    "compound_strings.py",
    "xwafedesign.py",
    "polyglot_sh.py",
    "xnetstats.py",
    "xwafecf.py",
    "xbm_viewer.py",
    "xwafemail.py",
]


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, tmp_path):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, example))
    result = subprocess.run(
        [sys.executable, path],
        cwd=tmp_path,  # screenshots land in the temp dir
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        timeout=120,
    )
    output = result.stdout.decode("utf-8", "replace")
    assert result.returncode == 0, "%s failed:\n%s" % (example, output)
    assert output.strip(), "%s produced no output" % example


def test_xev_example_output_matches_paper(tmp_path):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "xev_label.py"))
    result = subprocess.run([sys.executable, path], cwd=tmp_path,
                            env=_env(),
                            stdout=subprocess.PIPE, timeout=60)
    output = result.stdout.decode()
    for line in ("198 w w", "174 Shift_L", "197 ! exclam"):
        assert line in output


def test_quickstart_writes_screenshot(tmp_path):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    subprocess.run([sys.executable, path], cwd=tmp_path, timeout=60,
                   env=_env(),
                   stdout=subprocess.DEVNULL, check=True)
    screenshot = tmp_path / "quickstart.xpm"
    assert screenshot.exists()
    from repro.xlib.xpm import parse_xpm

    image = parse_xpm(screenshot.read_text())
    assert image.shape[0] > 10 and image.shape[1] > 10
