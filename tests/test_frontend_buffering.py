"""Regression tests for the buffered frontend->application channel.

Multiple ``echo`` lines fired from one event must coalesce into a
single ``write()`` + ``flush()`` on the backend pipe, the queued lines
must arrive in exactly the order they were sent, and the deferred
flush must still happen without explicit intervention (at event-loop
idle) so a waiting backend never starves.
"""

import sys
import textwrap

import pytest

from repro.xlib import close_all_displays
from repro.core import make_wafe
from repro.core.frontend import Frontend


@pytest.fixture
def wafe():
    close_all_displays()
    return make_wafe()


def write_backend(tmp_path, body):
    script = tmp_path / "backend.py"
    script.write_text(textwrap.dedent(body))
    return [sys.executable, "-u", str(script)]


class _CountingPipe:
    """Wraps the child's stdin pipe, counting write()/flush() calls."""

    def __init__(self, raw):
        self._raw = raw
        self.writes = 0
        self.flushes = 0
        self.payloads = []

    def write(self, data):
        self.writes += 1
        self.payloads.append(data)
        return self._raw.write(data)

    def flush(self):
        self.flushes += 1
        return self._raw.flush()

    def close(self):
        return self._raw.close()


ECHOING_BACKEND = '''
    import sys
    print("%realize")
    sys.stdout.flush()
    for line in sys.stdin:
        print("recv " + line.strip())
        sys.stdout.flush()
'''


class TestSendCoalescing:
    def test_one_event_many_echoes_one_write(self, wafe, tmp_path):
        command = write_backend(tmp_path, ECHOING_BACKEND)
        frontend = Frontend(wafe, command)
        pipe = _CountingPipe(frontend.process.stdin)
        frontend.process.stdin = pipe
        # One "event": a callback script that echoes five lines.
        wafe.run_script(
            "echo one; echo two; echo three; echo four; echo five")
        assert pipe.writes == 0  # still buffered
        frontend.flush()
        assert pipe.writes == 1
        assert pipe.flushes == 1
        assert pipe.payloads[0] == b"one\ntwo\nthree\nfour\nfive\n"
        frontend.close()

    def test_ordering_preserved_end_to_end(self, wafe, tmp_path):
        command = write_backend(tmp_path, ECHOING_BACKEND)
        passthrough = []
        frontend = Frontend(wafe, command, passthrough=passthrough.append)
        messages = ["alpha", "beta", "gamma", "delta", "epsilon"]
        wafe.run_script("; ".join("echo %s" % m for m in messages))
        frontend.flush()
        wafe.main_loop(until=lambda: len(passthrough) >= len(messages),
                       max_idle=800)
        frontend.close()
        received = [line for line in passthrough if line.startswith("recv ")]
        assert received == ["recv %s" % m for m in messages]

    def test_idle_flush_without_explicit_sync(self, wafe, tmp_path):
        command = write_backend(tmp_path, ECHOING_BACKEND)
        passthrough = []
        frontend = Frontend(wafe, command, passthrough=passthrough.append)
        wafe.run_script("echo ping")
        # No flush() call: the idle work proc must deliver it.
        wafe.main_loop(until=lambda: "recv ping" in passthrough,
                       max_idle=800)
        frontend.close()
        assert "recv ping" in passthrough

    def test_sync_command_flushes(self, wafe, tmp_path):
        command = write_backend(tmp_path, ECHOING_BACKEND)
        frontend = Frontend(wafe, command)
        pipe = _CountingPipe(frontend.process.stdin)
        frontend.process.stdin = pipe
        wafe.run_script("echo queued")
        assert pipe.writes == 0
        wafe.run_script("sync")
        assert pipe.writes == 1
        frontend.close()

    def test_large_buffer_writes_through(self, wafe, tmp_path):
        command = write_backend(tmp_path, ECHOING_BACKEND)
        frontend = Frontend(wafe, command)
        pipe = _CountingPipe(frontend.process.stdin)
        frontend.process.stdin = pipe
        big = "x" * (Frontend.FLUSH_THRESHOLD + 1)
        frontend.send(big)
        assert pipe.writes == 1  # threshold bypasses the idle deferral
        frontend.close()

    def test_close_flushes_pending_output(self, wafe, tmp_path):
        command = write_backend(tmp_path, '''
            import sys
            data = sys.stdin.read()
            sys.stdout.write("got:" + data)
            sys.stdout.flush()
        ''')
        passthrough = []
        frontend = Frontend(wafe, command, passthrough=passthrough.append)
        frontend.send("final words\n")
        frontend.close()  # must flush before closing the pipe
        # The child saw the line before EOF; nothing to assert beyond
        # close() not raising and the buffer being drained.
        assert frontend._out_buffer == []
