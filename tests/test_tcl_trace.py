"""Tests for variable traces (``trace variable``)."""

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def tcl():
    return Interp()


class TestWriteTraces:
    def test_write_trace_fires(self, tcl):
        tcl.eval("set log {}")
        tcl.eval("proc watch {n i op} {global log; lappend log $n:$op}")
        tcl.eval("trace variable x w watch")
        tcl.eval("set x 1")
        tcl.eval("set x 2")
        assert tcl.eval("set log") == "x:w x:w"

    def test_trace_sees_current_value(self, tcl):
        tcl.eval("proc mirror {n i op} {global seen x; set seen $x}")
        tcl.eval("trace variable x w mirror")
        tcl.eval("set x 42")
        assert tcl.eval("set seen") == "42"

    def test_array_element_write(self, tcl):
        # The trace receives the array name and the element index.
        tcl.eval("set log {}")
        tcl.eval("proc watch {n i op} {global log; lappend log $n.$i}")
        tcl.eval("trace variable a w watch")
        tcl.eval("set a(key) v")
        assert tcl.eval("set log") == "a.key"


class TestReadTraces:
    def test_read_trace_fires(self, tcl):
        tcl.eval("set count 0")
        tcl.eval("set x hello")
        tcl.eval("trace variable x r {incr count ;#}")
        tcl.eval("set y $x")
        tcl.eval("set y $x")
        assert tcl.eval("set count") == "2"

    def test_read_trace_can_compute_value(self, tcl):
        # The classic use: a variable whose value is computed on read.
        tcl.eval("proc clockit {n i op} {global x; set x computed}")
        tcl.eval("set x stale")
        tcl.eval("trace variable x r clockit")
        assert tcl.eval("set x") == "computed"


class TestUnsetTraces:
    def test_unset_trace_fires(self, tcl):
        tcl.eval("set x 1")
        tcl.eval("set gone {}")
        tcl.eval("proc bye {n i op} {global gone; set gone $n-$op}")
        tcl.eval("trace variable x u bye")
        tcl.eval("unset x")
        assert tcl.eval("set gone") == "x-u"


class TestTraceManagement:
    def test_vinfo_lists_traces(self, tcl):
        tcl.eval("trace variable x w cmd1")
        tcl.eval("trace variable x rw cmd2")
        info = tcl.eval("trace vinfo x")
        assert "w cmd1" in info and "rw cmd2" in info

    def test_vdelete_removes(self, tcl):
        tcl.eval("set n 0")
        tcl.eval("trace variable x w {incr n ;#}")
        tcl.eval("set x 1")
        tcl.eval("trace vdelete x w {incr n ;#}")
        tcl.eval("set x 2")
        assert tcl.eval("set n") == "1"

    def test_bad_ops_rejected(self, tcl):
        with pytest.raises(TclError, match="bad operations"):
            tcl.eval("trace variable x q cmd")

    def test_trace_does_not_create_variable(self, tcl):
        tcl.eval("trace variable ghost w cmd")
        assert tcl.eval("info exists ghost") == "0"
        with pytest.raises(TclError, match="no such variable"):
            tcl.eval("set y $ghost")

    def test_trace_is_not_reentrant(self, tcl):
        # A write inside a write trace must not recurse forever.
        tcl.eval("proc bump {n i op} {global x; set x inner}")
        tcl.eval("trace variable x w bump")
        tcl.eval("set x outer")
        assert tcl.eval("set x") == "inner"


class TestTracesInWafe:
    def test_trace_drives_widget_update(self):
        # Reactive GUI: a label mirrors a Tcl variable via a trace.
        from repro.xlib import close_all_displays
        from repro.core import make_wafe

        close_all_displays()
        wafe = make_wafe()
        wafe.run_script("label out topLevel label {}")
        wafe.run_script("realize")
        wafe.run_script(
            'proc sync {n i op} {global model; sV out label $model}')
        wafe.run_script("trace variable model w sync")
        wafe.run_script("set model {new value}")
        assert wafe.run_script("gV out label") == "new value"
