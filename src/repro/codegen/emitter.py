"""The code generator: spec -> Python command bindings + reference docs.

The paper's generator is a Perl program emitting C (conversion, argument
passing, error messages, storage management, percent-code
interpretation, command registration) plus TeX for the reference guide.
This generator emits the same layers in Python: argument conversion and
arity checking, native-function dispatch, command registration, and a
Markdown reference manual.  About the same split as the paper results:
the gritty per-command plumbing is generated, the natives and the
irregular commands are handwritten.
"""

from repro.codegen.specparser import (
    FunctionSpec,
    WidgetClassSpec,
    command_name_for,
    creation_command_for,
)

_ARG_USAGE = {
    "Widget": "widget",
    "WidgetClass": "widget",
    "Boolean": "boolean",
    "Int": "int",
    "Cardinal": "int",
    "Position": "position",
    "Dimension": "dimension",
    "Float": "float",
    "String": "string",
    "XmString": "string",
    "StringList": "list",
    "GrabKind": "grabKind",
    "Script": "script",
}

_IN_CONVERSIONS = {
    "Widget": "wafe.lookup_widget(%s)",
    "WidgetClass": "wafe.lookup_widget(%s)",
    "Boolean": "rt.to_boolean(%s)",
    "Int": "rt.to_int(%s)",
    "Cardinal": "rt.to_int(%s)",
    "Position": "rt.to_int(%s)",
    "Dimension": "rt.to_int(%s)",
    "Float": "rt.to_float(%s)",
    "String": "%s",
    "XmString": "%s",
    "StringList": "rt.to_list(%s)",
    "GrabKind": "rt.to_grab_kind(%s)",
    "Script": "%s",
}

_RETURN_CONVERSIONS = {
    "void": "rt.from_void(%s)",
    "Boolean": "rt.from_boolean(%s)",
    "Int": "rt.from_int(%s)",
    "Cardinal": "rt.from_int(%s)",
    "Float": "rt.from_float(%s)",
    "String": "rt.from_string(%s)",
    "Widget": "rt.from_widget(%s)",
}

HEADER = '''\
"""GENERATED CODE -- do not edit.

Produced by repro.codegen from %(source)s; regenerate with
``wafe-codegen``.  Each command follows the paper's conventions:
argument conversion via the runtime helpers, native dispatch through
the handwritten NATIVE table, Tcl-variable returns for list/struct
results.
"""

from repro.core import runtime as rt
from repro.core.natives import NATIVE
from repro.tcl.errors import TclError

'''


def emit_module(specs, source="spec"):
    """Emit a Python module (source text) for a list of spec items."""
    chunks = [HEADER % {"source": source}]
    registrations = []
    for item in specs:
        if isinstance(item, WidgetClassSpec):
            text, name, func = _emit_creation(item)
        else:
            text, name, func = _emit_function(item)
        chunks.append(text)
        registrations.append((name, func))
    chunks.append("COMMANDS = [\n")
    for name, func in registrations:
        chunks.append('    ("%s", %s),\n' % (name, func))
    chunks.append("]\n")
    return "".join(chunks)


def _emit_creation(spec):
    command = creation_command_for(spec.class_name)
    func = "cmd_%s" % command
    lines = [
        "def %s(wafe, argv):" % func,
        '    """Create a managed %s widget (generated)."""'
        % spec.class_name,
        '    return wafe.create_widget("%s", argv)' % spec.class_name,
        "",
        "",
    ]
    return "\n".join(lines), command, func


def _emit_function(spec):
    command = command_name_for(spec.c_name)
    func = "cmd_%s" % command
    usage_parts = [command]
    for arg in spec.arguments:
        if arg.direction == "in":
            usage_parts.append(_ARG_USAGE[arg.type])
        else:
            usage_parts.append("varName")
    usage = " ".join(usage_parts)
    arity = 1 + len(spec.arguments)
    lines = [
        "def %s(wafe, argv):" % func,
        '    """%s (generated from %s)."""' % (spec.doc or "Wafe command",
                                               spec.c_name),
        "    if len(argv) != %d:" % arity,
        "        raise TclError('wrong # args: should be \"%s\"')" % usage,
    ]
    call_args = []
    out_slots = []
    for index, arg in enumerate(spec.arguments, 1):
        var = "arg%d" % index
        if arg.direction == "in":
            conversion = _IN_CONVERSIONS[arg.type] % ("argv[%d]" % index)
            lines.append("    %s = %s" % (var, conversion))
            call_args.append(var)
        else:
            out_slots.append((index, arg))
    call = 'NATIVE["%s"](wafe, %s)' % (spec.c_name, ", ".join(call_args))
    if out_slots:
        names = ["ret"] + ["out%d" % i for i, __ in out_slots]
        lines.append("    %s = %s" % (", ".join(names), call))
        for slot_index, (argv_index, arg) in enumerate(out_slots):
            out_var = "out%d" % argv_index
            if arg.type == "StringList":
                lines.append(
                    "    rt.set_list_var(wafe, argv[%d], %s)"
                    % (argv_index, out_var))
            else:  # Struct
                lines.append(
                    "    rt.set_struct_var(wafe, argv[%d], %s, %r)"
                    % (argv_index, out_var, arg.fields))
        if spec.return_type in ("Cardinal", "Int"):
            lines.append("    if ret is None:")
            lines.append("        ret = len(out%d)" % out_slots[0][0])
        lines.append("    return %s"
                     % (_RETURN_CONVERSIONS[spec.return_type] % "ret"))
    else:
        lines.append("    ret = %s" % call)
        lines.append("    return %s"
                     % (_RETURN_CONVERSIONS[spec.return_type] % "ret"))
    lines.extend(["", ""])
    return "\n".join(lines), command, func


def emit_reference(specs, source="spec"):
    """Emit the short-reference manual (Markdown stands in for TeX)."""
    lines = [
        "# Wafe command reference (generated from %s)" % source,
        "",
        "| Wafe command | C counterpart | arguments | returns |",
        "|---|---|---|---|",
    ]
    for item in specs:
        if isinstance(item, WidgetClassSpec):
            command = creation_command_for(item.class_name)
            lines.append(
                "| `%s name parent ?attr value ...?` | XtCreateManagedWidget"
                "(%s) | widget and parent names, resources | widget name |"
                % (command, item.class_name))
        else:
            command = command_name_for(item.c_name)
            args = []
            for arg in item.arguments:
                if arg.direction == "in":
                    args.append(_ARG_USAGE[arg.type])
                else:
                    args.append("varName(%s)" % arg.type)
            lines.append("| `%s` | %s | %s | %s |"
                         % (command, item.c_name,
                            ", ".join(args) or "-", item.return_type))
    lines.extend([
        "",
        "Runtime introspection (handwritten, listed for completeness):",
        "`info cachestats ?reset?` reports the Tcl",
        "parse/compile/bytecode/expr cache counters; `info bytecode`",
        "reports the bytecode-VM engine, cache, and inline-cache",
        "counters, and `info bytecode disassemble script` returns the",
        "compiled listing for a script; `info xrmstats ?reset?` reports",
        "the quark-interned Xrm resource machinery counters; `info",
        "renderstats ?reset?` reports the damage-region rendering and",
        "protocol-pipelining counters (damage rects, coalesced Expose",
        "series, repainted pixels, pipe writes).  All are",
        "documented in docs/PERFORMANCE.md.  `info evalstats ?reset?`",
        "reports the fault-containment accounting (commands, peak",
        "nesting, limit trips, firewall catches) and `info hidden",
        "?pattern?` lists safe-mode-hidden commands; `evalLimit",
        "?timeMs? ?commands?`, `recursionLimit ?limit?`, and `safeMode",
        "?on?` configure the limits at runtime.  All are documented in",
        "docs/ROBUSTNESS.md.  Under `wafe --serve` (the multi-session",
        "server) each connected client additionally has `sessionQuota",
        "?name? ?value?` to inspect or tune its own resource budget and",
        "`info serverstats` for the shared server ledger (sessions",
        "accepted/active/refused/reaped, quota trips by kind, dispatch",
        "latency percentiles); both are documented in docs/SERVER.md.",
        "",
    ])
    return "\n".join(lines)


def generation_stats(specs, generated_source):
    """Line statistics for the paper's 60 %-generated claim."""
    return {
        "commands": len(specs),
        "generated_lines": len(generated_source.splitlines()),
    }
