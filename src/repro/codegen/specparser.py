"""The Wafe specification language.

All of Wafe's toolkit commands are generated from a high-level
description; the paper shows the two production kinds::

    ~widgetClass
    XmCascadeButton
    #include <Xm/CascadeB.h>

and::

    void
    XmCascadeButtonHighlight
    in: Widget
    in: Boolean

A ``~widgetClass`` block yields a creation command named after the
class; a function block yields a command named by the prefix-stripping
rules (``XmCascadeButtonHighlight`` -> ``mCascadeButtonHighlight``).
``#include`` lines are kept as metadata (they documented the C header;
here they document provenance).  Extensions over the paper's grammar,
used for structure-returning functions: ``out: StringList`` (Tcl list
into a variable, element count returned) and ``out: Struct field,...``
(entries of a Tcl associative array).
"""


class SpecError(Exception):
    """A specification file failed to parse."""


class WidgetClassSpec:
    """A ~widgetClass block."""

    __slots__ = ("class_name", "include", "lineno")

    def __init__(self, class_name, include=None, lineno=0):
        self.class_name = class_name
        self.include = include
        self.lineno = lineno


class Argument:
    """One ``in:``/``out:`` line."""

    __slots__ = ("direction", "type", "fields")

    def __init__(self, direction, type, fields=None):
        self.direction = direction  # "in" | "out"
        self.type = type
        self.fields = fields or []  # for out: Struct

    def __repr__(self):  # pragma: no cover
        return "Argument(%s: %s)" % (self.direction, self.type)


class FunctionSpec:
    """A function block: return type, C name, arguments."""

    __slots__ = ("return_type", "c_name", "arguments", "include", "lineno",
                 "doc")

    def __init__(self, return_type, c_name, arguments, include=None,
                 lineno=0, doc=""):
        self.return_type = return_type
        self.c_name = c_name
        self.arguments = arguments
        self.include = include
        self.lineno = lineno
        self.doc = doc

    @property
    def in_args(self):
        return [a for a in self.arguments if a.direction == "in"]

    @property
    def out_args(self):
        return [a for a in self.arguments if a.direction == "out"]


#: Types the generator knows how to convert.
KNOWN_IN_TYPES = frozenset((
    "Widget", "WidgetClass", "Boolean", "Int", "Cardinal", "Position",
    "Dimension", "Float", "String", "XmString", "StringList", "GrabKind",
    "Script",
))
KNOWN_OUT_TYPES = frozenset(("StringList", "Struct"))
KNOWN_RETURN_TYPES = frozenset((
    "void", "Boolean", "Int", "Cardinal", "String", "Widget", "Float",
))


def command_name_for(c_name):
    """The paper's naming rule: strip ``Xt``/``Xaw``/``X`` and lowercase
    the first remaining letter (so ``XmFoo`` becomes ``mFoo``)."""
    if c_name.startswith("Xaw"):
        rest = c_name[3:]
    elif c_name.startswith("Xt"):
        rest = c_name[2:]
    elif c_name.startswith("X"):
        rest = c_name[1:]
    else:
        rest = c_name
    if not rest:
        raise SpecError("cannot derive a command name from %r" % c_name)
    return rest[0].lower() + rest[1:]


def creation_command_for(class_name):
    """Widget creation commands use the same rule on the class name."""
    return command_name_for(class_name)


def parse_spec(text, source="<spec>"):
    """Parse a spec file into a list of WidgetClassSpec/FunctionSpec."""
    items = []
    block = []
    block_start = 0
    pending_doc = []

    def flush(lineno):
        if not block:
            return
        items.append(_parse_block(block, block_start, source,
                                  " ".join(pending_doc)))
        del block[:]
        del pending_doc[:]

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        stripped = line.strip()
        if stripped.startswith("!"):
            continue  # file-level comment
        if stripped.startswith("//"):
            pending_doc.append(stripped.lstrip("/").strip())
            continue
        if not stripped:
            flush(lineno)
            continue
        if not block:
            block_start = lineno
        block.append(stripped)
    flush(len(text))
    return items


def _parse_block(lines, lineno, source, doc):
    include = None
    body = []
    for line in lines:
        if line.startswith("#include"):
            include = line[len("#include"):].strip()
        else:
            body.append(line)
    if not body:
        raise SpecError("%s:%d: empty block" % (source, lineno))
    if body[0] == "~widgetClass":
        if len(body) < 2:
            raise SpecError("%s:%d: ~widgetClass needs a class name"
                            % (source, lineno))
        _check_command_name(body[1], source, lineno)
        return WidgetClassSpec(body[1], include, lineno)
    if len(body) < 2:
        raise SpecError("%s:%d: function block needs a return type and name"
                        % (source, lineno))
    return_type = body[0]
    if return_type not in KNOWN_RETURN_TYPES:
        raise SpecError("%s:%d: unknown return type %r"
                        % (source, lineno, return_type))
    c_name = body[1]
    _check_command_name(c_name, source, lineno)
    arguments = []
    for line in body[2:]:
        if ":" not in line:
            raise SpecError("%s:%d: bad argument line %r"
                            % (source, lineno, line))
        direction, rest = line.split(":", 1)
        direction = direction.strip()
        rest = rest.strip()
        if direction == "in":
            if rest not in KNOWN_IN_TYPES:
                raise SpecError("%s:%d: unknown in type %r"
                                % (source, lineno, rest))
            arguments.append(Argument("in", rest))
        elif direction == "out":
            pieces = rest.split(None, 1)
            type_name = pieces[0]
            if type_name not in KNOWN_OUT_TYPES:
                raise SpecError("%s:%d: unknown out type %r"
                                % (source, lineno, type_name))
            fields = []
            if type_name == "Struct":
                if len(pieces) < 2:
                    raise SpecError("%s:%d: out: Struct needs field names"
                                    % (source, lineno))
                fields = [f.strip() for f in pieces[1].split(",")]
            arguments.append(Argument("out", type_name, fields))
        else:
            raise SpecError("%s:%d: bad direction %r"
                            % (source, lineno, direction))
    return FunctionSpec(return_type, c_name, arguments, include, lineno, doc)


def _check_command_name(c_name, source, lineno):
    """Fail at parse time, with the spec position, when a block's name
    cannot be turned into a command name (the emitter would otherwise
    raise the same error with no hint of where it came from)."""
    try:
        command_name_for(c_name)
    except SpecError as err:
        raise SpecError("%s:%d: %s" % (source, lineno, err)) from None
