"""The Wafe code generator.

The paper: "all Tcl commands provided by Wafe are generated
automatically from a high level description ... The Wafe source is
currently about 13000 lines of C code.  About 60% of the code is
generated automatically."  This package is that generator, ported: the
spec language (:mod:`repro.codegen.specparser`), the Python/binding and
reference-manual emitters (:mod:`repro.codegen.emitter`), loading of the
shipped ``specs/*.spec`` files, and the statistics used to reproduce the
60 % claim (:func:`fraction_generated`).
"""

import os

from repro.codegen.emitter import emit_module, emit_reference
from repro.codegen.specparser import (
    FunctionSpec,
    SpecError,
    WidgetClassSpec,
    command_name_for,
    creation_command_for,
    parse_spec,
)
from repro.codegen.registry import SpecRegistry, registry_for

SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")

#: Which specs each Wafe build configuration links in.
BUILD_SPECS = {
    "athena": ("xt.spec", "xaw.spec", "plotter.spec"),
    "motif": ("xt.spec", "motif.spec"),
}


def spec_path(name):
    return os.path.join(SPEC_DIR, name)


def load_specs(names):
    """Parse spec files; returns (items, sources_label)."""
    items = []
    for name in names:
        with open(spec_path(name), "r") as handle:
            items.extend(parse_spec(handle.read(), source=name))
    return items


def generate_command_module(build="athena"):
    """Generated Python source for a build configuration."""
    names = BUILD_SPECS[build]
    items = load_specs(names)
    return emit_module(items, source=" + ".join(names)), items


def compile_commands(build="athena"):
    """Generate and exec the bindings; returns the COMMANDS list."""
    source, __ = generate_command_module(build)
    namespace = {}
    code = compile(source, "<wafe-codegen:%s>" % build, "exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    return namespace["COMMANDS"], source


def generate_reference(build="athena"):
    names = BUILD_SPECS[build]
    items = load_specs(names)
    return emit_reference(items, source=" + ".join(names))


def fraction_generated(builds=("athena", "motif")):
    """Reproduce the paper's engineering metric: what fraction of the
    command-layer source is generated rather than handwritten.

    Handwritten: the natives/runtime/command modules of
    :mod:`repro.core` plus this generator's own emitters.  Generated:
    the binding modules produced from the shipped specs.
    """
    generated = 0
    seen = set()
    for build in builds:
        for name in BUILD_SPECS[build]:
            if name in seen:
                continue
            seen.add(name)
            items = load_specs([name])
            generated += len(emit_module(items, source=name).splitlines())
    handwritten = 0
    from repro import core as _core

    core_dir = os.path.dirname(_core.__file__)
    for module in ("natives.py", "runtime.py", "commands.py"):
        path = os.path.join(core_dir, module)
        if os.path.exists(path):
            with open(path, "r") as handle:
                handwritten += len(handle.read().splitlines())
    total = generated + handwritten
    return {
        "generated_lines": generated,
        "handwritten_lines": handwritten,
        "total_lines": total,
        "fraction_generated": generated / total if total else 0.0,
    }
