"""A queryable database of the spec-defined command surface.

The emitter turns spec items into generated code; tooling (the
``wafelint`` static analyzer, the reference docs, completion) instead
needs the *facts* behind that code: which command names exist for a
build, what each one's arity is, which names create widgets of which
class.  :class:`SpecRegistry` exposes exactly that, built from the same
shipped ``specs/*.spec`` files the bindings are generated from -- so the
static view can never drift from the runtime view.
"""

from repro.codegen.specparser import (
    FunctionSpec,
    WidgetClassSpec,
    command_name_for,
    creation_command_for,
)


class SpecRegistry:
    """Spec items for one build configuration, indexed by command name."""

    def __init__(self, items, build=""):
        self.build = build
        #: command name -> FunctionSpec
        self.functions = {}
        #: creation command name -> WidgetClassSpec
        self.creations = {}
        for item in items:
            if isinstance(item, WidgetClassSpec):
                self.creations[creation_command_for(item.class_name)] = item
            elif isinstance(item, FunctionSpec):
                self.functions[command_name_for(item.c_name)] = item

    @classmethod
    def for_build(cls, build="athena"):
        """The registry for a Wafe build (``athena`` or ``motif``)."""
        from repro import codegen

        return cls(codegen.load_specs(codegen.BUILD_SPECS[build]),
                   build=build)

    # ------------------------------------------------------------------
    # Queries

    def command_names(self):
        """Every spec-derived command name (functions + creations)."""
        names = set(self.functions)
        names.update(self.creations)
        return names

    def __contains__(self, name):
        return name in self.functions or name in self.creations

    def is_creation(self, name):
        return name in self.creations

    def widget_class_for(self, name):
        """The widget class name a creation command instantiates."""
        spec = self.creations.get(name)
        return spec.class_name if spec is not None else None

    def arity_for(self, name):
        """The exact ``len(argv)`` a spec function demands (None if
        ``name`` is not a spec function -- creation commands and
        handwritten commands take variable arguments)."""
        spec = self.functions.get(name)
        if spec is None:
            return None
        return 1 + len(spec.arguments)

    def usage_for(self, name):
        """A human-readable usage line mirroring the generated error
        message (``cmd widget int ...``)."""
        spec = self.functions.get(name)
        if spec is None:
            creation = self.creations.get(name)
            if creation is None:
                return None
            return "%s name parent ?attr value ...?" % name
        from repro.codegen.emitter import _ARG_USAGE

        parts = [name]
        for arg in spec.arguments:
            if arg.direction == "in":
                parts.append(_ARG_USAGE[arg.type])
            else:
                parts.append("varName")
        return " ".join(parts)


_REGISTRY_CACHE = {}


def registry_for(build="athena"):
    """Cached per-build :class:`SpecRegistry` (specs never change at
    runtime, so one parse per process suffices)."""
    registry = _REGISTRY_CACHE.get(build)
    if registry is None:
        registry = _REGISTRY_CACHE[build] = SpecRegistry.for_build(build)
    return registry
