"""``wafe-codegen``: dump the generated bindings and reference manual.

Usage::

    wafe-codegen [--build athena|motif] [--out DIR] [--stats]

Writes ``wafe_commands_<build>.py`` (the generated binding module) and
``wafe_reference_<build>.md`` (the short-reference manual, the paper's
TeX output) into the output directory, or prints the generation
statistics behind the "60 % generated" claim.
"""

import argparse
import os
import sys

from repro import codegen


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="wafe-codegen",
        description="Generate Wafe's command bindings from the specs.")
    parser.add_argument("--build", choices=sorted(codegen.BUILD_SPECS),
                        default="athena")
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--stats", action="store_true",
                        help="print generated/handwritten line statistics")
    args = parser.parse_args(argv)

    if args.stats:
        stats = codegen.fraction_generated()
        print("generated lines  : %d" % stats["generated_lines"])
        print("handwritten lines: %d" % stats["handwritten_lines"])
        print("fraction generated: %.0f%%"
              % (stats["fraction_generated"] * 100))
        return 0

    source, items = codegen.generate_command_module(args.build)
    reference = codegen.generate_reference(args.build)
    os.makedirs(args.out, exist_ok=True)
    module_path = os.path.join(args.out,
                               "wafe_commands_%s.py" % args.build)
    reference_path = os.path.join(args.out,
                                  "wafe_reference_%s.md" % args.build)
    with open(module_path, "w") as handle:
        handle.write(source)
    with open(reference_path, "w") as handle:
        handle.write(reference)
    print("wrote %s (%d commands, %d lines)"
          % (module_path, len(items), len(source.splitlines())))
    print("wrote %s" % reference_path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
