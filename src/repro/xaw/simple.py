"""Simple and ThreeD: the base classes of the Athena widgets.

``Simple`` contributes the cursor/insensitive resources; ``ThreeD`` is
Kaleb Keithley's Xaw3d shadow layer, which the paper says can be used
"simply by relinking Wafe" -- our build links it in permanently, which
is also what makes Label report 42 resources (18 Core + 5 Simple +
9 ThreeD + 10 Label), matching the paper's interactive example.
"""

from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xt.widget import Widget


class Simple(Widget):
    CLASS_NAME = "Simple"
    RESOURCES = [
        res("cursor", R.R_CURSOR, None),
        res("insensitiveBorder", R.R_PIXMAP, None),
        res("pointerColor", R.R_PIXEL, "XtDefaultForeground"),
        res("pointerColorBackground", R.R_PIXEL, "XtDefaultBackground"),
        res("cursorName", R.R_STRING, None),
    ]


class ThreeD(Simple):
    """The Xaw3d shadow resources."""

    CLASS_NAME = "ThreeD"
    RESOURCES = [
        res("shadowWidth", R.R_DIMENSION, 2),
        res("topShadowPixel", R.R_PIXEL, "#DEDEDE"),
        res("bottomShadowPixel", R.R_PIXEL, "#7E7E7E"),
        res("topShadowContrast", R.R_INT, 20),
        res("bottomShadowContrast", R.R_INT, 40),
        res("topShadowPixmap", R.R_PIXMAP, None),
        res("bottomShadowPixmap", R.R_PIXMAP, None),
        res("userData", R.R_POINTER, None),
        res("beNiceToColormap", R.R_BOOLEAN, False),
    ]

    def draw_shadow(self, pressed=False):
        """Paint the 3d bevel around the widget."""
        if self.window is None:
            return
        width = self.resources["shadowWidth"]
        if width <= 0:
            return
        top_pixel = self.resources["topShadowPixel"]
        bottom_pixel = self.resources["bottomShadowPixel"]
        if pressed:
            top_pixel, bottom_pixel = bottom_pixel, top_pixel
        w, h = self.window.width, self.window.height
        top = gfx.GC(foreground=top_pixel)
        bottom = gfx.GC(foreground=bottom_pixel)
        gfx.fill_rectangle(self.window, top, 0, 0, w, width)
        gfx.fill_rectangle(self.window, top, 0, 0, width, h)
        gfx.fill_rectangle(self.window, bottom, 0, h - width, w, width)
        gfx.fill_rectangle(self.window, bottom, w - width, 0, width, h)
