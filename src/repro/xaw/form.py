"""Form, Box, Paned, Viewport, Dialog: the Athena geometry managers.

Form is the layout workhorse of every Wafe example in the paper: its
constraint resources ``fromVert``/``fromHoriz`` chain children relative
to each other ("%label result top ... fromVert input").  Box flows
children left-to-right, Paned stacks them, Viewport clips one child,
Dialog is a Form with a label and a value.
"""

from repro.xt import resources as R
from repro.xt.resources import res
from repro.xt.widget import Constraint, Composite, WidgetError
from repro.xaw.simple import ThreeD


class _WidgetRefMixin:
    """Resolve fromVert/fromHoriz strings to sibling widgets."""

    def resolve_sibling(self, child, value):
        if value is None or value == "":
            return None
        if hasattr(value, "CLASS_NAME"):
            return value
        for sibling in self.children:
            if sibling.name == value:
                return sibling
        raise WidgetError(
            'constraint refers to unknown sibling "%s"' % value)


class Form(Constraint, _WidgetRefMixin):
    CLASS_NAME = "Form"
    RESOURCES = [
        res("defaultDistance", R.R_INT, 4, class_="Thickness"),
    ]
    CONSTRAINT_RESOURCES = [
        res("fromVert", R.R_WIDGET, None),
        res("fromHoriz", R.R_WIDGET, None),
        res("horizDistance", R.R_INT, 4),
        res("vertDistance", R.R_INT, 4),
        res("top", R.R_STRING, "rubber"),
        res("bottom", R.R_STRING, "rubber"),
        res("left", R.R_STRING, "rubber"),
        res("right", R.R_STRING, "rubber"),
        res("resizable", R.R_BOOLEAN, False),
    ]

    def layout(self):
        """Place children honouring fromVert/fromHoriz chains."""
        placed = {}
        remaining = [c for c in self.children if c.managed]
        guard = len(remaining) * len(remaining) + 1
        while remaining and guard > 0:
            guard -= 1
            for child in list(remaining):
                above = self.resolve_sibling(child,
                                             child.constraints.get("fromVert"))
                left = self.resolve_sibling(child,
                                            child.constraints.get("fromHoriz"))
                if above is not None and above not in placed:
                    continue
                if left is not None and left not in placed:
                    continue
                width, height = child.preferred_size()
                border = 2 * child.resources["borderWidth"]
                x = child.constraints.get("horizDistance", 4)
                y = child.constraints.get("vertDistance", 4)
                if left is not None:
                    lx, __, lw, __ = placed[left]
                    x = lx + lw + child.constraints.get("horizDistance", 4)
                if above is not None:
                    __, ay, __, ah = placed[above]
                    y = ay + ah + child.constraints.get("vertDistance", 4)
                placed[child] = (x, y, width + border, height + border)
                child.resources["x"] = x
                child.resources["y"] = y
                child.resources["width"] = width
                child.resources["height"] = height
                if child.window is not None:
                    child.window.configure(x=x, y=y, width=max(1, width),
                                           height=max(1, height))
                remaining.remove(child)
        if remaining:
            # Constraint cycle: place leftovers at the default offset.
            for child in remaining:
                width, height = child.preferred_size()
                child.resources["width"] = width
                child.resources["height"] = height

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        self.layout()
        max_x = max_y = 1
        for child in self.children:
            if not child.managed:
                continue
            border = 2 * child.resources["borderWidth"]
            max_x = max(max_x, child.resources["x"] +
                        child.resources["width"] + border)
            max_y = max(max_y, child.resources["y"] +
                        child.resources["height"] + border)
        distance = self.resources["defaultDistance"]
        return (max(self.resources["width"], max_x + distance),
                max(self.resources["height"], max_y + distance))

    @staticmethod
    def allow_resize(child, allow):
        """XawFormAllowResize."""
        child.constraints["resizable"] = bool(allow)


class Box(Composite):
    """Children flow left-to-right, wrapping at the box width."""

    CLASS_NAME = "Box"
    RESOURCES = [
        res("orientation", R.R_ORIENTATION, "vertical"),
        res("hSpace", R.R_DIMENSION, 4),
        res("vSpace", R.R_DIMENSION, 4),
    ]

    def layout(self):
        h_space = self.resources["hSpace"]
        v_space = self.resources["vSpace"]
        horizontal = self.resources["orientation"] == "horizontal"
        x, y = h_space, v_space
        row_height = 0
        limit = self.resources["width"] or (self.window.width
                                            if self.window else 0)
        for child in self.children:
            if not child.managed:
                continue
            width, height = child.preferred_size()
            border = 2 * child.resources["borderWidth"]
            if horizontal and limit and x > h_space and \
                    x + width + border > limit:
                x = h_space
                y += row_height + v_space
                row_height = 0
            child.resources["x"] = x
            child.resources["y"] = y
            child.resources["width"] = width
            child.resources["height"] = height
            if child.window is not None:
                child.window.configure(x=x, y=y, width=max(1, width),
                                       height=max(1, height))
            if horizontal:
                x += width + border + h_space
                row_height = max(row_height, height + border)
            else:
                y += height + border + v_space
        return

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        self.layout()
        max_x = max_y = 1
        for child in self.children:
            if not child.managed:
                continue
            border = 2 * child.resources["borderWidth"]
            max_x = max(max_x, child.resources["x"] +
                        child.resources["width"] + border)
            max_y = max(max_y, child.resources["y"] +
                        child.resources["height"] + border)
        return (max_x + self.resources["hSpace"],
                max_y + self.resources["vSpace"])


class Paned(Constraint):
    """Vertically (or horizontally) stacked panes with drag grips.

    When ``showGrips`` is on, a Grip sits at the boundary below each
    pane (except the last); dragging it with button 1 adjusts the
    pane's ``preferredPaneSize``, the Xaw resize interaction.
    """

    CLASS_NAME = "Paned"
    RESOURCES = [
        res("orientation", R.R_ORIENTATION, "vertical"),
        res("internalBorderWidth", R.R_DIMENSION, 1),
        res("showGrips", R.R_BOOLEAN, True),
        res("gripIndent", R.R_POSITION, 10),
    ]
    CONSTRAINT_RESOURCES = [
        res("min", R.R_DIMENSION, 1),
        res("max", R.R_DIMENSION, 100000),
        res("preferredPaneSize", R.R_DIMENSION, 0),
        res("showGrip", R.R_BOOLEAN, True),
        res("skipAdjust", R.R_BOOLEAN, False),
    ]

    def initialize(self):
        self._grips = {}  # pane widget -> Grip
        self._drag = None  # (pane, start_root, start_size)
        self._making_grips = False

    def panes(self):
        from repro.xaw.grip import Grip

        return [c for c in self.children
                if c.managed and not isinstance(c, Grip)]

    def _ensure_grips(self):
        from repro.xaw.grip import Grip

        if not self.resources["showGrips"] or self._making_grips:
            return
        self._making_grips = True  # Grip creation re-enters layout()
        try:
            panes = self.panes()
            for pane in panes[:-1]:
                if pane in self._grips or not pane.constraints.get(
                        "showGrip", True):
                    continue
                grip = Grip("grip-%s" % pane.name, self)
                grip.add_callback(
                    "callback",
                    lambda g, data, _pane=pane: self._grip_event(_pane,
                                                                 data))
                self._grips[pane] = grip
        finally:
            self._making_grips = False

    def _grip_event(self, pane, data):
        vertical = self.resources["orientation"] == "vertical"
        position = data.y if vertical else data.x
        if data.action == "start":
            size = (pane.resources["height"] if vertical
                    else pane.resources["width"])
            self._drag = (pane, position, size)
            return
        if self._drag is None or self._drag[0] is not pane:
            return
        __, origin, start_size = self._drag
        new_size = max(pane.constraints.get("min", 1),
                       min(pane.constraints.get("max", 100000),
                           start_size + (position - origin)))
        pane.constraints["preferredPaneSize"] = new_size
        self.layout()
        if data.action == "commit":
            self._drag = None

    def layout(self):
        self._ensure_grips()
        gap = self.resources["internalBorderWidth"]
        vertical = self.resources["orientation"] == "vertical"
        offset = 0
        breadth = self.resources["width"] if vertical \
            else self.resources["height"]
        for child in self.panes():
            width, height = child.preferred_size()
            preferred = child.constraints.get("preferredPaneSize") or 0
            if preferred:
                if vertical:
                    height = preferred
                else:
                    width = preferred
            child.resources["x"] = 0 if vertical else offset
            child.resources["y"] = offset if vertical else 0
            child.resources["width"] = width
            child.resources["height"] = height
            if child.window is not None:
                child.window.configure(
                    x=child.resources["x"], y=child.resources["y"],
                    width=max(1, width), height=max(1, height))
            offset += (height if vertical else width) + gap
            grip = self._grips.get(child)
            if grip is not None:
                size = grip.resources["gripSize"]
                indent = self.resources["gripIndent"]
                extent = max(breadth, width if vertical else height, size)
                grip.resources["x"] = (max(0, extent - indent - size)
                                       if vertical else offset - gap)
                grip.resources["y"] = (offset - gap
                                       if vertical
                                       else max(0, extent - indent - size))
                grip.resources["width"] = size
                grip.resources["height"] = size
                if grip.window is not None:
                    grip.window.configure(
                        x=grip.resources["x"], y=grip.resources["y"],
                        width=size, height=size)
                    grip.window.raise_window()

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        vertical = self.resources["orientation"] == "vertical"
        gap = self.resources["internalBorderWidth"]
        total = 0
        breadth = 1
        for child in self.panes():
            width, height = child.preferred_size()
            preferred = child.constraints.get("preferredPaneSize") or 0
            if preferred:
                if vertical:
                    height = preferred
                else:
                    width = preferred
            if vertical:
                total += height + gap
                breadth = max(breadth, width)
            else:
                total += width + gap
                breadth = max(breadth, height)
        if vertical:
            return (max(1, breadth), max(1, total))
        return (max(1, total), max(1, breadth))


class Viewport(Composite):
    """Clips a single child; scrolling via x/y offset.

    With ``allowVert`` (or ``forceBars``) a real Scrollbar child is
    managed along the right edge, its thumb reflecting the visible
    fraction; dragging the thumb scrolls the clipped child, and
    programmatic scrolling moves the thumb -- the Xaw coupling.
    """

    CLASS_NAME = "Viewport"
    RESOURCES = [
        res("allowHoriz", R.R_BOOLEAN, False),
        res("allowVert", R.R_BOOLEAN, False),
        res("forceBars", R.R_BOOLEAN, False),
        res("useBottom", R.R_BOOLEAN, False),
        res("useRight", R.R_BOOLEAN, True),
    ]

    def initialize(self):
        self.scroll_x = 0
        self.scroll_y = 0
        self.vertical_bar = None
        if self.resources["allowVert"] or self.resources["forceBars"]:
            from repro.xaw.scrollbar import Scrollbar

            self.vertical_bar = Scrollbar(
                "vertical", self, args={"orientation": "vertical"})
            self.vertical_bar.add_callback("jumpProc", self._thumb_moved)

    def _thumb_moved(self, bar, fraction):
        ch = self._content_height()
        self.scroll_to(y=int(fraction * ch))

    def _content(self):
        for child in self.children:
            if child is not self.vertical_bar and child.managed:
                return child
        return None

    def _content_height(self):
        child = self._content()
        if child is None:
            return 1
        return max(1, child.preferred_size()[1])

    def _view_width(self):
        width = self.resources["width"] or (
            self.window.width if self.window else 100)
        if self.vertical_bar is not None:
            width -= self.vertical_bar.resources["thickness"]
        return max(1, width)

    def layout(self):
        view_w = self._view_width()
        view_h = max(1, self.resources["height"] or
                     (self.window.height if self.window else 100))
        child = self._content()
        if child is not None:
            width, height = child.preferred_size()
            child.resources["x"] = -self.scroll_x
            child.resources["y"] = -self.scroll_y
            child.resources["width"] = width
            child.resources["height"] = height
            if child.window is not None:
                child.window.configure(x=-self.scroll_x, y=-self.scroll_y,
                                       width=max(1, width),
                                       height=max(1, height))
        if self.vertical_bar is not None:
            bar = self.vertical_bar
            bar.resources["x"] = view_w
            bar.resources["y"] = 0
            bar.resources["width"] = bar.resources["thickness"]
            bar.resources["height"] = view_h
            if bar.window is not None:
                bar.window.configure(x=view_w, y=0,
                                     width=bar.resources["thickness"],
                                     height=view_h)
            content_h = self._content_height()
            bar.set_thumb(top=self.scroll_y / content_h,
                          shown=min(1.0, view_h / content_h))

    def scroll_to(self, x=None, y=None):
        if x is not None:
            self.scroll_x = max(0, x)
        if y is not None:
            self.scroll_y = max(0, y)
        self.layout()


class Dialog(Form):
    """A Form with a label and an optional editable value."""

    CLASS_NAME = "Dialog"
    RESOURCES = [
        res("label", R.R_STRING, ""),
        res("value", R.R_STRING, None),
        res("icon", R.R_BITMAP, None),
    ]

    def initialize(self):
        from repro.xaw.label import Label as LabelWidget

        self._label_child = LabelWidget(
            "label", self, args={"label": self.resources.get("label") or "",
                                 "borderWidth": "0"})
        self._value_child = None
        if self.resources.get("value") is not None:
            from repro.xaw.text import AsciiText

            self._value_child = AsciiText(
                "value", self,
                args={"string": self.resources["value"],
                      "editType": "edit", "fromVert": "label"})

    def get_value_string(self, name):
        if name == "value" and self._value_child is not None:
            return self._value_child.resources.get("string") or ""
        return super().get_value_string(name)

    def set_values_hook(self, old, changed):
        if "label" in changed and self._label_child is not None:
            self._label_child.set_values(
                {"label": self.resources.get("label") or ""})
        if "value" in changed and self._value_child is not None:
            self._value_child.set_values(
                {"string": self.resources.get("value") or ""})
