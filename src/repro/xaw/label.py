"""The Athena Label widget.

The widget of the paper's ``getResourceList`` example (42 resources)
and of the xev translation example.  Draws its ``label`` text with the
``font``, honouring ``justify`` and the internal margins; an optional
``bitmap`` (XBM or XPM via the extended converter) is drawn instead of
or before the text.
"""

from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xaw.simple import ThreeD


class Label(ThreeD):
    CLASS_NAME = "Label"
    RESOURCES = [
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("font", R.R_FONT, "XtDefaultFont"),
        res("label", R.R_STRING, None),
        res("encoding", R.R_INT, 0),
        res("justify", R.R_JUSTIFY, "center"),
        res("internalWidth", R.R_DIMENSION, 4),
        res("internalHeight", R.R_DIMENSION, 2),
        res("leftBitmap", R.R_BITMAP, None),
        res("bitmap", R.R_BITMAP, None),
        res("resize", R.R_BOOLEAN, True),
    ]

    def initialize(self):
        if self.resources.get("label") is None:
            self.resources["label"] = self.name

    def label_text(self):
        return self.resources.get("label") or ""

    def preferred_size(self):
        width = self.resources["width"]
        height = self.resources["height"]
        if width > 0 and height > 0:
            return (width, height)
        font = self.resources["font"]
        pad_x = 2 * self.resources["internalWidth"]
        pad_y = 2 * self.resources["internalHeight"]
        shadow = 2 * self.resources["shadowWidth"]
        lines = self.label_text().split("\n") or [""]
        text_width = max((font.text_width(line) for line in lines),
                         default=0)
        text_height = font.height * max(1, len(lines))
        bitmap = self.resources.get("bitmap")
        if bitmap is not None:
            bh, bw = bitmap.shape
            text_width = max(text_width, bw)
            text_height = max(text_height, bh)
        left = self.resources.get("leftBitmap")
        if left is not None:
            text_width += left.shape[1] + pad_x // 2
        want_w = width or text_width + pad_x + shadow
        want_h = height or text_height + pad_y + shadow
        return (max(1, want_w), max(1, want_h))

    def _text_rects(self, text):
        """Window-relative boxes covering where ``text`` paints -- the
        same layout arithmetic as :meth:`expose`."""
        window = self.window
        font = self.resources["font"]
        inner_x = self.resources["internalWidth"] + \
            self.resources["shadowWidth"]
        x = inner_x
        left = self.resources.get("leftBitmap")
        if left is not None:
            x += left.shape[1] + self.resources["internalWidth"] // 2 + 1
        lines = (text or "").split("\n")
        total_height = font.height * len(lines)
        top = (window.height - total_height) // 2
        rects = []
        for line in lines:
            line_width = font.text_width(line)
            justify = self.resources["justify"]
            if justify == "center":
                draw_x = max(x, (window.width - line_width) // 2)
            elif justify == "right":
                draw_x = max(x, window.width - inner_x - line_width)
            else:
                draw_x = x
            rects.append((draw_x, top, draw_x + line_width,
                          top + font.height))
            top += font.height
        return rects

    def set_values_hook(self, old, changed):
        if "label" not in changed:
            return False
        if self.resources["resize"] and self.realized:
            width, height = self.preferred_size()
            current_w = self.window.width if self.window else 0
            if width > current_w:
                self.resources["width"] = width
                if self.window is not None:
                    self.window.configure(width=width)
                if self.parent is not None:
                    self.parent.layout()
                return False  # geometry changed: full redraw
        # Text-only change on the damage path: repaint just the union of
        # the old and new text extents.  Only for plain Labels -- a
        # subclass with its own expose may place text differently.
        if (changed == ["label"] and self.realized
                and self.window is not None
                and self.window.display.use_regions
                and type(self).expose is Label.expose
                and self.resources.get("bitmap") is None
                and old.get("label") != self.resources.get("label")):
            rects = self._text_rects(old.get("label"))
            rects += self._text_rects(self.label_text())
            self.update_rects(rects)
            return True
        return False

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        font = self.resources["font"]
        gc = gfx.GC(foreground=self.resources["foreground"],
                    background=self.resources["background"], font=font)
        inner_x = self.resources["internalWidth"] + \
            self.resources["shadowWidth"]
        x = inner_x
        left = self.resources.get("leftBitmap")
        if left is not None:
            gfx.put_image(window, gc, left, x,
                          (window.height - left.shape[0]) // 2)
            x += left.shape[1] + self.resources["internalWidth"] // 2 + 1
        bitmap = self.resources.get("bitmap")
        if bitmap is not None:
            gfx.put_image(window, gc, bitmap, x,
                          (window.height - bitmap.shape[0]) // 2)
            return
        lines = self.label_text().split("\n")
        total_height = font.height * len(lines)
        y = (window.height - total_height) // 2 + font.ascent
        for line in lines:
            line_width = font.text_width(line)
            justify = self.resources["justify"]
            if justify == "center":
                draw_x = max(x, (window.width - line_width) // 2)
            elif justify == "right":
                draw_x = max(x, window.width - inner_x - line_width)
            else:
                draw_x = x
            gfx.draw_string(window, gc, draw_x, y, line)
            y += font.height
