"""The Athena widget set (Xaw), linked with the Xaw3d shadow layer.

``ATHENA_CLASSES`` maps widget-class names to implementations; Wafe
derives its creation commands from it mechanically (``Label`` ->
``label``), which is why the registry lives here rather than in the
frontend: the paper's point is that any Xt widget set plugs in the same
way (see :mod:`repro.motif` for the OSF/Motif flavour and
:mod:`repro.xaw.plotter` for the Plotter extension).
"""

from repro.xaw.buttons import Command, MenuButton, Toggle
from repro.xaw.form import Box, Dialog, Form, Paned, Viewport
from repro.xaw.grip import Grip
from repro.xaw.label import Label
from repro.xaw.list import List, ListReturn
from repro.xaw.menus import SimpleMenu, Sme, SmeBSB, SmeLine
from repro.xaw.plotter import BarGraph, LineGraph
from repro.xaw.scrollbar import Scrollbar, StripChart
from repro.xaw.simple import Simple, ThreeD
from repro.xaw.text import AsciiText

#: Class name -> widget class, used to generate creation commands.
ATHENA_CLASSES = {
    "Label": Label,
    "Command": Command,
    "Toggle": Toggle,
    "MenuButton": MenuButton,
    "Form": Form,
    "Grip": Grip,
    "Box": Box,
    "Paned": Paned,
    "Viewport": Viewport,
    "Dialog": Dialog,
    "List": List,
    "AsciiText": AsciiText,
    "Scrollbar": Scrollbar,
    "StripChart": StripChart,
    "SimpleMenu": SimpleMenu,
    "Sme": Sme,
    "SmeBSB": SmeBSB,
    "SmeLine": SmeLine,
}

#: The Plotter extension set (loaded when Wafe is "relinked" with it).
PLOTTER_CLASSES = {
    "BarGraph": BarGraph,
    "LineGraph": LineGraph,
}

__all__ = [
    "ATHENA_CLASSES",
    "PLOTTER_CLASSES",
    "AsciiText",
    "BarGraph",
    "Box",
    "Command",
    "Dialog",
    "Form",
    "Grip",
    "Label",
    "LineGraph",
    "List",
    "ListReturn",
    "MenuButton",
    "Paned",
    "Scrollbar",
    "Simple",
    "SimpleMenu",
    "Sme",
    "SmeBSB",
    "SmeLine",
    "StripChart",
    "ThreeD",
    "Toggle",
    "Viewport",
]
