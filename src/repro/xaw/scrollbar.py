"""Scrollbar and StripChart.

Scrollbar provides the Athena thumb with jumpProc/scrollProc callbacks;
StripChart polls a ``getValue`` callback on a timer, the widget behind
the paper's xnetstats/xvmstats-style monitor demos.
"""

from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xaw.simple import ThreeD


def _action_start_scroll(widget, event, args):
    widget._drag_origin = (event.x, event.y)


def _action_notify_scroll(widget, event, args):
    length = widget.length()
    position = event.y if widget.vertical() else event.x
    widget.call_callbacks("scrollProc", position - length // 2)


def _action_move_thumb(widget, event, args):
    length = max(1, widget.length())
    position = event.y if widget.vertical() else event.x
    widget.set_thumb(top=min(1.0, max(0.0, position / length)))
    widget.call_callbacks("jumpProc", widget.resources["topOfThumb"])


class Scrollbar(ThreeD):
    CLASS_NAME = "Scrollbar"
    RESOURCES = [
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("orientation", R.R_ORIENTATION, "vertical"),
        res("length", R.R_DIMENSION, 100),
        res("thickness", R.R_DIMENSION, 14),
        res("topOfThumb", R.R_FLOAT, 0.0),
        res("shown", R.R_FLOAT, 0.3),
        res("minimumThumb", R.R_DIMENSION, 7),
        res("scrollProc", R.R_CALLBACK),
        res("jumpProc", R.R_CALLBACK),
    ]
    ACTIONS = {
        "StartScroll": _action_start_scroll,
        "NotifyScroll": _action_notify_scroll,
        "MoveThumb": _action_move_thumb,
        "NotifyThumb": _action_move_thumb,
        "EndScroll": lambda w, e, a: None,
    }
    DEFAULT_TRANSLATIONS = (
        "<Btn1Down>: StartScroll()\n"
        "<Btn1Up>: NotifyScroll() EndScroll()\n"
        "<Btn2Down>: MoveThumb()\n"
    )

    def initialize(self):
        self._drag_origin = None

    def vertical(self):
        return self.resources["orientation"] == "vertical"

    def length(self):
        if self.window is not None:
            return (self.window.height if self.vertical()
                    else self.window.width)
        return self.resources["length"]

    def _thumb_rect(self):
        """The thumb's window-relative half-open box."""
        window = self.window
        length = self.length()
        top = int(self.resources["topOfThumb"] * length)
        size = max(self.resources["minimumThumb"],
                   int(self.resources["shown"] * length))
        if self.vertical():
            return (1, top, max(1, window.width - 1), top + size)
        return (top, 1, top + size, max(1, window.height - 1))

    def set_thumb(self, top=None, shown=None):
        """XawScrollbarSetThumb.

        A realized thumb move repaints only the symmetric difference of
        the old and new thumb rectangles -- the overlap already shows
        the right pixels -- so a 1-pixel drag step damages two thin
        strips instead of the whole gutter."""
        old_rect = (self._thumb_rect()
                    if self.realized and self.window is not None else None)
        if top is not None:
            self.resources["topOfThumb"] = max(0.0, min(1.0, float(top)))
        if shown is not None:
            self.resources["shown"] = max(0.0, min(1.0, float(shown)))
        if not self.realized or self.window is None:
            return
        display = self.window.display
        if old_rect is None or not display.use_regions:
            self.redraw()
            return
        new_rect = self._thumb_rect()
        if new_rect == old_rect:
            return
        stale = display.new_region()
        stale.add_rect(*old_rect)
        stale.subtract_rect(*new_rect)
        grown = display.new_region()
        grown.add_rect(*new_rect)
        grown.subtract_rect(*old_rect)
        self.update_rects(stale.rects() + grown.rects())

    def preferred_size(self):
        thickness = self.resources["thickness"]
        length = self.resources["length"]
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        if self.vertical():
            return (thickness, length)
        return (length, thickness)

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        gc = gfx.GC(foreground=self.resources["foreground"])
        length = self.length()
        top = int(self.resources["topOfThumb"] * length)
        size = max(self.resources["minimumThumb"],
                   int(self.resources["shown"] * length))
        if self.vertical():
            gfx.fill_rectangle(window, gc, 1, top, window.width - 2, size)
        else:
            gfx.fill_rectangle(window, gc, top, 1, size, window.height - 2)
        self.draw_shadow()


class StripChart(ThreeD):
    """Plots values sampled from the getValue callback on a timer."""

    CLASS_NAME = "StripChart"
    RESOURCES = [
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("highlight", R.R_PIXEL, "XtDefaultForeground"),
        res("getValue", R.R_CALLBACK),
        res("update", R.R_INT, 10),
        res("minScale", R.R_INT, 1),
        res("jumpScroll", R.R_INT, 1),
    ]

    def initialize(self):
        self.samples = []
        self._timer = None

    def realize_hook(self):
        interval = self.resources["update"]
        if interval > 0 and len(self.resources["getValue"] or []) > 0:
            self._schedule()

    def _schedule(self):
        interval_ms = max(1, self.resources["update"]) * 100
        self._timer = self.app.add_timeout(interval_ms, self._tick)

    def _tick(self):
        if self.destroyed:
            return
        self.sample()
        self._schedule()

    def _scale(self):
        return max(self.resources["minScale"],
                   max(self.samples) if self.samples else 1, 1)

    def sample(self):
        """Ask getValue for one sample (call_data is a one-slot list).

        While the chart is filling left to right at a stable scale, the
        new sample only damages its own one-pixel column; a scale change
        or jump scroll still redraws everything."""
        holder = [0.0]
        self.call_callbacks("getValue", holder)
        try:
            value = float(holder[0])
        except (TypeError, ValueError):
            value = 0.0
        old_scale = self._scale()
        old_count = len(self.samples)
        self.samples.append(value)
        limit = self.window.width if self.window is not None else 100
        trimmed = len(self.samples) > max(10, limit)
        if trimmed:
            self.samples = self.samples[-limit:]
        if self.realized and self.window is not None:
            display = self.window.display
            if (display.use_regions and not trimmed
                    and self._scale() == old_scale
                    and old_count < self.window.width):
                self.update_rects([(old_count, 0, old_count + 1,
                                    self.window.height)])
            else:
                self.redraw()
        return value

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        if not self.samples:
            return
        gc = gfx.GC(foreground=self.resources["foreground"])
        scale = max(self.resources["minScale"],
                    max(self.samples) if self.samples else 1, 1)
        height = window.height
        for x, value in enumerate(self.samples[-window.width:]):
            bar = int(height * min(value, scale) / scale)
            gfx.fill_rectangle(window, gc, x, height - bar, 1, bar)
        self.draw_shadow()
