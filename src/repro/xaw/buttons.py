"""Command, Toggle, and MenuButton: the Athena button widgets.

Command carries the ``callback`` resource used throughout the paper
("command hello topLevel callback {echo hello world}").  Its actions
(set/unset/highlight/reset/notify) and default translations follow the
Xaw sources, so a synthesized Btn1Down/Btn1Up pair over the widget
really runs the callback list.
"""

from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xaw.label import Label


def _action_set(widget, event, args):
    widget.pressed = True
    if widget.realized:
        widget.redraw()


def _action_unset(widget, event, args):
    widget.pressed = False
    if widget.realized:
        widget.redraw()


def _action_reset(widget, event, args):
    widget.pressed = False
    widget.highlighted = False
    if widget.realized:
        widget.redraw()


def _action_highlight(widget, event, args):
    widget.highlighted = True
    if widget.realized:
        widget.redraw()


def _action_notify(widget, event, args):
    if widget.pressed:
        widget.call_callbacks("callback", None)


class Command(Label):
    CLASS_NAME = "Command"
    RESOURCES = [
        res("callback", R.R_CALLBACK),
        res("highlightThickness", R.R_DIMENSION, 2),
        res("cornerRoundPercent", R.R_INT, 25),
        res("shapeStyle", R.R_SHAPE_STYLE, "rectangle"),
    ]
    ACTIONS = {
        "set": _action_set,
        "unset": _action_unset,
        "reset": _action_reset,
        "highlight": _action_highlight,
        "notify": _action_notify,
    }
    DEFAULT_TRANSLATIONS = (
        "<EnterWindow>: highlight()\n"
        "<LeaveWindow>: reset()\n"
        "<Btn1Down>: set()\n"
        "<Btn1Up>: notify() unset()\n"
    )

    def initialize(self):
        super().initialize()
        self.pressed = False
        self.highlighted = False

    def expose(self, event):
        super().expose(event)
        self.draw_shadow(pressed=self.pressed)
        if self.highlighted and self.window is not None:
            gc = gfx.GC(foreground=self.resources["foreground"])
            gc.line_width = self.resources["highlightThickness"]
            gfx.draw_rectangle(self.window, gc, 0, 0,
                               self.window.width, self.window.height)


def _toggle_action(widget, event, args):
    if widget.resources["state"]:
        widget.set_state(False)
    else:
        widget.set_state(True)
    widget.pressed = True


def _toggle_notify(widget, event, args):
    widget.call_callbacks("callback", widget.resources.get("radioData"))
    widget.pressed = False


class Toggle(Command):
    """A two-state button; same-radioGroup toggles are exclusive."""

    CLASS_NAME = "Toggle"
    RESOURCES = [
        res("state", R.R_BOOLEAN, False),
        res("radioGroup", R.R_WIDGET, None),
        res("radioData", R.R_POINTER, None),
    ]
    ACTIONS = {
        "toggle": _toggle_action,
        "notify": _toggle_notify,
    }
    DEFAULT_TRANSLATIONS = (
        "<EnterWindow>: highlight()\n"
        "<LeaveWindow>: reset()\n"
        "<Btn1Down>,<Btn1Up>: toggle() notify()\n"
    )

    def set_state(self, value, notify=False):
        value = bool(value)
        if value:
            for other in self._radio_members():
                if other is not self and other.resources["state"]:
                    other.resources["state"] = False
                    if other.realized:
                        other.redraw()
        self.resources["state"] = value
        if self.realized:
            self.redraw()
        if notify:
            self.call_callbacks("callback",
                                self.resources.get("radioData"))

    def _radio_members(self):
        group = self.resources.get("radioGroup")
        if group is None or self.parent is None:
            return []
        members = []
        for sibling in self.parent.children:
            if isinstance(sibling, Toggle) and \
                    sibling.resources.get("radioGroup") == group:
                members.append(sibling)
        return members

    def expose(self, event):
        self.pressed = bool(self.resources["state"])
        super().expose(event)


def _popup_menu_action(widget, event, args):
    """The MenuButton's PopupMenu action (an Xt built-in)."""
    menu_name = args[0] if args else widget.resources.get("menuName")
    menu = widget.app.find_popup_shell(menu_name, widget)
    if menu is None:
        return
    display = widget.display()
    if event is not None:
        menu.move_to(event.x_root, event.y_root)
    else:
        menu.move_to(display.pointer_x, display.pointer_y)
    menu.popup("exclusive")


class MenuButton(Command):
    CLASS_NAME = "MenuButton"
    RESOURCES = [
        res("menuName", R.R_STRING, "menu"),
    ]
    ACTIONS = {
        "PopupMenu": _popup_menu_action,
    }
    DEFAULT_TRANSLATIONS = (
        "<EnterWindow>: highlight()\n"
        "<LeaveWindow>: reset()\n"
        "<Btn1Down>: set() PopupMenu()\n"
    )
