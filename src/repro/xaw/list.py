"""The Athena List widget.

Carries the callback whose percent codes the paper tabulates (%w
widget's name, %i index, %s active element).  Selecting an item -- by
synthesized click or by the ``Set``/``Notify`` actions -- invokes the
callback resource with an ``XawListReturnStruct``-shaped call_data of
``(index, string)``.
"""

from repro.xlib import graphics as gfx
from repro.tcl.lists import string_to_list
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xaw.simple import ThreeD


class ListReturn:
    """XawListReturnStruct: what the List callback receives."""

    __slots__ = ("list_index", "string")

    def __init__(self, list_index, string):
        self.list_index = list_index
        self.string = string


def _action_set(widget, event, args):
    index = widget.index_at(event.x, event.y) if event is not None else -1
    if index >= 0:
        widget.highlight(index)


def _action_notify(widget, event, args):
    widget.notify()


def _action_unset(widget, event, args):
    widget.unhighlight()


class List(ThreeD):
    CLASS_NAME = "List"
    RESOURCES = [
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("font", R.R_FONT, "XtDefaultFont"),
        res("list", R.R_LIST, None),
        res("numberStrings", R.R_INT, 0),
        res("defaultColumns", R.R_INT, 2),
        res("forceColumns", R.R_BOOLEAN, False),
        res("internalWidth", R.R_DIMENSION, 4),
        res("internalHeight", R.R_DIMENSION, 2),
        res("columnSpacing", R.R_DIMENSION, 6),
        res("rowSpacing", R.R_DIMENSION, 2),
        res("verticalList", R.R_BOOLEAN, False),
        res("callback", R.R_CALLBACK),
        res("longest", R.R_INT, 0),
        res("pasteBuffer", R.R_BOOLEAN, False),
    ]
    ACTIONS = {
        "Set": _action_set,
        "Notify": _action_notify,
        "Unset": _action_unset,
    }
    DEFAULT_TRANSLATIONS = (
        "<Btn1Down>: Set()\n"
        "<Btn1Up>: Notify()\n"
    )

    def initialize(self):
        self.selected = -1
        if isinstance(self.resources.get("list"), str):
            self.resources["list"] = string_to_list(self.resources["list"])
        if self.resources.get("list") is None:
            self.resources["list"] = []

    def items(self):
        return self.resources["list"]

    def change_list(self, items, resize=True):
        """XawListChange."""
        self.resources["list"] = list(items)
        self.selected = -1
        if resize and self.realized:
            self.resources["width"] = 0
            self.resources["height"] = 0
            width, height = self.preferred_size()
            self.request_resize(width, height)
        if self.realized:
            self.redraw()

    def highlight(self, index):
        """XawListHighlight."""
        if 0 <= index < len(self.items()):
            self.selected = index
            if self.realized:
                self.redraw()

    def unhighlight(self):
        """XawListUnhighlight."""
        self.selected = -1
        if self.realized:
            self.redraw()

    def current(self):
        """XawListShowCurrent: the selected (index, string) or None."""
        if 0 <= self.selected < len(self.items()):
            return ListReturn(self.selected, self.items()[self.selected])
        return None

    def notify(self):
        current = self.current()
        if current is not None:
            self.call_callbacks("callback", current)

    def row_height(self):
        return self.resources["font"].height + self.resources["rowSpacing"]

    def index_at(self, x, y):
        row = (y - self.resources["internalHeight"]) // max(
            1, self.row_height())
        if 0 <= row < len(self.items()):
            return int(row)
        return -1

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        font = self.resources["font"]
        items = self.items()
        longest = max((font.text_width(i) for i in items), default=20)
        width = self.resources["width"] or \
            longest + 2 * self.resources["internalWidth"]
        height = self.resources["height"] or \
            max(1, len(items)) * self.row_height() + \
            2 * self.resources["internalHeight"]
        return (max(1, width), max(1, height))

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        font = self.resources["font"]
        foreground = self.resources["foreground"]
        background = self.resources["background"]
        y = self.resources["internalHeight"]
        for index, item in enumerate(self.items()):
            if index == self.selected:
                # Inverse video for the active element.
                bar = gfx.GC(foreground=foreground)
                gfx.fill_rectangle(window, bar, 0, y, window.width,
                                   self.row_height())
                gc = gfx.GC(foreground=background, background=foreground,
                            font=font)
            else:
                gc = gfx.GC(foreground=foreground, background=background,
                            font=font)
            gfx.draw_string(window, gc, self.resources["internalWidth"],
                            y + font.ascent, item)
            y += self.row_height()
