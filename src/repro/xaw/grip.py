"""The Athena Grip widget and its use by Paned.

A Grip is the small square handle Paned places between panes; dragging
it with button 1 resizes the pane above.  The widget itself is dumb --
it only reports GripAction events through its ``callback`` resource
(with an ``XawGripCallData``-shaped call_data of (action, x, y)); the
resize logic lives in Paned, as in the Xaw sources.
"""

from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xaw.simple import ThreeD


class GripCallData:
    """XawGripCallData: what the Grip callback receives."""

    __slots__ = ("action", "x", "y")

    def __init__(self, action, x, y):
        self.action = action  # "GripAction start/move/commit"
        self.x = x
        self.y = y


def _grip_action(widget, event, args):
    action = args[0] if args else "move"
    x = event.x_root if event is not None else 0
    y = event.y_root if event is not None else 0
    widget.call_callbacks("callback", GripCallData(action, x, y))


class Grip(ThreeD):
    CLASS_NAME = "Grip"
    RESOURCES = [
        res("callback", R.R_CALLBACK),
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("gripSize", R.R_DIMENSION, 8),
    ]
    ACTIONS = {
        "GripAction": _grip_action,
    }
    DEFAULT_TRANSLATIONS = (
        "<Btn1Down>: GripAction(start)\n"
        "<BtnMotion>: GripAction(move)\n"
        "<Btn1Up>: GripAction(commit)\n"
    )

    def preferred_size(self):
        size = self.resources["gripSize"]
        return (size, size)

    def expose(self, event):
        if self.window is None:
            return
        gfx.clear_area(self.window, pixel=self.resources["background"])
        gc = gfx.GC(foreground=self.resources["foreground"])
        gfx.fill_rectangle(self.window, gc, 1, 1,
                           self.window.width - 2, self.window.height - 2)
