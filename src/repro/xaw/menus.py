"""SimpleMenu and its Sme entry widgets.

The MenuButton example of the paper ("<EnterWindow>: PopupMenu()")
pops one of these up.  A SimpleMenu is an override shell whose children
are Sme (simple menu entry) widgets; releasing button 1 over an entry
notifies its callback and pops the menu down.
"""

from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xt.shell import OverrideShell
from repro.xt.widget import Widget


def _menu_notify(widget, event, args):
    """Runs on Btn1Up inside the menu shell."""
    entry = widget.entry_at(event.y) if event is not None else None
    widget.popdown()
    if entry is not None:
        entry.call_callbacks("callback", None)


class Sme(Widget):
    """A menu entry (SmeBSB: string + optional bitmaps)."""

    CLASS_NAME = "Sme"
    RESOURCES = [
        res("callback", R.R_CALLBACK),
        res("label", R.R_STRING, None),
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("font", R.R_FONT, "XtDefaultFont"),
        res("vertSpace", R.R_INT, 25),
        res("leftMargin", R.R_DIMENSION, 4),
        res("rightMargin", R.R_DIMENSION, 4),
    ]

    def initialize(self):
        if self.resources.get("label") is None:
            self.resources["label"] = self.name

    def realize(self):
        # Sme objects are windowless gadgets (RectObj in Xaw): pointer
        # events go to the SimpleMenu shell, which resolves the entry.
        self.realized = True

    def preferred_size(self):
        font = self.resources["font"]
        label = self.resources.get("label") or ""
        height = font.height + (font.height *
                                self.resources["vertSpace"]) // 100
        width = (font.text_width(label) + self.resources["leftMargin"] +
                 self.resources["rightMargin"])
        return (max(1, width), max(1, height))


class SmeBSB(Sme):
    CLASS_NAME = "SmeBSB"
    RESOURCES = [
        res("leftBitmap", R.R_BITMAP, None),
        res("rightBitmap", R.R_BITMAP, None),
    ]


class SmeLine(Sme):
    CLASS_NAME = "SmeLine"
    RESOURCES = [
        res("lineWidth", R.R_DIMENSION, 1),
    ]

    def preferred_size(self):
        return (10, max(2, self.resources["lineWidth"] + 2))


class SimpleMenu(OverrideShell):
    CLASS_NAME = "SimpleMenu"
    RESOURCES = [
        res("label", R.R_STRING, None),
        res("cursor", R.R_CURSOR, None),
        res("menuOnScreen", R.R_BOOLEAN, True),
        res("popupOnEntry", R.R_WIDGET, None),
        res("backingStore", R.R_STRING, "default"),
    ]
    ACTIONS = {
        "notify": _menu_notify,
        "MenuPopdown": lambda w, e, a: w.popdown(),
    }
    DEFAULT_TRANSLATIONS = (
        "<Btn1Up>: notify()\n"
        "<BtnUp>: notify()\n"
    )

    def entries(self):
        return [c for c in self.children if isinstance(c, Sme)]

    def entry_at(self, y):
        offset = 0
        for entry in self.entries():
            __, height = entry.preferred_size()
            if offset <= y < offset + height:
                return entry
            offset += height
        return None

    def layout(self):
        offset = 0
        width = max((e.preferred_size()[0] for e in self.entries()),
                    default=20)
        for entry in self.entries():
            __, height = entry.preferred_size()
            entry.resources["x"] = 0
            entry.resources["y"] = offset
            entry.resources["width"] = width
            entry.resources["height"] = height
            if entry.window is not None:
                entry.window.configure(x=0, y=offset, width=width,
                                       height=height)
            offset += height

    def preferred_size(self):
        width = max((e.preferred_size()[0] for e in self.entries()),
                    default=20)
        height = sum(e.preferred_size()[1] for e in self.entries()) or 10
        return (max(1, width), max(1, height))

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        offset = 0
        for entry in self.entries():
            font = entry.resources["font"]
            __, height = entry.preferred_size()
            if isinstance(entry, SmeLine):
                gc = gfx.GC(foreground=entry.resources["foreground"])
                gfx.draw_line(window, gc, 2, offset + height // 2,
                              window.width - 2, offset + height // 2)
            else:
                gc = gfx.GC(foreground=entry.resources["foreground"],
                            font=font)
                gfx.draw_string(window, gc, entry.resources["leftMargin"],
                                offset + font.ascent,
                                entry.resources.get("label") or "")
            offset += height
