"""The Plotter extension widgets: bar graphs and line graphs.

The paper: "The current Wafe distribution contains support for the
Plotter widget set (which supports bar graphs and line graphs)".  These
widgets demonstrate the claim that any Xt-based widget extends Wafe --
they plug into the same class registry, resource machinery and code
generator as the stock Athena set, and Figure 2's XmGraph-style display
is reproduced by the plotter benchmark.
"""

from repro.tcl.lists import string_to_list
from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xaw.simple import ThreeD


class _Graph(ThreeD):
    RESOURCES = [
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("font", R.R_FONT, "XtDefaultFont"),
        res("data", R.R_LIST, None),
        res("minValue", R.R_FLOAT, 0.0),
        res("maxValue", R.R_FLOAT, 0.0),
        res("graphColor", R.R_PIXEL, "steelblue"),
        res("axisColor", R.R_PIXEL, "XtDefaultForeground"),
        res("title", R.R_STRING, None),
        res("margin", R.R_DIMENSION, 12),
    ]

    def initialize(self):
        if isinstance(self.resources.get("data"), str):
            self.resources["data"] = string_to_list(self.resources["data"])
        if self.resources.get("data") is None:
            self.resources["data"] = []

    def values(self):
        out = []
        for item in self.resources["data"]:
            try:
                out.append(float(item))
            except (TypeError, ValueError):
                out.append(0.0)
        return out

    def set_data(self, items):
        old_values = self.values()
        self.resources["data"] = [str(i) for i in items]
        if not self.realized or self.window is None:
            return
        if self.window.display.use_regions:
            rects = self._append_rects(old_values, self.values())
            if rects is not None:
                self.update_rects(rects)
                return
        self.redraw()

    def _append_rects(self, old_values, new_values):
        """Damage rects when the new data strictly appends to the old
        at an unchanged scale; None means a full redraw is required."""
        return None

    def value_range(self, values=None):
        if values is None:
            values = self.values()
        low = self.resources["minValue"]
        high = self.resources["maxValue"]
        if high <= low:
            low = min(values, default=0.0)
            high = max(values, default=1.0)
            if high == low:
                high = low + 1.0
        return low, high

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        return (max(self.resources["width"], 200),
                max(self.resources["height"], 120))

    def plot_area(self):
        margin = self.resources["margin"]
        return (margin, margin,
                max(1, self.window.width - 2 * margin),
                max(1, self.window.height - 2 * margin))

    def draw_frame(self):
        gc = gfx.GC(foreground=self.resources["axisColor"])
        x, y, width, height = self.plot_area()
        gfx.draw_line(self.window, gc, x, y + height, x + width, y + height)
        gfx.draw_line(self.window, gc, x, y, x, y + height)
        title = self.resources.get("title")
        if title:
            font = self.resources["font"]
            text_gc = gfx.GC(foreground=self.resources["axisColor"],
                             font=font)
            gfx.draw_string(self.window, text_gc, x, font.ascent + 1, title)


class BarGraph(_Graph):
    CLASS_NAME = "BarGraph"
    RESOURCES = [
        res("barSpacing", R.R_DIMENSION, 2),
    ]

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        self.draw_frame()
        values = self.values()
        if not values:
            return
        x0, y0, width, height = self.plot_area()
        low, high = self.value_range()
        spacing = self.resources["barSpacing"]
        bar_width = max(1, (width - spacing * len(values)) // len(values))
        gc = gfx.GC(foreground=self.resources["graphColor"])
        x = x0 + spacing
        for value in values:
            fraction = (value - low) / (high - low)
            fraction = max(0.0, min(1.0, fraction))
            bar_height = int(height * fraction)
            gfx.fill_rectangle(window, gc, x, y0 + height - bar_height,
                               bar_width, bar_height)
            x += bar_width + spacing

    def bar_heights(self):
        """Painted bar heights in pixels (for tests/benchmarks)."""
        if self.window is None:
            return []
        __, __, __, height = self.plot_area()
        low, high = self.value_range()
        return [int(height * max(0.0, min(1.0, (v - low) / (high - low))))
                for v in self.values()]


class LineGraph(_Graph):
    CLASS_NAME = "LineGraph"
    RESOURCES = [
        res("lineWidth", R.R_DIMENSION, 1),
        # 0 spreads the points over the plot width (every append moves
        # every point); a positive value pins point i at x0 + i*spacing,
        # the scrolling-plot layout where an append only adds one
        # segment -- and therefore only damages that segment.
        res("pointSpacing", R.R_DIMENSION, 0),
    ]

    def _points(self, values):
        x0, y0, width, height = self.plot_area()
        low, high = self.value_range(values)
        spacing = self.resources["pointSpacing"]
        step = spacing if spacing > 0 else width / max(1, len(values) - 1)
        points = []
        for i, value in enumerate(values):
            fraction = max(0.0, min(1.0, (value - low) / (high - low)))
            points.append((int(x0 + i * step),
                           int(y0 + height - height * fraction)))
        return points

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        self.draw_frame()
        values = self.values()
        if len(values) < 2:
            return
        gc = gfx.GC(foreground=self.resources["graphColor"])
        gc.line_width = self.resources["lineWidth"]
        gfx.draw_lines(window, gc, self._points(values))

    def _append_rects(self, old_values, new_values):
        if self.resources["pointSpacing"] <= 0:
            return None
        n_old = len(old_values)
        if n_old < 2 or n_old >= len(new_values):
            return None
        if new_values[:n_old] != old_values:
            return None
        if self.value_range(old_values) != self.value_range(new_values):
            return None  # the scale moved: every segment moves
        pen = max(1, self.resources["lineWidth"])
        points = self._points(new_values)
        rects = []
        for i in range(n_old - 1, len(points) - 1):
            (ax, ay), (bx, by) = points[i], points[i + 1]
            rects.append((min(ax, bx), min(ay, by),
                          max(ax, bx) + pen, max(ay, by) + pen))
        return rects
