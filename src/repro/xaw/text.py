"""The Athena AsciiText widget.

The paper's prime-factor demo reads numbers out of an ``asciiText``
(``editType edit``), and the mass-transfer example stores 100 kB into
one via ``sv text ... string $C``.  This implementation models the
string source (read/edit/append), an insertion point, the keyboard
editing actions bound through the default translations, and multi-line
display.
"""

from repro.xlib import graphics as gfx
from repro.xlib import keysym as _keysym
from repro.xlib import xtypes
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xaw.simple import ThreeD


def _action_insert_char(widget, event, args):
    if widget.resources["editType"] == "read":
        return
    text, __ = _keysym.lookup_string(
        event.keycode, bool(event.state & xtypes.ShiftMask))
    if text and text.isprintable():
        widget.insert(text)


def _action_newline(widget, event, args):
    if widget.resources["editType"] == "read":
        return
    widget.insert("\n")


def _action_delete_previous(widget, event, args):
    if widget.resources["editType"] == "read":
        return
    widget.delete_previous()


def _action_select_all(widget, event, args):
    widget.select(0, len(widget.get_string()))


def _action_select_word(widget, event, args):
    string = widget.get_string()
    point = min(widget.insertion_point, max(0, len(string) - 1))
    start = point
    while start > 0 and not string[start - 1].isspace():
        start -= 1
    end = point
    while end < len(string) and not string[end].isspace():
        end += 1
    widget.select(start, end)


def _action_insert_selection(widget, event, args):
    if widget.resources["editType"] == "read":
        return
    from repro.xt.selection import get_selection_value

    selection = args[0] if args else "PRIMARY"

    def paste(value):
        if value:
            widget.insert(value)

    get_selection_value(widget, selection, "STRING", paste)


def _action_beginning_of_line(widget, event, args):
    string = widget.resources.get("string") or ""
    point = widget.insertion_point
    widget.insertion_point = string.rfind("\n", 0, point) + 1


def _action_end_of_line(widget, event, args):
    string = widget.resources.get("string") or ""
    point = widget.insertion_point
    end = string.find("\n", point)
    widget.insertion_point = len(string) if end < 0 else end


class AsciiText(ThreeD):
    CLASS_NAME = "Text"
    RESOURCES = [
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("font", R.R_FONT, "XtDefaultFont"),
        res("string", R.R_STRING, ""),
        res("editType", R.R_EDIT_MODE, "read", class_="EditType"),
        res("length", R.R_INT, 0),
        res("insertPosition", R.R_INT, 0),
        res("displayCaret", R.R_BOOLEAN, True),
        res("scrollVertical", R.R_STRING, "never"),
        res("scrollHorizontal", R.R_STRING, "never"),
        res("wrap", R.R_STRING, "never"),
        res("echo", R.R_BOOLEAN, True),
        res("leftMargin", R.R_DIMENSION, 2),
        res("topMargin", R.R_DIMENSION, 2),
    ]
    ACTIONS = {
        "insert-char": _action_insert_char,
        "newline": _action_newline,
        "delete-previous-character": _action_delete_previous,
        "beginning-of-line": _action_beginning_of_line,
        "end-of-line": _action_end_of_line,
        "select-all": _action_select_all,
        "select-word": _action_select_word,
        "insert-selection": _action_insert_selection,
    }
    DEFAULT_TRANSLATIONS = (
        "<Key>Return: newline()\n"
        "<Key>BackSpace: delete-previous-character()\n"
        "<Key>Delete: delete-previous-character()\n"
        "Ctrl<Key>a: beginning-of-line()\n"
        "Ctrl<Key>e: end-of-line()\n"
        "<Btn2Down>: insert-selection(PRIMARY)\n"
        "<KeyPress>: insert-char()\n"
    )

    def initialize(self):
        if self.resources.get("string") is None:
            self.resources["string"] = ""
        self.insertion_point = len(self.resources["string"])
        self.selection = None  # (start, end) into the string

    # -- selections ------------------------------------------------------

    def select(self, start, end):
        """Select a range and own PRIMARY with it (XawTextSetSelection)."""
        start = max(0, min(start, len(self.get_string())))
        end = max(start, min(end, len(self.get_string())))
        self.selection = (start, end)
        if self.window is not None:
            from repro.xt.selection import own_selection

            own_selection(self, "PRIMARY",
                          lambda target: self.selected_text())
        if self.realized:
            self.redraw()

    def selected_text(self):
        if self.selection is None:
            return ""
        start, end = self.selection
        return self.get_string()[start:end]

    # -- the programmatic interface (XawTextSetInsertionPoint etc.) ----

    def set_string(self, text):
        self.resources["string"] = text
        self.insertion_point = min(self.insertion_point, len(text))
        if self.realized:
            self.redraw()

    def get_string(self):
        return self.resources.get("string") or ""

    def set_insertion_point(self, position):
        self.insertion_point = max(0, min(position, len(self.get_string())))

    def insert(self, text):
        string = self.get_string()
        point = self.insertion_point
        if self.resources["editType"] == "append":
            point = len(string)
        self.resources["string"] = string[:point] + text + string[point:]
        self.insertion_point = point + len(text)
        if self.realized:
            self.redraw()

    def delete_previous(self):
        string = self.get_string()
        point = self.insertion_point
        if point > 0:
            self.resources["string"] = string[: point - 1] + string[point:]
            self.insertion_point = point - 1
            if self.realized:
                self.redraw()

    def set_values_hook(self, old, changed):
        if "string" in changed:
            self.insertion_point = min(self.insertion_point,
                                       len(self.get_string()))

    # -- display --------------------------------------------------------

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        font = self.resources["font"]
        lines = self.get_string().split("\n")
        width = self.resources["width"] or max(
            100, max((font.text_width(l) for l in lines), default=0) +
            2 * self.resources["leftMargin"])
        height = self.resources["height"] or max(
            font.height + 2 * self.resources["topMargin"],
            font.height * len(lines) + 2 * self.resources["topMargin"])
        return (max(1, width), max(1, height))

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        if not self.resources["echo"]:
            return
        font = self.resources["font"]
        gc = gfx.GC(foreground=self.resources["foreground"],
                    background=self.resources["background"], font=font)
        y = self.resources["topMargin"] + font.ascent
        for line in self.get_string().split("\n"):
            if y - font.ascent > window.height:
                break
            gfx.draw_string(window, gc, self.resources["leftMargin"],
                            y, line)
            y += font.height
        if self.resources["displayCaret"]:
            self._draw_caret(gc)

    def _draw_caret(self, gc):
        font = self.resources["font"]
        string = self.get_string()[: self.insertion_point]
        lines = string.split("\n")
        row = len(lines) - 1
        col_text = lines[-1]
        x = self.resources["leftMargin"] + font.text_width(col_text)
        y = self.resources["topMargin"] + row * font.height
        gfx.fill_rectangle(self.window, gc, x, y + font.height - 2,
                           max(4, font.char_width("m") // 2), 2)
