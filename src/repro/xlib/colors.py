"""The named color database and pixel allocation.

Models the server side of ``XAllocNamedColor``/``XParseColor``: color
names come from a built-in ``rgb.txt`` subset (every name the paper and
the demo applications use, plus the common X11 set), and ``#rgb``,
``#rrggbb`` and ``#rrrrggggbbbb`` hex forms parse like ``XParseColor``.
Pixels are 24-bit ``0xRRGGBB`` TrueColor values, so converting a pixel
back to components is lossless -- handy for framebuffer assertions.
"""

from repro.tcl.errors import TclError

# A representative slice of X11R5's rgb.txt.  Names are matched
# case-insensitively and with spaces ignored, like the real database.
_RGB_TXT = {
    "white": (255, 255, 255),
    "black": (0, 0, 0),
    "red": (255, 0, 0),
    "green": (0, 255, 0),
    "blue": (0, 0, 255),
    "yellow": (255, 255, 0),
    "cyan": (0, 255, 255),
    "magenta": (255, 0, 255),
    "gray": (190, 190, 190),
    "grey": (190, 190, 190),
    "darkgray": (169, 169, 169),
    "darkgrey": (169, 169, 169),
    "lightgray": (211, 211, 211),
    "lightgrey": (211, 211, 211),
    "dimgray": (105, 105, 105),
    "gray50": (127, 127, 127),
    "gray75": (191, 191, 191),
    "gray90": (229, 229, 229),
    "navy": (0, 0, 128),
    "navyblue": (0, 0, 128),
    "cornflowerblue": (100, 149, 237),
    "darkslateblue": (72, 61, 139),
    "slateblue": (106, 90, 205),
    "mediumblue": (0, 0, 205),
    "royalblue": (65, 105, 225),
    "dodgerblue": (30, 144, 255),
    "deepskyblue": (0, 191, 255),
    "skyblue": (135, 206, 235),
    "lightskyblue": (135, 206, 250),
    "steelblue": (70, 130, 180),
    "lightsteelblue": (176, 196, 222),
    "lightblue": (173, 216, 230),
    "powderblue": (176, 224, 230),
    "paleturquoise": (175, 238, 238),
    "turquoise": (64, 224, 208),
    "lightcyan": (224, 255, 255),
    "cadetblue": (95, 158, 160),
    "aquamarine": (127, 255, 212),
    "darkgreen": (0, 100, 0),
    "darkolivegreen": (85, 107, 47),
    "darkseagreen": (143, 188, 143),
    "seagreen": (46, 139, 87),
    "mediumseagreen": (60, 179, 113),
    "lightseagreen": (32, 178, 170),
    "palegreen": (152, 251, 152),
    "springgreen": (0, 255, 127),
    "lawngreen": (124, 252, 0),
    "chartreuse": (127, 255, 0),
    "greenyellow": (173, 255, 47),
    "limegreen": (50, 205, 50),
    "yellowgreen": (154, 205, 50),
    "forestgreen": (34, 139, 34),
    "olivedrab": (107, 142, 35),
    "darkkhaki": (189, 183, 107),
    "khaki": (240, 230, 140),
    "palegoldenrod": (238, 232, 170),
    "lightgoldenrodyellow": (250, 250, 210),
    "lightyellow": (255, 255, 224),
    "gold": (255, 215, 0),
    "lightgoldenrod": (238, 221, 130),
    "goldenrod": (218, 165, 32),
    "darkgoldenrod": (184, 134, 11),
    "rosybrown": (188, 143, 143),
    "indianred": (205, 92, 92),
    "saddlebrown": (139, 69, 19),
    "sienna": (160, 82, 45),
    "peru": (205, 133, 63),
    "burlywood": (222, 184, 135),
    "beige": (245, 245, 220),
    "wheat": (245, 222, 179),
    "sandybrown": (244, 164, 96),
    "tan": (210, 180, 140),
    "chocolate": (210, 105, 30),
    "firebrick": (178, 34, 34),
    "brown": (165, 42, 42),
    "darksalmon": (233, 150, 122),
    "salmon": (250, 128, 114),
    "lightsalmon": (255, 160, 122),
    "orange": (255, 165, 0),
    "darkorange": (255, 140, 0),
    "coral": (255, 127, 80),
    "lightcoral": (240, 128, 128),
    "tomato": (255, 99, 71),
    "orangered": (255, 69, 0),
    "hotpink": (255, 105, 180),
    "deeppink": (255, 20, 147),
    "pink": (255, 192, 203),
    "lightpink": (255, 182, 193),
    "palevioletred": (219, 112, 147),
    "maroon": (176, 48, 96),
    "mediumvioletred": (199, 21, 133),
    "violetred": (208, 32, 144),
    "violet": (238, 130, 238),
    "plum": (221, 160, 221),
    "orchid": (218, 112, 214),
    "mediumorchid": (186, 85, 211),
    "darkorchid": (153, 50, 204),
    "darkviolet": (148, 0, 211),
    "blueviolet": (138, 43, 226),
    "purple": (160, 32, 240),
    "mediumpurple": (147, 112, 219),
    "thistle": (216, 191, 216),
    "snow": (255, 250, 250),
    "ghostwhite": (248, 248, 255),
    "whitesmoke": (245, 245, 245),
    "gainsboro": (220, 220, 220),
    "floralwhite": (255, 250, 240),
    "oldlace": (253, 245, 230),
    "linen": (250, 240, 230),
    "antiquewhite": (250, 235, 215),
    "papayawhip": (255, 239, 213),
    "blanchedalmond": (255, 235, 205),
    "bisque": (255, 228, 196),
    "peachpuff": (255, 218, 185),
    "navajowhite": (255, 222, 173),
    "moccasin": (255, 228, 181),
    "cornsilk": (255, 248, 220),
    "ivory": (255, 255, 240),
    "lemonchiffon": (255, 250, 205),
    "seashell": (255, 245, 238),
    "honeydew": (240, 255, 240),
    "mintcream": (245, 255, 250),
    "azure": (240, 255, 255),
    "aliceblue": (240, 248, 255),
    "lavender": (230, 230, 250),
    "lavenderblush": (255, 240, 245),
    "mistyrose": (255, 228, 225),
    "slategray": (112, 128, 144),
    "lightslategray": (119, 136, 153),
    "midnightblue": (25, 25, 112),
}


class ColorError(TclError):
    """Raised for unparseable color specifications."""


def parse_color(spec):
    """Parse a color spec into an (r, g, b) triple of 0..255.

    Accepts rgb.txt names (case/space insensitive) and ``#`` hex forms
    with 1, 2 or 4 digits per component.
    """
    spec = spec.strip()
    if not spec:
        raise ColorError('cannot parse color ""')
    if spec.startswith("#"):
        digits = spec[1:]
        if len(digits) in (3, 6, 12) and all(
            c in "0123456789abcdefABCDEF" for c in digits
        ):
            per = len(digits) // 3
            out = []
            for i in range(3):
                chunk = digits[i * per : (i + 1) * per]
                value = int(chunk, 16)
                # Scale to 8 bits.
                if per == 1:
                    value *= 17
                elif per == 4:
                    value >>= 8
                out.append(value)
            return tuple(out)
        raise ColorError('cannot parse color "%s"' % spec)
    key = spec.replace(" ", "").lower()
    if key in _RGB_TXT:
        return _RGB_TXT[key]
    raise ColorError('cannot parse color "%s"' % spec)


def alloc_color(spec):
    """Allocate a pixel (0xRRGGBB) for a color spec."""
    r, g, b = parse_color(spec)
    return (r << 16) | (g << 8) | b


def pixel_to_rgb(pixel):
    """Split a pixel back into (r, g, b)."""
    return ((pixel >> 16) & 0xFF, (pixel >> 8) & 0xFF, pixel & 0xFF)


def color_exists(spec):
    try:
        parse_color(spec)
        return True
    except ColorError:
        return False


BLACK_PIXEL = 0x000000
WHITE_PIXEL = 0xFFFFFF
