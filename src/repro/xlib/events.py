"""X event objects.

One class covers all event types (like the C ``XEvent`` union); the
``type`` field plus per-type attributes mirror the members Wafe's
percent codes need: coordinates, root coordinates, button number,
keycode, and state.
"""

from repro.xlib import xtypes


class XEvent:
    """An X event.  Unset attributes default to 0/None/''."""

    __slots__ = (
        "type", "window", "x", "y", "x_root", "y_root", "state", "button",
        "keycode", "time", "width", "height", "count", "mode", "detail",
        "atom", "selection", "target", "property", "requestor", "data",
        "is_hint", "same_screen", "subwindow", "serial",
    )

    def __init__(self, type, window=None, **fields):
        self.type = type
        self.window = window
        self.x = fields.pop("x", 0)
        self.y = fields.pop("y", 0)
        self.x_root = fields.pop("x_root", 0)
        self.y_root = fields.pop("y_root", 0)
        self.state = fields.pop("state", 0)
        self.button = fields.pop("button", 0)
        self.keycode = fields.pop("keycode", 0)
        self.time = fields.pop("time", 0)
        self.width = fields.pop("width", 0)
        self.height = fields.pop("height", 0)
        self.count = fields.pop("count", 0)
        self.mode = fields.pop("mode", 0)
        self.detail = fields.pop("detail", 0)
        self.atom = fields.pop("atom", None)
        self.selection = fields.pop("selection", None)
        self.target = fields.pop("target", None)
        self.property = fields.pop("property", None)
        self.requestor = fields.pop("requestor", None)
        self.data = fields.pop("data", None)
        self.is_hint = fields.pop("is_hint", False)
        self.same_screen = fields.pop("same_screen", True)
        self.subwindow = fields.pop("subwindow", None)
        self.serial = fields.pop("serial", 0)
        if fields:
            raise TypeError("unknown event fields: %s" % ", ".join(fields))

    @property
    def type_name(self):
        return xtypes.EVENT_NAMES.get(self.type, "Unknown")

    def __repr__(self):  # pragma: no cover - debugging aid
        window_id = getattr(self.window, "wid", None)
        return "<XEvent %s win=%s x=%d y=%d>" % (
            self.type_name, window_id, self.x, self.y
        )
