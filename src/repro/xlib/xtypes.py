"""X protocol constants: event types, masks, and modes.

Values match the real ``X.h`` so traces read naturally next to X11
documentation (the paper assumes familiarity with [7]/[8], the O'Reilly
Xlib and Xt volumes).
"""

# Event types (X.h)
KeyPress = 2
KeyRelease = 3
ButtonPress = 4
ButtonRelease = 5
MotionNotify = 6
EnterNotify = 7
LeaveNotify = 8
FocusIn = 9
FocusOut = 10
Expose = 12
VisibilityNotify = 15
CreateNotify = 16
DestroyNotify = 17
UnmapNotify = 18
MapNotify = 19
ConfigureNotify = 22
PropertyNotify = 28
SelectionClear = 29
SelectionRequest = 30
SelectionNotify = 31
ClientMessage = 33

EVENT_NAMES = {
    KeyPress: "KeyPress",
    KeyRelease: "KeyRelease",
    ButtonPress: "ButtonPress",
    ButtonRelease: "ButtonRelease",
    MotionNotify: "MotionNotify",
    EnterNotify: "EnterNotify",
    LeaveNotify: "LeaveNotify",
    FocusIn: "FocusIn",
    FocusOut: "FocusOut",
    Expose: "Expose",
    VisibilityNotify: "VisibilityNotify",
    CreateNotify: "CreateNotify",
    DestroyNotify: "DestroyNotify",
    UnmapNotify: "UnmapNotify",
    MapNotify: "MapNotify",
    ConfigureNotify: "ConfigureNotify",
    PropertyNotify: "PropertyNotify",
    SelectionClear: "SelectionClear",
    SelectionRequest: "SelectionRequest",
    SelectionNotify: "SelectionNotify",
    ClientMessage: "ClientMessage",
}

# Event masks (X.h)
NoEventMask = 0
KeyPressMask = 1 << 0
KeyReleaseMask = 1 << 1
ButtonPressMask = 1 << 2
ButtonReleaseMask = 1 << 3
EnterWindowMask = 1 << 4
LeaveWindowMask = 1 << 5
PointerMotionMask = 1 << 6
ButtonMotionMask = 1 << 13
ExposureMask = 1 << 15
VisibilityChangeMask = 1 << 16
StructureNotifyMask = 1 << 17
SubstructureNotifyMask = 1 << 19
FocusChangeMask = 1 << 21
PropertyChangeMask = 1 << 22

# Which mask selects which event type.
EVENT_TO_MASK = {
    KeyPress: KeyPressMask,
    KeyRelease: KeyReleaseMask,
    ButtonPress: ButtonPressMask,
    ButtonRelease: ButtonReleaseMask,
    MotionNotify: PointerMotionMask,
    EnterNotify: EnterWindowMask,
    LeaveNotify: LeaveWindowMask,
    FocusIn: FocusChangeMask,
    FocusOut: FocusChangeMask,
    Expose: ExposureMask,
    VisibilityNotify: VisibilityChangeMask,
    ConfigureNotify: StructureNotifyMask,
    MapNotify: StructureNotifyMask,
    UnmapNotify: StructureNotifyMask,
    DestroyNotify: StructureNotifyMask,
    PropertyNotify: PropertyChangeMask,
}

# Modifier / button state bits (X.h)
ShiftMask = 1 << 0
LockMask = 1 << 1
ControlMask = 1 << 2
Mod1Mask = 1 << 3
Button1Mask = 1 << 8
Button2Mask = 1 << 9
Button3Mask = 1 << 10

Button1 = 1
Button2 = 2
Button3 = 3
Button4 = 4
Button5 = 5

# Grab modes (Xt popup grab kinds live in repro.xt.shell)
GrabModeSync = 0
GrabModeAsync = 1

# Window map states
IsUnmapped = 0
IsUnviewable = 1
IsViewable = 2
