"""Keysyms and the keyboard mapping.

Keysym *values* follow the real ``keysymdef.h`` (Latin-1 keysyms equal
their character codes; function keys live in the 0xFFxx block).  The
keycode layout models the DEC LK401 keyboard of the DECstations the
paper was developed on; in particular the three keycodes visible in the
paper's xev example are pinned so the example reproduces byte-for-byte:

* ``w``       -> keycode 198
* ``Shift_L`` -> keycode 174
* ``1``/``!`` -> keycode 197
"""

_PUNCT_NAMES = {
    " ": "space",
    "!": "exclam",
    '"': "quotedbl",
    "#": "numbersign",
    "$": "dollar",
    "%": "percent",
    "&": "ampersand",
    "'": "apostrophe",
    "(": "parenleft",
    ")": "parenright",
    "*": "asterisk",
    "+": "plus",
    ",": "comma",
    "-": "minus",
    ".": "period",
    "/": "slash",
    ":": "colon",
    ";": "semicolon",
    "<": "less",
    "=": "equal",
    ">": "greater",
    "?": "question",
    "@": "at",
    "[": "bracketleft",
    "\\": "backslash",
    "]": "bracketright",
    "^": "asciicircum",
    "_": "underscore",
    "`": "grave",
    "{": "braceleft",
    "|": "bar",
    "}": "braceright",
    "~": "asciitilde",
}

_FUNCTION_KEYSYMS = {
    "BackSpace": 0xFF08,
    "Tab": 0xFF09,
    "Linefeed": 0xFF0A,
    "Return": 0xFF0D,
    "Escape": 0xFF1B,
    "Delete": 0xFFFF,
    "Home": 0xFF50,
    "Left": 0xFF51,
    "Up": 0xFF52,
    "Right": 0xFF53,
    "Down": 0xFF54,
    "End": 0xFF57,
    "Shift_L": 0xFFE1,
    "Shift_R": 0xFFE2,
    "Control_L": 0xFFE3,
    "Control_R": 0xFFE4,
    "Caps_Lock": 0xFFE5,
    "Meta_L": 0xFFE7,
    "Meta_R": 0xFFE8,
    "Alt_L": 0xFFE9,
    "Alt_R": 0xFFEA,
}
for _i in range(1, 13):
    _FUNCTION_KEYSYMS["F%d" % _i] = 0xFFBE + _i - 1

# name -> keysym value
KEYSYMS = {}
for _ch, _name in _PUNCT_NAMES.items():
    KEYSYMS[_name] = ord(_ch)
for _c in range(ord("0"), ord("9") + 1):
    KEYSYMS[chr(_c)] = _c
for _c in range(ord("A"), ord("Z") + 1):
    KEYSYMS[chr(_c)] = _c
for _c in range(ord("a"), ord("z") + 1):
    KEYSYMS[chr(_c)] = _c
KEYSYMS.update(_FUNCTION_KEYSYMS)

_KEYSYM_NAMES = {}
for _name, _value in KEYSYMS.items():
    _KEYSYM_NAMES.setdefault(_value, _name)
# Prefer lowercase letter names for their values (a..z come after A..Z
# in insertion order above, so fix the letter range explicitly).
for _c in range(ord("a"), ord("z") + 1):
    _KEYSYM_NAMES[_c] = chr(_c)
for _c in range(ord("A"), ord("Z") + 1):
    _KEYSYM_NAMES[_c] = chr(_c)

NoSymbol = 0


def string_to_keysym(name):
    """Name -> keysym value, 0 (NoSymbol) if unknown."""
    if name in KEYSYMS:
        return KEYSYMS[name]
    if len(name) == 1 and 32 <= ord(name) < 256:
        return ord(name)
    return NoSymbol


def keysym_to_string(value):
    """Keysym value -> name, '' if unknown."""
    return _KEYSYM_NAMES.get(value, "")


# ----------------------------------------------------------------------
# The keyboard: keycode -> (unshifted keysym name, shifted keysym name)

_SHIFT_PAIRS = [
    ("1", "exclam"), ("2", "at"), ("3", "numbersign"), ("4", "dollar"),
    ("5", "percent"), ("6", "asciicircum"), ("7", "ampersand"),
    ("8", "asterisk"), ("9", "parenleft"), ("0", "parenright"),
    ("minus", "underscore"), ("equal", "plus"),
    ("semicolon", "colon"), ("apostrophe", "quotedbl"),
    ("comma", "less"), ("period", "greater"), ("slash", "question"),
    ("bracketleft", "braceleft"), ("bracketright", "braceright"),
    ("backslash", "bar"), ("grave", "asciitilde"),
]

_KEYCODE_TABLE = {}          # keycode -> (name_unshifted, name_shifted)
_KEYSYM_TO_KEYCODE = {}      # keysym name -> (keycode, shifted?)


def _assign(keycode, unshifted, shifted=None):
    if shifted is None:
        shifted = unshifted
    _KEYCODE_TABLE[keycode] = (unshifted, shifted)
    _KEYSYM_TO_KEYCODE.setdefault(unshifted, (keycode, False))
    if shifted != unshifted:
        _KEYSYM_TO_KEYCODE.setdefault(shifted, (keycode, True))


def _build_keyboard():
    # The paper's pinned keycodes.
    _assign(198, "w", "W")
    _assign(197, "1", "exclam")
    _assign(174, "Shift_L")
    # Digit row (skipping the pinned "1").
    digit_codes = {"2": 199, "3": 200, "4": 201, "5": 202, "6": 203,
                   "7": 204, "8": 205, "9": 206, "0": 196}
    for pair in _SHIFT_PAIRS:
        unshifted, shifted = pair
        if unshifted in digit_codes:
            _assign(digit_codes[unshifted], unshifted, shifted)
    _assign(207, "minus", "underscore")
    _assign(208, "equal", "plus")
    # Letter rows (w is pinned above).
    letters = "qertyuiopasdfghjklzxcvbnm"
    code = 209
    for letter in letters:
        _assign(code, letter, letter.upper())
        code += 1
    # Punctuation.
    _assign(234, "semicolon", "colon")
    _assign(235, "apostrophe", "quotedbl")
    _assign(236, "comma", "less")
    _assign(237, "period", "greater")
    _assign(238, "slash", "question")
    _assign(239, "bracketleft", "braceleft")
    _assign(240, "bracketright", "braceright")
    _assign(241, "backslash", "bar")
    _assign(242, "grave", "asciitilde")
    _assign(243, "space")
    # Control keys.
    _assign(189, "Return")
    _assign(190, "Tab")
    _assign(188, "BackSpace")
    _assign(187, "Escape")
    _assign(186, "Delete")
    _assign(171, "Shift_R")
    _assign(175, "Control_L")
    _assign(176, "Caps_Lock")
    _assign(177, "Meta_L")
    _assign(170, "Up")
    _assign(169, "Down")
    _assign(167, "Left")
    _assign(168, "Right")
    _assign(166, "Home")
    _assign(165, "End")
    for i in range(1, 13):
        _assign(85 + i, "F%d" % i)


_build_keyboard()


def keycode_to_keysym(keycode, shifted=False):
    """Keycode (+ shift level) -> keysym value."""
    entry = _KEYCODE_TABLE.get(keycode)
    if entry is None:
        return NoSymbol
    return string_to_keysym(entry[1] if shifted else entry[0])


def keysym_to_keycode(name_or_value):
    """Keysym (name or value) -> (keycode, needs_shift); (0, False) if none."""
    if isinstance(name_or_value, int):
        name = keysym_to_string(name_or_value)
    else:
        name = name_or_value
    entry = _KEYSYM_TO_KEYCODE.get(name)
    if entry is None and len(name) == 1:
        entry = _KEYSYM_TO_KEYCODE.get(_PUNCT_NAMES.get(name, name))
    return entry if entry is not None else (0, False)


def char_to_keycode(ch):
    """Character -> (keycode, needs_shift) for synthesizing typing."""
    if ch == " ":
        return keysym_to_keycode("space")
    if ch == "\n" or ch == "\r":
        return keysym_to_keycode("Return")
    if ch == "\t":
        return keysym_to_keycode("Tab")
    name = _PUNCT_NAMES.get(ch, ch)
    return keysym_to_keycode(name)


def lookup_string(keycode, shifted=False):
    """``XLookupString``: (ascii text, keysym value) for a key event.

    Modifier keys and function keys produce empty text, like the real
    call; printable keysyms produce their character.
    """
    value = keycode_to_keysym(keycode, shifted)
    if value == NoSymbol:
        return "", NoSymbol
    if 32 <= value < 256:
        return chr(value), value
    if value == 0xFF0D:
        return "\r", value
    if value == 0xFF09:
        return "\t", value
    if value == 0xFF08:
        return "\b", value
    return "", value
