"""XPM (X PixMap) and XBM (X BitMap) file formats.

The paper ships an extended String-to-Bitmap converter: try the file as
a standard X bitmap (XBM) first, and if that fails check whether it is
in Xpm format.  Both parsers live here, plus an XPM writer used by the
examples to save framebuffer screenshots.
"""

import re

import numpy

from repro.tcl.errors import TclError
from repro.xlib.colors import alloc_color, ColorError


class ImageFormatError(TclError):
    """Raised when a file is in neither expected format."""


_QUOTED = re.compile(r'"((?:[^"\\]|\\.)*)"')

TRANSPARENT = 0xFF000000  # sentinel pixel for 'None' XPM cells


def parse_xpm(text):
    """Parse XPM2/XPM3 text into a (height, width) uint32 pixel array.

    Transparent cells ('None') get the TRANSPARENT sentinel so callers
    can composite against a background.
    """
    strings = _QUOTED.findall(text)
    if not strings:
        # XPM2: "! XPM2" header, then unquoted lines.
        lines = [l for l in text.splitlines() if l.strip()]
        if lines and lines[0].lstrip().startswith("!"):
            strings = lines[1:]
    if not strings:
        raise ImageFormatError("not an XPM file")
    header = strings[0].split()
    if len(header) < 4:
        raise ImageFormatError("bad XPM header %r" % strings[0])
    try:
        width, height, ncolors, cpp = (int(v) for v in header[:4])
    except ValueError:
        raise ImageFormatError("bad XPM header %r" % strings[0])
    if len(strings) < 1 + ncolors + height:
        raise ImageFormatError("truncated XPM file")
    colors = {}
    for line in strings[1 : 1 + ncolors]:
        chars = line[:cpp]
        rest = line[cpp:].split()
        pixel = None
        # Color entries: key/value pairs like "c red m black s name".
        i = 0
        while i + 1 < len(rest) + 1 and i < len(rest):
            key = rest[i]
            if key in ("c", "m", "g", "g4") and i + 1 < len(rest):
                value = rest[i + 1]
                if key == "c":
                    pixel = _xpm_color(value)
                    break
                if pixel is None:
                    pixel = _xpm_color(value)
                i += 2
            elif key == "s" and i + 1 < len(rest):
                i += 2
            else:
                i += 1
        if pixel is None:
            raise ImageFormatError("bad XPM color line %r" % line)
        colors[chars] = pixel
    image = numpy.zeros((height, width), dtype=numpy.uint32)
    for row, line in enumerate(strings[1 + ncolors : 1 + ncolors + height]):
        for col in range(width):
            chars = line[col * cpp : (col + 1) * cpp]
            if chars not in colors:
                raise ImageFormatError(
                    "bad XPM pixel %r at (%d, %d)" % (chars, col, row)
                )
            image[row, col] = colors[chars]
    return image


def _xpm_color(value):
    if value.lower() == "none":
        return TRANSPARENT
    try:
        return alloc_color(value)
    except ColorError:
        raise ImageFormatError('bad XPM color "%s"' % value)


def write_xpm(image, name="screenshot"):
    """Render a pixel array to XPM3 text (used to save screenshots)."""
    height, width = image.shape
    unique = sorted(set(int(p) for p in image.flat))
    # Printable, XPM-safe palette characters.
    alphabet = (
        ".#abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789+-*/<>,:;=@$%&()[]"
    )
    cpp = 1 if len(unique) <= len(alphabet) else 2
    codes = {}
    for i, pixel in enumerate(unique):
        if cpp == 1:
            codes[pixel] = alphabet[i]
        else:
            codes[pixel] = (alphabet[i // len(alphabet)]
                            + alphabet[i % len(alphabet)])
    lines = ["/* XPM */", "static char * %s[] = {" % name,
             '"%d %d %d %d",' % (width, height, len(unique), cpp)]
    for pixel in unique:
        if pixel == TRANSPARENT:
            lines.append('"%s\tc None",' % codes[pixel])
        else:
            lines.append('"%s\tc #%06X",' % (codes[pixel], pixel))
    for row in range(height):
        body = "".join(codes[int(image[row, col])] for col in range(width))
        suffix = "," if row < height - 1 else ""
        lines.append('"%s"%s' % (body, suffix))
    lines.append("};")
    return "\n".join(lines) + "\n"


_XBM_DEFINE = re.compile(r"#define\s+\w*?_?(width|height)\s+(\d+)")
_XBM_BYTES = re.compile(r"0[xX][0-9a-fA-F]+|\d+")


def parse_xbm(text):
    """Parse an XBM bitmap into a (height, width) 0/1 uint32 array."""
    dims = {}
    for match in _XBM_DEFINE.finditer(text):
        dims[match.group(1)] = int(match.group(2))
    if "width" not in dims or "height" not in dims:
        raise ImageFormatError("not an XBM file (missing width/height)")
    brace = text.find("{")
    if brace < 0:
        raise ImageFormatError("not an XBM file (missing data)")
    data = [int(tok, 0) for tok in _XBM_BYTES.findall(text[brace:])]
    width, height = dims["width"], dims["height"]
    bytes_per_row = (width + 7) // 8
    if len(data) < bytes_per_row * height:
        raise ImageFormatError("truncated XBM data")
    image = numpy.zeros((height, width), dtype=numpy.uint32)
    for row in range(height):
        for col in range(width):
            byte = data[row * bytes_per_row + col // 8]
            if byte & (1 << (col % 8)):  # XBM is LSB-first
                image[row, col] = 1
    return image


def read_image_file(path):
    """The extended converter's logic: try XBM first, then XPM.

    Returns (image, kind) where kind is "xbm" or "xpm".
    """
    try:
        with open(path, "r") as handle:
            text = handle.read()
    except OSError as err:
        raise ImageFormatError('cannot read image file "%s": %s'
                               % (path, err.strerror))
    try:
        return parse_xbm(text), "xbm"
    except ImageFormatError:
        pass
    return parse_xpm(text), "xpm"
