"""A simulated X11 display server and client library.

The paper's substrate is an X11R5 server reached through Xlib.  This
package provides the equivalent surface as an in-process simulation:

* :mod:`repro.xlib.xtypes` -- protocol constants (event types, masks,
  grab modes, notify modes).
* :mod:`repro.xlib.colors` -- the named color database (``rgb.txt``) and
  pixel allocation.
* :mod:`repro.xlib.fonts` -- core fonts with XLFD pattern matching and
  deterministic glyph metrics.
* :mod:`repro.xlib.keysym` -- keycode/keysym tables modelled on the
  DECstation keyboard the paper was developed on (so the xev example's
  keycodes 198/174/197 reproduce exactly).
* :mod:`repro.xlib.display` -- displays, screens, the window tree, the
  event queue, grabs, selections and properties.
* :mod:`repro.xlib.graphics` -- GCs and drawing into a numpy
  framebuffer; pixmaps.
* :mod:`repro.xlib.xpm` -- the XPM pixmap file format plus XBM bitmaps
  (for the extended String-to-Bitmap converter).

Everything a widget does -- realize, paint, receive events -- happens
for real against this server, which is what lets the benchmarks measure
refresh behaviour and click-ahead rather than assert them.
"""

from repro.xlib.display import (Display, Window, open_display,
                                close_display, close_all_displays)
from repro.xlib.events import XEvent

__all__ = ["Display", "Window", "XEvent", "open_display", "close_display",
           "close_all_displays"]
