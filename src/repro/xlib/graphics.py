"""GCs, pixmaps, and drawing into the framebuffer.

A drawable is either a :class:`~repro.xlib.display.Window` (drawing
lands in the screen framebuffer, clipped to the window) or a
:class:`Pixmap` (its own array).  The primitives are the ones the
Athena widgets need: rectangles, lines, points, text, area copy/clear,
and a rough arc.  Text uses the deterministic glyphs from
:mod:`repro.xlib.fonts`, so a painted Label provably contains its text.
"""

import numpy

from repro.xlib.display import Window
from repro.xlib.fonts import default_font


class Pixmap:
    """An off-screen drawable.  depth=1 models an X bitmap."""

    def __init__(self, width, height, depth=24):
        self.width = width
        self.height = height
        self.depth = depth
        self.framebuffer = numpy.zeros((height, width), dtype=numpy.uint32)

    def absolute_origin(self):
        return 0, 0


class GC:
    """Graphics context: foreground/background pixels and the font."""

    __slots__ = ("foreground", "background", "font", "line_width")

    def __init__(self, foreground=0x000000, background=0xFFFFFF, font=None,
                 line_width=1):
        self.foreground = foreground
        self.background = background
        self.font = font if font is not None else default_font()
        self.line_width = max(1, line_width)

    def copy(self):
        return GC(self.foreground, self.background, self.font,
                  self.line_width)


def _target(drawable):
    """Resolve a drawable to
    (array, origin_x, origin_y, clip_w, clip_h, window_or_None)."""
    if isinstance(drawable, Pixmap):
        return (drawable.framebuffer, 0, 0, drawable.width, drawable.height,
                None)
    if isinstance(drawable, Window):
        ox, oy = drawable.absolute_origin()
        return (drawable.display.screen.framebuffer, ox, oy,
                drawable.width, drawable.height, drawable)
    raise TypeError("not a drawable: %r" % (drawable,))


def _clip_rect(fb, ox, oy, cw, ch, x, y, w, h, clip=None):
    """Intersect a drawable-relative rect with the clip and framebuffer.

    ``clip`` is an optional extra drawable-relative box (x0, y0, x1, y1)
    -- the damage rect a widget is currently repainting."""
    x0 = max(0, x)
    y0 = max(0, y)
    x1 = min(cw, x + w)
    y1 = min(ch, y + h)
    if clip is not None:
        x0 = max(x0, clip[0])
        y0 = max(y0, clip[1])
        x1 = min(x1, clip[2])
        y1 = min(y1, clip[3])
    ax0, ay0 = ox + x0, oy + y0
    ax1, ay1 = ox + x1, oy + y1
    fh, fw = fb.shape
    ax0, ay0 = max(0, ax0), max(0, ay0)
    ax1, ay1 = min(fw, ax1), min(fh, ay1)
    if ax0 >= ax1 or ay0 >= ay1:
        return None
    return ax0, ay0, ax1, ay1


def _paint_box(target, x, y, w, h):
    """Clip a paint rect against the window's active damage clip and
    record the pixels actually written.  ``target`` is a resolved
    ``_target()`` tuple."""
    fb, ox, oy, cw, ch, window = target
    box = _clip_rect(fb, ox, oy, cw, ch, x, y, w, h,
                     None if window is None else window.paint_clip)
    if box is not None and window is not None:
        window.display.record_draw(box)
    return fb, box


def fill_rectangle(drawable, gc, x, y, width, height):
    fb, box = _paint_box(_target(drawable), x, y, width, height)
    if box is not None:
        ax0, ay0, ax1, ay1 = box
        fb[ay0:ay1, ax0:ax1] = gc.foreground


def clear_area(drawable, x=0, y=0, width=None, height=None, pixel=None):
    target = _target(drawable)
    if width is None:
        width = target[3]
    if height is None:
        height = target[4]
    if pixel is None:
        pixel = getattr(drawable, "background_pixel", 0xFFFFFF)
    fb, box = _paint_box(target, x, y, width, height)
    if box is not None:
        ax0, ay0, ax1, ay1 = box
        fb[ay0:ay1, ax0:ax1] = pixel


def draw_rectangle(drawable, gc, x, y, width, height):
    thickness = gc.line_width
    fill_rectangle(drawable, gc, x, y, width, thickness)
    fill_rectangle(drawable, gc, x, y + height - thickness, width, thickness)
    fill_rectangle(drawable, gc, x, y, thickness, height)
    fill_rectangle(drawable, gc, x + width - thickness, y, thickness, height)


def draw_point(drawable, gc, x, y):
    fill_rectangle(drawable, gc, x, y, 1, 1)


def draw_line(drawable, gc, x1, y1, x2, y2):
    """Bresenham; thickness via square pen."""
    dx = abs(x2 - x1)
    dy = abs(y2 - y1)
    sx = 1 if x1 < x2 else -1
    sy = 1 if y1 < y2 else -1
    err = dx - dy
    x, y = x1, y1
    pen = gc.line_width
    while True:
        fill_rectangle(drawable, gc, x, y, pen, pen)
        if x == x2 and y == y2:
            break
        e2 = 2 * err
        if e2 > -dy:
            err -= dy
            x += sx
        if e2 < dx:
            err += dx
            y += sy


def draw_lines(drawable, gc, points):
    for (x1, y1), (x2, y2) in zip(points, points[1:]):
        draw_line(drawable, gc, x1, y1, x2, y2)


def draw_arc_outline(drawable, gc, x, y, width, height):
    """A rough ellipse outline inscribed in the rect (enough for Grips)."""
    import math

    cx = x + width / 2.0
    cy = y + height / 2.0
    rx = max(1.0, width / 2.0)
    ry = max(1.0, height / 2.0)
    steps = max(12, int(2 * math.pi * max(rx, ry) / 2))
    last = None
    for i in range(steps + 1):
        angle = 2 * math.pi * i / steps
        px = int(round(cx + rx * math.cos(angle)))
        py = int(round(cy + ry * math.sin(angle)))
        if last is not None:
            draw_line(drawable, gc, last[0], last[1], px, py)
        last = (px, py)


def draw_string(drawable, gc, x, y, text):
    """Draw text with the GC font; (x, y) is the baseline origin."""
    font = gc.font
    cursor = x
    top = y - font.ascent
    scale_x = max(1, font.size // 10)
    scale_y = max(1, font.height // 8)
    for ch in text:
        width = font.char_width(ch)
        rows = font.glyph_bits(ch)
        for row, bits in enumerate(rows):
            for col in range(5):
                if bits & (1 << col):
                    fill_rectangle(drawable, gc,
                                   cursor + col * scale_x,
                                   top + row * scale_y,
                                   scale_x, scale_y)
        cursor += width
    return cursor - x


def draw_image_string(drawable, gc, x, y, text):
    """Like draw_string but paints the background box first."""
    font = gc.font
    width = font.text_width(text)
    background = GC(gc.background, gc.background, gc.font)
    fill_rectangle(drawable, background, x, y - font.ascent, width,
                   font.height)
    return draw_string(drawable, gc, x, y, text)


def copy_area(src, dest, gc, src_x, src_y, width, height, dest_x, dest_y):
    sfb, sox, soy, scw, sch, _swin = _target(src)
    # The source is read, not painted: no paint clip, no draw record.
    src_box = _clip_rect(sfb, sox, soy, scw, sch, src_x, src_y, width, height)
    if src_box is None:
        return
    ax0, ay0, ax1, ay1 = src_box
    tile = sfb[ay0:ay1, ax0:ax1].copy()
    dtarget = _target(dest)
    dox, doy = dtarget[1], dtarget[2]
    dfb, dst_box = _paint_box(dtarget, dest_x, dest_y, ax1 - ax0, ay1 - ay0)
    if dst_box is None:
        return
    bx0, by0, bx1, by1 = dst_box
    tx0 = bx0 - (dox + dest_x)
    ty0 = by0 - (doy + dest_y)
    dfb[by0:by1, bx0:bx1] = tile[ty0 : ty0 + (by1 - by0),
                                 tx0 : tx0 + (bx1 - bx0)]


def put_image(drawable, gc, image, x, y):
    """Blit a (h, w) array of pixels (a decoded XPM) onto a drawable.

    XPM ``None`` cells (the TRANSPARENT sentinel) act as a shape mask:
    the destination shows through, as with a clip-mask in real X.
    """
    from repro.xlib.xpm import TRANSPARENT

    height, width = image.shape
    target = _target(drawable)
    ox, oy = target[1], target[2]
    fb, box = _paint_box(target, x, y, width, height)
    if box is None:
        return
    ax0, ay0, ax1, ay1 = box
    sx0 = ax0 - (ox + x)
    sy0 = ay0 - (oy + y)
    tile = image[sy0 : sy0 + (ay1 - ay0), sx0 : sx0 + (ax1 - ax0)]
    opaque = tile != TRANSPARENT
    region = fb[ay0:ay1, ax0:ax1]
    region[opaque] = tile[opaque]


def window_pixels(window):
    """Snapshot a window's rectangle of the framebuffer (for tests).

    Always the full window: the paint clip applies to painting, not to
    reading back."""
    fb, ox, oy, cw, ch, _win = _target(window)
    fh, fw = fb.shape
    x0, y0 = max(0, ox), max(0, oy)
    x1, y1 = min(fw, ox + cw), min(fh, oy + ch)
    return fb[y0:y1, x0:x1].copy()
