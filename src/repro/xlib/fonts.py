"""Core fonts: XLFD pattern matching and deterministic glyph metrics.

The server ships a synthetic font repertoire covering the names the
paper uses (``fixed`` and the ``*b&h-lucida-medium-r*14*`` /
``*b&h-lucida-bold-r*14*`` XLFD patterns of the compound-string
example).  Glyphs are deterministic 5x7 pseudo-bitmaps derived from the
character code, so rendering the same string always paints the same
pixels and different strings paint different pixels -- enough for the
test suite to verify real drawing without shipping font files.
"""

from repro.tcl.errors import TclError


class FontError(TclError):
    """Raised when no font matches a pattern."""


_FAMILIES = [
    # (foundry, family, weights, slants)
    ("misc", "fixed", ("medium", "bold"), ("r",)),
    ("b&h", "lucida", ("medium", "bold"), ("r", "i")),
    ("b&h", "lucidatypewriter", ("medium", "bold"), ("r",)),
    ("adobe", "helvetica", ("medium", "bold"), ("r", "o")),
    ("adobe", "times", ("medium", "bold"), ("r", "i")),
    ("adobe", "courier", ("medium", "bold"), ("r", "o")),
]

_SIZES = (8, 10, 12, 14, 18, 24)

_ALIASES = {
    "fixed": "-misc-fixed-medium-r-normal--13-120-75-75-c-70-iso8859-1",
    "6x13": "-misc-fixed-medium-r-normal--13-120-75-75-c-70-iso8859-1",
    "9x15": "-misc-fixed-medium-r-normal--14-140-75-75-c-90-iso8859-1",
    "variable": "-adobe-helvetica-medium-r-normal--12-120-75-75-p-67-iso8859-1",
}


def _xlfd(foundry, family, weight, slant, size):
    return "-%s-%s-%s-%s-normal--%d-%d-75-75-%s-%d-iso8859-1" % (
        foundry,
        family,
        weight,
        slant,
        size,
        size * 10,
        "c" if family in ("fixed", "courier", "lucidatypewriter") else "p",
        size * 6,
    )


def _all_font_names():
    names = []
    for foundry, family, weights, slants in _FAMILIES:
        for weight in weights:
            for slant in slants:
                for size in _SIZES:
                    names.append(_xlfd(foundry, family, weight, slant, size))
    return names

_FONT_NAMES = _all_font_names()


def _pattern_match(pattern, name):
    """XLFD-ish glob: ``*`` matches any run, ``?`` one char."""
    pattern = pattern.lower()
    name = name.lower()
    return _glob(pattern, 0, name, 0)


def _glob(pat, pi, text, ti):
    np, nt = len(pat), len(text)
    while pi < np:
        ch = pat[pi]
        if ch == "*":
            while pi < np and pat[pi] == "*":
                pi += 1
            if pi == np:
                return True
            for start in range(ti, nt + 1):
                if _glob(pat, pi, text, start):
                    return True
            return False
        if ti >= nt:
            return False
        if ch == "?" or ch == text[ti]:
            pi += 1
            ti += 1
            continue
        return False
    return ti == nt


class Font:
    """A loaded font: metrics plus deterministic glyph bitmaps."""

    __slots__ = ("name", "family", "weight", "slant", "size", "ascent",
                 "descent", "monospace")

    def __init__(self, name):
        self.name = name
        fields = name.split("-")
        # XLFD: ['', foundry, family, weight, slant, setwidth, style,
        #        pixel, point, resx, resy, spacing, avg, charset, enc]
        self.family = fields[2] if len(fields) > 2 else "fixed"
        self.weight = fields[3] if len(fields) > 3 else "medium"
        self.slant = fields[4] if len(fields) > 4 else "r"
        try:
            self.size = int(fields[7])
        except (IndexError, ValueError):
            self.size = 13
        self.ascent = (self.size * 4 + 2) // 5
        self.descent = self.size - self.ascent
        self.monospace = self.family in ("fixed", "courier", "lucidatypewriter")

    @property
    def height(self):
        return self.ascent + self.descent

    def char_width(self, ch):
        base = max(4, (self.size * 3) // 5)
        if self.monospace:
            width = base
        else:
            # Proportional: narrow chars narrower, wide chars wider.
            code = ord(ch) if ch else 32
            if ch in "iljI.,:;'|!":
                width = max(2, base // 2)
            elif ch in "mwMW@":
                width = base + base // 2
            else:
                width = base + (code % 3) - 1
        if self.weight == "bold":
            width += 1
        return max(2, width)

    def text_width(self, text):
        return sum(self.char_width(ch) for ch in text)

    def glyph_bits(self, ch):
        """A deterministic 5x7 bit pattern for ``ch`` (list of 7 rows).

        Derived from a multiplicative hash of the character code so the
        pattern is stable across runs, nonzero for printable characters,
        and distinct between most character pairs.
        """
        code = ord(ch)
        if code <= 32:
            return [0] * 7
        seed = (code * 2654435761) & 0xFFFFFFFF
        rows = []
        for row in range(7):
            rows.append((seed >> (row * 4)) & 0x1F or 0x04)
        return rows

    def __repr__(self):  # pragma: no cover
        return "Font(%r)" % self.name


_loaded = {}


def list_fonts(pattern="*", max_names=200):
    """``XListFonts``: all font names matching a pattern."""
    hits = [n for n in _FONT_NAMES if _pattern_match(pattern, n)]
    for alias in _ALIASES:
        if _pattern_match(pattern, alias):
            hits.append(alias)
    return hits[:max_names]


def load_font(pattern):
    """``XLoadQueryFont``: first matching font, else FontError."""
    key = pattern.strip()
    cached = _loaded.get(key)
    if cached is not None:
        return cached
    name = _ALIASES.get(key.lower())
    if name is None:
        if _pattern_match(key, key) and key in _FONT_NAMES:
            name = key
        else:
            matches = [n for n in _FONT_NAMES if _pattern_match(key, n)]
            if not matches:
                raise FontError('unable to load font "%s"' % pattern)
            name = matches[0]
    font = Font(name)
    _loaded[key] = font
    return font


DEFAULT_FONT_NAME = "fixed"


def default_font():
    return load_font(DEFAULT_FONT_NAME)
