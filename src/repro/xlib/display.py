"""The simulated display server: windows, the event queue, grabs.

``open_display(name)`` returns a per-name singleton, so a Wafe script
that creates a second application shell on ``dec4:0`` really talks to a
second (virtual) server, as in the paper's multi-display example.

The server owns a framebuffer per screen (numpy, 0xRRGGBB per pixel);
drawing happens through :mod:`repro.xlib.graphics`.  Event *synthesis*
helpers (``press_button``, ``type_string``, ...) stand in for a human
at the keyboard -- tests and benchmarks drive whole applications with
them.
"""

import collections
import itertools

import numpy

from repro.xlib import keysym as _keysym
from repro.xlib import xtypes
from repro.xlib.events import XEvent


class XError(Exception):
    """A protocol-level error (BadWindow and friends)."""


class Window:
    """One window in the server-side window tree."""

    _ids = itertools.count(0x400001)

    def __init__(self, display, parent, x, y, width, height, border_width=0):
        self.display = display
        self.parent = parent
        self.children = []
        self.wid = next(Window._ids)
        self.x = x
        self.y = y
        self.width = max(1, width)
        self.height = max(1, height)
        self.border_width = border_width
        self.mapped = False
        self.destroyed = False
        self.event_mask = 0
        self.background_pixel = 0xFFFFFF
        self.properties = {}
        self.override_redirect = False
        if parent is not None:
            parent.children.append(self)

    # -- geometry ------------------------------------------------------

    def absolute_origin(self):
        x, y = 0, 0
        window = self
        while window is not None:
            x += window.x
            y += window.y
            window = window.parent
        return x, y

    def contains_absolute(self, ax, ay):
        ox, oy = self.absolute_origin()
        return ox <= ax < ox + self.width and oy <= ay < oy + self.height

    def viewable(self):
        window = self
        while window is not None:
            if window.destroyed or not window.mapped:
                return False
            window = window.parent
        return True

    # -- lifecycle -----------------------------------------------------

    def map(self):
        if self.destroyed or self.mapped:
            return
        self.mapped = True
        self.display._notify_structure(self, xtypes.MapNotify)
        if self.viewable():
            self.display.expose(self)

    def unmap(self):
        if not self.mapped:
            return
        self.mapped = False
        self.display._notify_structure(self, xtypes.UnmapNotify)

    def destroy(self):
        if self.destroyed:
            return
        for child in list(self.children):
            child.destroy()
        self.destroyed = True
        self.mapped = False
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        self.display._notify_structure(self, xtypes.DestroyNotify)
        self.display._forget_window(self)

    def configure(self, x=None, y=None, width=None, height=None,
                  border_width=None):
        changed = False
        for attr, value in (("x", x), ("y", y), ("width", width),
                            ("height", height), ("border_width", border_width)):
            if value is not None and getattr(self, attr) != value:
                setattr(self, attr, value)
                changed = True
        if changed:
            self.display._notify_structure(self, xtypes.ConfigureNotify)
            if self.viewable():
                self.display.expose(self)

    def raise_window(self):
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent.children.append(self)

    def select_input(self, event_mask):
        self.event_mask = event_mask

    def __repr__(self):  # pragma: no cover
        return "<Window 0x%x %dx%d+%d+%d%s>" % (
            self.wid, self.width, self.height, self.x, self.y,
            " mapped" if self.mapped else "",
        )


class Screen:
    """A screen: root window plus framebuffer."""

    def __init__(self, display, width=1024, height=768):
        self.display = display
        self.width = width
        self.height = height
        self.black_pixel = 0x000000
        self.white_pixel = 0xFFFFFF
        self.framebuffer = numpy.full((height, width), self.white_pixel,
                                      dtype=numpy.uint32)
        self.root = Window(display, None, 0, 0, width, height)
        self.root.mapped = True


class Display:
    """One virtual X server connection."""

    def __init__(self, name=":0"):
        self.name = name
        self.screen = Screen(self)
        self.queue = collections.deque()
        self._time = itertools.count(1000)
        self.pointer_window = None
        self.pointer_x = 0
        self.pointer_y = 0
        self.pointer_state = 0
        self.focus_window = None
        self.grab_window = None
        self.grab_owner_events = False
        self.implicit_grab = None  # active between ButtonPress and Release
        self.selections = {}  # atom name -> (window, owner_callback, time)
        self.closed = False
        self.event_hook = None  # called on every put_event (for app loops)

    # ------------------------------------------------------------------
    # Window management

    @property
    def root(self):
        return self.screen.root

    def create_window(self, parent, x, y, width, height, border_width=0):
        if parent is None:
            parent = self.root
        return Window(self, parent, x, y, width, height, border_width)

    def _forget_window(self, window):
        if self.pointer_window is window:
            self.pointer_window = None
        if self.focus_window is window:
            self.focus_window = None
        if self.grab_window is window:
            self.grab_window = None
        self.queue = collections.deque(
            e for e in self.queue if e.window is not window
        )

    def window_at(self, ax, ay, root=None):
        """The deepest viewable window containing an absolute point."""
        window = root if root is not None else self.root
        if not window.mapped or not window.contains_absolute(ax, ay):
            return None
        # Later children are on top.
        for child in reversed(window.children):
            if child.mapped:
                hit = self.window_at(ax, ay, child)
                if hit is not None:
                    return hit
        return window

    # ------------------------------------------------------------------
    # Event queue

    def next_time(self):
        return next(self._time)

    def put_event(self, event):
        if event.time == 0:
            event.time = self.next_time()
        self.queue.append(event)
        if self.event_hook is not None:
            self.event_hook(event)

    def pending(self):
        return len(self.queue)

    def next_event(self):
        if not self.queue:
            raise XError("event queue empty")
        return self.queue.popleft()

    def flush(self):
        """No-op: the simulation is synchronous."""

    def sync(self):
        """No-op: the simulation is synchronous."""

    def _notify_structure(self, window, event_type):
        if window.event_mask & xtypes.StructureNotifyMask:
            self.put_event(XEvent(event_type, window,
                                  width=window.width, height=window.height))

    def expose(self, window, x=0, y=0, width=None, height=None, count=0):
        """Queue an Expose for a window (and viewable descendants)."""
        if not window.viewable():
            return
        if window.event_mask & xtypes.ExposureMask:
            self.put_event(XEvent(
                xtypes.Expose, window, x=x, y=y,
                width=window.width if width is None else width,
                height=window.height if height is None else height,
                count=count,
            ))
        for child in window.children:
            if child.mapped:
                self.expose(child)

    # ------------------------------------------------------------------
    # Grabs, focus, selections

    def grab_pointer(self, window, owner_events=False):
        self.grab_window = window
        self.grab_owner_events = owner_events

    def ungrab_pointer(self):
        self.grab_window = None

    def set_input_focus(self, window):
        self.focus_window = window

    def set_selection_owner(self, selection, window, convert_callback):
        """Own a selection; the callback produces (type, value) on demand."""
        previous = self.selections.get(selection)
        if previous is not None and previous[0] is not window:
            old_window = previous[0]
            if old_window is not None and not old_window.destroyed:
                self.put_event(XEvent(xtypes.SelectionClear, old_window,
                                      selection=selection))
        self.selections[selection] = (window, convert_callback,
                                      self.next_time())

    def get_selection_owner(self, selection):
        entry = self.selections.get(selection)
        return entry[0] if entry else None

    def convert_selection(self, selection, target, requestor):
        """Ask the owner for the selection; delivers SelectionNotify."""
        entry = self.selections.get(selection)
        if entry is None:
            self.put_event(XEvent(xtypes.SelectionNotify, requestor,
                                  selection=selection, target=target,
                                  property=None, data=None))
            return
        _window, callback, _t = entry
        data = callback(target)
        self.put_event(XEvent(xtypes.SelectionNotify, requestor,
                              selection=selection, target=target,
                              property="SELECTION", data=data))

    # ------------------------------------------------------------------
    # Event synthesis (the "user at the keyboard")

    def _deliver_target(self, window):
        """Honour an active pointer grab the way the server does."""
        if self.grab_window is None and self.implicit_grab is not None:
            # The implicit grab between ButtonPress and ButtonRelease:
            # motion and release go to the pressed window (drags work).
            if self.implicit_grab.destroyed:
                self.implicit_grab = None
            else:
                return self.implicit_grab
        if self.grab_window is None or window is None:
            return window
        # owner_events: events in the grab client's windows go there
        # normally; everything else is reported to the grab window.
        probe = window
        while probe is not None:
            if probe is self.grab_window:
                return window
            probe = probe.parent
        if self.grab_owner_events:
            return window
        return self.grab_window

    def _crossing(self, new_window, ax, ay):
        old = self.pointer_window
        if old is new_window:
            return
        if old is not None and not old.destroyed and (
                old.event_mask & xtypes.LeaveWindowMask):
            ox, oy = old.absolute_origin()
            self.put_event(XEvent(xtypes.LeaveNotify, old,
                                  x=ax - ox, y=ay - oy,
                                  x_root=ax, y_root=ay,
                                  state=self.pointer_state))
        if new_window is not None and (
                new_window.event_mask & xtypes.EnterWindowMask):
            nx, ny = new_window.absolute_origin()
            self.put_event(XEvent(xtypes.EnterNotify, new_window,
                                  x=ax - nx, y=ay - ny,
                                  x_root=ax, y_root=ay,
                                  state=self.pointer_state))
        self.pointer_window = new_window

    def warp_pointer(self, ax, ay):
        """Move the pointer; generates Enter/Leave crossings."""
        self.pointer_x = ax
        self.pointer_y = ay
        self._crossing(self.window_at(ax, ay), ax, ay)

    def motion(self, ax, ay):
        self.warp_pointer(ax, ay)
        window = self._deliver_target(self.window_at(ax, ay))
        if window is not None and (
                window.event_mask & (xtypes.PointerMotionMask |
                                     xtypes.ButtonMotionMask)):
            ox, oy = window.absolute_origin()
            self.put_event(XEvent(xtypes.MotionNotify, window,
                                  x=ax - ox, y=ay - oy, x_root=ax, y_root=ay,
                                  state=self.pointer_state))

    def press_button(self, ax, ay, button=1):
        self.warp_pointer(ax, ay)
        target = self._deliver_target(self.window_at(ax, ay))
        if target is None:
            return
        ox, oy = target.absolute_origin()
        self.put_event(XEvent(xtypes.ButtonPress, target, button=button,
                              x=ax - ox, y=ay - oy, x_root=ax, y_root=ay,
                              state=self.pointer_state))
        if self.pointer_state & (xtypes.Button1Mask | xtypes.Button2Mask |
                                 xtypes.Button3Mask) == 0:
            self.implicit_grab = target
        self.pointer_state |= xtypes.Button1Mask << (button - 1)

    def release_button(self, ax, ay, button=1):
        self.warp_pointer(ax, ay)
        self.pointer_state &= ~(xtypes.Button1Mask << (button - 1))
        target = self._deliver_target(self.window_at(ax, ay))
        if self.pointer_state & (xtypes.Button1Mask | xtypes.Button2Mask |
                                 xtypes.Button3Mask) == 0:
            self.implicit_grab = None
        if target is None:
            return
        ox, oy = target.absolute_origin()
        self.put_event(XEvent(xtypes.ButtonRelease, target, button=button,
                              x=ax - ox, y=ay - oy, x_root=ax, y_root=ay,
                              state=self.pointer_state))

    def click(self, ax, ay, button=1):
        self.press_button(ax, ay, button)
        self.release_button(ax, ay, button)

    def press_key(self, window, keycode, state=0, release=True):
        """Key press (and release) delivered to a window (or the focus)."""
        if window is None:
            window = self.focus_window or self.pointer_window or self.root
        ox, oy = window.absolute_origin()
        x = self.pointer_x - ox
        y = self.pointer_y - oy
        self.put_event(XEvent(xtypes.KeyPress, window, keycode=keycode,
                              state=state, x=x, y=y,
                              x_root=self.pointer_x, y_root=self.pointer_y))
        if release:
            self.put_event(XEvent(xtypes.KeyRelease, window, keycode=keycode,
                                  state=state, x=x, y=y,
                                  x_root=self.pointer_x,
                                  y_root=self.pointer_y))

    def type_string(self, window, text, release=True):
        """Type text: shift keys are pressed around shifted characters,
        exactly as the paper's xev example requires."""
        shift_code, _ = _keysym.keysym_to_keycode("Shift_L")
        for ch in text:
            keycode, shifted = _keysym.char_to_keycode(ch)
            if keycode == 0:
                continue
            if shifted:
                self.press_key(window, shift_code, release=release)
                self.press_key(window, keycode, state=xtypes.ShiftMask,
                               release=release)
            else:
                self.press_key(window, keycode, release=release)

    def close(self):
        self.closed = True
        self.queue.clear()


_displays = {}


def open_display(name=":0"):
    """Open (or reuse) the virtual display with this name."""
    display = _displays.get(name)
    if display is None or display.closed:
        display = Display(name)
        _displays[name] = display
    return display


def close_all_displays():
    """Tear down every virtual display (test isolation)."""
    for display in _displays.values():
        display.close()
    _displays.clear()
