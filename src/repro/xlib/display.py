"""The simulated display server: windows, the event queue, grabs.

``open_display(name)`` returns a per-name singleton, so a Wafe script
that creates a second application shell on ``dec4:0`` really talks to a
second (virtual) server, as in the paper's multi-display example.

The server owns a framebuffer per screen (numpy, 0xRRGGBB per pixel);
drawing happens through :mod:`repro.xlib.graphics`.  Event *synthesis*
helpers (``press_button``, ``type_string``, ...) stand in for a human
at the keyboard -- tests and benchmarks drive whole applications with
them.
"""

import collections
import itertools

import numpy

from repro.xlib import keysym as _keysym
from repro.xlib import xtypes
from repro.xlib.events import XEvent
from repro.xlib.region import NaiveRegion, Region


class XError(Exception):
    """A protocol-level error (BadWindow and friends)."""


class Window:
    """One window in the server-side window tree."""

    _ids = itertools.count(0x400001)

    def __init__(self, display, parent, x, y, width, height, border_width=0):
        self.display = display
        self.parent = parent
        self.children = []
        self.wid = next(Window._ids)
        self.x = x
        self.y = y
        self.width = max(1, width)
        self.height = max(1, height)
        self.border_width = border_width
        self.mapped = False
        self.destroyed = False
        self.event_mask = 0
        self.background_pixel = 0xFFFFFF
        self.properties = {}
        self.override_redirect = False
        # "forget": any resize invalidates the whole window (the safe
        # default for size-dependent drawing such as centered text).
        # "northwest": content is anchored at the origin, so a resize
        # only damages the newly revealed L-shaped strip (new \ old).
        self.bit_gravity = "forget"
        # While a widget repaints one damage rect, the toolkit installs
        # the rect here and every drawing primitive clips against it.
        self.paint_clip = None
        if parent is not None:
            parent.children.append(self)

    # -- geometry ------------------------------------------------------

    def absolute_origin(self):
        x, y = 0, 0
        window = self
        while window is not None:
            x += window.x
            y += window.y
            window = window.parent
        return x, y

    def contains_absolute(self, ax, ay):
        ox, oy = self.absolute_origin()
        return ox <= ax < ox + self.width and oy <= ay < oy + self.height

    def viewable(self):
        window = self
        while window is not None:
            if window.destroyed or not window.mapped:
                return False
            window = window.parent
        return True

    # -- lifecycle -----------------------------------------------------

    def map(self):
        if self.destroyed or self.mapped:
            return
        self.mapped = True
        self.display._notify_structure(self, xtypes.MapNotify)
        if self.viewable():
            self.display.damage_subtree(self)

    def unmap(self):
        if not self.mapped:
            return
        self.mapped = False
        self.display._notify_structure(self, xtypes.UnmapNotify)

    def destroy(self):
        if self.destroyed:
            return
        for child in list(self.children):
            child.destroy()
        self.destroyed = True
        self.mapped = False
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        self.display._notify_structure(self, xtypes.DestroyNotify)
        self.display._forget_window(self)

    def configure(self, x=None, y=None, width=None, height=None,
                  border_width=None):
        old_x, old_y = self.x, self.y
        old_w, old_h = self.width, self.height
        changed = False
        for attr, value in (("x", x), ("y", y), ("width", width),
                            ("height", height), ("border_width", border_width)):
            if value is not None and getattr(self, attr) != value:
                setattr(self, attr, value)
                changed = True
        if changed:
            self.display._notify_structure(self, xtypes.ConfigureNotify)
            if self.viewable():
                self.display.damage_configure(self, old_x, old_y,
                                              old_w, old_h)

    def raise_window(self):
        """Restack on top of the siblings, damaging the area that the
        formerly overlapping siblings revealed (old occlusion algebra:
        only the region previously covered by later siblings needs a
        repaint -- already-topmost pixels are still correct)."""
        parent = self.parent
        if parent is None or parent.children[-1] is self:
            return
        display = self.display
        revealed = None
        if display.use_regions and self.viewable():
            index = parent.children.index(self)
            ox, oy = self.absolute_origin()
            revealed = display.new_region()
            for sibling in parent.children[index + 1:]:
                if not sibling.mapped or sibling.destroyed:
                    continue
                sx, sy = sibling.absolute_origin()
                revealed.add_rect(sx - ox, sy - oy,
                                  sx - ox + sibling.width,
                                  sy - oy + sibling.height)
            revealed.intersect_rect(0, 0, self.width, self.height)
        parent.children.remove(self)
        parent.children.append(self)
        if revealed is not None:
            if not revealed.is_empty():
                display.damage_region_subtree(self, revealed)
        elif self.viewable():
            # Eager-expose spec path: repaint the whole subtree.
            display.expose(self)

    def select_input(self, event_mask):
        self.event_mask = event_mask

    def __repr__(self):  # pragma: no cover
        return "<Window 0x%x %dx%d+%d+%d%s>" % (
            self.wid, self.width, self.height, self.x, self.y,
            " mapped" if self.mapped else "",
        )


class Screen:
    """A screen: root window plus framebuffer."""

    def __init__(self, display, width=1024, height=768):
        self.display = display
        self.width = width
        self.height = height
        self.black_pixel = 0x000000
        self.white_pixel = 0xFFFFFF
        self.framebuffer = numpy.full((height, width), self.white_pixel,
                                      dtype=numpy.uint32)
        self.root = Window(display, None, 0, 0, width, height)
        self.root.mapped = True


class Display:
    """One virtual X server connection."""

    def __init__(self, name=":0", use_regions=True, naive_regions=False):
        self.name = name
        # use_regions=False is the eager-expose executable spec: every
        # map/configure/raise immediately queues full-window exposes for
        # the whole subtree, exactly as before the damage subsystem.
        # naive_regions=True keeps damage tracking but swaps the band
        # Region for the rect-list spec (differential testing).
        self.use_regions = use_regions
        self.naive_regions = naive_regions
        self._damage = {}  # wid -> (window, region), insertion ordered
        self._in_damage_flush = False
        self.render_stats = self._zero_render_stats()
        self.screen = Screen(self)
        self.queue = collections.deque()
        self._time = itertools.count(1000)
        self.pointer_window = None
        self.pointer_x = 0
        self.pointer_y = 0
        self.pointer_state = 0
        self.focus_window = None
        self.grab_window = None
        self.grab_owner_events = False
        self.implicit_grab = None  # active between ButtonPress and Release
        self.selections = {}  # atom name -> (window, owner_callback, time)
        self.closed = False
        self.event_hook = None  # called on every put_event (for app loops)

    # ------------------------------------------------------------------
    # Window management

    @property
    def root(self):
        return self.screen.root

    def create_window(self, parent, x, y, width, height, border_width=0):
        if parent is None:
            parent = self.root
        return Window(self, parent, x, y, width, height, border_width)

    def _forget_window(self, window):
        if self.pointer_window is window:
            self.pointer_window = None
        if self.focus_window is window:
            self.focus_window = None
        if self.grab_window is window:
            self.grab_window = None
        self._damage.pop(window.wid, None)
        self.queue = collections.deque(
            e for e in self.queue if e.window is not window
        )

    def window_at(self, ax, ay, root=None):
        """The deepest viewable window containing an absolute point."""
        window = root if root is not None else self.root
        if not window.mapped or not window.contains_absolute(ax, ay):
            return None
        # Later children are on top.
        for child in reversed(window.children):
            if child.mapped:
                hit = self.window_at(ax, ay, child)
                if hit is not None:
                    return hit
        return window

    # ------------------------------------------------------------------
    # Event queue

    def next_time(self):
        return next(self._time)

    def put_event(self, event):
        if event.time == 0:
            event.time = self.next_time()
        self.queue.append(event)
        if self.event_hook is not None:
            self.event_hook(event)

    def pending(self):
        self.flush_damage()
        return len(self.queue)

    def next_event(self):
        self.flush_damage()
        if not self.queue:
            raise XError("event queue empty")
        return self.queue.popleft()

    def flush(self):
        """Flush accumulated damage into Expose events."""
        self.flush_damage()

    def sync(self):
        """Flush accumulated damage into Expose events."""
        self.flush_damage()

    def _notify_structure(self, window, event_type):
        if window.event_mask & xtypes.StructureNotifyMask:
            self.put_event(XEvent(event_type, window,
                                  width=window.width, height=window.height))

    # ------------------------------------------------------------------
    # Damage tracking

    def new_region(self):
        return NaiveRegion() if self.naive_regions else Region()

    @staticmethod
    def _zero_render_stats():
        return {
            "damage_rects": 0,     # rects reported into the accumulator
            "damage_pixels": 0,    # their clipped area (pre-coalescing)
            "expose_series": 0,    # coalesced per-window Expose series
            "expose_events": 0,    # Expose events emitted
            "exposed_pixels": 0,   # area carried by those events
            "draw_calls": 0,       # clipped drawing primitives executed
            "drawn_pixels": 0,     # framebuffer pixels actually written
            "damage_flushes": 0,   # flush points that found damage
        }

    def reset_render_stats(self):
        self.render_stats = self._zero_render_stats()

    def record_draw(self, box):
        """Called by graphics primitives with the clipped absolute box."""
        stats = self.render_stats
        stats["draw_calls"] += 1
        stats["drawn_pixels"] += (box[2] - box[0]) * (box[3] - box[1])

    def damage_rect(self, window, x, y, width, height):
        """Report a window-relative dirty rect.

        On the damage path it accumulates per-window until a flush point
        coalesces it into a minimal Expose series; on the eager spec
        path it degrades to an immediate full-window Expose."""
        if window.destroyed or not window.viewable():
            return
        if not self.use_regions:
            if window.event_mask & xtypes.ExposureMask:
                self._emit_expose(window, 0, 0, window.width, window.height,
                                  0)
            return
        x0, y0 = max(0, x), max(0, y)
        x1 = min(window.width, x + width)
        y1 = min(window.height, y + height)
        if x0 >= x1 or y0 >= y1:
            return
        stats = self.render_stats
        stats["damage_rects"] += 1
        stats["damage_pixels"] += (x1 - x0) * (y1 - y0)
        entry = self._damage.get(window.wid)
        if entry is None:
            region = self.new_region()
            region.add_rect(x0, y0, x1, y1)
            self._damage[window.wid] = (window, region)
        else:
            entry[1].add_rect(x0, y0, x1, y1)

    def damage_window(self, window):
        self.damage_rect(window, 0, 0, window.width, window.height)

    def damage_region(self, window, region):
        """Report a whole region (window-relative) of damage."""
        for x0, y0, x1, y1 in region.rects():
            self.damage_rect(window, x0, y0, x1 - x0, y1 - y0)

    def damage_subtree(self, window):
        """Full damage for a window and its mapped descendants (map,
        move: every absolute pixel position changed)."""
        if not self.use_regions:
            self.expose(window)
            return
        self.damage_window(window)
        for child in window.children:
            if child.mapped and not child.destroyed:
                self.damage_subtree(child)

    def damage_region_subtree(self, window, region):
        """Damage a region of a window plus the parts of descendants it
        overlaps (region is window-relative)."""
        self.damage_region(window, region)
        for child in window.children:
            if not child.mapped or child.destroyed:
                continue
            sub = region.copy()
            sub.translate(-child.x, -child.y)
            sub.intersect_rect(0, 0, child.width, child.height)
            if not sub.is_empty():
                self.damage_region_subtree(child, sub)

    def damage_configure(self, window, old_x, old_y, old_w, old_h):
        """Damage after a configure using old-geometry algebra."""
        if not self.use_regions:
            self.expose(window)
            return
        if (window.x, window.y) != (old_x, old_y):
            # Window content does not move with the window on the shared
            # screen framebuffer, so a move invalidates everything the
            # subtree will repaint at its new absolute position.
            self.damage_subtree(window)
        elif (window.width, window.height) != (old_w, old_h):
            if window.bit_gravity == "northwest":
                # Origin-anchored content: only new \ old is stale.
                grown = self.new_region()
                grown.add_rect(0, 0, window.width, window.height)
                grown.subtract_rect(0, 0, old_w, old_h)
                self.damage_region_subtree(window, grown)
            else:
                # A repainting parent overwrites its children's pixels
                # on the shared framebuffer, so the whole subtree must
                # repaint -- the same recursion the eager expose() does.
                self.damage_subtree(window)
        # A border_width-only change paints nothing in this simulation.

    def take_expose_series(self, window, region):
        """Coalesce a region into a count-series of Expose events
        (returned, not queued).  All but the last event carry a positive
        ``count`` -- the X contract letting clients defer redraw until
        the series ends."""
        rects = region.rects()
        events = []
        if not rects:
            return events
        stats = self.render_stats
        stats["expose_series"] += 1
        total = len(rects)
        for i, (x0, y0, x1, y1) in enumerate(rects):
            stats["expose_events"] += 1
            stats["exposed_pixels"] += (x1 - x0) * (y1 - y0)
            events.append(XEvent(xtypes.Expose, window, x=x0, y=y0,
                                 width=x1 - x0, height=y1 - y0,
                                 count=total - 1 - i))
        return events

    def flush_damage(self):
        """Flush point: coalesce accumulated damage into minimal Expose
        series and queue them.  Runs automatically before the queue is
        inspected, so callers of pending()/next_event() always observe
        the events their damage implies."""
        if not self._damage or self._in_damage_flush:
            return
        self._in_damage_flush = True
        try:
            while self._damage:
                damage, self._damage = self._damage, {}
                self.render_stats["damage_flushes"] += 1
                for window, region in damage.values():
                    if window.destroyed or not window.viewable():
                        continue
                    if not (window.event_mask & xtypes.ExposureMask):
                        continue
                    for event in self.take_expose_series(window, region):
                        self.put_event(event)
        finally:
            self._in_damage_flush = False

    def _emit_expose(self, window, x, y, width, height, count):
        stats = self.render_stats
        stats["expose_events"] += 1
        stats["exposed_pixels"] += width * height
        self.put_event(XEvent(xtypes.Expose, window, x=x, y=y, width=width,
                              height=height, count=count))

    def expose(self, window, x=0, y=0, width=None, height=None, count=0):
        """Queue an Expose for a window (and viewable descendants).

        This is the eager path (the ``use_regions=False`` executable
        spec, and explicit full-subtree repaints).  Each window receives
        exactly one full event, so per-window series trivially end with
        ``count=0`` as the X contract requires."""
        if not window.viewable():
            return
        if window.event_mask & xtypes.ExposureMask:
            self._emit_expose(
                window, x, y,
                window.width if width is None else width,
                window.height if height is None else height,
                count,
            )
        for child in window.children:
            if child.mapped:
                self.expose(child)

    # ------------------------------------------------------------------
    # Grabs, focus, selections

    def grab_pointer(self, window, owner_events=False):
        self.grab_window = window
        self.grab_owner_events = owner_events

    def ungrab_pointer(self):
        self.grab_window = None

    def set_input_focus(self, window):
        self.focus_window = window

    def set_selection_owner(self, selection, window, convert_callback):
        """Own a selection; the callback produces (type, value) on demand."""
        previous = self.selections.get(selection)
        if previous is not None and previous[0] is not window:
            old_window = previous[0]
            if old_window is not None and not old_window.destroyed:
                self.put_event(XEvent(xtypes.SelectionClear, old_window,
                                      selection=selection))
        self.selections[selection] = (window, convert_callback,
                                      self.next_time())

    def get_selection_owner(self, selection):
        entry = self.selections.get(selection)
        return entry[0] if entry else None

    def convert_selection(self, selection, target, requestor):
        """Ask the owner for the selection; delivers SelectionNotify."""
        entry = self.selections.get(selection)
        if entry is None:
            self.put_event(XEvent(xtypes.SelectionNotify, requestor,
                                  selection=selection, target=target,
                                  property=None, data=None))
            return
        _window, callback, _t = entry
        data = callback(target)
        self.put_event(XEvent(xtypes.SelectionNotify, requestor,
                              selection=selection, target=target,
                              property="SELECTION", data=data))

    # ------------------------------------------------------------------
    # Event synthesis (the "user at the keyboard")

    def _deliver_target(self, window):
        """Honour an active pointer grab the way the server does."""
        if self.grab_window is None and self.implicit_grab is not None:
            # The implicit grab between ButtonPress and ButtonRelease:
            # motion and release go to the pressed window (drags work).
            if self.implicit_grab.destroyed:
                self.implicit_grab = None
            else:
                return self.implicit_grab
        if self.grab_window is None or window is None:
            return window
        # owner_events: events in the grab client's windows go there
        # normally; everything else is reported to the grab window.
        probe = window
        while probe is not None:
            if probe is self.grab_window:
                return window
            probe = probe.parent
        if self.grab_owner_events:
            return window
        return self.grab_window

    def _crossing(self, new_window, ax, ay):
        old = self.pointer_window
        if old is new_window:
            return
        if old is not None and not old.destroyed and (
                old.event_mask & xtypes.LeaveWindowMask):
            ox, oy = old.absolute_origin()
            self.put_event(XEvent(xtypes.LeaveNotify, old,
                                  x=ax - ox, y=ay - oy,
                                  x_root=ax, y_root=ay,
                                  state=self.pointer_state))
        if new_window is not None and (
                new_window.event_mask & xtypes.EnterWindowMask):
            nx, ny = new_window.absolute_origin()
            self.put_event(XEvent(xtypes.EnterNotify, new_window,
                                  x=ax - nx, y=ay - ny,
                                  x_root=ax, y_root=ay,
                                  state=self.pointer_state))
        self.pointer_window = new_window

    def warp_pointer(self, ax, ay):
        """Move the pointer; generates Enter/Leave crossings."""
        self.pointer_x = ax
        self.pointer_y = ay
        self._crossing(self.window_at(ax, ay), ax, ay)

    def motion(self, ax, ay):
        self.warp_pointer(ax, ay)
        window = self._deliver_target(self.window_at(ax, ay))
        if window is not None and (
                window.event_mask & (xtypes.PointerMotionMask |
                                     xtypes.ButtonMotionMask)):
            ox, oy = window.absolute_origin()
            self.put_event(XEvent(xtypes.MotionNotify, window,
                                  x=ax - ox, y=ay - oy, x_root=ax, y_root=ay,
                                  state=self.pointer_state))

    def press_button(self, ax, ay, button=1):
        self.warp_pointer(ax, ay)
        target = self._deliver_target(self.window_at(ax, ay))
        if target is None:
            return
        ox, oy = target.absolute_origin()
        self.put_event(XEvent(xtypes.ButtonPress, target, button=button,
                              x=ax - ox, y=ay - oy, x_root=ax, y_root=ay,
                              state=self.pointer_state))
        if self.pointer_state & (xtypes.Button1Mask | xtypes.Button2Mask |
                                 xtypes.Button3Mask) == 0:
            self.implicit_grab = target
        self.pointer_state |= xtypes.Button1Mask << (button - 1)

    def release_button(self, ax, ay, button=1):
        self.warp_pointer(ax, ay)
        self.pointer_state &= ~(xtypes.Button1Mask << (button - 1))
        target = self._deliver_target(self.window_at(ax, ay))
        if self.pointer_state & (xtypes.Button1Mask | xtypes.Button2Mask |
                                 xtypes.Button3Mask) == 0:
            self.implicit_grab = None
        if target is None:
            return
        ox, oy = target.absolute_origin()
        self.put_event(XEvent(xtypes.ButtonRelease, target, button=button,
                              x=ax - ox, y=ay - oy, x_root=ax, y_root=ay,
                              state=self.pointer_state))

    def click(self, ax, ay, button=1):
        self.press_button(ax, ay, button)
        self.release_button(ax, ay, button)

    def press_key(self, window, keycode, state=0, release=True):
        """Key press (and release) delivered to a window (or the focus)."""
        if window is None:
            window = self.focus_window or self.pointer_window or self.root
        ox, oy = window.absolute_origin()
        x = self.pointer_x - ox
        y = self.pointer_y - oy
        self.put_event(XEvent(xtypes.KeyPress, window, keycode=keycode,
                              state=state, x=x, y=y,
                              x_root=self.pointer_x, y_root=self.pointer_y))
        if release:
            self.put_event(XEvent(xtypes.KeyRelease, window, keycode=keycode,
                                  state=state, x=x, y=y,
                                  x_root=self.pointer_x,
                                  y_root=self.pointer_y))

    def type_string(self, window, text, release=True):
        """Type text: shift keys are pressed around shifted characters,
        exactly as the paper's xev example requires."""
        shift_code, _ = _keysym.keysym_to_keycode("Shift_L")
        for ch in text:
            keycode, shifted = _keysym.char_to_keycode(ch)
            if keycode == 0:
                continue
            if shifted:
                self.press_key(window, shift_code, release=release)
                self.press_key(window, keycode, state=xtypes.ShiftMask,
                               release=release)
            else:
                self.press_key(window, keycode, release=release)

    def close(self):
        self.closed = True
        self.queue.clear()
        self._damage.clear()


_displays = {}


def open_display(name=":0"):
    """Open (or reuse) the virtual display with this name."""
    display = _displays.get(name)
    if display is None or display.closed:
        display = Display(name)
        _displays[name] = display
    return display


def close_display(name):
    """Tear down one named virtual display and drop it from the cache
    (per-session displays would otherwise accumulate for the life of
    the server).  Safe no-op for unknown names."""
    display = _displays.pop(name, None)
    if display is not None:
        display.close()


def close_all_displays():
    """Tear down every virtual display (test isolation)."""
    for display in _displays.values():
        display.close()
    _displays.clear()
