"""Band-based rectangle regions (the X server's Region design).

A :class:`Region` stores a set of pixels as horizontal *bands*: maximal
y-ranges over which the covered x-extents are constant.  Each band keeps
its x-extents as a sorted tuple of disjoint half-open intervals
``(x0, x1, x0', x1', ...)``, bands are sorted by ``y0`` and never overlap
in y, and two vertically adjacent bands always differ in their x-extents
(otherwise they are coalesced into one).  That canonical form is what
makes the X server's miRegionOp fast and is exactly what we need for
damage tracking: unioning many small dirty rects degrades gracefully,
and iteration yields a minimal list of disjoint rectangles.

:class:`NaiveRegion` is the executable specification: a flat list of
disjoint rectangles maintained by rectangle splitting.  It implements
the same API and is differentially tested against the band
implementation on randomized rect sequences (tests/test_region.py).
All coordinates are half-open boxes ``(x0, y0, x1, y1)``.
"""


# ----------------------------------------------------------------------
# Interval (x-extent) algebra on sorted disjoint half-open intervals,
# encoded as flat tuples (x0, x1, x0', x1', ...).

def _ix_union(a, b):
    if not a:
        return b
    if not b:
        return a
    spans = sorted(
        [(a[i], a[i + 1]) for i in range(0, len(a), 2)]
        + [(b[i], b[i + 1]) for i in range(0, len(b), 2)]
    )
    out = []
    cx0, cx1 = spans[0]
    for x0, x1 in spans[1:]:
        if x0 <= cx1:
            if x1 > cx1:
                cx1 = x1
        else:
            out.append(cx0)
            out.append(cx1)
            cx0, cx1 = x0, x1
    out.append(cx0)
    out.append(cx1)
    return tuple(out)


def _ix_intersect(a, b):
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        x0 = a[i] if a[i] > b[j] else b[j]
        x1 = a[i + 1] if a[i + 1] < b[j + 1] else b[j + 1]
        if x0 < x1:
            out.append(x0)
            out.append(x1)
        if a[i + 1] <= b[j + 1]:
            i += 2
        else:
            j += 2
    return tuple(out)


def _ix_subtract(a, b):
    if not b:
        return a
    out = []
    for i in range(0, len(a), 2):
        x0, x1 = a[i], a[i + 1]
        for j in range(0, len(b), 2):
            bx0, bx1 = b[j], b[j + 1]
            if bx1 <= x0:
                continue
            if bx0 >= x1:
                break
            if bx0 > x0:
                out.append(x0)
                out.append(bx0)
            if bx1 > x0:
                x0 = bx1
            if x0 >= x1:
                break
        if x0 < x1:
            out.append(x0)
            out.append(x1)
    return tuple(out)


def _append_band(bands, y0, y1, xs):
    """Append a band, coalescing with the previous one when x-extents
    match and the bands touch -- this is what keeps the form canonical."""
    if bands and bands[-1][1] == y0 and bands[-1][2] == xs:
        bands[-1] = (bands[-1][0], y1, xs)
    else:
        bands.append((y0, y1, xs))


def _combine(a_bands, b_bands, op):
    """Sweep both band lists over the merged y-breakpoints, combining
    the active x-extents of each elementary slab with ``op``."""
    ys = set()
    for y0, y1, _xs in a_bands:
        ys.add(y0)
        ys.add(y1)
    for y0, y1, _xs in b_bands:
        ys.add(y0)
        ys.add(y1)
    ys = sorted(ys)
    out = []
    ia = ib = 0
    na, nb = len(a_bands), len(b_bands)
    for k in range(len(ys) - 1):
        y0 = ys[k]
        y1 = ys[k + 1]
        while ia < na and a_bands[ia][1] <= y0:
            ia += 1
        xa = a_bands[ia][2] if ia < na and a_bands[ia][0] <= y0 else ()
        while ib < nb and b_bands[ib][1] <= y0:
            ib += 1
        xb = b_bands[ib][2] if ib < nb and b_bands[ib][0] <= y0 else ()
        xs = op(xa, xb)
        if xs:
            _append_band(out, y0, y1, xs)
    return out


class Region:
    """A set of pixels stored as coalesced y-bands of x-intervals."""

    __slots__ = ("_bands",)

    def __init__(self, rect=None):
        self._bands = []
        if rect is not None:
            self.add_rect(*rect)

    # -- constructors / mutation ---------------------------------------

    def add_rect(self, x0, y0, x1, y1):
        if x0 >= x1 or y0 >= y1:
            return
        if not self._bands:
            self._bands.append((y0, y1, (x0, x1)))
            return
        self._bands = _combine(self._bands, [(y0, y1, (x0, x1))], _ix_union)

    def union(self, other):
        self._bands = _combine(self._bands, other._as_bands(), _ix_union)

    def intersect(self, other):
        self._bands = _combine(self._bands, other._as_bands(), _ix_intersect)

    def subtract(self, other):
        self._bands = _combine(self._bands, other._as_bands(), _ix_subtract)

    def intersect_rect(self, x0, y0, x1, y1):
        if x0 >= x1 or y0 >= y1:
            self._bands = []
            return
        self._bands = _combine(self._bands, [(y0, y1, (x0, x1))],
                               _ix_intersect)

    def subtract_rect(self, x0, y0, x1, y1):
        if x0 >= x1 or y0 >= y1:
            return
        self._bands = _combine(self._bands, [(y0, y1, (x0, x1))],
                               _ix_subtract)

    def translate(self, dx, dy):
        self._bands = [
            (y0 + dy, y1 + dy, tuple(x + dx for x in xs))
            for y0, y1, xs in self._bands
        ]

    def clear(self):
        self._bands = []

    def copy(self):
        clone = Region()
        clone._bands = list(self._bands)
        return clone

    # -- queries -------------------------------------------------------

    def _as_bands(self):
        return self._bands

    def is_empty(self):
        return not self._bands

    def __bool__(self):
        return bool(self._bands)

    def rects(self):
        """The minimal disjoint rectangle list, in band order."""
        out = []
        for y0, y1, xs in self._bands:
            for i in range(0, len(xs), 2):
                out.append((xs[i], y0, xs[i + 1], y1))
        return out

    def bounds(self):
        """Bounding box (x0, y0, x1, y1), or None when empty."""
        if not self._bands:
            return None
        x0 = min(band[2][0] for band in self._bands)
        x1 = max(band[2][-1] for band in self._bands)
        return (x0, self._bands[0][0], x1, self._bands[-1][1])

    def area(self):
        total = 0
        for y0, y1, xs in self._bands:
            width = 0
            for i in range(0, len(xs), 2):
                width += xs[i + 1] - xs[i]
            total += (y1 - y0) * width
        return total

    def contains_point(self, x, y):
        for y0, y1, xs in self._bands:
            if y0 <= y < y1:
                for i in range(0, len(xs), 2):
                    if xs[i] <= x < xs[i + 1]:
                        return True
                return False
        return False

    def __iter__(self):
        return iter(self.rects())

    def __eq__(self, other):
        if isinstance(other, Region):
            return self._bands == other._bands
        return NotImplemented

    def __hash__(self):  # pragma: no cover - regions are mutable
        raise TypeError("regions are unhashable")

    def __repr__(self):  # pragma: no cover
        return "Region(%r)" % (self.rects(),)


# ----------------------------------------------------------------------
# The executable specification: a flat list of disjoint rectangles.

def _rect_intersect(a, b):
    x0 = max(a[0], b[0])
    y0 = max(a[1], b[1])
    x1 = min(a[2], b[2])
    y1 = min(a[3], b[3])
    if x0 < x1 and y0 < y1:
        return (x0, y0, x1, y1)
    return None


def _rect_subtract(a, b):
    """``a`` minus ``b`` as up to four disjoint rects (top, bottom,
    left, right slabs)."""
    if _rect_intersect(a, b) is None:
        return [a]
    ax0, ay0, ax1, ay1 = a
    bx0, by0, bx1, by1 = b
    out = []
    if by0 > ay0:
        out.append((ax0, ay0, ax1, by0))
    if by1 < ay1:
        out.append((ax0, by1, ax1, ay1))
    mid_y0 = max(ay0, by0)
    mid_y1 = min(ay1, by1)
    if bx0 > ax0:
        out.append((ax0, mid_y0, bx0, mid_y1))
    if bx1 < ax1:
        out.append((bx1, mid_y0, ax1, mid_y1))
    return out


class NaiveRegion:
    """Rect-list region: same API as :class:`Region`, kept as the
    executable spec for differential testing (and the ``naive_regions``
    A/B hatch on the Display)."""

    __slots__ = ("_rects",)

    def __init__(self, rect=None):
        self._rects = []
        if rect is not None:
            self.add_rect(*rect)

    def add_rect(self, x0, y0, x1, y1):
        if x0 >= x1 or y0 >= y1:
            return
        pieces = [(x0, y0, x1, y1)]
        for r in self._rects:
            pieces = [p for piece in pieces for p in _rect_subtract(piece, r)]
            if not pieces:
                return
        self._rects.extend(pieces)

    def union(self, other):
        for r in other.rects():
            self.add_rect(*r)

    def intersect(self, other):
        out = []
        for r in self._rects:
            for o in other.rects():
                piece = _rect_intersect(r, o)
                if piece is not None:
                    out.append(piece)
        self._rects = out

    def subtract(self, other):
        for r in other.rects():
            self.subtract_rect(*r)

    def intersect_rect(self, x0, y0, x1, y1):
        if x0 >= x1 or y0 >= y1:
            self._rects = []
            return
        box = (x0, y0, x1, y1)
        out = []
        for r in self._rects:
            piece = _rect_intersect(r, box)
            if piece is not None:
                out.append(piece)
        self._rects = out

    def subtract_rect(self, x0, y0, x1, y1):
        if x0 >= x1 or y0 >= y1:
            return
        box = (x0, y0, x1, y1)
        self._rects = [p for r in self._rects for p in _rect_subtract(r, box)]

    def translate(self, dx, dy):
        self._rects = [(x0 + dx, y0 + dy, x1 + dx, y1 + dy)
                       for x0, y0, x1, y1 in self._rects]

    def clear(self):
        self._rects = []

    def copy(self):
        clone = NaiveRegion()
        clone._rects = list(self._rects)
        return clone

    def is_empty(self):
        return not self._rects

    def __bool__(self):
        return bool(self._rects)

    def rects(self):
        return list(self._rects)

    def bounds(self):
        if not self._rects:
            return None
        return (
            min(r[0] for r in self._rects),
            min(r[1] for r in self._rects),
            max(r[2] for r in self._rects),
            max(r[3] for r in self._rects),
        )

    def area(self):
        return sum((x1 - x0) * (y1 - y0) for x0, y0, x1, y1 in self._rects)

    def contains_point(self, x, y):
        return any(x0 <= x < x1 and y0 <= y < y1
                   for x0, y0, x1, y1 in self._rects)

    def __iter__(self):
        return iter(self.rects())

    def __repr__(self):  # pragma: no cover
        return "NaiveRegion(%r)" % (self._rects,)


def make_region(naive=False, rect=None):
    """Region factory: the band implementation, or the rect-list spec."""
    return NaiveRegion(rect) if naive else Region(rect)
