"""The OSF/Motif widget set (the ``mofe`` build of Wafe).

Motif is commercial and closed-source; this module models the
programmatic surface the paper demonstrates: XmPrimitive shadows,
XmLabel with compound ``labelString``/``fontList`` resources,
XmPushButton with ``armCallback`` (the predefined-callback example),
XmCascadeButton with ``XmCascadeButtonHighlight`` (the code-generator
example), XmRowColumn, XmToggleButton, XmText, and the XmCommand box
with ``XmCommandAppendValue``.

Per the paper, Athena and Motif widgets cannot be mixed in one binary:
Wafe's configuration selects either :data:`repro.xaw.ATHENA_CLASSES` or
:data:`MOTIF_CLASSES`.
"""

from repro.tcl.lists import string_to_list
from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.resources import res
from repro.xt.widget import Composite, Widget
from repro.motif.xmstring import (
    FontList,
    draw_xmstring,
    parse_font_list,
    parse_xmstring,
)
from repro.xlib import fonts as _fonts


class XmPrimitive(Widget):
    CLASS_NAME = "XmPrimitive"
    RESOURCES = [
        res("foreground", R.R_PIXEL, "XtDefaultForeground"),
        res("shadowThickness", R.R_DIMENSION, 2),
        res("highlightThickness", R.R_DIMENSION, 2),
        res("highlightColor", R.R_PIXEL, "XtDefaultForeground"),
        res("topShadowColor", R.R_PIXEL, "#DEDEDE"),
        res("bottomShadowColor", R.R_PIXEL, "#7E7E7E"),
        res("traversalOn", R.R_BOOLEAN, True),
        res("userData", R.R_POINTER, None),
    ]

    def draw_shadow(self, pressed=False):
        if self.window is None:
            return
        width = self.resources["shadowThickness"]
        if width <= 0:
            return
        top = self.resources["topShadowColor"]
        bottom = self.resources["bottomShadowColor"]
        if pressed:
            top, bottom = bottom, top
        w, h = self.window.width, self.window.height
        top_gc = gfx.GC(foreground=top)
        bottom_gc = gfx.GC(foreground=bottom)
        gfx.fill_rectangle(self.window, top_gc, 0, 0, w, width)
        gfx.fill_rectangle(self.window, top_gc, 0, 0, width, h)
        gfx.fill_rectangle(self.window, bottom_gc, 0, h - width, w, width)
        gfx.fill_rectangle(self.window, bottom_gc, w - width, 0, width, h)


def _default_font_list(widget):
    return FontList([("FONTLIST_DEFAULT_TAG", _fonts.default_font())])


class XmLabel(XmPrimitive):
    CLASS_NAME = "XmLabel"
    RESOURCES = [
        res("labelString", R.R_XMSTRING, None),
        res("fontList", R.R_FONT_LIST, None),
        res("alignment", R.R_STRING, "center"),
        res("marginWidth", R.R_DIMENSION, 2),
        res("marginHeight", R.R_DIMENSION, 2),
        res("labelType", R.R_STRING, "string"),
        res("recomputeSize", R.R_BOOLEAN, True),
    ]

    def initialize(self):
        if self.resources.get("fontList") is None:
            self.resources["fontList"] = _default_font_list(self)
        if isinstance(self.resources.get("fontList"), str):
            self.resources["fontList"] = parse_font_list(
                self.resources["fontList"])
        self._reparse_label()

    def _reparse_label(self):
        value = self.resources.get("labelString")
        if value is None:
            value = self.name
        if isinstance(value, str):
            value = parse_xmstring(value, self.resources["fontList"])
        self.resources["labelString"] = value

    def set_values_hook(self, old, changed):
        if "fontList" in changed and isinstance(
                self.resources.get("fontList"), str):
            self.resources["fontList"] = parse_font_list(
                self.resources["fontList"])
        if "labelString" in changed or "fontList" in changed:
            self._reparse_label()

    def compound_string(self):
        return self.resources["labelString"]

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        xmstring = self.compound_string()
        font_list = self.resources["fontList"]
        pad_w = 2 * (self.resources["marginWidth"] +
                     self.resources["shadowThickness"])
        pad_h = 2 * (self.resources["marginHeight"] +
                     self.resources["shadowThickness"])
        width = self.resources["width"] or xmstring.width(font_list) + pad_w
        height = self.resources["height"] or \
            xmstring.height(font_list) + pad_h
        return (max(1, width), max(1, height))

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        xmstring = self.compound_string()
        font_list = self.resources["fontList"]
        x = self.resources["marginWidth"] + self.resources["shadowThickness"]
        baseline = (window.height + xmstring.height(font_list)) // 2 - 2
        draw_xmstring(window, font_list, xmstring, x, baseline,
                      self.resources["foreground"],
                      self.resources["background"])


def _arm(widget, event, args):
    widget.armed = True
    widget.call_callbacks("armCallback", None)
    if widget.realized:
        widget.redraw()


def _disarm_activate(widget, event, args):
    if widget.armed:
        widget.call_callbacks("activateCallback", None)
    widget.armed = False
    widget.call_callbacks("disarmCallback", None)
    if widget.realized:
        widget.redraw()


class XmPushButton(XmLabel):
    CLASS_NAME = "XmPushButton"
    RESOURCES = [
        res("armCallback", R.R_CALLBACK),
        res("activateCallback", R.R_CALLBACK),
        res("disarmCallback", R.R_CALLBACK),
        res("armColor", R.R_PIXEL, "#B0B0B0"),
        res("showAsDefault", R.R_BOOLEAN, False),
    ]
    ACTIONS = {
        "Arm": _arm,
        "Activate": lambda w, e, a: None,
        "Disarm": _disarm_activate,
    }
    DEFAULT_TRANSLATIONS = (
        "<Btn1Down>: Arm()\n"
        "<Btn1Up>: Activate() Disarm()\n"
    )

    def initialize(self):
        super().initialize()
        self.armed = False

    def expose(self, event):
        super().expose(event)
        self.draw_shadow(pressed=self.armed)


class XmCascadeButton(XmPushButton):
    CLASS_NAME = "XmCascadeButton"
    RESOURCES = [
        res("subMenuId", R.R_WIDGET, None),
        res("cascadingCallback", R.R_CALLBACK),
        res("mappingDelay", R.R_INT, 180),
    ]

    def initialize(self):
        super().initialize()
        self.highlighted = False

    def highlight(self, on):
        """XmCascadeButtonHighlight."""
        self.highlighted = bool(on)
        if self.realized:
            self.redraw()

    def expose(self, event):
        super().expose(event)
        if self.highlighted and self.window is not None:
            gc = gfx.GC(foreground=self.resources["highlightColor"])
            gc.line_width = self.resources["highlightThickness"]
            gfx.draw_rectangle(self.window, gc, 0, 0, self.window.width,
                               self.window.height)


def _toggle_value_changed(widget, event, args):
    widget.set_state(not widget.resources["set"], notify=True)


class XmToggleButton(XmLabel):
    CLASS_NAME = "XmToggleButton"
    RESOURCES = [
        res("set", R.R_BOOLEAN, False),
        res("valueChangedCallback", R.R_CALLBACK),
        res("indicatorOn", R.R_BOOLEAN, True),
    ]
    ACTIONS = {"Toggle": _toggle_value_changed}
    DEFAULT_TRANSLATIONS = "<Btn1Down>: Toggle()\n"

    def get_state(self):
        """XmToggleButtonGetState."""
        return bool(self.resources["set"])

    def set_state(self, value, notify=False):
        """XmToggleButtonSetState."""
        self.resources["set"] = bool(value)
        if self.realized:
            self.redraw()
        if notify:
            self.call_callbacks("valueChangedCallback",
                                self.resources["set"])


class XmText(XmPrimitive):
    CLASS_NAME = "XmText"
    RESOURCES = [
        res("value", R.R_STRING, ""),
        res("editable", R.R_BOOLEAN, True),
        res("rows", R.R_INT, 1, class_="Rows"),
        res("columns", R.R_INT, 20, class_="Columns"),
        res("valueChangedCallback", R.R_CALLBACK),
        res("activateCallback", R.R_CALLBACK),
        res("fontList", R.R_FONT_LIST, None),
    ]

    def initialize(self):
        if self.resources.get("fontList") is None:
            self.resources["fontList"] = _default_font_list(self)
        if isinstance(self.resources.get("fontList"), str):
            self.resources["fontList"] = parse_font_list(
                self.resources["fontList"])

    def get_string(self):
        """XmTextGetString."""
        return self.resources.get("value") or ""

    def set_string(self, text):
        """XmTextSetString."""
        self.resources["value"] = text
        self.call_callbacks("valueChangedCallback", text)
        if self.realized:
            self.redraw()

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        font = _fonts.default_font()
        width = self.resources["width"] or \
            self.resources["columns"] * font.char_width("m")
        height = self.resources["height"] or \
            self.resources["rows"] * font.height + 6
        return (max(1, width), max(1, height))

    def expose(self, event):
        window = self.window
        if window is None:
            return
        gfx.clear_area(window, pixel=self.resources["background"])
        font = _fonts.default_font()
        gc = gfx.GC(foreground=self.resources["foreground"], font=font)
        y = font.ascent + 3
        for line in self.get_string().split("\n"):
            gfx.draw_string(window, gc, 4, y, line)
            y += font.height
        self.draw_shadow()


class XmRowColumn(Composite):
    CLASS_NAME = "XmRowColumn"
    RESOURCES = [
        res("orientation", R.R_ORIENTATION, "vertical"),
        res("numColumns", R.R_INT, 1),
        res("spacing", R.R_DIMENSION, 3),
        res("marginWidth", R.R_DIMENSION, 3),
        res("marginHeight", R.R_DIMENSION, 3),
        res("packing", R.R_STRING, "tight"),
        res("entryCallback", R.R_CALLBACK),
    ]

    def layout(self):
        spacing = self.resources["spacing"]
        x = self.resources["marginWidth"]
        y = self.resources["marginHeight"]
        horizontal = self.resources["orientation"] == "horizontal"
        for child in self.children:
            if not child.managed:
                continue
            width, height = child.preferred_size()
            child.resources["x"] = x
            child.resources["y"] = y
            child.resources["width"] = width
            child.resources["height"] = height
            if child.window is not None:
                child.window.configure(x=x, y=y, width=max(1, width),
                                       height=max(1, height))
            if horizontal:
                x += width + spacing
            else:
                y += height + spacing

    def preferred_size(self):
        if self.resources["width"] > 0 and self.resources["height"] > 0:
            return (self.resources["width"], self.resources["height"])
        self.layout()
        max_x = max_y = 1
        for child in self.children:
            if not child.managed:
                continue
            max_x = max(max_x, child.resources["x"] +
                        child.resources["width"])
            max_y = max(max_y, child.resources["y"] +
                        child.resources["height"])
        return (max_x + self.resources["marginWidth"],
                max_y + self.resources["marginHeight"])


class XmSeparator(XmPrimitive):
    CLASS_NAME = "XmSeparator"
    RESOURCES = [
        res("orientation", R.R_ORIENTATION, "horizontal"),
        res("separatorType", R.R_STRING, "shadowEtchedIn"),
    ]

    def preferred_size(self):
        if self.resources["orientation"] == "horizontal":
            return (max(10, self.resources["width"]), 4)
        return (4, max(10, self.resources["height"]))


class XmCommand(XmRowColumn):
    """The Motif command box: prompt, input line, and history."""

    CLASS_NAME = "XmCommand"
    RESOURCES = [
        res("command", R.R_STRING, ""),
        res("historyItems", R.R_LIST, None),
        res("historyMaxItems", R.R_INT, 100),
        res("promptString", R.R_XMSTRING, ">"),
        res("commandEnteredCallback", R.R_CALLBACK),
        res("commandChangedCallback", R.R_CALLBACK),
    ]

    def initialize(self):
        if isinstance(self.resources.get("historyItems"), str):
            self.resources["historyItems"] = string_to_list(
                self.resources["historyItems"])
        if self.resources.get("historyItems") is None:
            self.resources["historyItems"] = []

    def append_value(self, text):
        """XmCommandAppendValue: append to the current command line."""
        self.resources["command"] = (self.resources.get("command") or "") \
            + text
        self.call_callbacks("commandChangedCallback",
                            self.resources["command"])

    def set_value(self, text):
        """XmCommandSetValue."""
        self.resources["command"] = text
        self.call_callbacks("commandChangedCallback", text)

    def enter_command(self):
        """Commit the current line to the history."""
        command = self.resources.get("command") or ""
        history = self.resources["historyItems"]
        history.append(command)
        overflow = len(history) - self.resources["historyMaxItems"]
        if overflow > 0:
            del history[:overflow]
        self.call_callbacks("commandEnteredCallback", command)
        self.resources["command"] = ""
        return command


#: Class name -> widget class for the Motif build of Wafe.
MOTIF_CLASSES = {
    "XmLabel": XmLabel,
    "XmPushButton": XmPushButton,
    "XmCascadeButton": XmCascadeButton,
    "XmToggleButton": XmToggleButton,
    "XmText": XmText,
    "XmRowColumn": XmRowColumn,
    "XmSeparator": XmSeparator,
    "XmCommand": XmCommand,
}
