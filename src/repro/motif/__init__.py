"""OSF/Motif support: compound strings plus the Motif widget classes.

The paper's Motif version of Wafe ("mofe") is a separate binary
configuration; here the same rule holds -- a Wafe instance is built
with either the Athena or the Motif class table, never both (the paper:
"in the current version it is not possible to mix Athena and OSF/Motif
widgets and converters freely").
"""

from repro.motif.widgets import (
    MOTIF_CLASSES,
    XmCascadeButton,
    XmCommand,
    XmLabel,
    XmPrimitive,
    XmPushButton,
    XmRowColumn,
    XmSeparator,
    XmText,
    XmToggleButton,
)
from repro.motif.xmstring import (
    FontList,
    FontListError,
    Segment,
    XmString,
    draw_xmstring,
    parse_font_list,
    parse_xmstring,
    LEFT_TO_RIGHT,
    RIGHT_TO_LEFT,
)

__all__ = [
    "MOTIF_CLASSES",
    "FontList",
    "FontListError",
    "Segment",
    "XmString",
    "draw_xmstring",
    "parse_font_list",
    "parse_xmstring",
    "LEFT_TO_RIGHT",
    "RIGHT_TO_LEFT",
    "XmCascadeButton",
    "XmCommand",
    "XmLabel",
    "XmPrimitive",
    "XmPushButton",
    "XmRowColumn",
    "XmSeparator",
    "XmText",
    "XmToggleButton",
]
