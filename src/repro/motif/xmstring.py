"""XmString compound strings and font lists (the paper's Figure 3).

A Motif compound string is text segmented by *font tags* and *writing
direction*.  Wafe's converter accepts a TeX-like inline syntax -- the
paper's example::

    fontList "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft"
    labelString "I'm\\bft bold\\ft and\\rl strange"

``\\tag`` switches to the font registered under ``tag`` in the
fontList; ``\\rl`` / ``\\lr`` switch the writing direction (the
right-to-left segment is what makes Figure 3 "strange").

Note on quoting: in a Tcl script the value should be brace-quoted
(``{I'm\\bft bold...}``) so Tcl's own backslash processing does not eat
the layout commands; the paper's double-quoted rendering predates Tcl's
``\\b`` escape being an issue in practice.
"""

from repro.tcl.errors import TclError
from repro.xlib import fonts as _fonts

ESCAPE = "\\"
LEFT_TO_RIGHT = "lr"
RIGHT_TO_LEFT = "rl"


class FontListError(TclError):
    """A fontList specification failed to parse."""


class FontList:
    """Ordered mapping of tag -> Font; the first entry is the default."""

    def __init__(self, entries):
        if not entries:
            raise FontListError("empty font list")
        self.entries = entries  # list of (tag, Font)
        self._by_tag = dict(entries)
        self.default_tag = entries[0][0]

    def font(self, tag):
        return self._by_tag.get(tag)

    def has_tag(self, tag):
        return tag in self._by_tag

    def tags(self):
        return [tag for tag, __ in self.entries]

    @property
    def source(self):
        return ",".join("%s=%s" % (font.name, tag)
                        for tag, font in self.entries)


def parse_font_list(spec):
    """Parse ``pattern=tag,pattern=tag,...`` into a :class:`FontList`.

    A pattern without ``=tag`` gets Motif's default tag.
    """
    entries = []
    for i, chunk in enumerate(spec.split(",")):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" in chunk:
            pattern, tag = chunk.rsplit("=", 1)
            tag = tag.strip()
        else:
            pattern, tag = chunk, "FONTLIST_DEFAULT_TAG" if i else \
                "FONTLIST_DEFAULT_TAG"
        try:
            font = _fonts.load_font(pattern.strip())
        except _fonts.FontError as err:
            raise FontListError(str(err))
        entries.append((tag, font))
    return FontList(entries)


class Segment:
    """One run of text in a single font and direction."""

    __slots__ = ("text", "tag", "direction")

    def __init__(self, text, tag, direction):
        self.text = text
        self.tag = tag
        self.direction = direction

    def __repr__(self):  # pragma: no cover
        return "Segment(%r, tag=%r, dir=%s)" % (self.text, self.tag,
                                                self.direction)

    def __eq__(self, other):
        return (isinstance(other, Segment) and self.text == other.text
                and self.tag == other.tag
                and self.direction == other.direction)


class XmString:
    """A parsed compound string: a list of :class:`Segment`."""

    def __init__(self, segments, source=""):
        self.segments = segments
        self.source = source

    def plain_text(self):
        return "".join(s.text for s in self.segments)

    def __len__(self):
        return len(self.segments)

    def width(self, font_list):
        total = 0
        for segment in self.segments:
            font = font_list.font(segment.tag) or _fonts.default_font()
            total += font.text_width(segment.text)
        return total

    def height(self, font_list):
        best = 0
        for segment in self.segments:
            font = font_list.font(segment.tag) or _fonts.default_font()
            best = max(best, font.height)
        return best or _fonts.default_font().height


def parse_xmstring(text, font_list=None, escape=ESCAPE):
    """Parse the inline compound-string syntax into an :class:`XmString`.

    ``escape`` + *tag* switches fonts (tags come from ``font_list``);
    ``escape`` + ``rl``/``lr`` switches direction.  An escape sequence
    that names no known tag or direction is kept literally.
    """
    known_tags = set(font_list.tags()) if font_list is not None else set()
    segments = []
    buf = []
    tag = font_list.default_tag if font_list is not None else None
    direction = LEFT_TO_RIGHT

    def flush():
        if buf:
            segments.append(Segment("".join(buf), tag, direction))
            del buf[:]

    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != escape:
            buf.append(ch)
            i += 1
            continue
        # Longest alphanumeric run after the escape character.
        j = i + 1
        while j < n and (text[j].isalnum() or text[j] == "_"):
            j += 1
        word = text[i + 1 : j]
        # Prefer the longest prefix of the word that is a known tag
        # (so "\bft bold" parses as tag bft + " bold").
        matched = None
        for end in range(len(word), 0, -1):
            candidate = word[:end]
            if candidate in known_tags or candidate in (RIGHT_TO_LEFT,
                                                        LEFT_TO_RIGHT):
                matched = candidate
                break
        if matched is None:
            buf.append(ch)
            i += 1
            continue
        flush()
        if matched in (RIGHT_TO_LEFT, LEFT_TO_RIGHT):
            direction = matched
        else:
            tag = matched
        i = i + 1 + len(matched)
    flush()
    if not segments:
        segments.append(Segment("", tag, direction))
    return XmString(segments, source=text)


def draw_xmstring(drawable, font_list, xmstring, x, y, foreground,
                  background=0xFFFFFF):
    """Render a compound string; returns the total advance in pixels.

    Right-to-left segments are drawn with reversed glyph order,
    simulating Motif's bidirectional output (the visual effect the
    paper's Figure 3 shows).
    """
    from repro.xlib import graphics as gfx

    cursor = x
    for segment in xmstring.segments:
        font = font_list.font(segment.tag) or _fonts.default_font()
        gc = gfx.GC(foreground=foreground, background=background, font=font)
        text = segment.text
        if segment.direction == RIGHT_TO_LEFT:
            text = text[::-1]
        cursor += gfx.draw_string(drawable, gc, cursor, y, text)
    return cursor - x
