"""Backend supervision: exit classification, restart policies, hooks.

The paper's process model (Figure 4) makes Wafe a *frontend* whose GUI
outlives the application program.  This module turns that promise into
a real supervisor: when the backend exits, the child is reaped and its
exit status classified (exit code versus signal), the Tcl-level
``onBackendExit`` hook fires with percent codes describing the death,
and -- policy permitting -- the backend is relaunched with exponential
backoff scheduled on the Xt event loop, so the GUI stays live and
interactive between attempts instead of dying with its child.

Policy comes from the same places as ``InitCom``: the Xrm resource
database (``restartPolicy``, ``maxRestarts``, ``restartBackoff``,
``restartBackoffCap``, ``massTransferTimeout``, ``channelHighWater``)
or the corresponding Wafe commands, which take precedence.
"""

import signal as _signal
import subprocess

from repro.tcl.errors import TclError
from repro.core.frontend import Frontend

#: The recognized restart policies.
POLICY_NEVER = "never"
POLICY_ON_FAILURE = "on-failure"
POLICY_ALWAYS = "always"
POLICIES = (POLICY_NEVER, POLICY_ON_FAILURE, POLICY_ALWAYS)


class ExitStatus:
    """A classified backend exit: normal exit code or killing signal."""

    def __init__(self, returncode):
        self.returncode = returncode
        if returncode < 0:
            self.kind = "signal"
            self.code = -returncode
        else:
            self.kind = "exit"
            self.code = returncode

    @property
    def success(self):
        return self.kind == "exit" and self.code == 0

    def signal_name(self):
        if self.kind != "signal":
            return ""
        try:
            return _signal.Signals(self.code).name
        except ValueError:
            return "SIG%d" % self.code

    def describe(self):
        if self.kind == "signal":
            return "signal %d (%s)" % (self.code, self.signal_name())
        return "exit %d" % self.code

    def __str__(self):
        return self.describe()

    def __repr__(self):
        return "<ExitStatus %s>" % self.describe()


def classify_exit(returncode):
    """``Popen.returncode`` -> :class:`ExitStatus` (None passes through)."""
    if returncode is None:
        return None
    return ExitStatus(returncode)


#: Percent codes available to the ``onBackendExit`` script.
EXIT_CODES = ("s", "k", "c", "r", "p")


def substitute_exit(script, status, restart_count, program):
    """Expand the ``onBackendExit`` percent codes.

    ``%s`` full status ("exit 3" / "signal 9 (SIGKILL)"), ``%k`` kind
    ("exit"/"signal"), ``%c`` numeric code, ``%r`` restart count so
    far, ``%p`` the program, ``%%`` a literal percent sign.
    """
    out = []
    i = 0
    n = len(script)
    while i < n:
        ch = script[i]
        if ch == "%" and i + 1 < n:
            code = script[i + 1]
            if code == "%":
                out.append("%")
            elif code == "s":
                out.append(status.describe() if status else "unknown")
            elif code == "k":
                out.append(status.kind if status else "unknown")
            elif code == "c":
                out.append(str(status.code) if status else "")
            elif code == "r":
                out.append(str(restart_count))
            elif code == "p":
                out.append(str(program))
            else:
                out.append(ch)
                out.append(code)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


#: Percent codes available to the ``onHandlerQuarantine`` script.
QUARANTINE_CODES = ("k", "f", "l", "n", "e")


def substitute_quarantine(script, kind, fd, label, strikes, exc):
    """Expand the ``onHandlerQuarantine`` percent codes.

    ``%k`` handler kind ("input"/"output"), ``%f`` the fd number,
    ``%l`` the handler's label, ``%n`` the strike count, ``%e`` the
    error text, ``%%`` a literal percent sign.
    """
    out = []
    i = 0
    n = len(script)
    while i < n:
        ch = script[i]
        if ch == "%" and i + 1 < n:
            code = script[i + 1]
            if code == "%":
                out.append("%")
            elif code == "k":
                out.append(str(kind))
            elif code == "f":
                out.append(str(fd))
            elif code == "l":
                out.append(label or "")
            elif code == "n":
                out.append(str(strikes))
            elif code == "e":
                out.append("%s: %s" % (type(exc).__name__, exc)
                           if exc is not None else "")
            else:
                out.append(ch)
                out.append(code)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


class ResourceConfig:
    """A bundle of tunables fed from two sources with one precedence
    rule: a value set through a Wafe command is *explicit* and wins
    over the Xrm resource database; everything else is (re)loaded from
    resources on demand, mirroring how ``InitCom`` is looked up.

    Subclasses declare ``FIELDS`` as a tuple of
    ``(attribute, resource name, resource class, parser, default)``.
    Both the supervision knobs and the server's per-session quotas are
    instances of this shape.
    """

    #: (attribute, resource name, resource class, parser, default)
    FIELDS = ()

    def __init__(self):
        for attr, __, __, __, default in self.FIELDS:
            setattr(self, attr, default)
        self._explicit = set()

    def set(self, attr, value):
        """An explicit (command-level) setting; beats resources."""
        setattr(self, attr, value)
        self._explicit.add(attr)

    def _parse(self, kind, text):
        if kind == "int":
            return int(text)
        if kind == "bool":
            lowered = text.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError('expected boolean but got "%s"' % text)
        if kind == "policy":
            if text not in POLICIES:
                raise ValueError(
                    'bad restart policy "%s": must be %s'
                    % (text, ", ".join(POLICIES)))
            return text
        return text

    def load_resources(self, app, report=None):
        """Fill non-explicit fields from the Xrm database (like
        ``InitCom``: ``appName.restartPolicy`` / ``AppClass.RestartPolicy``)."""
        for attr, name, klass, kind, __ in self.FIELDS:
            if attr in self._explicit:
                continue
            value = app.database.query([app.app_name, name],
                                       [app.app_class, klass])
            if value is None:
                continue
            try:
                setattr(self, attr, self._parse(kind, value))
            except ValueError as err:
                if report is not None:
                    report("bad %s resource: %s" % (name, err))


class SupervisionConfig(ResourceConfig):
    """Tunable supervision knobs, shared by commands and resources."""

    FIELDS = (
        ("policy", "restartPolicy", "RestartPolicy", "policy",
         POLICY_NEVER),
        ("max_restarts", "maxRestarts", "MaxRestarts", "int", 5),
        ("backoff_ms", "restartBackoff", "RestartBackoff", "int", 250),
        ("backoff_cap_ms", "restartBackoffCap", "RestartBackoffCap",
         "int", 30000),
        ("on_exit_script", "onBackendExit", "OnBackendExit", "str", None),
        ("mass_timeout_ms", "massTransferTimeout", "MassTransferTimeout",
         "int", 0),
        ("high_water", "channelHighWater", "ChannelHighWater", "int",
         1 << 20),
        # Fault containment (docs/ROBUSTNESS.md "Interpreter fault
        # containment"): eval watchdog budgets, the recursion ceiling,
        # safe mode, and the panic log destination.
        ("eval_time_ms", "evalTimeLimit", "EvalTimeLimit", "int", 0),
        ("eval_commands", "evalCommandLimit", "EvalCommandLimit", "int", 0),
        ("recursion_limit", "recursionLimit", "RecursionLimit", "int",
         None),
        ("safe_mode", "safeMode", "SafeMode", "bool", False),
        ("panic_log", "panicLog", "PanicLog", "str", None),
        # Event-core fault knobs (docs/ROBUSTNESS.md "The event core"):
        # the slow-handler watchdog budget and the script run when a
        # handler is quarantined after repeated failures.
        ("handler_time_ms", "handlerTimeLimit", "HandlerTimeLimit",
         "int", 0),
        ("on_quarantine_script", "onHandlerQuarantine",
         "OnHandlerQuarantine", "str", None),
    )


class BackendSupervisor:
    """Owns the backend lifecycle: spawn, reap, hook, restart.

    The supervisor creates :class:`Frontend` instances and receives
    their exit notifications.  Depending on the configured policy it
    either relaunches the backend (exponential backoff, scheduled as an
    Xt timeout so the GUI keeps serving events), hands control to the
    ``onBackendExit`` script, or -- with no policy and no hook -- falls
    back to the historical behaviour of ending the main loop.
    """

    def __init__(self, wafe, program, program_args=None, passthrough=None):
        self.wafe = wafe
        self.program = program
        self.program_args = program_args or []
        self.passthrough = passthrough
        self.config = wafe.supervision
        self.frontend = None
        self.restart_count = 0
        self.backoff_schedule = []   # ms delays actually scheduled
        self.last_status = None
        self.state = "idle"          # running|backoff|exited|stopped
        self._restart_timer = None
        self._stopped = False
        wafe.supervisor = self

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self):
        """Load resource-level policy and spawn the first backend."""
        self.config.load_resources(self.wafe.app,
                                   report=self.wafe.report_error)
        # Limits and safe mode must be live before the first backend
        # line is evaluated, not merely before the main loop.
        self.wafe.apply_fault_containment()
        self._spawn()
        return self.frontend

    def _spawn(self):
        self.frontend = Frontend(self.wafe, self.program, self.program_args,
                                 passthrough=self.passthrough,
                                 supervisor=self)
        self.state = "running"

    def stop(self):
        """Cancel any pending restart and shut the backend down."""
        self._stopped = True
        self.state = "stopped"
        if self._restart_timer is not None:
            self.wafe.app.core.remove_timer(self._restart_timer)
            self._restart_timer = None
        if self.frontend is not None:
            self.frontend.close()

    # ------------------------------------------------------------------
    # Exit handling (called by the Frontend on EOF)

    def backend_exited(self, frontend, status):
        if frontend is not self.frontend:
            return  # a stale frontend from before a restart
        if self._stopped:
            return  # a deliberate shutdown is not a backend failure
        if status is None:
            status = self._force_exit(frontend)
        self.last_status = status
        self.state = "exited"
        script = self.config.on_exit_script
        if script:
            self.wafe.run_command_line(substitute_exit(
                script, status, self.restart_count, self.program))
        if self._should_restart(status):
            self._schedule_restart()
        elif not script:
            # No policy, no hook: the historical contract -- the
            # frontend's life ends with its application.
            self.wafe.app.exit_loop()
        # With a hook but no restart the GUI stays up; the script
        # decides what happens next (it may call quit).

    @staticmethod
    def _force_exit(frontend):
        """EOF arrived but the child is still alive (it closed stdout
        without exiting): treat the session as over and make the exit
        status real with the SIGTERM -> SIGKILL ladder."""
        process = frontend.process
        if process.poll() is None:
            try:
                process.terminate()
                process.wait(timeout=2)
            except (OSError, subprocess.TimeoutExpired):
                process.kill()
                try:
                    process.wait(timeout=2)
                except (OSError, subprocess.TimeoutExpired):
                    return None
        return classify_exit(process.poll())

    def _should_restart(self, status):
        if self._stopped or self.wafe.quit_requested:
            return False
        policy = self.config.policy
        if policy == POLICY_ALWAYS:
            wanted = True
        elif policy == POLICY_ON_FAILURE:
            wanted = status is not None and not status.success
        else:
            return False
        if not wanted:
            return False
        if self.restart_count >= self.config.max_restarts:
            self.wafe.report_error(
                "backend %s; giving up after %d restart%s"
                % (status.describe() if status else "lost",
                   self.restart_count,
                   "" if self.restart_count == 1 else "s"))
            return False
        return True

    # ------------------------------------------------------------------
    # Restart machinery

    def backoff_delay_ms(self, attempt):
        """Exponential backoff: base * 2^attempt, capped."""
        base = max(1, self.config.backoff_ms)
        return min(self.config.backoff_cap_ms, base * (2 ** attempt))

    def _schedule_restart(self):
        delay = self.backoff_delay_ms(self.restart_count)
        self.restart_count += 1
        self.backoff_schedule.append(delay)
        self.state = "backoff"
        self.wafe.report_error(
            "backend %s; restart %d/%d in %d ms"
            % (self.last_status.describe() if self.last_status else "lost",
               self.restart_count, self.config.max_restarts, delay))
        # Scheduled on the unified event core's monotonic timer heap
        # (immune to wall-clock jumps); the label shows up in slow-
        # handler reports and ``info eventstats`` accounting.
        self._restart_timer = self.wafe.app.core.add_timer(
            delay, self._attempt_restart, label="backend restart backoff")

    def _attempt_restart(self):
        self._restart_timer = None
        if self._stopped or self.wafe.quit_requested:
            return
        old = self.frontend
        if old is not None:
            old.close()
        try:
            self._spawn()
        except TclError as err:
            self.last_status = None
            self.wafe.report_error("restart failed: %s" % err.result)
            if self.restart_count < self.config.max_restarts:
                self._schedule_restart()
            else:
                self.wafe.app.exit_loop()

    # ------------------------------------------------------------------
    # Introspection (the backendStatus command)

    def status_fields(self):
        pid = ""
        if self.frontend is not None and self.state == "running":
            # Refresh: the child may have died without EOF yet.
            if self.frontend.process.poll() is None:
                pid = str(self.frontend.process.pid)
        return (self.state, pid, str(self.restart_count),
                self.last_status.describe() if self.last_status else "")
