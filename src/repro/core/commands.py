"""Handwritten Wafe commands (the irregular, non-generated ones).

These are the commands the paper describes individually: ``echo``,
``quit``, ``realize``, ``setValues``/``sV``, ``getValue``/``gV``,
``mergeResources``, ``action``, ``callback`` (predefined callbacks),
``applicationShell`` (display instead of parent), and the communication
commands ``getChannel`` / ``setCommunicationVariable`` -- plus the
supervision commands (``restartPolicy``, ``onBackendExit``,
``backendStatus``, ``massTransferTimeout``, ``channelHighWater``,
``handlerTimeLimit``, ``onHandlerQuarantine``) documented in
docs/ROBUSTNESS.md.
"""

from repro.tcl.errors import TclError
from repro.core.supervisor import POLICIES


def _int_arg(text, what):
    try:
        value = int(text)
    except ValueError:
        raise TclError('expected integer but got "%s"' % text)
    if value < 0:
        raise TclError("%s must be non-negative" % what)
    return value


def _wrong_args(usage):
    raise TclError('wrong # args: should be "%s"' % usage)


def cmd_echo(wafe, argv):
    """Join the arguments with spaces and send them down the channel."""
    wafe.echo(" ".join(argv[1:]))
    return ""


def cmd_quit(wafe, argv):
    wafe.quit()
    return ""


def cmd_realize(wafe, argv):
    """Realize the widget tree (topLevel unless a widget is given)."""
    if len(argv) > 2:
        _wrong_args("realize ?widget?")
    widget = wafe.lookup_widget(argv[1]) if len(argv) == 2 else None
    wafe.realize(widget)
    return ""

def cmd_set_values(wafe, argv):
    if len(argv) < 2 or len(argv) % 2 != 0:
        _wrong_args("setValues widget ?attr value ...?")
    widget = wafe.lookup_widget(argv[1])
    args = {argv[i]: argv[i + 1] for i in range(2, len(argv), 2)}
    widget.set_values(args)
    wafe.app.process_pending()
    return ""


def cmd_get_value(wafe, argv):
    if len(argv) != 3:
        _wrong_args("getValue widget resource")
    widget = wafe.lookup_widget(argv[1])
    return widget.get_value_string(argv[2])


def cmd_get_values(wafe, argv):
    """Multiple resources into variables: getValues w res var ?res var?"""
    if len(argv) < 4 or len(argv) % 2 != 0:
        _wrong_args("getValues widget resource varName ?resource varName ...?")
    widget = wafe.lookup_widget(argv[1])
    for i in range(2, len(argv), 2):
        wafe.interp.set_var(argv[i + 1], widget.get_value_string(argv[i]))
    return ""


def cmd_merge_resources(wafe, argv):
    """Extend the resource database from within a script.

    Invalid specifiers (empty, or ending in a dangling ``.``/``*``)
    add no entry; a wafelint-style advisory is reported for each so
    the script author sees the typo instead of a silently-odd match.
    """
    if len(argv) < 2:
        _wrong_args("mergeResources spec value ?spec value ...?")
    if wafe.quotas is not None:
        wafe.quotas.charge_xrm(len(wafe.app.database))
    if len(argv) == 2:
        for spec in wafe.app.merge_resources(argv[1]):
            wafe.report_error(
                'mergeResources: invalid resource specifier "%s" '
                "(entry ignored)" % spec)
        return ""
    if len(argv) % 2 != 1:
        _wrong_args("mergeResources spec value ?spec value ...?")
    for i in range(1, len(argv), 2):
        if not wafe.app.database.put(argv[i], argv[i + 1]):
            wafe.report_error(
                'mergeResources: invalid resource specifier "%s" '
                "(entry ignored)" % argv[i])
    return ""


def cmd_action(wafe, argv):
    """action widget override|augment|replace translations..."""
    if len(argv) < 4:
        _wrong_args("action widget mode translation ?translation ...?")
    widget = wafe.lookup_widget(argv[1])
    mode = argv[2]
    if mode not in ("override", "augment", "replace"):
        raise TclError(
            'bad mode "%s": must be override, augment, or replace' % mode)
    table_text = "\n".join(argv[3:])
    wafe.merge_widget_translations(widget, table_text, mode)
    return ""


def cmd_callback(wafe, argv):
    """callback widget resource predefinedFunc ?arg ...?"""
    if len(argv) < 4:
        _wrong_args("callback widget resource function ?arg ...?")
    widget = wafe.lookup_widget(argv[1])
    wafe.add_predefined_callback(widget, argv[2], argv[3], list(argv[4:]))
    return ""


def cmd_add_callback(wafe, argv):
    """addCallback widget resource script: append a Tcl callback."""
    if len(argv) != 4:
        _wrong_args("addCallback widget resource script")
    widget = wafe.lookup_widget(argv[1])
    if argv[2] not in widget.class_resource_map():
        raise TclError('widget "%s" has no callback resource "%s"'
                       % (argv[1], argv[2]))
    callback_list = widget.callback_list(argv[2])
    wafe._add_script_callback(callback_list, argv[3])
    return ""


def cmd_application_shell(wafe, argv):
    """applicationShell name display ?attr value ...? -- the paper's
    multi-display mechanism (children map to the named display)."""
    if len(argv) < 3:
        _wrong_args("applicationShell name display ?attr value ...?")
    rest = argv[3:]
    if len(rest) % 2 != 0:
        raise TclError("attribute list must have an even number of elements")
    args = {rest[i]: rest[i + 1] for i in range(0, len(rest), 2)}
    return wafe.create_application_shell(argv[1], argv[2], args)


def cmd_wafe_version(wafe, argv):
    from repro.core.wafe import VERSION

    return VERSION


def cmd_widget_tree(wafe, argv):
    """widgetTree ?widget?: the widget hierarchy as a Tcl list (used by
    the interactive designer example)."""
    from repro.tcl.lists import list_to_string

    root = wafe.lookup_widget(argv[1]) if len(argv) == 2 else wafe.top_level

    def describe(widget):
        children = [describe(c) for c in widget.children
                    if c.name in wafe.widgets]
        return list_to_string([widget.name, widget.CLASS_NAME,
                               list_to_string(children)])

    return describe(root)


def cmd_widget_exists(wafe, argv):
    if len(argv) != 2:
        _wrong_args("widgetExists name")
    return "1" if argv[1] in wafe.widgets else "0"


def cmd_sync(wafe, argv):
    """Dispatch everything pending (useful in scripts and tests).

    This is the protocol's sync point: accumulated damage flushes into
    Expose events, those dispatch, and the frontend's batched output is
    written through -- the single outbound FIFO keeps everything sent
    before the sync ordered ahead of anything after it."""
    for display in wafe.app.displays:
        display.flush_damage()
    wafe.app.process_pending()
    if wafe.frontend is not None:
        wafe.frontend.sync_point()
    return ""


def cmd_get_channel(wafe, argv):
    """getChannel: the fd the application writes mass data to."""
    if wafe.frontend is None:
        raise TclError("getChannel: no application attached")
    return str(wafe.frontend.mass_channel_fd())


def cmd_set_communication_variable(wafe, argv):
    """setCommunicationVariable varName byteCount completionScript."""
    if len(argv) != 4:
        _wrong_args("setCommunicationVariable varName byteCount script")
    if wafe.frontend is None:
        raise TclError("setCommunicationVariable: no application attached")
    try:
        limit = int(argv[2])
    except ValueError:
        raise TclError('expected integer but got "%s"' % argv[2])
    wafe.frontend.set_communication_variable(argv[1], limit, argv[3])
    return ""


def cmd_set_prefix(wafe, argv):
    """setPrefix char: change the command-prefix character of the
    protocol (the paper: lines "starting with a certain character
    (such as %)")."""
    if len(argv) != 2 or len(argv[1]) != 1:
        _wrong_args("setPrefix char")
    if wafe.frontend is None:
        raise TclError("setPrefix: no application attached")
    wafe.frontend.parser.prefix = argv[1]
    return ""


def cmd_send_to_application(wafe, argv):
    """sendToApplication string: like echo but never to stdout."""
    if wafe.frontend is None:
        raise TclError("sendToApplication: no application attached")
    wafe.frontend.send(" ".join(argv[1:]) + "\n")
    return ""


def cmd_restart_policy(wafe, argv):
    """restartPolicy ?never|on-failure|always? ?maxRestarts? ?backoffMs?
    ?backoffCapMs?: query or set the backend restart policy."""
    config = wafe.supervision
    if len(argv) == 1:
        return "%s %d %d %d" % (config.policy, config.max_restarts,
                                config.backoff_ms, config.backoff_cap_ms)
    if len(argv) > 5:
        _wrong_args("restartPolicy ?policy? ?maxRestarts? ?backoffMs? "
                    "?backoffCapMs?")
    if argv[1] not in POLICIES:
        raise TclError('bad restart policy "%s": must be %s'
                       % (argv[1], ", ".join(POLICIES)))
    config.set("policy", argv[1])
    if len(argv) > 2:
        config.set("max_restarts", _int_arg(argv[2], "maxRestarts"))
    if len(argv) > 3:
        config.set("backoff_ms", _int_arg(argv[3], "backoffMs"))
    if len(argv) > 4:
        config.set("backoff_cap_ms", _int_arg(argv[4], "backoffCapMs"))
    return ""


def cmd_on_backend_exit(wafe, argv):
    """onBackendExit ?script?: the hook run when the backend dies.

    Percent codes in the script: %s status, %k kind, %c code,
    %r restart count, %p program, %% literal."""
    config = wafe.supervision
    if len(argv) == 1:
        return config.on_exit_script or ""
    if len(argv) != 2:
        _wrong_args("onBackendExit ?script?")
    config.set("on_exit_script", argv[1] or None)
    return ""


def cmd_backend_status(wafe, argv):
    """backendStatus: {state pid restartCount lastExitStatus}."""
    from repro.tcl.lists import list_to_string

    if len(argv) != 1:
        _wrong_args("backendStatus")
    if wafe.supervisor is not None:
        return list_to_string(list(wafe.supervisor.status_fields()))
    frontend = wafe.frontend
    # A server session poses as the frontend but owns no child process;
    # it reports "detached" like standalone mode.
    process = getattr(frontend, "process", None)
    if frontend is None or process is None:
        return list_to_string(["detached", "", "0", ""])
    running = not frontend.closed and process.poll() is None
    status = frontend.exit_status
    return list_to_string([
        "running" if running else "exited",
        str(process.pid) if running else "",
        "0",
        status.describe() if status else "",
    ])


def cmd_mass_transfer_timeout(wafe, argv):
    """massTransferTimeout ?ms?: stall watchdog for the mass channel
    (0 disables).  A transfer with no progress for this long is
    aborted: the error is reported and the completion script runs with
    transferStatus set to "timeout"."""
    config = wafe.supervision
    if len(argv) == 1:
        return str(config.mass_timeout_ms)
    if len(argv) != 2:
        _wrong_args("massTransferTimeout ?ms?")
    config.set("mass_timeout_ms", _int_arg(argv[1], "massTransferTimeout"))
    return ""


def cmd_channel_high_water(wafe, argv):
    """channelHighWater ?bytes?: outbound backpressure limit -- beyond
    this many queued bytes, output to a non-reading backend is dropped
    with a reported error instead of buffered without bound."""
    config = wafe.supervision
    if len(argv) == 1:
        return str(config.high_water)
    if len(argv) != 2:
        _wrong_args("channelHighWater ?bytes?")
    config.set("high_water", _int_arg(argv[1], "channelHighWater"))
    return ""


def cmd_eval_limit(wafe, argv):
    """evalLimit ?timeMs? ?commands?: the eval watchdog budgets.

    Each top-level evaluation (one backend line, one callback script)
    may spend at most ``timeMs`` milliseconds of wall time and
    ``commands`` work units (dispatched commands plus nested eval
    entries); 0 disables either budget.  A trip unwinds the current
    line with an uncatchable Tcl error and leaves the event loop live.
    """
    config = wafe.supervision
    if len(argv) == 1:
        return "%d %d" % (config.eval_time_ms, config.eval_commands)
    if len(argv) > 3:
        _wrong_args("evalLimit ?timeMs? ?commands?")
    config.set("eval_time_ms", _int_arg(argv[1], "evalLimit timeMs"))
    if len(argv) > 2:
        config.set("eval_commands", _int_arg(argv[2], "evalLimit commands"))
    wafe.interp.set_eval_limits(time_ms=config.eval_time_ms,
                                commands=config.eval_commands)
    return ""


def cmd_handler_time_limit(wafe, argv):
    """handlerTimeLimit ?ms?: the event core's slow-handler watchdog.

    Every dispatched handler (input, output, timeout, work proc) is
    timed; one exceeding the budget is reported through the error
    channel and counted in ``info eventstats`` (0 disables).  Unlike
    ``evalLimit`` this does not abort the handler -- it makes the
    stall visible without changing semantics."""
    config = wafe.supervision
    if len(argv) == 1:
        return str(wafe.app.core.handler_time_limit_ms)
    if len(argv) != 2:
        _wrong_args("handlerTimeLimit ?ms?")
    config.set("handler_time_ms", _int_arg(argv[1], "handlerTimeLimit"))
    wafe.app.core.handler_time_limit_ms = config.handler_time_ms
    return ""


def cmd_on_handler_quarantine(wafe, argv):
    """onHandlerQuarantine ?script?: hook run when the event core
    quarantines a handler after repeated consecutive failures.

    Percent codes in the script: %k kind (input/output), %f fd,
    %l label, %n strike count, %e error text, %% literal."""
    config = wafe.supervision
    if len(argv) == 1:
        return config.on_quarantine_script or ""
    if len(argv) != 2:
        _wrong_args("onHandlerQuarantine ?script?")
    config.set("on_quarantine_script", argv[1] or None)
    return ""


def cmd_recursion_limit(wafe, argv):
    """recursionLimit ?limit?: the Tcl evaluation nesting ceiling."""
    config = wafe.supervision
    if len(argv) == 1:
        return str(wafe.interp.recursion_limit)
    if len(argv) != 2:
        _wrong_args("recursionLimit ?limit?")
    limit = _int_arg(argv[1], "recursionLimit")
    if limit < 1:
        raise TclError("recursionLimit must be at least 1")
    config.set("recursion_limit", limit)
    wafe.interp.set_recursion_limit(limit)
    return ""


def cmd_safe_mode(wafe, argv):
    """safeMode ?on?: query or (irreversibly) enter safe mode."""
    if len(argv) == 1:
        return "1" if wafe.safe_mode else "0"
    if len(argv) != 2:
        _wrong_args("safeMode ?on?")
    if argv[1].lower() in ("0", "off", "false", "no"):
        if wafe.safe_mode:
            raise TclError("safe mode cannot be disabled from a script")
        return "0"
    wafe.supervision.set("safe_mode", True)
    wafe.enable_safe_mode()
    return "1"


def _quota_attrs(quotas):
    """Command-level attr names derived from the quota resource names
    (``sessionMaxWidgets`` -> ``maxWidgets``)."""
    out = {}
    for attr, name, __, kind, __ in quotas.FIELDS:
        cmd_name = name[len("session"):]
        out[cmd_name[0].lower() + cmd_name[1:]] = (attr, kind)
    return out


def cmd_session_quota(wafe, argv):
    """sessionQuota ?quota? ?value?: per-session resource quotas.

    Server mode only (each connected session carries its own quota
    set).  With no arguments returns every quota with its value plus
    the trip counters by kind; with a quota name alone queries it;
    with a value sets it explicitly (beating resources)."""
    from repro.tcl.lists import list_to_string

    quotas = wafe.quotas
    if quotas is None:
        raise TclError("sessionQuota: no quotas attached "
                       "(only sessions of a wafe server have quotas)")
    attrs = _quota_attrs(quotas)
    if len(argv) == 1:
        pairs = []
        for cmd_name in sorted(attrs):
            attr, __ = attrs[cmd_name]
            value = getattr(quotas, attr)
            if isinstance(value, bool):
                value = "1" if value else "0"
            pairs += [cmd_name, str(value)]
        for kind in quotas.TRIP_KINDS:
            pairs += ["trips(%s)" % kind, str(quotas.trips[kind])]
        return list_to_string(pairs)
    if argv[1] not in attrs:
        raise TclError('bad quota "%s": must be %s'
                       % (argv[1], ", ".join(sorted(attrs))))
    attr, kind = attrs[argv[1]]
    if len(argv) == 2:
        value = getattr(quotas, attr)
        if isinstance(value, bool):
            return "1" if value else "0"
        return str(value)
    if len(argv) != 3:
        _wrong_args("sessionQuota ?quota? ?value?")
    try:
        quotas.set(attr, quotas._parse(kind, argv[2]))
    except ValueError as err:
        raise TclError("sessionQuota: %s" % err)
    quotas.notify_changed()
    return ""


def register(wafe):
    wafe.register_command("echo", cmd_echo)
    wafe.register_command("quit", cmd_quit)
    wafe.register_command("realize", cmd_realize)
    wafe.register_command("setValues", cmd_set_values)
    wafe.register_command("getValue", cmd_get_value)
    wafe.register_command("getValues", cmd_get_values)
    wafe.register_command("mergeResources", cmd_merge_resources)
    wafe.register_command("action", cmd_action)
    wafe.register_command("callback", cmd_callback)
    wafe.register_command("addCallback", cmd_add_callback)
    wafe.register_command("applicationShell", cmd_application_shell)
    wafe.register_command("wafeVersion", cmd_wafe_version)
    wafe.register_command("widgetTree", cmd_widget_tree)
    wafe.register_command("widgetExists", cmd_widget_exists)
    wafe.register_command("sync", cmd_sync)
    wafe.register_command("getChannel", cmd_get_channel)
    wafe.register_command("setCommunicationVariable",
                          cmd_set_communication_variable)
    wafe.register_command("sendToApplication", cmd_send_to_application)
    wafe.register_command("setPrefix", cmd_set_prefix)
    wafe.register_command("restartPolicy", cmd_restart_policy)
    wafe.register_command("onBackendExit", cmd_on_backend_exit)
    wafe.register_command("backendStatus", cmd_backend_status)
    wafe.register_command("massTransferTimeout", cmd_mass_transfer_timeout)
    wafe.register_command("channelHighWater", cmd_channel_high_water)
    wafe.register_command("evalLimit", cmd_eval_limit)
    wafe.register_command("recursionLimit", cmd_recursion_limit)
    wafe.register_command("safeMode", cmd_safe_mode)
    wafe.register_command("handlerTimeLimit", cmd_handler_time_limit)
    wafe.register_command("onHandlerQuarantine", cmd_on_handler_quarantine)
    wafe.register_command("sessionQuota", cmd_session_quota)
