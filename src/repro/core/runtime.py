"""Runtime helpers for the generated command bindings.

The generated code (see :mod:`repro.codegen.emitter`) only ever calls
these helpers: string->type conversions with Tcl-style error messages,
type->string result conversions, and the paper's conventions for
multi-value returns -- a Tcl *list variable* for C list-plus-length
pairs and a Tcl *associative array* for C structs ("The Wafe
counterparts of these functions take a name of a Tcl associative array
as an argument (instead of a pointer) and create entries ...
corresponding to the C-structure's components").
"""

from repro.tcl.errors import TclError
from repro.tcl.lists import list_to_string, string_to_list
from repro.xt.shell import GRAB_EXCLUSIVE, GRAB_NONE, GRAB_NONEXCLUSIVE


def to_boolean(value):
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise TclError('expected boolean value but got "%s"' % value)


def to_int(value):
    try:
        return int(value.strip(), 0)
    except ValueError:
        raise TclError('expected integer but got "%s"' % value)


def to_float(value):
    try:
        return float(value.strip())
    except ValueError:
        raise TclError('expected floating-point number but got "%s"' % value)


def to_list(value):
    return string_to_list(value)


def to_grab_kind(value):
    lowered = value.strip().lower()
    if lowered in (GRAB_NONE, GRAB_NONEXCLUSIVE, GRAB_EXCLUSIVE):
        return lowered
    raise TclError(
        'bad grab kind "%s": must be none, nonexclusive, or exclusive'
        % value)


def from_void(value):
    return ""


def from_boolean(value):
    return "1" if value else "0"


def from_int(value):
    return str(int(value))


def from_float(value):
    from repro.tcl.expr import format_number

    return format_number(float(value))


def from_string(value):
    return "" if value is None else str(value)


def from_widget(value):
    if value is None:
        return ""
    return getattr(value, "name", str(value))


def set_list_var(wafe, var_name, items):
    """Return-a-list convention: Tcl list into the named variable."""
    wafe.interp.set_var(var_name, list_to_string(items))


def set_struct_var(wafe, var_name, values, fields):
    """Return-a-struct convention: entries in a Tcl associative array.

    Only the supported members are created; the paper notes Wafe does
    not mirror meaningless C members (display pointers and the like).
    """
    if values is None:
        return
    for field, value in zip(fields, values):
        wafe.interp.set_var(var_name, from_string(value), index=field)
