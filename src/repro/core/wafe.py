"""Wafe itself: Tcl + (Intrinsics + Widgets + Converters + Ext) +
(Memory Management + Communication).

The class wires together the formula from the paper: a Tcl interpreter
hosts the command language; the generated toolkit commands (from the
codegen specs) and the handwritten irregular commands are registered on
top; the Callback converter, the ``exec`` action and the percent-code
machinery link widgets back to Tcl; widget names index a registry whose
entries die with their widgets (the memory-management component); and
``echo`` output goes to the communication channel when a backend
application is attached.
"""

from repro import codegen
from repro.tcl import Interp
from repro.tcl.errors import TclError
from repro.xt import ApplicationShell, XtAppContext
from repro.xt.callbacks import CallbackList
from repro.xt.translations import merge_tables, parse_translation_table
from repro.xt import resources as R
from repro.core import commands as _commands
from repro.core.supervisor import SupervisionConfig as _SupervisionConfig
from repro.core.percent import substitute_action, substitute_callback
from repro.core.predefined import PREDEFINED_CALLBACKS

VERSION = "0.93-repro"

_BUILD_CLASS_TABLES = {}


def _class_table(build):
    table = _BUILD_CLASS_TABLES.get(build)
    if table is None:
        if build == "athena":
            from repro.xaw import ATHENA_CLASSES, PLOTTER_CLASSES

            table = dict(ATHENA_CLASSES)
            table.update(PLOTTER_CLASSES)
        elif build == "motif":
            from repro.motif import MOTIF_CLASSES

            table = dict(MOTIF_CLASSES)
        else:
            raise ValueError("unknown Wafe build %r" % build)
        _BUILD_CLASS_TABLES[build] = table
    return table


_GENERATED_CACHE = {}


def _generated_commands(build):
    commands = _GENERATED_CACHE.get(build)
    if commands is None:
        commands, __ = codegen.compile_commands(build)
        _GENERATED_CACHE[build] = commands
    return commands


class Wafe:
    """One frontend instance (one "Wafe binary" in the paper's terms)."""

    def __init__(self, build="athena", app_name=None, display_name=":0",
                 argv=None, compile=True, use_selectors=True,
                 use_regions=True, naive_regions=False, core=None):
        self.build = build
        if app_name is None:
            app_name = "wafe" if build == "athena" else "mofe"
        app_class = "Wafe" if build == "athena" else "Mofe"
        # ``compile=False`` disables the Tcl compilation layer for A/B
        # comparison (see docs/PERFORMANCE.md); ``use_selectors=False``
        # does the same for the event core's raw-select spec path;
        # ``use_regions=False`` falls back to eager full-window exposes
        # and ``naive_regions=True`` swaps the band Region for the
        # rect-list spec (both for the damage-rendering A/B).
        # ``core`` injects a *shared* event core (the session server
        # runs many Wafe instances on one loop); global core hooks stay
        # with the core's owner then.
        self.interp = Interp(compile=compile)
        self.app = XtAppContext(app_name, app_class, display_name,
                                use_selectors=use_selectors,
                                use_regions=use_regions,
                                naive_regions=naive_regions,
                                core=core)
        self.app.widget_destroyed = self._widget_destroyed
        self.classes = _class_table(build)
        self.widgets = {}
        self.bell_count = 0
        self.frontend = None       # set in frontend mode
        self.supervisor = None     # set when a BackendSupervisor attaches
        self.supervision = _SupervisionConfig()  # shared policy knobs
        self.quotas = None         # per-session quotas (server mode)
        self.quit_requested = False
        self.error_sink = None     # callable(str) for reporting errors
        self.safe_mode = False     # set by enable_safe_mode()
        self.interp.write_output = self._tcl_output
        # The Xt-side of the Python-exception firewall: faults in
        # timeout procs, input handlers, work procs, and action procs
        # are routed here instead of unwinding through the main loop.
        self.app.error_handler = self._xt_fault
        # Event-core advisories (quarantines, slow handlers, fd leaks)
        # use the ordinary error channel; a quarantine additionally
        # fires the ``onHandlerQuarantine`` script.  On a shared core
        # both hooks belong to the owning (server) context.
        if self.app.owns_core:
            self.app.message_hook = self.report_error
            self.app.core.on_quarantine = self._handler_quarantined
        # The automatically created top level shell of every Wafe program.
        self.top_level = ApplicationShell("topLevel", None, app=self.app)
        self.widgets["topLevel"] = self.top_level
        self._register_converters()
        self._register_commands()
        self.app.register_action("exec", self._exec_action)
        if argv:
            self._apply_xt_arguments(argv)

    # ------------------------------------------------------------------
    # Setup

    def _register_converters(self):
        registry = self.app.converters
        registry.register(R.R_CALLBACK, self._convert_callback,
                          lambda w, v: getattr(v, "source", ""))
        registry.register(R.R_XMSTRING, lambda w, v: v,
                          lambda w, v: getattr(v, "source", str(v)))
        registry.register(R.R_FONT_LIST, lambda w, v: v,
                          lambda w, v: getattr(v, "source", str(v)))

    def _register_commands(self):
        for name, func in _generated_commands(self.build):
            self.interp.register(name, self._bind(func))
        _commands.register(self)
        # The convenience alias pair the paper documents.
        self.interp.commands["sV"] = self.interp.commands["setValues"]
        self.interp.commands["gV"] = self.interp.commands["getValue"]
        # ``info xrmstats`` rides the same plumbing as the built-in
        # ``info cachestats``: counters for the quark-interned resource
        # machinery (see docs/PERFORMANCE.md).  ``info eventstats``
        # does the same for the unified event core.
        self.interp.info_extensions["xrmstats"] = self._info_xrmstats
        self.interp.info_extensions["eventstats"] = self._info_eventstats
        # ``info renderstats``: damage-region rendering and protocol
        # pipelining counters (see docs/PERFORMANCE.md).
        self.interp.info_extensions["renderstats"] = self._info_renderstats

    def _info_xrmstats(self, interp, argv):
        from repro.tcl.lists import list_to_string

        if len(argv) == 3 and argv[2] == "reset":
            self.app.database.reset_stats()
            return ""
        if len(argv) != 2:
            raise TclError('wrong # args: should be "info xrmstats ?reset?"')
        stats = self.app.database.stats()
        return list_to_string([
            "quarks", str(stats["quarks"]),
            "entries", str(stats["entries"]),
            "generation", str(stats["generation"]),
            "generationBumps", str(stats["generation_bumps"]),
            "searchListHits", str(stats["searchlist_hits"]),
            "searchListMisses", str(stats["searchlist_misses"]),
            "searchListHitRate", "%.4f" % stats["searchlist_hit_rate"],
            "cachedSearchLists", str(stats["cached_search_lists"]),
            "searches", str(stats["searches"]),
        ])

    def _info_renderstats(self, interp, argv):
        from repro.tcl.lists import list_to_string

        display = self.app.default_display
        if len(argv) == 3 and argv[2] == "reset":
            display.reset_render_stats()
            if self.frontend is not None:
                self.frontend.reset_stats()
            return ""
        if len(argv) != 2:
            raise TclError(
                'wrong # args: should be "info renderstats ?reset?"')
        if not display.use_regions:
            regions = "eager"
        elif display.naive_regions:
            regions = "naive"
        else:
            regions = "band"
        stats = display.render_stats
        pairs = [
            "regions", regions,
            "damageRects", str(stats["damage_rects"]),
            "damagePixels", str(stats["damage_pixels"]),
            "damageFlushes", str(stats["damage_flushes"]),
            "exposeSeries", str(stats["expose_series"]),
            "exposeEvents", str(stats["expose_events"]),
            "exposedPixels", str(stats["exposed_pixels"]),
            "drawCalls", str(stats["draw_calls"]),
            "drawnPixels", str(stats["drawn_pixels"]),
        ]
        frontend = self.frontend
        if frontend is not None:
            fstats = frontend.stats
            pairs += [
                "pipeline", "1" if frontend.pipeline else "0",
                "sends", str(fstats["sends"]),
                "pipeWrites", str(fstats["pipe_writes"]),
                "bytesWritten", str(fstats["bytes_written"]),
                "frameFlushes", str(fstats["frame_flushes"]),
                "syncPoints", str(fstats["sync_points"]),
            ]
        return list_to_string(pairs)

    def _info_eventstats(self, interp, argv):
        from repro.tcl.lists import list_to_string

        if len(argv) == 3 and argv[2] == "reset":
            self.app.core.reset_stats()
            return ""
        if len(argv) != 2:
            raise TclError(
                'wrong # args: should be "info eventstats ?reset?"')
        stats = self.app.core.stats()
        return list_to_string([
            "backend", stats["backend"],
            "activeInputs", str(stats["active_inputs"]),
            "activeOutputs", str(stats["active_outputs"]),
            "pendingTimers", str(stats["pending_timers"]),
            "workProcs", str(stats["work_procs"]),
            "registered", str(stats["registered"]),
            "unregistered", str(stats["unregistered"]),
            "dispatches", str(stats["dispatches"]),
            "timersScheduled", str(stats["timers_scheduled"]),
            "timersFired", str(stats["timers_fired"]),
            "timersCancelled", str(stats["timers_cancelled"]),
            "polls", str(stats["polls"]),
            "handlerErrors", str(stats["handler_errors"]),
            "quarantined", str(stats["quarantined"]),
            "slowDispatches", str(stats["slow_dispatches"]),
            "staleSkips", str(stats["stale_skips"]),
            "deadFdDrops", str(stats["dead_fd_drops"]),
            "leakedWatches", str(stats["leaked_watches"]),
            "eintrRetries", str(stats["eintr_retries"]),
            "handlerTimeLimitMs", str(stats["handler_time_limit_ms"]),
            "quarantineStrikes", str(stats["quarantine_strikes"]),
        ])

    def _handler_quarantined(self, kind, fd, label, strikes, exc):
        """The ``onHandlerQuarantine`` hook: the configured script runs
        with the quarantine's percent codes expanded (the event core
        has already unregistered the handler and reported the fact)."""
        from repro.core.supervisor import substitute_quarantine

        script = self.supervision.on_quarantine_script
        if script:
            self.run_command_line(substitute_quarantine(
                script, kind, fd, label, strikes, exc))

    def _bind(self, func):
        def command(interp, argv, _func=func, _wafe=self):
            return _func(_wafe, argv)

        return command

    def register_command(self, name, func):
        """Register ``func(wafe, argv) -> str`` as a Wafe command."""
        self.interp.register(name, self._bind(func))

    def _apply_xt_arguments(self, argv):
        """Interpret standard X Toolkit arguments (-display, -xrm...)."""
        i = 0
        while i < len(argv):
            arg = argv[i]
            if arg == "-display" and i + 1 < len(argv):
                self.app.default_display = self.app.use_display(argv[i + 1])
                i += 2
            elif arg == "-xrm" and i + 1 < len(argv):
                self.app.merge_resources(argv[i + 1])
                i += 2
            elif arg in ("-name", "-title") and i + 1 < len(argv):
                if arg == "-name":
                    self.app.app_name = argv[i + 1]
                i += 2
            else:
                i += 1

    # ------------------------------------------------------------------
    # Widget registry ("widgets are referenced by name")

    def lookup_widget(self, name):
        widget = self.widgets.get(name)
        if widget is None:
            raise TclError('no such widget "%s"' % name)
        return widget

    def _widget_destroyed(self, widget):
        # The memory-management component: a destroyed widget's name
        # binding and converted resources are disposed of.
        if self.widgets.get(widget.name) is widget:
            del self.widgets[widget.name]

    def create_widget(self, class_name, argv):
        """The shared implementation of all creation commands.

        ``argv`` is ``[cmd, name, parent, ?-unmanaged?, attr, value ...]``.
        """
        klass = self.classes.get(class_name)
        if klass is None:
            raise TclError(
                'widget class "%s" is not configured into this Wafe binary'
                % class_name)
        if len(argv) < 3:
            raise TclError(
                'wrong # args: should be "%s name parent '
                '?attr value ...?"' % argv[0])
        name, parent_name = argv[1], argv[2]
        if name in self.widgets:
            raise TclError('widget "%s" already exists' % name)
        rest = argv[3:]
        managed = True
        if rest and rest[0] in ("-unmanaged", "unmanaged"):
            managed = False
            rest = rest[1:]
        if len(rest) % 2 != 0:
            raise TclError(
                "attribute list must have an even number of elements")
        args = {rest[i]: rest[i + 1] for i in range(0, len(rest), 2)}
        parent = self.lookup_widget(parent_name)
        if self.quotas is not None:
            self.quotas.charge_widgets(len(self.widgets))
        widget = klass(name, parent, args=args, managed=managed)
        self.widgets[name] = widget
        if parent.realized and managed and not getattr(widget, "is_popup",
                                                       False):
            widget.realize()
        return name

    def create_application_shell(self, name, display_name, args):
        """``applicationShell top2 dec4:0``: a shell on another display."""
        if name in self.widgets:
            raise TclError('widget "%s" already exists' % name)
        if self.quotas is not None:
            self.quotas.charge_widgets(len(self.widgets))
        display = self.app.use_display(display_name)
        shell = ApplicationShell(name, None, args=args, app=self.app)
        shell._display = display
        self.widgets[name] = shell
        return name

    # ------------------------------------------------------------------
    # Scripts, callbacks, actions

    def run_script(self, script):
        """Evaluate a Tcl/Wafe script; TclError propagates."""
        return self.interp.eval(script)

    def run_command_line(self, line):
        """Evaluate one line, reporting errors instead of raising.

        This is the tolerant entry point used for interactive input and
        for command lines arriving from the backend application.  Any
        TclError -- including watchdog limit trips and firewalled
        Python exceptions -- is reported with its full errorInfo
        traceback and the event loop stays live.
        """
        try:
            return self.run_script(line)
        except TclError as err:
            self.report_tcl_error(err)
            return None

    def report_error(self, message):
        if self.error_sink is not None:
            self.error_sink(message)
        else:
            import sys

            sys.stderr.write("wafe: %s\n" % message)

    def report_tcl_error(self, err):
        """Report a TclError with its structured multi-line traceback.

        The error sink (or stderr) receives the full errorInfo; an
        attached backend additionally gets the traceback shipped down
        the channel, one ``error: ``-prefixed line per frame, so the
        application program can log or display what its command did
        (the paper's contract: a bad line comes back as an error
        string, never as a dead GUI).
        """
        info = err.errorinfo
        text = info if info and info != err.result else str(err.result)
        self.report_error(text)
        if self.frontend is not None:
            block = "".join("error: %s\n" % line
                            for line in text.split("\n"))
            self.frontend.send(block)

    def _xt_fault(self, context, exc):
        """The firewall's report hook for Xt-side faults.

        A TclError here means a callback/action script failed -- report
        it like any command-line error.  Anything else is a contained
        Python exception whose traceback already went to the panic
        log; surface the one-line summary.
        """
        if isinstance(exc, TclError):
            self.report_tcl_error(exc)
        else:
            self.report_error(
                "internal error in %s (%s: %s)"
                % (context, type(exc).__name__, exc))

    # ------------------------------------------------------------------
    # Fault containment (limits, safe mode -- docs/ROBUSTNESS.md)

    def apply_fault_containment(self):
        """Push the supervision-config fault knobs into the runtime.

        Called when a supervisor starts (after ``load_resources``) and
        by the CLI for file/interactive modes, so ``evalTimeLimit``,
        ``evalCommandLimit``, ``recursionLimit``, ``safeMode`` and
        ``panicLog`` resources behave identically in every mode.
        Explicit command-level settings have already won inside
        :class:`SupervisionConfig`.
        """
        from repro.tcl import errors as _errors

        config = self.supervision
        self.interp.set_eval_limits(time_ms=config.eval_time_ms,
                                    commands=config.eval_commands)
        self.app.core.handler_time_limit_ms = config.handler_time_ms
        if config.recursion_limit:
            self.interp.set_recursion_limit(config.recursion_limit)
        if config.panic_log:
            _errors.set_panic_log(config.panic_log)
        if config.safe_mode:
            self.enable_safe_mode()

    def enable_safe_mode(self):
        """Hide the Safe-Tcl command set from scripts (one-way)."""
        from repro.core.safemode import enable_safe_mode

        hidden = enable_safe_mode(self.interp)
        self.safe_mode = True
        return hidden

    def _convert_callback(self, widget, value):
        """The Callback converter: a Tcl command string becomes a
        callback list entry (percent codes resolved per invocation)."""
        callback_list = CallbackList()
        self._add_script_callback(callback_list, value)
        return callback_list

    def _add_script_callback(self, callback_list, script):
        def run(widget, call_data, _list=callback_list, _script=script):
            resource_name = "callback"
            for key, candidate in widget.resources.items():
                if candidate is _list:
                    resource_name = key
                    break
            expanded = substitute_callback(_script, widget, resource_name,
                                           call_data)
            self.run_command_line(expanded)

        callback_list.add(run, source=script)

    def add_predefined_callback(self, widget, resource_name, func_name,
                                args):
        func = PREDEFINED_CALLBACKS.get(func_name)
        if func is None:
            raise TclError(
                'unknown predefined callback "%s": must be one of %s'
                % (func_name, ", ".join(sorted(PREDEFINED_CALLBACKS))))

        def run(invoking_widget, call_data):
            func(self, invoking_widget, args, call_data)

        widget.add_callback(resource_name, run,
                            source="%s %s" % (func_name, " ".join(args)))

    def _exec_action(self, widget, event, args):
        """The global ``exec`` action: run a Wafe command on any event,
        with the paper's percent codes expanded from the event."""
        if not args:
            return
        script = substitute_action(args[0], widget, event)
        self.run_command_line(script)

    def merge_widget_translations(self, widget, table_text, mode):
        new = parse_translation_table(table_text)
        new.directive = mode
        widget.resources["translations"] = merge_tables(
            widget.resources.get("translations"), new)

    # ------------------------------------------------------------------
    # Output and lifecycle

    def echo(self, text):
        """``echo``: to the backend application if attached, else stdout.

        In frontend mode this is how the GUI talks back to the program
        ("the frontend is programmed ... to send back string messages
        whenever certain events occur").
        """
        if self.frontend is not None:
            self.frontend.send(text + "\n")
        else:
            self.interp.output(text + "\n")

    def _tcl_output(self, text):
        import sys

        if self.frontend is not None:
            self.frontend.send(text)
        else:
            sys.stdout.write(text)
            sys.stdout.flush()

    def quit(self):
        self.quit_requested = True
        self.app.exit_loop()
        if self.supervisor is not None:
            self.supervisor.stop()
        elif self.frontend is not None:
            self.frontend.close()
        # Graceful shutdown of the event core: a bounded drain of any
        # pending writer watches, then every remaining source is
        # unregistered with leak accounting (``info eventstats``).
        self.app.shutdown()

    def realize(self, widget=None):
        target = widget if widget is not None else self.top_level
        target.realize()
        self.app.process_pending()

    def main_loop(self, until=None, max_idle=None):
        self.app.main_loop(until=until, max_idle=max_idle)
