"""The line-oriented communication protocol (Figure 4).

Lines arriving from the application that start with the prefix
character (``%`` by default) are Wafe commands; everything else is
passed through to Wafe's stdout.  A command must fit in one line; the
maximum length is a compile-time constant in the paper (64 kB default)
and a constructor argument here.

:class:`LineParser` is the transport-independent core -- the frontend
feeds it whatever bytes arrive on the pipe; it splits lines, enforces
the length limit, and classifies command versus passthrough.  The mass
transfer channel bypasses this parser entirely
(:class:`MassTransferState`).
"""

import collections

DEFAULT_PREFIX = "%"
DEFAULT_MAX_LINE = 64 * 1024


class LineTooLong(Exception):
    """A protocol line exceeded the configured maximum."""


class LineParser:
    """Incremental splitter/classifier for the command channel."""

    def __init__(self, prefix=DEFAULT_PREFIX, max_line=DEFAULT_MAX_LINE):
        self.prefix = prefix
        self.max_line = max_line
        self._buffer = b""
        self._discarding = False  # inside an oversized line, pre-newline
        self.lines_seen = 0
        self.commands_seen = 0
        self.overlong_lines = 0

    def split_lines_tolerant(self, data):
        """Feed raw bytes; returns ``(lines, errors)``.

        An oversized line is reported as a :class:`LineTooLong` in
        ``errors`` and the parser *resynchronizes at the next newline*:
        valid lines before, after, and even interleaved with the
        overflow in the same read are all still returned.
        """
        if isinstance(data, str):
            data = data.encode("utf-8", "replace")
        self._buffer += data
        lines = []
        errors = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if self._discarding:
                    self._buffer = b""
                elif len(self._buffer) > self.max_line:
                    # The line is already too long and its newline has
                    # not arrived yet: drop what we have and keep
                    # dropping until the next newline.
                    self._buffer = b""
                    self._discarding = True
                    self.overlong_lines += 1
                    errors.append(LineTooLong(
                        "protocol line exceeds %d bytes" % self.max_line))
                break
            raw = self._buffer[:newline]
            self._buffer = self._buffer[newline + 1 :]
            if self._discarding:
                # The tail of an oversized line already reported.
                self._discarding = False
                continue
            if len(raw) > self.max_line:
                self.overlong_lines += 1
                errors.append(LineTooLong(
                    "protocol line exceeds %d bytes" % self.max_line))
                continue
            lines.append(raw.decode("utf-8", "replace"))
        return lines, errors

    def split_lines(self, data):
        """Strict variant: raises the first :class:`LineTooLong`.

        The lines parsed from this feed (the parser has already
        resynchronized) ride along on the exception as ``err.lines``.
        """
        lines, errors = self.split_lines_tolerant(data)
        if errors:
            err = errors[0]
            err.lines = lines
            raise err
        return lines

    def classify(self, line):
        """One line -> ("command", body) or ("output", line)."""
        self.lines_seen += 1
        if line.startswith(self.prefix):
            self.commands_seen += 1
            return ("command", line[len(self.prefix):])
        return ("output", line)

    def feed(self, data):
        """Feed raw bytes; returns [("command"|"output", text), ...]."""
        return [self.classify(line) for line in self.split_lines(data)]

    def pending_bytes(self):
        return len(self._buffer)


class OutboundChannel:
    """The transport-independent outbound half of a line channel.

    Both halves of Wafe's process model speak through this machine: the
    stdio :class:`~repro.core.frontend.Frontend` (pipes to a spawned
    backend) and the server's :class:`~repro.server.session.Session`
    (a socket to a connected client) are the same channel over
    different descriptors.  The contract, shared by both:

    * ``send`` never blocks.  Text is coalesced in ``_out_buffer``;
      :meth:`flush` moves it to the wire; bytes the kernel will not
      take right now are parked in the ``_pending`` deque and drained
      by an output-readiness watch on the event core.
    * A peer that stops reading cannot buffer us to death: beyond
      ``high_water`` queued bytes, output is *dropped* with one
      reported overflow per episode (``dropped_bytes`` counts).
    * Frame-granularity pipelining: with ``pipeline`` true (default)
      output batches until a flush point (end-of-dispatch frame hook,
      explicit sync, or the :attr:`FLUSH_THRESHOLD` latency bound);
      ``pipeline=False`` is the unpipelined executable spec -- one
      write per send.

    Subclasses provide the transport: :meth:`_channel_open`,
    :meth:`_channel_write`, :meth:`_channel_dead`, the readiness-watch
    hooks, and the ``high_water`` policy source.
    """

    # How much outbound data may accumulate before we stop deferring
    # to loop idle and write through (bounds latency; roughly one pipe
    # capacity so the write usually completes in one call).
    FLUSH_THRESHOLD = 32768

    def _init_outbound(self):
        self._out_buffer = []
        self._out_buffered_bytes = 0
        self._pending = collections.deque()
        self._pending_bytes = 0
        self._flush_work_id = None
        self._output_id = None
        self._overflowed = False
        self.dropped_bytes = 0
        self.pipeline = True
        self.closed = False
        self.stats = self._zero_stats()

    @staticmethod
    def _zero_stats():
        return {
            "sends": 0,          # send() calls (echo lines, replies)
            "pipe_writes": 0,    # successful write() syscalls
            "bytes_written": 0,
            "frame_flushes": 0,  # end-of-dispatch flushes with data
            "sync_points": 0,    # explicit sync-command flushes
        }

    def reset_stats(self):
        self.stats = self._zero_stats()

    # -- the transport contract (subclass responsibilities) ------------

    @property
    def high_water(self):
        """Backpressure limit: total queued outbound bytes allowed."""
        return 1 << 20

    def _channel_open(self):
        """True while the transport can still accept writes."""
        raise NotImplementedError

    def _channel_write(self, chunk):
        """One non-blocking write; returns the byte count, or None on
        EAGAIN.  May raise OSError-family errors for a dead peer."""
        raise NotImplementedError

    def _channel_dead(self):
        """The peer is gone (write raised); outbound state is already
        cleared when this is called."""
        raise NotImplementedError

    def _channel_flushed(self):
        """Called once per drain-to-empty with data written; returns
        False if the transport died during the post-write flush."""
        return True

    def _add_output_watch(self, callback):
        raise NotImplementedError

    def _remove_output_watch(self, watch_id):
        raise NotImplementedError

    def _add_idle_flush(self, callback):
        """Schedule a one-shot idle flush; return an id or None."""
        return None

    def _remove_idle_flush(self, work_id):
        pass

    def _report_overflow(self):
        """One queued-beyond-high-water episode (already counted)."""

    # -- the shared machine ---------------------------------------------

    def queued_bytes(self):
        """Everything waiting to reach the peer."""
        return self._out_buffered_bytes + self._pending_bytes

    def send(self, text):
        """Queue ``text`` for the peer; order is preserved.

        The actual write happens in :meth:`flush` -- scheduled as an
        idle work proc so all the sends fired by one event become a
        single ``write()`` on the descriptor.  Data beyond the
        high-water mark is dropped with a reported error rather than
        buffered without bound (the peer is not reading)."""
        if self.closed or not self._channel_open():
            return
        if self.queued_bytes() + len(text) > self.high_water:
            self.dropped_bytes += len(text)
            if not self._overflowed:
                self._overflowed = True
                self._report_overflow()
            return
        self.stats["sends"] += 1
        self._out_buffer.append(text)
        self._out_buffered_bytes += len(text)
        if not self.pipeline:
            # Unpipelined spec path: one write per send.
            self.flush()
        elif self._out_buffered_bytes >= self.FLUSH_THRESHOLD:
            self.flush()
        elif self._flush_work_id is None:
            self._flush_work_id = self._add_idle_flush(self._idle_flush)

    def _idle_flush(self):
        self.flush()
        return True  # one-shot: the work proc removes itself

    def _frame_flush(self):
        """End-of-dispatch flush point: everything the frame's events
        echoed goes out as one write."""
        if self.closed:
            return
        if self._out_buffer:
            self.stats["frame_flushes"] += 1
            self.flush()

    def sync_point(self):
        """An explicit ``sync``: flush now.  Ordering is safe out of
        the box because all output -- echoes, callback replies, and the
        sync itself -- travels one FIFO buffer: everything sent before
        this point reaches the peer before anything sent after it,
        pipelined or not."""
        self.stats["sync_points"] += 1
        self.flush()

    def flush(self):
        """Move queued text to the wire -- as much as the kernel accepts.

        Never blocks: what the kernel will not take right now stays in
        the pending queue and an output watch on the event loop drains
        it as the peer reads."""
        if self._flush_work_id is not None:
            self._remove_idle_flush(self._flush_work_id)
            self._flush_work_id = None
        if self._out_buffer:
            data = "".join(self._out_buffer).encode("utf-8", "replace")
            self._out_buffer = []
            self._out_buffered_bytes = 0
            self._pending.append(data)
            self._pending_bytes += len(data)
        self._write_pending()

    def _write_pending(self):
        if self.closed or not self._channel_open():
            self._clear_outbound()
            return
        wrote_any = False
        while self._pending:
            chunk = self._pending[0]
            try:
                n = self._channel_write(chunk)
            except BlockingIOError as err:
                n = err.characters_written or None
            except (BrokenPipeError, ConnectionResetError, OSError,
                    ValueError):
                self._clear_outbound()
                self._channel_dead()
                return
            if n is None:       # EAGAIN: the descriptor is full
                break
            wrote_any = True
            self.stats["pipe_writes"] += 1
            self.stats["bytes_written"] += n
            self._pending_bytes -= n
            if n < len(chunk):  # partial write: descriptor is now full
                self._pending[0] = chunk[n:]
                break
            self._pending.popleft()
        if self._pending:
            if self._output_id is None:
                self._output_id = self._add_output_watch(self._on_writable)
        else:
            self._cancel_output_watch()
            if self._overflowed:
                self._overflowed = False  # drained: report again next time
            if wrote_any and not self._channel_flushed():
                self._clear_outbound()
                self._channel_dead()

    def _on_writable(self, fd):
        self._write_pending()

    def _cancel_output_watch(self):
        if self._output_id is not None:
            self._remove_output_watch(self._output_id)
            self._output_id = None

    def _clear_outbound(self):
        self._out_buffer = []
        self._out_buffered_bytes = 0
        self._pending.clear()
        self._pending_bytes = 0
        self._cancel_output_watch()
        if self._flush_work_id is not None:
            self._remove_idle_flush(self._flush_work_id)
            self._flush_work_id = None


class MassTransferState:
    """State for one ``setCommunicationVariable`` request.

    Accumulates raw bytes from the mass channel; once ``limit`` bytes
    have arrived the data is stored into the named Tcl variable and the
    completion script runs ("After 100000 bytes are read, the Tcl
    command specified in the last argument will be executed").
    """

    def __init__(self, var_name, limit, completion_script):
        self.var_name = var_name
        self.limit = limit
        self.completion_script = completion_script
        self.received = b""

    def feed(self, data):
        """Returns (payload, leftover) when complete, else None."""
        self.received += data
        if len(self.received) >= self.limit:
            payload = self.received[: self.limit]
            leftover = self.received[self.limit :]
            return payload, leftover
        return None

    @property
    def missing(self):
        return max(0, self.limit - len(self.received))
