"""The line-oriented communication protocol (Figure 4).

Lines arriving from the application that start with the prefix
character (``%`` by default) are Wafe commands; everything else is
passed through to Wafe's stdout.  A command must fit in one line; the
maximum length is a compile-time constant in the paper (64 kB default)
and a constructor argument here.

:class:`LineParser` is the transport-independent core -- the frontend
feeds it whatever bytes arrive on the pipe; it splits lines, enforces
the length limit, and classifies command versus passthrough.  The mass
transfer channel bypasses this parser entirely
(:class:`MassTransferState`).
"""

DEFAULT_PREFIX = "%"
DEFAULT_MAX_LINE = 64 * 1024


class LineTooLong(Exception):
    """A protocol line exceeded the configured maximum."""


class LineParser:
    """Incremental splitter/classifier for the command channel."""

    def __init__(self, prefix=DEFAULT_PREFIX, max_line=DEFAULT_MAX_LINE):
        self.prefix = prefix
        self.max_line = max_line
        self._buffer = b""
        self._discarding = False  # inside an oversized line, pre-newline
        self.lines_seen = 0
        self.commands_seen = 0
        self.overlong_lines = 0

    def split_lines_tolerant(self, data):
        """Feed raw bytes; returns ``(lines, errors)``.

        An oversized line is reported as a :class:`LineTooLong` in
        ``errors`` and the parser *resynchronizes at the next newline*:
        valid lines before, after, and even interleaved with the
        overflow in the same read are all still returned.
        """
        if isinstance(data, str):
            data = data.encode("utf-8", "replace")
        self._buffer += data
        lines = []
        errors = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if self._discarding:
                    self._buffer = b""
                elif len(self._buffer) > self.max_line:
                    # The line is already too long and its newline has
                    # not arrived yet: drop what we have and keep
                    # dropping until the next newline.
                    self._buffer = b""
                    self._discarding = True
                    self.overlong_lines += 1
                    errors.append(LineTooLong(
                        "protocol line exceeds %d bytes" % self.max_line))
                break
            raw = self._buffer[:newline]
            self._buffer = self._buffer[newline + 1 :]
            if self._discarding:
                # The tail of an oversized line already reported.
                self._discarding = False
                continue
            if len(raw) > self.max_line:
                self.overlong_lines += 1
                errors.append(LineTooLong(
                    "protocol line exceeds %d bytes" % self.max_line))
                continue
            lines.append(raw.decode("utf-8", "replace"))
        return lines, errors

    def split_lines(self, data):
        """Strict variant: raises the first :class:`LineTooLong`.

        The lines parsed from this feed (the parser has already
        resynchronized) ride along on the exception as ``err.lines``.
        """
        lines, errors = self.split_lines_tolerant(data)
        if errors:
            err = errors[0]
            err.lines = lines
            raise err
        return lines

    def classify(self, line):
        """One line -> ("command", body) or ("output", line)."""
        self.lines_seen += 1
        if line.startswith(self.prefix):
            self.commands_seen += 1
            return ("command", line[len(self.prefix):])
        return ("output", line)

    def feed(self, data):
        """Feed raw bytes; returns [("command"|"output", text), ...]."""
        return [self.classify(line) for line in self.split_lines(data)]

    def pending_bytes(self):
        return len(self._buffer)


class MassTransferState:
    """State for one ``setCommunicationVariable`` request.

    Accumulates raw bytes from the mass channel; once ``limit`` bytes
    have arrived the data is stored into the named Tcl variable and the
    completion script runs ("After 100000 bytes are read, the Tcl
    command specified in the last argument will be executed").
    """

    def __init__(self, var_name, limit, completion_script):
        self.var_name = var_name
        self.limit = limit
        self.completion_script = completion_script
        self.received = b""

    def feed(self, data):
        """Returns (payload, leftover) when complete, else None."""
        self.received += data
        if len(self.received) >= self.limit:
            payload = self.received[: self.limit]
            leftover = self.received[self.limit :]
            return payload, leftover
        return None

    @property
    def missing(self):
        return max(0, self.limit - len(self.received))
