"""The ``wafe`` / ``mofe`` command line.

Argument handling follows the paper: arguments starting with a double
dash are for the frontend itself; the rest go to the X Toolkit
(``-display``, ``-xrm``) or -- in frontend mode -- to the application
program.  The mode is chosen the way the paper describes:

* invoked through a link named ``xfoo``  -> frontend mode running ``foo``
* ``--f script`` (the ``#!`` magic)      -> file mode
* ``--app program``                      -> frontend mode
* otherwise                              -> interactive mode

``--lint`` (file mode only) statically analyzes the script with
wafelint before running it; diagnostics are advisory and go to the
error channel.  ``python -m repro.lint`` runs the analyzer standalone.

``--safe`` enables safe mode before any script or backend line is
evaluated: the Safe-Tcl-style dangerous command set is hidden and
cannot be restored from the script level (see ``repro.core.safemode``).

``--serve`` starts the multi-session server instead: clients connect
over ``--socket PATH`` and/or ``--port N`` (``--host`` to bind a
specific interface, ``--max-sessions`` to cap capacity), each getting
its own fault-contained Wafe session; ``--stdio`` runs the degenerate
single-session client on stdin/stdout.  See docs/SERVER.md.
"""

import sys

from repro.core.frontend import backend_for_invocation
from repro.core.modes import (
    InteractiveSession,
    make_wafe,
    run_file,
    run_frontend,
)

_XT_FLAGS_WITH_VALUE = ("-display", "-xrm", "-name", "-title", "-geometry",
                        "-fn", "-bg", "-fg")


def split_arguments(argv):
    """Partition argv into (frontend_options, xt_args, app_args)."""
    frontend = {}
    xt_args = []
    app_args = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg.startswith("--"):
            key = arg[2:]
            if key in ("f", "app", "prefix", "build", "resources",
                       "socket", "port", "host", "max-sessions"):
                if i + 1 >= len(argv):
                    raise SystemExit("wafe: option %s needs a value" % arg)
                frontend[key] = argv[i + 1]
                i += 2
            elif key in ("interactive", "version", "help", "lint", "safe",
                         "serve", "stdio"):
                frontend[key] = True
                i += 1
            else:
                frontend[key] = True
                i += 1
        elif arg in _XT_FLAGS_WITH_VALUE:
            xt_args.extend(argv[i : i + 2])
            i += 2
        else:
            app_args.append(arg)
            i += 1
    return frontend, xt_args, app_args


def _display_from(xt_args):
    for i, arg in enumerate(xt_args):
        if arg == "-display" and i + 1 < len(xt_args):
            return xt_args[i + 1]
    return ":0"


def _main(build, argv=None):
    argv = list(sys.argv if argv is None else argv)
    invoked_as = argv[0] if argv else "wafe"
    options, xt_args, app_args = split_arguments(argv[1:])
    if options.get("help"):
        sys.stdout.write(__doc__ + "\n")
        return 0
    if options.get("version"):
        from repro.core.wafe import VERSION

        sys.stdout.write("wafe %s\n" % VERSION)
        return 0
    build = options.get("build", build)
    if options.get("serve"):
        # Serve mode: the multi-session server owns the event core and
        # builds one Wafe instance per connected client (docs/SERVER.md).
        from repro.server.listener import ServerError, serve_main

        try:
            return serve_main(options, build=build)
        except ServerError as err:
            sys.stderr.write("wafe: %s\n" % err)
            return 1
    wafe = make_wafe(build=build, display_name=_display_from(xt_args),
                     argv=xt_args)
    if options.get("resources"):
        # A resource description file, evaluated at startup (the lowest
        # precedence way of setting resource values in the paper).
        wafe.app.load_resource_file(options["resources"])
        # Re-apply -xrm entries so they keep their higher precedence.
        wafe._apply_xt_arguments(xt_args)
    if options.get("safe"):
        wafe.supervision.set("safe_mode", True)
    backend = options.get("app") or backend_for_invocation(invoked_as)
    if options.get("f") or not backend:
        # Frontend mode applies fault containment when the supervisor
        # starts; file and interactive modes have no supervisor, so the
        # limits / safe mode from resources and --safe are applied here.
        wafe.supervision.load_resources(wafe.app, report=wafe.report_error)
        wafe.apply_fault_containment()
    if options.get("f"):
        script = options["f"]
        run_file(wafe, script, lint=options.get("lint", False))
        return 0
    if backend:
        run_frontend(wafe, backend, app_args)
        return 0
    if app_args and not options.get("interactive"):
        # A bare script path also selects file mode.
        run_file(wafe, app_args[0], lint=options.get("lint", False))
        return 0
    session = InteractiveSession(wafe)
    session.run()
    return 0


def main(argv=None):
    """Entry point of the Athena build (``wafe``)."""
    return _main("athena", argv)


def motif_main(argv=None):
    """Entry point of the Motif build (``mofe``)."""
    return _main("motif", argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
