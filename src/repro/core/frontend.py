"""Frontend mode: the application program runs as a child of Wafe.

Implements the paper's process model (Figure 4, left): the application
is spawned with its stdio channels cross-connected to the frontend --
Wafe reads the application's stdout looking for ``%``-prefixed command
lines, and callbacks ``echo`` plain strings into the application's
stdin.  An optional *mass transfer* pipe carries bulk data with no
parsing.

The program to launch comes either from an explicit argument or from
the paper's naming scheme: when Wafe is invoked through a link named
``xfoo``, the backend program ``foo`` is spawned.

The outbound channel is fully non-blocking: the backend's stdin is put
in O_NONBLOCK mode, partial writes and EAGAIN park the remainder in a
bounded pending queue drained through an output-readiness watch on the
Xt event loop, and a high-water limit turns unbounded buffering into a
reported error -- a stalled backend can never freeze the GUI inside
``write()``.  See docs/ROBUSTNESS.md.
"""

import os
import shutil
import subprocess
import sys
import time as _time

from repro.tcl.errors import TclError, log_panic
from repro.core.channel import (
    DEFAULT_MAX_LINE,
    DEFAULT_PREFIX,
    LineParser,
    MassTransferState,
    OutboundChannel,
)


def backend_for_invocation(invoked_as):
    """The symlink naming scheme: ``xwafeApp`` runs ``wafeApp``."""
    base = os.path.basename(invoked_as)
    if base.startswith("x") and base not in ("xwafe", "xmofe"):
        return base[1:]
    return None


def _classify(returncode):
    # Local import: supervisor imports this module.
    from repro.core.supervisor import classify_exit

    return classify_exit(returncode)


class Frontend(OutboundChannel):
    """Owns the backend subprocess and its channels.

    The outbound half is the shared :class:`OutboundChannel` machine
    (the same one the multi-session server's sockets use; see
    docs/SERVER.md) instantiated over the backend's stdin pipe."""

    #: How many bytes may sit unarmed in the mass channel before the
    #: overrun is reported and further unarmed data dropped.
    MASS_LEFTOVER_LIMIT = 1 << 20

    def __init__(self, wafe, program, program_args=None,
                 prefix=DEFAULT_PREFIX, max_line=DEFAULT_MAX_LINE,
                 passthrough=None, supervisor=None):
        self.wafe = wafe
        self.program = program
        self.supervisor = supervisor
        self.parser = LineParser(prefix, max_line)
        self.mass_state = None
        self._mass_read = None
        self._mass_child_fd = None
        self._mass_input_id = None
        self._mass_leftover = b""
        self._mass_overrun_reported = False
        self._mass_watch_id = None
        self._mass_activity = None
        self.passthrough = passthrough  # callable(str) for non-command lines
        self.eof_seen = False
        self.exit_status = None     # ExitStatus once the child is reaped
        # The shared outbound machine (coalescing buffer, non-blocking
        # pending deque + writability watch, high-water backpressure,
        # frame-granularity pipelining) -- see OutboundChannel.
        self._init_outbound()
        command = self._resolve_command(program, program_args or [])
        # The mass channel exists from the start so getChannel can
        # report a stable fd number to the application.
        self._mass_read, self._mass_child_fd = os.pipe()
        os.set_inheritable(self._mass_child_fd, True)
        os.set_blocking(self._mass_read, False)
        # bufsize=0: stdin is a raw FileIO whose write() honours
        # O_NONBLOCK (partial count, or None on EAGAIN).
        self.process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,
            bufsize=0,
            close_fds=True,
            pass_fds=(self._mass_child_fd,),
        )
        self._stdin_fd = self.process.stdin.fileno()
        os.set_blocking(self._stdin_fd, False)
        os.set_blocking(self.process.stdout.fileno(), False)
        self._input_id = wafe.app.add_input(self.process.stdout,
                                            self._on_readable,
                                            label="backend stdout")
        wafe.app.add_frame_hook(self._frame_flush)
        wafe.frontend = self
        self._send_init_com()

    @staticmethod
    def _resolve_command(program, program_args):
        if isinstance(program, (list, tuple)):
            return list(program) + list(program_args)
        path = shutil.which(program) or program
        if not os.path.exists(path):
            raise TclError('cannot find application program "%s"' % program)
        return [path] + list(program_args)

    def _send_init_com(self):
        """The InitCom resource: an initial command for the backend
        (e.g. a Prolog startup goal), sent right after the fork."""
        value = self.wafe.app.database.query(
            [self.wafe.app.app_name, "initCom"],
            [self.wafe.app.app_class, "InitCom"])
        if value:
            self.send(value + "\n")

    # ------------------------------------------------------------------
    # Application -> frontend

    def _on_readable(self, fileobj):
        try:
            data = os.read(fileobj.fileno(), 65536)
        except BlockingIOError:
            return  # spurious wakeup
        except (OSError, ValueError):
            data = b""
        if not data:
            self._handle_eof()
            return
        # Oversized lines are reported and the parser resynchronizes
        # at the next newline; every valid line in the read -- before
        # or after the overflow -- is still processed.
        lines, errors = self.parser.split_lines_tolerant(data)
        for err in errors:
            self.wafe.report_error(str(err))
        # Classify lazily, one line at a time: a %setPrefix command
        # affects the classification of the very next line.
        for raw in lines:
            kind, line = self.parser.classify(raw)
            if kind == "command":
                # Last-resort firewall: a Python exception escaping one
                # backend line must not tear down the reader (and with
                # it the GUI); later lines in this read still run.
                try:
                    self.wafe.run_command_line(line)
                except Exception as exc:  # noqa: BLE001
                    summary = log_panic('backend line "%s"' % line[:80], exc)
                    self.wafe.report_error(
                        "internal error evaluating backend line (%s)"
                        % summary)
            else:
                self._passthrough(line)
        # Replies the commands queued go out as one write, promptly --
        # a backend blocked on readline() must not wait for loop idle.
        self.flush()

    def _passthrough(self, line):
        if self.passthrough is not None:
            self.passthrough(line)
        else:
            sys.stdout.write(line + "\n")
            sys.stdout.flush()

    def _handle_eof(self):
        """Backend closed its stdout: reap it and hand the session's
        fate to the supervisor (or end the main loop, standalone)."""
        if self.eof_seen:
            return
        self.eof_seen = True
        self.wafe.app.remove_input(self._input_id)
        # The pipe's reader is gone with the session; pending outbound
        # bytes can never arrive.
        self._clear_outbound()
        self._cancel_mass_watchdog()
        self.exit_status = self._reap()
        if self.supervisor is not None:
            self.supervisor.backend_exited(self, self.exit_status)
        else:
            self.wafe.app.exit_loop()

    def _reap(self, grace=0.2):
        """Collect the child's exit status so no zombie lingers.

        EOF on stdout almost always means the child is exiting; give
        it a short grace period.  Returns None if it is genuinely
        still alive (stdout closed deliberately) -- close() or the
        supervisor escalate from there."""
        returncode = self.process.poll()
        if returncode is None:
            try:
                returncode = self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                return None
        return _classify(returncode)

    # ------------------------------------------------------------------
    # Frontend -> application: the OutboundChannel transport hooks

    @property
    def high_water(self):
        """Backpressure limit: total queued outbound bytes allowed."""
        config = getattr(self.wafe, "supervision", None)
        if config is not None:
            return config.high_water
        return 1 << 20

    def _channel_open(self):
        return self.process.stdin is not None

    def _channel_write(self, chunk):
        # bufsize=0 stdin is a raw FileIO whose write() honours
        # O_NONBLOCK: a partial count, or None on EAGAIN.
        return self.process.stdin.write(chunk)

    def _channel_dead(self):
        self._handle_eof()

    def _channel_flushed(self):
        try:
            self.process.stdin.flush()  # no-op on raw; counts in tests
        except (BrokenPipeError, OSError, ValueError):
            return False
        return True

    def _add_output_watch(self, callback):
        return self.wafe.app.add_output(self._stdin_fd, callback,
                                        label="backend stdin drain")

    def _remove_output_watch(self, watch_id):
        self.wafe.app.remove_output(watch_id)

    def _add_idle_flush(self, callback):
        return self.wafe.app.add_work_proc(callback)

    def _remove_idle_flush(self, work_id):
        self.wafe.app.remove_work_proc(work_id)

    def _report_overflow(self):
        self.wafe.report_error(
            "backend channel overflow: %d bytes queued and the "
            "application is not reading; dropping output"
            % self.queued_bytes())

    def _drain(self, timeout=0.5):
        """Graceful-close drain: give pending output a bounded chance
        to reach the backend before the pipe is torn down.

        The wait goes through the event core's ``wait_writable`` --
        EINTR-safe against a monotonic deadline, and returning False on
        a dead descriptor -- so neither signal delivery nor a vanished
        pipe can stall the close past its budget (this used to be a
        private blocking ``select`` outside the event core)."""
        self.flush()
        core = self.wafe.app.core
        deadline = _time.monotonic() + timeout
        while self._pending and not self.closed and not self.eof_seen:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                break
            if not core.wait_writable(self._stdin_fd, remaining):
                break
            self._write_pending()

    # ------------------------------------------------------------------
    # Mass transfer channel

    def mass_channel_fd(self):
        """The fd number the *application* writes to ("listening on 5")."""
        return self._mass_child_fd

    def set_communication_variable(self, var_name, limit, script):
        self.mass_state = MassTransferState(var_name, limit, script)
        self._mass_activity = _time.monotonic()
        if self._mass_input_id is None:
            # Wrap the raw fd so select() can watch it.
            self._mass_file = os.fdopen(self._mass_read, "rb", buffering=0,
                                        closefd=False)
            self._mass_input_id = self.wafe.app.add_input(
                self._mass_file, self._on_mass_readable,
                label="mass transfer channel")
        self._arm_mass_watchdog()
        if self._mass_leftover:
            # Bytes that overran the previous request are the start of
            # this one.
            leftover, self._mass_leftover = self._mass_leftover, b""
            self._mass_overrun_reported = False
            done = self.mass_state.feed(leftover)
            if done is not None:
                self._complete_mass(*done, status="ok")

    def _on_mass_readable(self, fileobj):
        try:
            data = os.read(self._mass_read, 65536)
        except (BlockingIOError, OSError):
            return
        if not data:
            return
        self._mass_activity = _time.monotonic()
        if self.mass_state is None:
            self._stash_mass_leftover(data)
            return
        done = self.mass_state.feed(data)
        if done is not None:
            self._complete_mass(*done, status="ok")

    def _complete_mass(self, payload, leftover, status):
        """Finish the active transfer: set the variable, record the
        transfer status in ``transferStatus``, run the completion
        script, and keep any excess bytes for the next request."""
        state = self.mass_state
        self.mass_state = None
        self._cancel_mass_watchdog()
        if leftover:
            self._stash_mass_leftover(leftover)
        self.wafe.interp.set_var(
            state.var_name, payload.decode("utf-8", "replace"))
        self.wafe.interp.set_var("transferStatus", status)
        self.wafe.run_command_line(state.completion_script)
        self.flush()

    def _stash_mass_leftover(self, data):
        """Excess mass-channel bytes with no request armed: preserved
        (bounded) for the next setCommunicationVariable."""
        room = self.MASS_LEFTOVER_LIMIT - len(self._mass_leftover)
        if room > 0:
            self._mass_leftover += data[:room]
        overrun = len(data) - room
        if overrun > 0 and not self._mass_overrun_reported:
            self._mass_overrun_reported = True
            self.wafe.report_error(
                "mass transfer overrun: %d unrequested bytes dropped "
                "beyond the %d-byte carryover limit"
                % (overrun, self.MASS_LEFTOVER_LIMIT))

    # -- the stall watchdog

    def _mass_timeout_ms(self):
        config = getattr(self.wafe, "supervision", None)
        return config.mass_timeout_ms if config is not None else 0

    def _arm_mass_watchdog(self):
        timeout_ms = self._mass_timeout_ms()
        if timeout_ms <= 0 or self._mass_watch_id is not None:
            return
        self._mass_watch_id = self.wafe.app.add_timeout(
            timeout_ms, self._mass_watchdog)

    def _cancel_mass_watchdog(self):
        if self._mass_watch_id is not None:
            self.wafe.app.remove_timeout(self._mass_watch_id)
            self._mass_watch_id = None

    def _mass_watchdog(self):
        self._mass_watch_id = None
        if self.mass_state is None:
            return
        timeout_ms = self._mass_timeout_ms()
        if timeout_ms <= 0:
            return
        elapsed_ms = (_time.monotonic() - self._mass_activity) * 1000.0
        if elapsed_ms + 1.0 < timeout_ms:
            # Data flowed since the last check: watch the remainder.
            self._mass_watch_id = self.wafe.app.add_timeout(
                max(1, int(timeout_ms - elapsed_ms)), self._mass_watchdog)
            return
        state = self.mass_state
        self.wafe.report_error(
            "mass transfer stalled: %d of %d bytes for variable \"%s\" "
            "after %d ms; aborting"
            % (len(state.received), state.limit, state.var_name,
               int(timeout_ms)))
        # The completion script still runs -- with the partial payload
        # and transferStatus "timeout" -- so the application-level
        # protocol can recover instead of waiting forever.
        self._complete_mass(state.received, b"", status="timeout")

    # ------------------------------------------------------------------

    def wait(self, timeout=None):
        self._drain()
        status = self.process.wait(timeout=timeout)
        if self.exit_status is None:
            self.exit_status = _classify(status)
        return status

    def close(self):
        if self.closed:
            return
        self._drain()
        self.closed = True
        self.wafe.app.remove_frame_hook(self._frame_flush)
        self._clear_outbound()
        self._cancel_mass_watchdog()
        if self._mass_input_id is not None:
            self.wafe.app.remove_input(self._mass_input_id)
            self._mass_input_id = None
        if not self.eof_seen:
            self.wafe.app.remove_input(self._input_id)
        for stream in (self.process.stdin, self.process.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        try:
            os.close(self._mass_child_fd)
        except OSError:
            pass
        try:
            os.close(self._mass_read)
        except OSError:
            pass
        if self.process.poll() is None:
            try:
                self.process.terminate()
                self.process.wait(timeout=2)
            except (OSError, subprocess.TimeoutExpired):
                self.process.kill()
                try:
                    self.process.wait(timeout=2)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        if self.exit_status is None:
            self.exit_status = _classify(self.process.poll())
        if self.wafe.frontend is self:
            self.wafe.frontend = None
