"""Frontend mode: the application program runs as a child of Wafe.

Implements the paper's process model (Figure 4, left): the application
is spawned with its stdio channels cross-connected to the frontend --
Wafe reads the application's stdout looking for ``%``-prefixed command
lines, and callbacks ``echo`` plain strings into the application's
stdin.  An optional *mass transfer* pipe carries bulk data with no
parsing.

The program to launch comes either from an explicit argument or from
the paper's naming scheme: when Wafe is invoked through a link named
``xfoo``, the backend program ``foo`` is spawned.
"""

import os
import shutil
import subprocess
import sys

from repro.tcl.errors import TclError
from repro.core.channel import (
    DEFAULT_MAX_LINE,
    DEFAULT_PREFIX,
    LineParser,
    LineTooLong,
    MassTransferState,
)


def backend_for_invocation(invoked_as):
    """The symlink naming scheme: ``xwafeApp`` runs ``wafeApp``."""
    base = os.path.basename(invoked_as)
    if base.startswith("x") and base not in ("xwafe", "xmofe"):
        return base[1:]
    return None


class Frontend:
    """Owns the backend subprocess and its channels."""

    def __init__(self, wafe, program, program_args=None,
                 prefix=DEFAULT_PREFIX, max_line=DEFAULT_MAX_LINE,
                 passthrough=None):
        self.wafe = wafe
        self.program = program
        self.parser = LineParser(prefix, max_line)
        self.mass_state = None
        self._mass_read = None
        self._mass_child_fd = None
        self._mass_input_id = None
        self.passthrough = passthrough  # callable(str) for non-command lines
        self.closed = False
        self.eof_seen = False
        # Outbound writes are buffered so the many ``echo`` lines one
        # event can fire coalesce into a single write+flush on the pipe
        # (flushed at event-loop idle, after each batch of backend
        # input, or on explicit ``sync``).
        self._out_buffer = []
        self._out_buffered_bytes = 0
        self._flush_work_id = None
        command = self._resolve_command(program, program_args or [])
        # The mass channel exists from the start so getChannel can
        # report a stable fd number to the application.
        self._mass_read, self._mass_child_fd = os.pipe()
        os.set_inheritable(self._mass_child_fd, True)
        os.set_blocking(self._mass_read, False)
        self.process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,
            close_fds=True,
            pass_fds=(self._mass_child_fd,),
        )
        os.set_blocking(self.process.stdout.fileno(), False)
        self._input_id = wafe.app.add_input(self.process.stdout,
                                            self._on_readable)
        wafe.frontend = self
        self._send_init_com()

    @staticmethod
    def _resolve_command(program, program_args):
        if isinstance(program, (list, tuple)):
            return list(program) + list(program_args)
        path = shutil.which(program) or program
        if not os.path.exists(path):
            raise TclError('cannot find application program "%s"' % program)
        return [path] + list(program_args)

    def _send_init_com(self):
        """The InitCom resource: an initial command for the backend
        (e.g. a Prolog startup goal), sent right after the fork."""
        value = self.wafe.app.database.query(
            [self.wafe.app.app_name, "initCom"],
            [self.wafe.app.app_class, "InitCom"])
        if value:
            self.send(value + "\n")

    # ------------------------------------------------------------------
    # Application -> frontend

    def _on_readable(self, fileobj):
        try:
            data = os.read(fileobj.fileno(), 65536)
        except (OSError, ValueError):
            data = b""
        if not data:
            self._handle_eof()
            return
        try:
            lines = self.parser.split_lines(data)
        except LineTooLong as err:
            self.wafe.report_error(str(err))
            return
        # Classify lazily, one line at a time: a %setPrefix command
        # affects the classification of the very next line.
        for raw in lines:
            kind, line = self.parser.classify(raw)
            if kind == "command":
                self.wafe.run_command_line(line)
            else:
                self._passthrough(line)
        # Replies the commands queued go out as one write, promptly --
        # a backend blocked on readline() must not wait for loop idle.
        self.flush()

    def _passthrough(self, line):
        if self.passthrough is not None:
            self.passthrough(line)
        else:
            sys.stdout.write(line + "\n")
            sys.stdout.flush()

    def _handle_eof(self):
        """Backend closed its stdout: detach and end the main loop."""
        if self.eof_seen:
            return
        self.eof_seen = True
        self.wafe.app.remove_input(self._input_id)
        self.wafe.app.exit_loop()

    # ------------------------------------------------------------------
    # Frontend -> application

    # How much outbound data may accumulate before we stop deferring
    # to loop idle and write through (bounds memory; roughly one pipe
    # capacity so the write itself stays non-blocking in practice).
    FLUSH_THRESHOLD = 32768

    def send(self, text):
        """Queue ``text`` for the application; order is preserved.

        The actual write happens in :meth:`flush` -- scheduled as an
        idle work proc so all the sends fired by one event become a
        single ``write()`` + ``flush()`` on the pipe.
        """
        if self.closed or self.process.stdin is None:
            return
        self._out_buffer.append(text)
        self._out_buffered_bytes += len(text)
        if self._out_buffered_bytes >= self.FLUSH_THRESHOLD:
            self.flush()
        elif self._flush_work_id is None:
            self._flush_work_id = self.wafe.app.add_work_proc(
                self._idle_flush)

    def _idle_flush(self):
        self.flush()
        return True  # one-shot: the work proc removes itself

    def flush(self):
        """Write everything queued by :meth:`send` in one system call."""
        if self._flush_work_id is not None:
            self.wafe.app.remove_work_proc(self._flush_work_id)
            self._flush_work_id = None
        if not self._out_buffer:
            return
        data = "".join(self._out_buffer)
        self._out_buffer = []
        self._out_buffered_bytes = 0
        if self.closed or self.process.stdin is None:
            return
        try:
            self.process.stdin.write(data.encode("utf-8", "replace"))
            self.process.stdin.flush()
        except (BrokenPipeError, OSError, ValueError):
            self._handle_eof()

    # ------------------------------------------------------------------
    # Mass transfer channel

    def mass_channel_fd(self):
        """The fd number the *application* writes to ("listening on 5")."""
        return self._mass_child_fd

    def set_communication_variable(self, var_name, limit, script):
        self.mass_state = MassTransferState(var_name, limit, script)
        if self._mass_input_id is None:
            # Wrap the raw fd so select() can watch it.
            self._mass_file = os.fdopen(self._mass_read, "rb", buffering=0,
                                        closefd=False)
            self._mass_input_id = self.wafe.app.add_input(
                self._mass_file, self._on_mass_readable)

    def _on_mass_readable(self, fileobj):
        try:
            data = os.read(self._mass_read, 65536)
        except (BlockingIOError, OSError):
            return
        if not data or self.mass_state is None:
            return
        done = self.mass_state.feed(data)
        if done is not None:
            payload, leftover = done
            state = self.mass_state
            self.mass_state = None
            self.wafe.interp.set_var(
                state.var_name, payload.decode("utf-8", "replace"))
            self.wafe.run_command_line(state.completion_script)
            self.flush()
            if leftover:
                self.mass_state = MassTransferState(
                    state.var_name, len(leftover), "")  # keep remainder
                self.mass_state.feed(leftover)

    # ------------------------------------------------------------------

    def wait(self, timeout=None):
        self.flush()
        return self.process.wait(timeout=timeout)

    def close(self):
        if self.closed:
            return
        self.flush()
        self.closed = True
        for stream in (self.process.stdin, self.process.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        try:
            os.close(self._mass_child_fd)
        except OSError:
            pass
        try:
            os.close(self._mass_read)
        except OSError:
            pass
        if self.process.poll() is None:
            try:
                self.process.terminate()
                self.process.wait(timeout=2)
            except (OSError, subprocess.TimeoutExpired):
                self.process.kill()
        if self.wafe.frontend is self:
            self.wafe.frontend = None
