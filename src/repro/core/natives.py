"""The native function table behind the generated commands.

Each entry implements one toolkit C function against our Python Xt
stack; the generated bindings convert arguments and dispatch here.
This module is deliberately *handwritten* -- it is the 40 % of the
command layer the paper's generator cannot produce, and the line counts
of natives+runtime+commands versus the generated bindings reproduce the
"about 60 % generated" engineering claim.

Contract: ``f(wafe, *converted_ins)``.  Functions whose spec declares
``out:`` slots return ``(primary, out1, ...)``; a ``None`` primary with
a Cardinal return type means "use the out list's length".
"""

from repro.tcl.errors import TclError
from repro.xt.selection import (
    disown_selection,
    get_selection_value,
    own_selection,
)


def _require(widget, klass, what):
    if not hasattr(widget, what):
        raise TclError(
            'widget "%s" (class %s) does not support this operation'
            % (widget.name, widget.CLASS_NAME))
    return getattr(widget, what)


# ----------------------------------------------------------------------
# Xt Intrinsics


def xt_destroy_widget(wafe, widget):
    widget.destroy()


def xt_realize_widget(wafe, widget):
    widget.realize()
    wafe.app.process_pending()


def xt_unrealize_widget(wafe, widget):
    if widget.window is not None:
        widget.window.unmap()
    widget.realized = False


def xt_manage_child(wafe, widget):
    if widget.parent is not None:
        widget.parent.manage_child(widget)


def xt_unmanage_child(wafe, widget):
    if widget.parent is not None:
        widget.parent.unmanage_child(widget)


def xt_map_widget(wafe, widget):
    if widget.window is not None:
        widget.window.map()


def xt_unmap_widget(wafe, widget):
    if widget.window is not None:
        widget.window.unmap()


def xt_set_sensitive(wafe, widget, value):
    widget.set_sensitive(value)


def xt_popup(wafe, shell, grab_kind):
    if not hasattr(shell, "popup"):
        raise TclError('widget "%s" is not a shell' % shell.name)
    shell.popup(grab_kind)
    wafe.app.process_pending()


def xt_popdown(wafe, shell):
    if not hasattr(shell, "popdown"):
        raise TclError('widget "%s" is not a shell' % shell.name)
    shell.popdown()
    wafe.app.process_pending()


def xt_move_widget(wafe, widget, x, y):
    widget.set_values({"x": str(x), "y": str(y)})


def xt_resize_widget(wafe, widget, width, height, border_width):
    widget.set_values({"width": str(width), "height": str(height),
                       "borderWidth": str(border_width)})


def xt_get_resource_list(wafe, widget):
    names = [r.name for r in widget.class_resources()]
    return None, names


def xt_add_timeout(wafe, interval_ms, script):
    def fire():
        wafe.run_script(script)

    return wafe.app.add_timeout(interval_ms, fire)


def xt_remove_timeout(wafe, timeout_id):
    wafe.app.remove_timeout(timeout_id)


def xt_add_work_proc(wafe, script):
    def work():
        result = wafe.run_script(script)
        return result.strip() in ("1", "true", "True", "")

    return wafe.app.add_work_proc(work)


def xt_own_selection(wafe, widget, selection, script):
    def convert(target):
        return wafe.run_script(script)

    return own_selection(widget, selection, convert)


def xt_disown_selection(wafe, widget, selection):
    disown_selection(widget, selection)


def xt_get_selection_value(wafe, widget, selection, target):
    result = {}

    def done(value):
        result["value"] = value

    get_selection_value(widget, selection, target, done)
    return result.get("value") or ""


def xt_name_to_widget(wafe, reference, pathname):
    """XtNameToWidget: '.'-separated names, '*' skips levels."""
    def search(widget, parts):
        if not parts:
            return widget
        head, rest = parts[0], parts[1:]
        if head == "*":
            for child in widget.children:
                found = search(child, rest)
                if found is not None:
                    return found
                found = search(child, parts)
                if found is not None:
                    return found
            return None
        for child in widget.children:
            if child.name == head:
                return search(child, rest)
        return None

    parts = [p for p in pathname.replace("*", ".*.").split(".") if p]
    found = search(reference, parts)
    if found is None:
        raise TclError('no widget named "%s" under "%s"'
                       % (pathname, reference.name))
    return found


def xt_install_accelerators(wafe, destination, source):
    table = source.resources.get("accelerators")
    if table is not None:
        destination.accelerator_bindings.append((table, source))


def xt_install_all_accelerators(wafe, destination, root):
    xt_install_accelerators(wafe, destination, root)
    for child in root.children:
        xt_install_all_accelerators(wafe, destination, child)


def xt_override_translations(wafe, widget, table_text):
    wafe.merge_widget_translations(widget, table_text, "override")


def xt_augment_translations(wafe, widget, table_text):
    wafe.merge_widget_translations(widget, table_text, "augment")


def xt_bell(wafe, widget, volume):
    """The simulated server has no speaker; count the beeps."""
    wafe.bell_count += 1


# ----------------------------------------------------------------------
# Athena


def xaw_form_allow_resize(wafe, widget, allow):
    from repro.xaw import Form

    Form.allow_resize(widget, allow)


def xaw_list_change(wafe, widget, items, resize):
    _require(widget, None, "change_list")(items, resize)


def xaw_list_highlight(wafe, widget, index):
    _require(widget, None, "highlight")(index)


def xaw_list_unhighlight(wafe, widget):
    _require(widget, None, "unhighlight")()


def xaw_list_show_current(wafe, widget):
    current = _require(widget, None, "current")()
    if current is None:
        return -1, None
    return current.list_index, (current.list_index, current.string)


def xaw_text_set_insertion_point(wafe, widget, position):
    _require(widget, None, "set_insertion_point")(position)


def xaw_text_get_insertion_point(wafe, widget):
    return _require(widget, None, "insertion_point")


def xaw_text_replace(wafe, widget, start, end, text):
    string = _require(widget, None, "get_string")()
    start = max(0, min(start, len(string)))
    end = max(start, min(end, len(string)))
    widget.set_string(string[:start] + text + string[end:])
    widget.set_insertion_point(start + len(text))


def xaw_text_set_selection(wafe, widget, start, end):
    _require(widget, None, "select")(start, end)


def xaw_text_get_selection(wafe, widget):
    return _require(widget, None, "selected_text")()


def xaw_scrollbar_set_thumb(wafe, widget, top, shown):
    _require(widget, None, "set_thumb")(top=top, shown=shown)


def xaw_strip_chart_sample(wafe, widget):
    return _require(widget, None, "sample")()


def xaw_viewport_set_coordinates(wafe, widget, x, y):
    _require(widget, None, "scroll_to")(x=x, y=y)


def xaw_dialog_get_value_string(wafe, widget):
    return widget.get_value_string("value")


# ----------------------------------------------------------------------
# Plotter extension


def plotter_set_data(wafe, widget, items):
    _require(widget, None, "set_data")(items)


def plotter_bar_heights(wafe, widget):
    heights = _require(widget, None, "bar_heights")()
    return None, [str(h) for h in heights]


# ----------------------------------------------------------------------
# Motif


def xm_cascade_button_highlight(wafe, widget, on):
    _require(widget, None, "highlight")(on)


def xm_command_append_value(wafe, widget, text):
    _require(widget, None, "append_value")(text)


def xm_command_set_value(wafe, widget, text):
    _require(widget, None, "set_value")(text)


def xm_command_enter(wafe, widget):
    return _require(widget, None, "enter_command")()


def xm_toggle_button_get_state(wafe, widget):
    return _require(widget, None, "get_state")()


def xm_toggle_button_set_state(wafe, widget, state, notify):
    _require(widget, None, "set_state")(state, notify=notify)


def xm_text_get_string(wafe, widget):
    return _require(widget, None, "get_string")()


def xm_text_set_string(wafe, widget, text):
    _require(widget, None, "set_string")(text)


NATIVE = {
    "XtDestroyWidget": xt_destroy_widget,
    "XtRealizeWidget": xt_realize_widget,
    "XtUnrealizeWidget": xt_unrealize_widget,
    "XtManageChild": xt_manage_child,
    "XtUnmanageChild": xt_unmanage_child,
    "XtMapWidget": xt_map_widget,
    "XtUnmapWidget": xt_unmap_widget,
    "XtSetSensitive": xt_set_sensitive,
    "XtIsSensitive": lambda wafe, w: w.is_sensitive(),
    "XtIsRealized": lambda wafe, w: w.realized,
    "XtIsManaged": lambda wafe, w: w.managed,
    "XtPopup": xt_popup,
    "XtPopdown": xt_popdown,
    "XtMoveWidget": xt_move_widget,
    "XtResizeWidget": xt_resize_widget,
    "XtGetResourceList": xt_get_resource_list,
    "XtParent": lambda wafe, w: w.parent,
    "XtNameToWidget": xt_name_to_widget,
    "XtName": lambda wafe, w: w.name,
    "XtBell": xt_bell,
    "XtAddTimeOut": xt_add_timeout,
    "XtRemoveTimeOut": xt_remove_timeout,
    "XtAddWorkProc": xt_add_work_proc,
    "XtOwnSelection": xt_own_selection,
    "XtDisownSelection": xt_disown_selection,
    "XtGetSelectionValue": xt_get_selection_value,
    "XtInstallAccelerators": xt_install_accelerators,
    "XtInstallAllAccelerators": xt_install_all_accelerators,
    "XtOverrideTranslations": xt_override_translations,
    "XtAugmentTranslations": xt_augment_translations,
    "XawFormAllowResize": xaw_form_allow_resize,
    "XawListChange": xaw_list_change,
    "XawListHighlight": xaw_list_highlight,
    "XawListUnhighlight": xaw_list_unhighlight,
    "XawListShowCurrent": xaw_list_show_current,
    "XawTextSetInsertionPoint": xaw_text_set_insertion_point,
    "XawTextGetInsertionPoint": xaw_text_get_insertion_point,
    "XawTextReplace": xaw_text_replace,
    "XawTextSetSelection": xaw_text_set_selection,
    "XawTextGetSelection": xaw_text_get_selection,
    "XawScrollbarSetThumb": xaw_scrollbar_set_thumb,
    "XawStripChartSample": xaw_strip_chart_sample,
    "XawViewportSetCoordinates": xaw_viewport_set_coordinates,
    "XawDialogGetValueString": xaw_dialog_get_value_string,
    "PlotterSetData": plotter_set_data,
    "PlotterBarHeights": plotter_bar_heights,
    "XmCascadeButtonHighlight": xm_cascade_button_highlight,
    "XmCommandAppendValue": xm_command_append_value,
    "XmCommandSetValue": xm_command_set_value,
    "XmCommandEnter": xm_command_enter,
    "XmToggleButtonGetState": xm_toggle_button_get_state,
    "XmToggleButtonSetState": xm_toggle_button_set_state,
    "XmTextGetString": xm_text_get_string,
    "XmTextSetString": xm_text_set_string,
}
