"""Percent-code substitution for actions and callbacks.

Two tables from the paper are implemented exactly:

*Actions* (the ``exec`` action): printf-like codes carrying event
information.  The valid code/event combinations are the paper's matrix
-- ``%t`` and the coordinate codes work for all six supported event
types, ``%b`` only for button events, ``%a``/``%k``/``%s`` only for key
events.  ``%t`` expands to ``unknown`` for unsupported event types; an
invalid combination substitutes the empty string ("it is the
programmer's responsibility to ensure ... a percent code substitution
occurs only with a valid event type").

*Callbacks*: ``%w`` (the invoking widget's name) is valid everywhere;
further codes expose the clientData of specific widget classes -- for
the Athena List callback, ``%i`` (index) and ``%s`` (active element).
"""

from repro.xlib import keysym as _keysym
from repro.xlib import xtypes

#: The six event types of the paper's action table.
SUPPORTED_EVENT_TYPES = (
    xtypes.ButtonPress, xtypes.ButtonRelease,
    xtypes.KeyPress, xtypes.KeyRelease,
    xtypes.EnterNotify, xtypes.LeaveNotify,
)

_ALL = frozenset(SUPPORTED_EVENT_TYPES)
_BUTTON = frozenset((xtypes.ButtonPress, xtypes.ButtonRelease))
_KEY = frozenset((xtypes.KeyPress, xtypes.KeyRelease))

#: code -> set of event types it is valid for (the paper's table).
ACTION_CODE_EVENTS = {
    "t": _ALL,
    "w": _ALL,
    "b": _BUTTON,
    "x": _ALL,
    "y": _ALL,
    "X": _ALL,
    "Y": _ALL,
    "a": _KEY,
    "k": _KEY,
    "s": _KEY,
}


def _event_value(code, widget, event):
    if code == "w":
        return widget.name
    if code == "t":
        return event.type_name if event is not None else "unknown"
    if event is None:
        return ""
    if code == "b":
        return str(event.button)
    if code == "x":
        return str(event.x)
    if code == "y":
        return str(event.y)
    if code == "X":
        return str(event.x_root)
    if code == "Y":
        return str(event.y_root)
    shifted = bool(event.state & xtypes.ShiftMask)
    if code == "a":
        text, __ = _keysym.lookup_string(event.keycode, shifted)
        return text
    if code == "k":
        return str(event.keycode)
    if code == "s":
        value = _keysym.keycode_to_keysym(event.keycode, shifted)
        return _keysym.keysym_to_string(value)
    return ""


def substitute_action(template, widget, event):
    """Expand the action percent codes in a command template."""
    out = []
    i = 0
    n = len(template)
    event_type = event.type if event is not None else None
    while i < n:
        ch = template[i]
        if ch != "%" or i + 1 >= n:
            out.append(ch)
            i += 1
            continue
        code = template[i + 1]
        if code == "%":
            out.append("%")
            i += 2
            continue
        valid_for = ACTION_CODE_EVENTS.get(code)
        if valid_for is None:
            out.append(ch)
            i += 1
            continue
        if code == "t" and event_type not in _ALL:
            out.append("unknown")
        elif event_type in valid_for:
            out.append(_event_value(code, widget, event))
        else:
            pass  # invalid combination: empty substitution
        i += 2
    return "".join(out)


#: (class name, callback resource) -> {code: extractor(widget, call_data)}
#: The List entry is the paper's third table.
CALLBACK_CODES = {
    ("List", "callback"): {
        "i": lambda w, d: str(d.list_index),
        "s": lambda w, d: d.string,
    },
    ("Toggle", "callback"): {
        "s": lambda w, d: "" if d is None else str(d),
    },
    ("Scrollbar", "jumpProc"): {
        "v": lambda w, d: "%g" % d,
    },
    ("Scrollbar", "scrollProc"): {
        "v": lambda w, d: str(d),
    },
    ("XmToggleButton", "valueChangedCallback"): {
        "v": lambda w, d: "1" if d else "0",
    },
    ("XmCommand", "commandEnteredCallback"): {
        "v": lambda w, d: "" if d is None else str(d),
    },
    ("XmCommand", "commandChangedCallback"): {
        "v": lambda w, d: "" if d is None else str(d),
    },
    ("XmText", "valueChangedCallback"): {
        "v": lambda w, d: "" if d is None else str(d),
    },
}


def callback_codes_for(widget, resource_name):
    """The percent codes valid for a widget class's callback resource,
    walking up the class hierarchy like the reference manual does."""
    for klass in type(widget).__mro__:
        name = klass.__dict__.get("CLASS_NAME")
        if name is None:
            continue
        table = CALLBACK_CODES.get((name, resource_name))
        if table is not None:
            return table
    return {}


def substitute_callback(template, widget, resource_name, call_data):
    """Expand callback percent codes (%w plus class-specific ones)."""
    codes = callback_codes_for(widget, resource_name)
    out = []
    i = 0
    n = len(template)
    while i < n:
        ch = template[i]
        if ch != "%" or i + 1 >= n:
            out.append(ch)
            i += 1
            continue
        code = template[i + 1]
        if code == "%":
            out.append("%")
        elif code == "w":
            out.append(widget.name)
        elif code in codes and call_data is not None:
            out.append(codes[code](widget, call_data))
        elif code in codes:
            pass  # no clientData available: empty
        else:
            out.append(ch)
            i += 1
            continue
        i += 2
    return "".join(out)
