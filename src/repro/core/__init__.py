"""Wafe -- the Widget[Athena]FrontEnd, the paper's primary contribution.

The package assembles the substrate layers into the frontend program:

* :class:`~repro.core.wafe.Wafe` -- Tcl interpreter + Xt application
  context + widget class table + the generated and handwritten command
  sets.
* :mod:`repro.core.modes` -- interactive, file and frontend modes.
* :mod:`repro.core.frontend` -- the backend subprocess and the pipe
  protocol, including the mass transfer channel.
* :mod:`repro.core.percent` -- percent codes for actions and callbacks.
* :mod:`repro.core.predefined` -- the predefined popup callbacks.
* :mod:`repro.core.cli` -- the ``wafe``/``mofe`` executables.
"""

from repro.core.wafe import Wafe, VERSION
from repro.core.modes import (
    InteractiveSession,
    make_wafe,
    run_file,
    run_frontend,
    run_string,
)

__all__ = [
    "Wafe",
    "VERSION",
    "InteractiveSession",
    "make_wafe",
    "run_file",
    "run_frontend",
    "run_string",
]
