"""Wafe's three modes of operation: interactive, file, frontend.

* **Interactive mode** -- a single process reading commands from
  standard input, interpreted as they arrive; the user watches the
  widget tree being built step by step.
* **File mode** -- execute a Tcl/Wafe command file (typically started
  through the ``#!`` magic), then serve events.
* **Frontend mode** -- spawn the application program as a subprocess
  and speak the pipe protocol (see :mod:`repro.core.frontend`).
"""

import sys

from repro.core.supervisor import BackendSupervisor
from repro.core.wafe import Wafe


def run_file(wafe, path, main_loop=True, max_idle=None, lint=False):
    """File mode: execute a script, then enter the main loop.

    With ``lint`` true the script is statically analyzed first
    (advisory: diagnostics go through the frontend's error channel,
    then the script runs regardless -- the analyzer never executes
    anything, so this adds no side effects).
    """
    with open(path, "r") as handle:
        script = handle.read()
    if script.startswith("#!"):
        # Blank out the interpreter line but keep its newline so error
        # positions (TclError line/col) still match the file on disk.
        newline = script.find("\n")
        script = script[newline:] if newline >= 0 else ""
    if lint:
        _report_lint(wafe, path, script)
    wafe.interp.script_name = path
    wafe.run_script(script)
    if main_loop and not wafe.quit_requested:
        wafe.main_loop(until=lambda: wafe.quit_requested, max_idle=max_idle)
    return wafe


def _report_lint(wafe, path, script):
    """Run wafelint over a file-mode script against this instance's
    build, accepting everything actually in the live command table."""
    from repro.lint import check

    diagnostics = check(script, filename=path, build=wafe.build,
                        extra_commands=wafe.interp.commands)
    for diagnostic in diagnostics:
        wafe.report_error("lint: %s" % diagnostic.format())
    return diagnostics


def run_string(wafe, script, main_loop=False, max_idle=None):
    """Evaluate a script string (used by tests and the -e option)."""
    result = wafe.run_script(script)
    if main_loop and not wafe.quit_requested:
        wafe.main_loop(until=lambda: wafe.quit_requested, max_idle=max_idle)
    return result


class InteractiveSession:
    """Interactive mode: stdin lines in, results out.

    The prompt and result echo go to ``output`` (stdout by default); a
    transcript of (command, result) pairs is kept so the interactive
    designer example and the benchmarks can inspect the session.
    """

    def __init__(self, wafe, output=None, prompt="wafe> "):
        self.wafe = wafe
        self.output = output if output is not None else sys.stdout
        self.prompt = prompt
        self.transcript = []
        self.wafe.error_sink = self._show_error

    def _show(self, text):
        self.output.write(text)
        try:
            self.output.flush()
        except (OSError, ValueError):
            pass

    def _show_error(self, message):
        self._show("Error: %s\n" % message)

    def execute(self, line):
        """One interactive command; returns the result string."""
        line = line.rstrip("\n")
        if not line.strip():
            return ""
        result = self.wafe.run_command_line(line)
        self.transcript.append((line, result))
        if result:
            self._show(result + "\n")
        # Interactive mode shows effects immediately.
        self.wafe.app.process_pending()
        return result or ""

    def run(self, stream=None):
        """Read-eval loop over a stream (stdin by default)."""
        stream = stream if stream is not None else sys.stdin
        for line in stream:
            self._show(self.prompt)
            self.execute(line)
            if self.wafe.quit_requested:
                break
        return self.transcript


def run_frontend(wafe, program, program_args=None, max_idle=None,
                 passthrough=None):
    """Frontend mode: spawn the backend under supervision and serve
    the protocol until the supervisor lets the session end (backend
    exit under ``restartPolicy never`` with no hook) or ``quit``
    arrives.  Crashes are classified, reported through
    ``onBackendExit`` and -- policy permitting -- restarted with
    backoff while the GUI keeps serving events."""
    supervisor = BackendSupervisor(wafe, program, program_args,
                                   passthrough=passthrough)
    frontend = supervisor.start()
    wafe.main_loop(until=lambda: wafe.quit_requested, max_idle=max_idle)
    supervisor.stop()
    return supervisor.frontend or frontend


def make_wafe(build="athena", display_name=":0", argv=None, compile=True,
              use_selectors=True, use_regions=True, naive_regions=False):
    """Construct a Wafe instance (one per process in real life)."""
    return Wafe(build=build, display_name=display_name, argv=argv,
                compile=compile, use_selectors=use_selectors,
                use_regions=use_regions, naive_regions=naive_regions)
