"""The predefined callback functions (the paper's first table).

These are the special-purpose callbacks bound with the ``callback``
command, all concerned with popup shells::

    callback b armCallback none popup

| name            | behaviour                              |
|-----------------|----------------------------------------|
| none            | realize shell, grab none               |
| exclusive       | realize shell, grab exclusive          |
| nonexclusive    | realize shell, grab nonexclusive       |
| popdown         | unrealize shell                        |
| position        | position shell                         |
| positionCursor  | position shell under pointer           |
"""

from repro.tcl.errors import TclError
from repro.xt.shell import GRAB_EXCLUSIVE, GRAB_NONE, GRAB_NONEXCLUSIVE


def _shell_arg(wafe, args, name):
    if not args:
        raise TclError(
            'predefined callback "%s" needs a shell widget argument' % name)
    shell = wafe.lookup_widget(args[0])
    if not hasattr(shell, "popup"):
        raise TclError('widget "%s" is not a shell' % args[0])
    return shell


def _popup_with(grab_kind):
    def predefined(wafe, widget, args, call_data):
        shell = _shell_arg(wafe, args, grab_kind)
        shell.popup(grab_kind)
        wafe.app.process_pending()

    return predefined


def _popdown(wafe, widget, args, call_data):
    shell = _shell_arg(wafe, args, "popdown")
    shell.popdown()
    wafe.app.process_pending()


def _position(wafe, widget, args, call_data):
    shell = _shell_arg(wafe, args, "position")
    if len(args) >= 3:
        try:
            x, y = int(args[1]), int(args[2])
        except ValueError:
            raise TclError("position needs integer coordinates")
    else:
        # Default: below the invoking widget.
        ox, oy = (widget.window.absolute_origin()
                  if widget.window is not None else (0, 0))
        x = ox
        y = oy + (widget.window.height if widget.window is not None else 0)
    shell.move_to(x, y)


def _position_cursor(wafe, widget, args, call_data):
    shell = _shell_arg(wafe, args, "positionCursor")
    shell.position_under_cursor()


PREDEFINED_CALLBACKS = {
    "none": _popup_with(GRAB_NONE),
    "exclusive": _popup_with(GRAB_EXCLUSIVE),
    "nonexclusive": _popup_with(GRAB_NONEXCLUSIVE),
    "popdown": _popdown,
    "position": _position,
    "positionCursor": _position_cursor,
}
