"""Safe mode: the Safe-Tcl-style hidden command set.

A Wafe frontend normally trusts its backend -- they are two halves of
one application.  But the paper's model also invites *untrusted*
backends (a remote computation service, a tool the user downloaded),
and for those the command language must not double as an escape hatch.
Safe mode follows Safe Tcl's design: rather than deleting dangerous
commands, they are *hidden* -- removed from the dispatch table into a
side table (:attr:`Interp.hidden_commands`), invisible to ``rename``
and ``info commands``, invocable by nobody at the script level, but
restorable by the embedding Python code.

What gets hidden, and why:

* ``source`` -- the only filesystem reader in the command set; a
  hostile backend could read arbitrary files and ``echo`` them back.
* ``getChannel`` / ``setCommunicationVariable`` -- the mass-transfer
  escape hatches into frontend memory.
* ``sendToApplication`` / ``setPrefix`` -- protocol-level escapes: a
  script that can forge backend traffic or re-key the command prefix
  can confuse the supervision machinery.
* ``exec``-shaped process control (``restartPolicy``,
  ``onBackendExit``) -- in safe mode the *user*, not the backend,
  decides what gets (re)spawned; ``onBackendExit`` scripts run with
  full trust after the backend dies, so letting the backend write them
  is privilege escalation.
* ``evalLimit`` / ``recursionLimit`` -- a backend that can raise or
  disarm its own watchdog budgets defeats the point of running it
  under limits.

Enabling is one-way from the script's point of view: there is no Tcl
command to expose a hidden command (``info hidden`` only lists them);
only the embedder can call :meth:`Interp.expose_command`.
"""

#: Commands hidden when safe mode is enabled, with the reason each is
#: considered dangerous (the linter surfaces these in W011 messages).
SAFE_HIDDEN_COMMANDS = {
    "source": "reads arbitrary files from the frontend's filesystem",
    "getChannel": "exposes the mass-transfer file descriptor",
    "setCommunicationVariable":
        "streams raw channel data into frontend variables",
    "sendToApplication": "forges protocol traffic to the backend",
    "setPrefix": "re-keys the command prefix classification",
    "restartPolicy": "controls what processes get (re)spawned",
    "onBackendExit": "installs a fully-trusted exit hook script",
    "evalLimit": "disarms the eval watchdog budgets",
    "recursionLimit": "raises the nesting ceiling past the watchdog",
}


def enable_safe_mode(interp):
    """Hide every dangerous command present in ``interp``.

    Returns the names actually hidden (commands not registered in this
    build are skipped -- a bare ``Interp()`` has only ``source``).
    Idempotent: already-hidden names stay hidden.
    """
    hidden = []
    for name in sorted(SAFE_HIDDEN_COMMANDS):
        if name in interp.hidden_commands:
            continue
        if name in interp.commands:
            interp.hide_command(name)
            hidden.append(name)
    return hidden
