"""The widget core: classes, resources, lifecycle, and geometry hooks.

Mirrors the Xt object system: ``Core`` (here :class:`Widget`),
``Composite`` (children + geometry management) and ``Constraint``
(per-child constraint resources, used by Form).  Python subclassing
stands in for the C class-record chaining: a widget class's effective
resource list is the concatenation along the MRO, just as Xt
concatenates superclass resource lists -- which is what makes
``XtGetResourceList`` on Label report Core+Simple+ThreeD+Label.
"""

from repro.tcl.errors import TclError
from repro.xlib import xtypes
from repro.xlib import graphics as gfx
from repro.xt import resources as R
from repro.xt.callbacks import CallbackList
from repro.xt.resources import res
from repro.xt.translations import merge_tables, parse_translation_table


class WidgetError(TclError):
    """Widget-level usage errors (bad parent, duplicate name, ...)."""


#: The 18 Core resources (X11R5 ordering, as the paper's
#: getResourceList output shows them).
CORE_RESOURCES = [
    res("destroyCallback", R.R_CALLBACK),
    res("ancestorSensitive", R.R_BOOLEAN, True),
    res("x", R.R_POSITION, 0),
    res("y", R.R_POSITION, 0),
    res("width", R.R_DIMENSION, 0),
    res("height", R.R_DIMENSION, 0),
    res("borderWidth", R.R_DIMENSION, 1),
    res("sensitive", R.R_BOOLEAN, True),
    res("screen", R.R_SCREEN, None),
    res("depth", R.R_INT, 24),
    res("colormap", R.R_COLORMAP, "default"),
    res("background", R.R_PIXEL, "XtDefaultBackground"),
    res("backgroundPixmap", R.R_PIXMAP, None),
    res("borderColor", R.R_PIXEL, "XtDefaultForeground"),
    res("borderPixmap", R.R_PIXMAP, None),
    res("mappedWhenManaged", R.R_BOOLEAN, True),
    res("translations", R.R_TRANSLATIONS, None),
    res("accelerators", R.R_ACCELERATORS, None),
]


class Widget:
    """Core: the base of every widget."""

    CLASS_NAME = "Core"
    RESOURCES = CORE_RESOURCES
    CONSTRAINT_RESOURCES = []
    ACTIONS = {}
    DEFAULT_TRANSLATIONS = None
    IS_SHELL = False

    # ------------------------------------------------------------------
    # Class-level introspection (XtGetResourceList etc.)

    @classmethod
    def class_resources(cls):
        """The effective resource list: superclasses first."""
        cached = cls.__dict__.get("_resource_cache")
        if cached is not None:
            return cached
        lists = []
        for klass in reversed(cls.__mro__):
            own = klass.__dict__.get("RESOURCES")
            if own:
                lists.append(own)
        merged = R.merge_resource_lists(*lists)
        cls._resource_cache = merged
        return merged

    @classmethod
    def class_resource_map(cls):
        cached = cls.__dict__.get("_resource_map_cache")
        if cached is not None:
            return cached
        mapping = {r.name: r for r in cls.class_resources()}
        cls._resource_map_cache = mapping
        return mapping

    @classmethod
    def class_quark(cls):
        """The interned Xrm quark of this widget class's name, cached
        per class (the X11R5 per-class quark chain)."""
        cached = cls.__dict__.get("_class_quark_cache")
        if cached is None:
            cached = cls._class_quark_cache = R.quark(cls.CLASS_NAME)
        return cached

    @classmethod
    def class_actions(cls):
        cached = cls.__dict__.get("_action_cache")
        if cached is not None:
            return cached
        actions = {}
        for klass in reversed(cls.__mro__):
            own = klass.__dict__.get("ACTIONS")
            if own:
                actions.update(own)
        cls._action_cache = actions
        return actions

    @classmethod
    def class_constraint_map(cls):
        mapping = {}
        for klass in reversed(cls.__mro__):
            own = klass.__dict__.get("CONSTRAINT_RESOURCES")
            if own:
                for resource in own:
                    mapping[resource.name] = resource
        return mapping

    # ------------------------------------------------------------------
    # Creation

    def __init__(self, name, parent, args=None, managed=True, app=None):
        self.name = name
        self.parent = parent
        self.children = []
        self.managed = False
        self.realized = False
        self.destroyed = False
        self.window = None
        self.resources = {}
        self.constraints = {}
        # XtInstallAccelerators: (table, source_widget) pairs consulted
        # when this widget's own translations don't match an event.
        self.accelerator_bindings = []
        # Interned quark chains and the Xrm search list, both cached on
        # the instance (the search list is revalidated against the
        # database generation by XtAppContext.resource_search_list).
        self._path_quarks = None
        self._xrm_search = None
        # Expose events with count > 0 accumulate here until the series
        # ends (count == 0) and the batch paints in one pass.
        self._expose_batch = []
        if parent is not None:
            self.app = parent.app
            if self not in parent.children:
                parent.children.append(self)
        else:
            if app is None:
                raise WidgetError("root widget needs an app context")
            self.app = app
        self._initialize_resources(args or {})
        self.initialize()
        if managed and parent is not None:
            parent.manage_child(self)

    def _initialize_resources(self, args):
        constraint_map = (self.parent.class_constraint_map()
                          if self.parent is not None else {})
        resource_map = self.class_resource_map()
        unknown = [key for key in args
                   if key not in resource_map and key not in constraint_map]
        if unknown:
            raise WidgetError(
                'unknown resource "%s" for widget class %s'
                % (unknown[0], self.CLASS_NAME)
            )
        converters = self.app.converters
        # Two-phase Xrm lookup: the search list is computed once for
        # this widget's name/class quark chains; every resource below
        # is then a cheap walk over it (XrmQGetSearchResource).
        database = self.app.database
        search_list = (self.app.resource_search_list(self)
                       if database.use_search_lists else None)
        for resource in self.class_resources():
            if resource.name in args:
                value = converters.convert(self, resource.type,
                                           args[resource.name])
            else:
                if search_list is not None:
                    from_db = database.search(search_list,
                                              resource.name_quark,
                                              resource.class_quark)
                else:
                    from_db = self.app.query_resource(
                        self, resource.name, resource.class_)
                if from_db is not None:
                    value = converters.convert(self, resource.type, from_db)
                else:
                    value = self._default_for(resource, converters)
            self.resources[resource.name] = value
        for resource in constraint_map.values():
            if resource.name in args:
                value = converters.convert(self, resource.type,
                                           args[resource.name])
            else:
                value = resource.default
            self.constraints[resource.name] = value
        # Wafe/Xt semantics: translations from resources merge onto the
        # class defaults rather than erasing them.
        base = (parse_translation_table(self.DEFAULT_TRANSLATIONS)
                if self.DEFAULT_TRANSLATIONS else None)
        given = self.resources.get("translations")
        if given is not None:
            self.resources["translations"] = merge_tables(base, given)
        else:
            self.resources["translations"] = base
        if self.resources.get("destroyCallback") is None:
            self.resources["destroyCallback"] = CallbackList()

    def _default_for(self, resource, converters):
        default = resource.default
        if isinstance(default, str) and converters.has(resource.type):
            return converters.convert(self, resource.type, default)
        if resource.type == R.R_CALLBACK and default is None:
            return CallbackList()
        return default

    def initialize(self):
        """Class initialize hook (after resources are set)."""

    # ------------------------------------------------------------------
    # Resource access

    def __getitem__(self, name):
        if name in self.resources:
            return self.resources[name]
        if name in self.constraints:
            return self.constraints[name]
        raise WidgetError(
            'widget "%s" (class %s) has no resource "%s"'
            % (self.name, self.CLASS_NAME, name)
        )

    def __contains__(self, name):
        return name in self.resources or name in self.constraints

    def set_values(self, args):
        """XtSetValues: convert, store, let the class react."""
        converters = self.app.converters
        resource_map = self.class_resource_map()
        constraint_map = (self.parent.class_constraint_map()
                          if self.parent is not None else {})
        old = {}
        changed = []
        for name, raw in args.items():
            if name in resource_map:
                value = converters.convert(self, resource_map[name].type, raw)
                if name == "translations" and value is not None:
                    value = merge_tables(self.resources.get("translations"),
                                         value)
                    # A fresh table invalidates in-flight sequences
                    # (their productions no longer exist).
                    self._translation_progress = {}
                old[name] = self.resources.get(name)
                self.resources[name] = value
                changed.append(name)
            elif name in constraint_map:
                value = converters.convert(self, constraint_map[name].type,
                                           raw)
                old[name] = self.constraints.get(name)
                self.constraints[name] = value
                changed.append(name)
            else:
                raise WidgetError(
                    'widget "%s" (class %s) has no resource "%s"'
                    % (self.name, self.CLASS_NAME, name)
                )
        handled = self.set_values_hook(old, changed)
        self._apply_geometry_changes(changed)
        if self.realized and self.window is not None:
            if "background" in changed:
                self.window.background_pixel = self.resources["background"]
            if not handled:
                self.redraw()
        if self.parent is not None and any(
                name in constraint_map for name in changed):
            self.parent.layout()

    def set_values_hook(self, old, changed):
        """Class hook: react to changed resources.  Return true when the
        hook took care of redisplay itself (e.g. by damaging only the
        changed area) to suppress the default full redraw."""

    def _apply_geometry_changes(self, changed):
        geometry = [n for n in changed if n in ("x", "y", "width", "height",
                                                "borderWidth")]
        if geometry and self.window is not None:
            # XtMoveWidget/XtResizeWidget semantics: the change is
            # applied directly; the parent is not asked to re-layout.
            self.window.configure(
                x=self.resources["x"], y=self.resources["y"],
                width=max(1, self.resources["width"]),
                height=max(1, self.resources["height"]),
                border_width=self.resources["borderWidth"],
            )

    def get_value_string(self, name):
        """getValues: resource rendered back to a string."""
        resource_map = self.class_resource_map()
        constraint_map = (self.parent.class_constraint_map()
                          if self.parent is not None else {})
        if name in resource_map:
            value = self.resources.get(name)
            if isinstance(value, CallbackList):
                return value.source
            if name == "screen":
                return self.display().name if self.display() else ""
            return self.app.converters.unconvert(
                self, resource_map[name].type, value)
        if name in constraint_map:
            value = self.constraints.get(name)
            if hasattr(value, "name"):
                return value.name  # widget reference (fromVert etc.)
            return self.app.converters.unconvert(
                self, constraint_map[name].type, value)
        raise WidgetError(
            'widget "%s" (class %s) has no resource "%s"'
            % (self.name, self.CLASS_NAME, name)
        )

    # ------------------------------------------------------------------
    # Hierarchy helpers

    def display(self):
        widget = self
        while widget is not None:
            if getattr(widget, "_display", None) is not None:
                return widget._display
            widget = widget.parent
        return self.app.default_display

    def shell(self):
        widget = self
        while widget is not None and not widget.IS_SHELL:
            widget = widget.parent
        return widget

    def name_path(self):
        names = []
        widget = self
        while widget is not None:
            names.append(widget.name)
            widget = widget.parent
        return list(reversed(names))

    def class_path(self):
        classes = []
        widget = self
        while widget is not None:
            classes.append(widget.CLASS_NAME)
            widget = widget.parent
        return list(reversed(classes))

    def is_sensitive(self):
        return bool(self.resources.get("sensitive", True)) and bool(
            self.resources.get("ancestorSensitive", True))

    def set_sensitive(self, value):
        self.resources["sensitive"] = value
        for child in self.children:
            child.resources["ancestorSensitive"] = value and \
                self.is_sensitive()

    # ------------------------------------------------------------------
    # Managing and realizing

    def manage_child(self, child):
        child.managed = True
        if self.realized and not child.realized:
            child.realize()
            self.layout()
        elif self.realized:
            self.layout()

    def unmanage_child(self, child):
        child.managed = False
        if child.window is not None:
            child.window.unmap()
        if self.realized:
            self.layout()

    def layout(self):
        """Composite geometry hook; Core keeps children where they are."""

    def needed_extent(self):
        """The extent required to show all managed children."""
        max_x = max_y = 1
        for child in self.children:
            if not child.managed or getattr(child, "is_popup", False):
                continue
            border = 2 * child.resources.get("borderWidth", 0)
            max_x = max(max_x, child.resources["x"] +
                        child.resources["width"] + border)
            max_y = max(max_y, child.resources["y"] +
                        child.resources["height"] + border)
        return max_x + 4, max_y + 4

    def child_resized(self, child):
        """XtMakeGeometryRequest, simplified: a child grew; re-layout
        and grow this widget (and its ancestors) to keep it visible."""
        self.layout()
        if self.window is None:
            return
        need_w, need_h = self.needed_extent()
        grow_w = max(self.window.width, need_w)
        grow_h = max(self.window.height, need_h)
        if grow_w != self.window.width or grow_h != self.window.height:
            self.resources["width"] = grow_w
            self.resources["height"] = grow_h
            self.window.configure(width=grow_w, height=grow_h)
            if self.parent is not None:
                self.parent.child_resized(self)

    def request_resize(self, width, height):
        """A widget asks for a new size; the request propagates up."""
        self.resources["width"] = width
        self.resources["height"] = height
        if self.window is not None:
            self.window.configure(width=max(1, width), height=max(1, height))
        if self.parent is not None:
            self.parent.child_resized(self)

    def preferred_size(self):
        """Desired (width, height); Core just reports its resources."""
        return (max(1, self.resources["width"]),
                max(1, self.resources["height"]))

    def realize(self):
        if self.realized or self.destroyed:
            return
        display = self.display()
        parent_window = self._parent_window()
        width, height = self.resources["width"], self.resources["height"]
        if width <= 0 or height <= 0:
            pw, ph = self.preferred_size()
            width = width or pw
            height = height or ph
            self.resources["width"], self.resources["height"] = width, height
        self.window = display.create_window(
            parent_window, self.resources["x"], self.resources["y"],
            max(1, width), max(1, height), self.resources["borderWidth"])
        self.window.background_pixel = self.resources["background"]
        self.window.select_input(
            xtypes.KeyPressMask | xtypes.KeyReleaseMask |
            xtypes.ButtonPressMask | xtypes.ButtonReleaseMask |
            xtypes.EnterWindowMask | xtypes.LeaveWindowMask |
            xtypes.PointerMotionMask | xtypes.ExposureMask |
            xtypes.StructureNotifyMask)
        self.app.register_window(self.window, self)
        self.realized = True
        self.realize_hook()
        self.layout()
        for child in self.children:
            if child.managed and not getattr(child, "is_popup", False):
                child.realize()
        # A second pass now that every child window exists: stacking
        # order and sizes that depend on realized children settle here.
        self.layout()
        if self.managed and self.resources["mappedWhenManaged"]:
            self.window.map()

    def _parent_window(self):
        """The X window to create this widget's window under."""
        return self.parent.window if self.parent is not None else None

    def realize_hook(self):
        """Class hook after the window exists."""

    # ------------------------------------------------------------------
    # Redisplay

    def handle_expose(self, event):
        """Dispatch an Expose honouring the X count contract: events
        with count > 0 are batched; when the series ends (count == 0)
        each damage rect is repainted with the window's paint clip
        installed, so every drawing primitive the class expose hook
        issues is clipped to the damaged area."""
        window = self.window
        if window is None or not window.viewable():
            self._expose_batch = []
            return
        if event is not None:
            # A zero extent (hand-built events) means the full window,
            # as the pre-damage dispatch treated every Expose.
            w = event.width if event.width > 0 else window.width
            h = event.height if event.height > 0 else window.height
            rect = (event.x, event.y, event.x + w, event.y + h)
            if event.count > 0:
                self._expose_batch.append(rect)
                return
            self._expose_batch.append(rect)
        rects, self._expose_batch = self._expose_batch, []
        full = (0, 0, window.width, window.height)
        for rect in rects or [full]:
            x0 = max(rect[0], 0)
            y0 = max(rect[1], 0)
            x1 = min(rect[2], window.width)
            y1 = min(rect[3], window.height)
            if x0 >= x1 or y0 >= y1:
                continue
            clipped = (x0, y0, x1, y1)
            # Full-window repaints skip the clip entirely: nothing to
            # intersect, and the primitives stay on their fast path.
            window.paint_clip = None if clipped == full else clipped
            try:
                self.expose(event)
            finally:
                window.paint_clip = None

    def expose(self, event):
        """Class redisplay hook: draw the widget.  While a damage rect
        is being repainted ``self.window.paint_clip`` holds it and all
        graphics primitives clip against it automatically."""

    def redraw(self):
        self._expose_batch = []
        if self.window is not None and self.window.viewable():
            gfx.clear_area(self.window,
                           pixel=self.resources["background"])
            self.expose(None)

    def damage(self, x, y, width, height):
        """Report a window-relative dirty rect; it is repainted at the
        next damage flush."""
        if self.window is not None:
            self.window.display.damage_rect(self.window, x, y, width, height)

    def update_rects(self, rects):
        """Partial redisplay: repaint the given window-relative half-open
        boxes (x0, y0, x1, y1) now, clipped and coalesced.  On the
        eager-expose spec path this degrades to a full redraw, which is
        what makes the damage path's output byte-comparable to it."""
        window = self.window
        if window is None or not window.viewable():
            return
        display = window.display
        if not display.use_regions:
            self.redraw()
            return
        region = display.new_region()
        for x0, y0, x1, y1 in rects:
            region.add_rect(x0, y0, x1, y1)
        region.intersect_rect(0, 0, window.width, window.height)
        if region.is_empty():
            return
        stats = display.render_stats
        stats["damage_rects"] += len(rects)
        stats["damage_pixels"] += region.area()
        for event in display.take_expose_series(window, region):
            self.handle_expose(event)

    # ------------------------------------------------------------------
    # Callbacks

    def callback_list(self, name):
        value = self.resources.get(name)
        if not isinstance(value, CallbackList):
            value = CallbackList()
            self.resources[name] = value
        return value

    def add_callback(self, name, func, source=""):
        if name not in self.class_resource_map():
            raise WidgetError(
                'widget "%s" has no callback resource "%s"'
                % (self.name, name))
        self.callback_list(name).add(func, source)

    def call_callbacks(self, name, call_data=None):
        value = self.resources.get(name)
        if isinstance(value, CallbackList):
            value.call(self, call_data)

    # ------------------------------------------------------------------
    # Destruction (the paper's memory-management component)

    def destroy(self):
        if self.destroyed:
            return
        self.call_callbacks("destroyCallback")
        for child in list(self.children):
            child.destroy()
        self.destroyed = True
        if self.window is not None:
            self.app.unregister_window(self.window)
            self.window.destroy()
            self.window = None
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        # Free associated resources, as Wafe's memory management does.
        self.resources.clear()
        self.constraints.clear()
        self.accelerator_bindings = []
        self.app.widget_destroyed(self)

    def __repr__(self):  # pragma: no cover
        return "<%s %r>" % (self.CLASS_NAME, self.name)


class Composite(Widget):
    """A widget that manages children (XtComposite)."""

    CLASS_NAME = "Composite"
    RESOURCES = [
        res("children", R.R_POINTER, None),
        res("numChildren", R.R_INT, 0),
        res("insertPosition", R.R_POINTER, None),
    ]


class Constraint(Composite):
    """A composite with per-child constraint resources (XtConstraint)."""

    CLASS_NAME = "Constraint"
    RESOURCES = []
